/**
 * @file
 * Figure 8: impact of the memory-processor location.
 *
 * Compares NoPref, Conven4+Repl with the memory processor in the DRAM
 * chip, and Conven4+Repl with the memory processor in the North
 * Bridge (Conven4+ReplMC): twice the table-access latency, an extra
 * 25-cycle prefetch-injection delay, and channel-crossing table
 * traffic.  The paper's point: Repl prefetches far enough ahead that
 * the cheaper North Bridge placement loses very little (1.46 -> 1.41
 * average speedup).
 *
 * Usage: fig8_location [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig8_location", bopt);

    const auto &apps = workloads::applicationNames();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        driver::ExperimentOptions nb = opt;
        nb.placement = mem::MemProcPlacement::NorthBridge;
        driver::SystemConfig nb_cfg = driver::conven4PlusUlmtConfig(
            nb, core::UlmtAlgo::Repl, app);
        nb_cfg.label = "Conven4+ReplMC";

        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        jobs.push_back({app,
                        driver::conven4PlusUlmtConfig(
                            opt, core::UlmtAlgo::Repl, app),
                        opt});
        jobs.push_back({app, std::move(nb_cfg), nb});
    }
    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Config", "Norm.time", "Busy",
                             "UptoL2", "BeyondL2", "Speedup"});

    std::vector<double> dram_sp, nb_sp;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const driver::RunResult &base = results[ai * 3];
        const driver::RunResult &in_dram = results[ai * 3 + 1];
        const driver::RunResult &in_nb = results[ai * 3 + 2];

        for (const driver::RunResult *r : {&base, &in_dram, &in_nb}) {
            const double denom = static_cast<double>(base.cycles);
            table.addRow(
                {apps[ai], r->label,
                 driver::fmt(r->normalizedTime(base)),
                 driver::fmt(static_cast<double>(r->busyCycles) /
                             denom),
                 driver::fmt(static_cast<double>(r->uptoL2Stall) /
                             denom),
                 driver::fmt(static_cast<double>(r->beyondL2Stall) /
                             denom),
                 driver::fmt(r->speedup(base))});
        }
        dram_sp.push_back(in_dram.speedup(base));
        nb_sp.push_back(in_nb.speedup(base));
    }
    table.print("Figure 8: memory-processor location");

    driver::TextTable avg({"Config", "Avg speedup", "Paper"});
    avg.addRow({"Conven4+Repl (in DRAM)",
                driver::fmt(driver::mean(dram_sp)), "1.46"});
    avg.addRow({"Conven4+ReplMC (North Bridge)",
                driver::fmt(driver::mean(nb_sp)), "1.41"});
    avg.print("Figure 8: average speedups");

    harness.metric("avg_speedup_in_dram", driver::mean(dram_sp));
    harness.metric("avg_speedup_north_bridge", driver::mean(nb_sp));
    harness.writeJson();
    return 0;
}
