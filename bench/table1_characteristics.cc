/**
 * @file
 * Table 1: measured comparison of the pair-based correlation
 * algorithms running on a ULMT.
 *
 * The paper's table is analytic; this bench measures the same
 * characteristics from the implementations on a repeating synthetic
 * miss stream: levels of successors prefetched, whether each level
 * keeps true MRU order, row accesses per Prefetching/Learning step,
 * response time, and the table space per row.
 *
 * Host-side only (no simulation), so there is nothing to parallelize;
 * the bench still emits BENCH_table1_characteristics.json.
 *
 * Usage: table1_characteristics [scale] [--jobs=N]
 */

#include <cstdio>
#include <memory>

#include "bench/harness.hh"
#include "core/base_chain.hh"
#include "core/cost.hh"
#include "core/replicated.hh"
#include "driver/report.hh"

namespace {

/** Counts row-sized table reads/writes (the "row accesses"). */
class CountingCost : public core::CostTracker
{
  public:
    void instr(std::uint32_t n) override { instrs += n; }
    void
    memRead(sim::Addr, std::uint32_t bytes) override
    {
        if (bytes > 8)
            ++rowReads;
    }
    void
    memWrite(sim::Addr, std::uint32_t bytes) override
    {
        ++rowWrites;
        (void)bytes;
    }

    std::uint64_t instrs = 0;
    std::uint64_t rowReads = 0;
    std::uint64_t rowWrites = 0;
};

/** A repeating miss stream with an irregular but fixed pattern. */
std::vector<sim::Addr>
syntheticStream()
{
    std::vector<sim::Addr> pattern;
    for (int i = 0; i < 512; ++i) {
        // A fixed pseudo-random permutation of lines.
        pattern.push_back(static_cast<sim::Addr>(
                              (i * 2654435761u) % 4096) *
                          64);
    }
    std::vector<sim::Addr> stream;
    for (int rep = 0; rep < 20; ++rep)
        stream.insert(stream.end(), pattern.begin(), pattern.end());
    return stream;
}

struct Measured
{
    double prefetchRowAccesses;
    double learnRowAccesses;
    double instrsPerMiss;
    std::size_t bytesPerRow;
};

Measured
measure(core::CorrelationPrefetcher &algo, std::uint32_t num_rows)
{
    const std::vector<sim::Addr> stream = syntheticStream();
    CountingCost pf_cost, learn_cost;
    std::vector<sim::Addr> out;
    for (sim::Addr miss : stream) {
        out.clear();
        algo.prefetchStep(miss, out, pf_cost);
        algo.learnStep(miss, learn_cost);
    }
    const double n = static_cast<double>(stream.size());
    return Measured{
        static_cast<double>(pf_cost.rowReads) / n,
        static_cast<double>(learn_cost.rowReads +
                            learn_cost.rowWrites) /
            n,
        static_cast<double>(pf_cost.instrs + learn_cost.instrs) / n,
        algo.tableBytes() / num_rows,
    };
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    bench::Harness harness("table1_characteristics", bopt);

    constexpr std::uint32_t rows = 8192;
    core::BasePrefetcher base(core::baseDefaults(rows));
    core::ChainPrefetcher chain(core::chainReplDefaults(rows));
    core::ReplicatedPrefetcher repl(core::chainReplDefaults(rows));

    driver::TextTable table({"Characteristic", "Base", "Chain",
                             "Repl"});
    const Measured mb = measure(base, rows);
    const Measured mc = measure(chain, rows);
    const Measured mr = measure(repl, rows);

    table.addRow({"Levels of successors prefetched", "1", "3", "3"});
    table.addRow({"True MRU ordering per level?", "Yes", "No", "Yes"});
    table.addRow({"Prefetch-step row accesses (SEARCH)",
                  driver::fmt(mb.prefetchRowAccesses),
                  driver::fmt(mc.prefetchRowAccesses),
                  driver::fmt(mr.prefetchRowAccesses)});
    table.addRow({"Learning-step row accesses (no search)",
                  driver::fmt(mb.learnRowAccesses),
                  driver::fmt(mc.learnRowAccesses),
                  driver::fmt(mr.learnRowAccesses)});
    table.addRow({"Instructions per observed miss",
                  driver::fmt(mb.instrsPerMiss, 1),
                  driver::fmt(mc.instrsPerMiss, 1),
                  driver::fmt(mr.instrsPerMiss, 1)});
    table.addRow({"Bytes per table row",
                  std::to_string(mb.bytesPerRow),
                  std::to_string(mc.bytesPerRow),
                  std::to_string(mr.bytesPerRow)});
    table.print("Table 1: algorithm characteristics (measured)");

    harness.metric("base_instrs_per_miss", mb.instrsPerMiss);
    harness.metric("chain_instrs_per_miss", mc.instrsPerMiss);
    harness.metric("repl_instrs_per_miss", mr.instrsPerMiss);
    harness.metric("base_bytes_per_row",
                   static_cast<double>(mb.bytesPerRow));
    harness.metric("chain_bytes_per_row",
                   static_cast<double>(mc.bytesPerRow));
    harness.metric("repl_bytes_per_row",
                   static_cast<double>(mr.bytesPerRow));
    harness.writeJson();
    return 0;
}
