/**
 * @file
 * Figure 5: fraction of L2 cache misses correctly predicted by the
 * different algorithms at successor levels 1-3.
 *
 * Each algorithm simply observes the NoPref demand-miss stream of each
 * application without prefetching.  The pair-based schemes use large
 * tables so that no prediction is lost to conflicts (NumRows=256K,
 * Assoc=4, NumSucc=4); under these conditions Chain and Repl are
 * equivalent to Base at level 1.
 *
 * Usage: fig5_predictability [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>

#include "core/base_chain.hh"
#include "core/composite.hh"
#include "core/predictability.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

core::CorrelationParams
bigTable()
{
    core::CorrelationParams p;
    p.numRows = 256 * 1024;
    p.assoc = 4;
    p.numSucc = 4;
    p.numLevels = 3;
    return p;
}

core::SeqParams
seqParams(std::uint32_t streams)
{
    core::SeqParams p;
    p.numSeq = streams;
    p.numPref = 6;
    p.lineBytes = 64;
    return p;
}

using Maker =
    std::function<std::unique_ptr<core::CorrelationPrefetcher>()>;

std::vector<std::pair<std::string, Maker>>
algorithms()
{
    return {
        {"Seq1",
         [] { return std::make_unique<core::SeqPrefetcher>(
                  seqParams(1)); }},
        {"Seq4",
         [] { return std::make_unique<core::SeqPrefetcher>(
                  seqParams(4)); }},
        {"Base",
         [] { return std::make_unique<core::BasePrefetcher>(
                  bigTable()); }},
        {"Chain",
         [] { return std::make_unique<core::ChainPrefetcher>(
                  bigTable()); }},
        {"Repl",
         [] { return std::make_unique<core::ReplicatedPrefetcher>(
                  bigTable()); }},
        {"Seq4+Base",
         [] {
             std::vector<std::unique_ptr<core::CorrelationPrefetcher>>
                 parts;
             parts.push_back(
                 std::make_unique<core::SeqPrefetcher>(seqParams(4)));
             parts.push_back(
                 std::make_unique<core::BasePrefetcher>(bigTable()));
             return std::make_unique<core::CompositePrefetcher>(
                 std::move(parts));
         }},
        {"Seq4+Repl",
         [] {
             std::vector<std::unique_ptr<core::CorrelationPrefetcher>>
                 parts;
             parts.push_back(
                 std::make_unique<core::SeqPrefetcher>(seqParams(4)));
             parts.push_back(
                 std::make_unique<core::ReplicatedPrefetcher>(
                     bigTable()));
             return std::make_unique<core::CompositePrefetcher>(
                 std::move(parts));
         }},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    const auto algos = algorithms();
    // accuracy[level][algo] per app, then averaged.
    std::map<std::string, std::vector<double>> acc[3];

    std::vector<std::string> headers = {"Appl"};
    for (const auto &[name, maker] : algos)
        headers.push_back(name);

    driver::TextTable tables[3] = {driver::TextTable(headers),
                                   driver::TextTable(headers),
                                   driver::TextTable(headers)};

    for (const std::string &app : workloads::applicationNames()) {
        const std::vector<sim::Addr> stream =
            driver::captureMissStream(app, opt);
        std::vector<std::string> row[3] = {{app}, {app}, {app}};
        for (const auto &[name, maker] : algos) {
            auto algo = maker();
            const core::PredictabilityResult res =
                core::evaluatePredictability(*algo, stream, 3);
            for (int lvl = 0; lvl < 3; ++lvl) {
                // Base predicts one level only.
                const bool applicable =
                    lvl < static_cast<int>(res.accuracy.size()) &&
                    static_cast<std::uint32_t>(lvl) <
                        std::min<std::uint32_t>(algo->levels(), 3);
                const double a =
                    applicable ? res.accuracy[
                                     static_cast<std::size_t>(lvl)]
                               : 0.0;
                row[lvl].push_back(applicable
                                       ? driver::fmtPercent(a)
                                       : std::string("n/a"));
                if (applicable)
                    acc[lvl][name].push_back(a);
            }
        }
        for (int lvl = 0; lvl < 3; ++lvl)
            tables[lvl].addRow(row[lvl]);
    }

    for (int lvl = 0; lvl < 3; ++lvl) {
        std::vector<std::string> avg_row = {"Average"};
        for (const auto &[name, maker] : algos) {
            const auto &v = acc[lvl][name];
            avg_row.push_back(v.empty()
                                  ? std::string("n/a")
                                  : driver::fmtPercent(
                                        driver::mean(v)));
        }
        tables[lvl].addRow(avg_row);
        tables[lvl].print(
            sim::strformat("Figure 5: %% of L2 misses correctly "
                           "predicted, level %d", lvl + 1));
    }
    return 0;
}
