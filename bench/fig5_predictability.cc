/**
 * @file
 * Figure 5: fraction of L2 cache misses correctly predicted by the
 * different algorithms at successor levels 1-3.
 *
 * Each algorithm simply observes the NoPref demand-miss stream of each
 * application without prefetching.  The pair-based schemes use large
 * tables so that no prediction is lost to conflicts (NumRows=256K,
 * Assoc=4, NumSucc=4); under these conditions Chain and Repl are
 * equivalent to Base at level 1.
 *
 * The miss streams are captured in parallel (one NoPref simulation per
 * application), then every (application, algorithm) replay runs as an
 * independent chunk writing into its own slot.
 *
 * Usage: fig5_predictability [scale] [--jobs=N]
 */

#include <cstdio>
#include <functional>
#include <map>

#include "bench/harness.hh"
#include "core/base_chain.hh"
#include "core/composite.hh"
#include "core/predictability.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

core::CorrelationParams
bigTable()
{
    core::CorrelationParams p;
    p.numRows = 256 * 1024;
    p.assoc = 4;
    p.numSucc = 4;
    p.numLevels = 3;
    return p;
}

core::SeqParams
seqParams(std::uint32_t streams)
{
    core::SeqParams p;
    p.numSeq = streams;
    p.numPref = 6;
    p.lineBytes = 64;
    return p;
}

using Maker =
    std::function<std::unique_ptr<core::CorrelationPrefetcher>()>;

std::vector<std::pair<std::string, Maker>>
algorithms()
{
    return {
        {"Seq1",
         [] { return std::make_unique<core::SeqPrefetcher>(
                  seqParams(1)); }},
        {"Seq4",
         [] { return std::make_unique<core::SeqPrefetcher>(
                  seqParams(4)); }},
        {"Base",
         [] { return std::make_unique<core::BasePrefetcher>(
                  bigTable()); }},
        {"Chain",
         [] { return std::make_unique<core::ChainPrefetcher>(
                  bigTable()); }},
        {"Repl",
         [] { return std::make_unique<core::ReplicatedPrefetcher>(
                  bigTable()); }},
        {"Seq4+Base",
         [] {
             std::vector<std::unique_ptr<core::CorrelationPrefetcher>>
                 parts;
             parts.push_back(
                 std::make_unique<core::SeqPrefetcher>(seqParams(4)));
             parts.push_back(
                 std::make_unique<core::BasePrefetcher>(bigTable()));
             return std::make_unique<core::CompositePrefetcher>(
                 std::move(parts));
         }},
        {"Seq4+Repl",
         [] {
             std::vector<std::unique_ptr<core::CorrelationPrefetcher>>
                 parts;
             parts.push_back(
                 std::make_unique<core::SeqPrefetcher>(seqParams(4)));
             parts.push_back(
                 std::make_unique<core::ReplicatedPrefetcher>(
                     bigTable()));
             return std::make_unique<core::CompositePrefetcher>(
                 std::move(parts));
         }},
    };
}

struct Cell
{
    bool applicable[3] = {false, false, false};
    double accuracy[3] = {0.0, 0.0, 0.0};
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig5_predictability", bopt);

    const auto algos = algorithms();
    const std::vector<std::string> apps =
        workloads::applicationNames();

    const std::vector<driver::RunResult> captures =
        driver::captureMissStreamRuns(apps, opt);
    harness.recordAll(captures);

    // One chunk per (application, algorithm) replay; each writes its
    // own Cell, so the chunks are fully independent.
    std::vector<Cell> cells(apps.size() * algos.size());
    std::vector<std::function<void()>> chunks;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        for (std::size_t gi = 0; gi < algos.size(); ++gi) {
            chunks.push_back([&, ai, gi] {
                auto algo = algos[gi].second();
                const core::PredictabilityResult res =
                    core::evaluatePredictability(
                        *algo, captures[ai].missStream, 3);
                Cell &cell = cells[ai * algos.size() + gi];
                for (int lvl = 0; lvl < 3; ++lvl) {
                    // Base predicts one level only.
                    const bool applicable =
                        lvl < static_cast<int>(res.accuracy.size()) &&
                        static_cast<std::uint32_t>(lvl) <
                            std::min<std::uint32_t>(algo->levels(), 3);
                    cell.applicable[lvl] = applicable;
                    if (applicable)
                        cell.accuracy[lvl] = res.accuracy[
                            static_cast<std::size_t>(lvl)];
                }
            });
        }
    }
    driver::parallelInvoke(chunks);

    // accuracy[level][algo] per app, then averaged.
    std::map<std::string, std::vector<double>> acc[3];

    std::vector<std::string> headers = {"Appl"};
    for (const auto &[name, maker] : algos)
        headers.push_back(name);

    driver::TextTable tables[3] = {driver::TextTable(headers),
                                   driver::TextTable(headers),
                                   driver::TextTable(headers)};

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        std::vector<std::string> row[3] = {
            {apps[ai]}, {apps[ai]}, {apps[ai]}};
        for (std::size_t gi = 0; gi < algos.size(); ++gi) {
            const Cell &cell = cells[ai * algos.size() + gi];
            for (int lvl = 0; lvl < 3; ++lvl) {
                row[lvl].push_back(
                    cell.applicable[lvl]
                        ? driver::fmtPercent(cell.accuracy[lvl])
                        : std::string("n/a"));
                if (cell.applicable[lvl])
                    acc[lvl][algos[gi].first].push_back(
                        cell.accuracy[lvl]);
            }
        }
        for (int lvl = 0; lvl < 3; ++lvl)
            tables[lvl].addRow(row[lvl]);
    }

    for (int lvl = 0; lvl < 3; ++lvl) {
        std::vector<std::string> avg_row = {"Average"};
        for (const auto &[name, maker] : algos) {
            const auto &v = acc[lvl][name];
            const bool have = !v.empty();
            avg_row.push_back(have ? driver::fmtPercent(
                                         driver::mean(v))
                                   : std::string("n/a"));
            if (have)
                harness.metric(
                    sim::strformat("avg_accuracy_%s_level%d",
                                   name.c_str(), lvl + 1),
                    driver::mean(v));
        }
        tables[lvl].addRow(avg_row);
        tables[lvl].print(
            sim::strformat("Figure 5: %% of L2 misses correctly "
                           "predicted, level %d", lvl + 1));
    }
    harness.writeJson();
    return 0;
}
