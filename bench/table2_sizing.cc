/**
 * @file
 * Table 2: per-application correlation-table sizing.
 *
 * For each application, reports the NumRows used (the paper sizes
 * NumRows as the lowest power of two keeping insertion replacements
 * under 5% with the trivial low-bits hash) and the resulting table
 * sizes for Base (20 B/row), Chain (12 B/row) and Repl (28 B/row) --
 * plus this repo's measured replacement rate at that NumRows, obtained
 * by replaying the application's NoPref miss stream into each table.
 */

#include <cstdio>

#include "core/base_chain.hh"
#include "core/replicated.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

double
replacementRate(core::CorrelationPrefetcher &algo,
                const std::vector<sim::Addr> &stream)
{
    core::NullCostTracker cost;
    std::vector<sim::Addr> discard;
    for (sim::Addr miss : stream) {
        discard.clear();
        algo.prefetchStep(miss, discard, cost);
        algo.learnStep(miss, cost);
    }
    return algo.insertions()
               ? static_cast<double>(algo.replacements()) /
                     static_cast<double>(algo.insertions())
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    driver::TextTable table({"Appl", "NumRows(K)", "Base(MB)",
                             "Chain(MB)", "Repl(MB)", "repl-rate"});

    double sum_rows = 0, sum_base = 0, sum_chain = 0, sum_repl = 0;
    const auto &apps = workloads::applicationNames();
    for (const std::string &app : apps) {
        const std::uint32_t rows = workloads::tableNumRows(app);
        const std::vector<sim::Addr> stream =
            driver::captureMissStream(app, opt);

        core::BasePrefetcher base(core::baseDefaults(rows));
        core::ChainPrefetcher chain(core::chainReplDefaults(rows));
        core::ReplicatedPrefetcher repl(core::chainReplDefaults(rows));
        const double rate = replacementRate(base, stream);
        replacementRate(chain, stream);
        replacementRate(repl, stream);

        const double mb = 1024.0 * 1024.0;
        const double base_mb =
            static_cast<double>(base.tableBytes()) / mb;
        const double chain_mb =
            static_cast<double>(chain.tableBytes()) / mb;
        const double repl_mb =
            static_cast<double>(repl.tableBytes()) / mb;
        sum_rows += rows / 1024.0;
        sum_base += base_mb;
        sum_chain += chain_mb;
        sum_repl += repl_mb;

        table.addRow({app, driver::fmt(rows / 1024.0, 0),
                      driver::fmt(base_mb, 1),
                      driver::fmt(chain_mb, 1),
                      driver::fmt(repl_mb, 1),
                      driver::fmtPercent(rate)});
    }
    const double n = static_cast<double>(apps.size());
    table.addRow({"Average", driver::fmt(sum_rows / n, 0),
                  driver::fmt(sum_base / n, 1),
                  driver::fmt(sum_chain / n, 1),
                  driver::fmt(sum_repl / n, 1), "-"});

    table.print("Table 2: correlation table sizes");
    return 0;
}
