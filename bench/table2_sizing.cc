/**
 * @file
 * Table 2: per-application correlation-table sizing.
 *
 * For each application, reports the NumRows used (the paper sizes
 * NumRows as the lowest power of two keeping insertion replacements
 * under 5% with the trivial low-bits hash) and the resulting table
 * sizes for Base (20 B/row), Chain (12 B/row) and Repl (28 B/row) --
 * plus this repo's measured replacement rate at that NumRows, obtained
 * by replaying the application's NoPref miss stream into each table.
 *
 * Miss-stream capture and the per-application replays both run through
 * the parallel runner.
 *
 * Usage: table2_sizing [scale] [--jobs=N]
 */

#include <cstdio>
#include <functional>

#include "bench/harness.hh"
#include "core/base_chain.hh"
#include "core/replicated.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

double
replacementRate(core::CorrelationPrefetcher &algo,
                const std::vector<sim::Addr> &stream)
{
    core::NullCostTracker cost;
    std::vector<sim::Addr> discard;
    for (sim::Addr miss : stream) {
        discard.clear();
        algo.prefetchStep(miss, discard, cost);
        algo.learnStep(miss, cost);
    }
    return algo.insertions()
               ? static_cast<double>(algo.replacements()) /
                     static_cast<double>(algo.insertions())
               : 0.0;
}

struct Sizing
{
    double base_mb = 0, chain_mb = 0, repl_mb = 0, rate = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("table2_sizing", bopt);

    const std::vector<std::string> apps =
        workloads::applicationNames();
    const std::vector<driver::RunResult> captures =
        driver::captureMissStreamRuns(apps, opt);
    harness.recordAll(captures);

    // One replay chunk per application, each writing its own slot.
    std::vector<Sizing> sizing(apps.size());
    std::vector<std::function<void()>> chunks;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        chunks.push_back([&, ai] {
            const std::uint32_t rows =
                workloads::tableNumRows(apps[ai]);
            const std::vector<sim::Addr> &stream =
                captures[ai].missStream;

            core::BasePrefetcher base(core::baseDefaults(rows));
            core::ChainPrefetcher chain(
                core::chainReplDefaults(rows));
            core::ReplicatedPrefetcher repl(
                core::chainReplDefaults(rows));
            Sizing &s = sizing[ai];
            s.rate = replacementRate(base, stream);
            replacementRate(chain, stream);
            replacementRate(repl, stream);

            const double mb = 1024.0 * 1024.0;
            s.base_mb = static_cast<double>(base.tableBytes()) / mb;
            s.chain_mb = static_cast<double>(chain.tableBytes()) / mb;
            s.repl_mb = static_cast<double>(repl.tableBytes()) / mb;
        });
    }
    driver::parallelInvoke(chunks);

    driver::TextTable table({"Appl", "NumRows(K)", "Base(MB)",
                             "Chain(MB)", "Repl(MB)", "repl-rate"});
    double sum_rows = 0, sum_base = 0, sum_chain = 0, sum_repl = 0;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const std::uint32_t rows = workloads::tableNumRows(apps[ai]);
        const Sizing &s = sizing[ai];
        sum_rows += rows / 1024.0;
        sum_base += s.base_mb;
        sum_chain += s.chain_mb;
        sum_repl += s.repl_mb;
        table.addRow({apps[ai], driver::fmt(rows / 1024.0, 0),
                      driver::fmt(s.base_mb, 1),
                      driver::fmt(s.chain_mb, 1),
                      driver::fmt(s.repl_mb, 1),
                      driver::fmtPercent(s.rate)});
        harness.metric("repl_rate_" + apps[ai], s.rate);
    }
    const double n = static_cast<double>(apps.size());
    table.addRow({"Average", driver::fmt(sum_rows / n, 0),
                  driver::fmt(sum_base / n, 1),
                  driver::fmt(sum_chain / n, 1),
                  driver::fmt(sum_repl / n, 1), "-"});

    table.print("Table 2: correlation table sizes");
    harness.metric("avg_base_mb", sum_base / n);
    harness.metric("avg_chain_mb", sum_chain / n);
    harness.metric("avg_repl_mb", sum_repl / n);
    harness.writeJson();
    return 0;
}
