/**
 * @file
 * VM churn sweep: correlation survival under page-remap pressure.
 *
 * Every machine runs with the VM layer on (workloads issue virtual
 * addresses, the correlation table observes physical ones) while the
 * remap rate sweeps {0, 20, 100, 500} 4 KB-page remaps per million
 * cycles and the page size sweeps {4 KB, 2 MB}.  Page sizes are
 * compared at equal migration *bandwidth* -- a 2 MB migration moves
 * 512x the bytes of a 4 KB one, so its event rate is scaled down by
 * the same factor (an OS pays for migration per byte, not per page).  A remap migrates the hottest
 * page to a fresh physical frame: the prefetcher's rows for the moved
 * page are rewritten in place, but every OTHER row whose successors
 * point into the old frame goes stale, so coverage decays as the
 * churn rate rises.  2 MB pages keep more correlated pairs inside one
 * frame (and fewer pushes die on the page-cross drop), so part of the
 * loss comes back -- the huge-page half of the sweep quantifies how
 * much.
 *
 * Usage: vm_churn [scale] [--jobs=N] [--apps=A,B,...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

/** Machine-wide push-prefetch page-cross drops. */
std::uint64_t
pageCrossDrops(const driver::RunResult &r)
{
    std::uint64_t total = 0;
    for (const mem::AuditCoreReport &c : r.audit.cores)
        total += c.push.droppedPageCross;
    return total;
}

double
tlbMissRate(const driver::RunResult &r)
{
    const std::uint64_t accesses = r.vmTlbHits + r.vmTlbMisses;
    return accesses ? double(r.vmTlbMisses) / double(accesses) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.25);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("vm_churn", bopt);

    // MST is the paper's strongest correlation workload, so its
    // coverage is the most sensitive to table staleness.
    const std::vector<std::string> apps =
        bopt.apps.empty() ? std::vector<std::string>{"MST"}
                          : bopt.apps;
    const std::vector<core::UlmtAlgo> algos = {core::UlmtAlgo::Base,
                                               core::UlmtAlgo::Chain,
                                               core::UlmtAlgo::Repl};
    const std::vector<double> rates = {0.0, 20.0, 100.0, 500.0};
    const std::vector<std::uint32_t> pageSizes = {4096u,
                                                  2u * 1024 * 1024};

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        for (core::UlmtAlgo algo : algos) {
            for (std::uint32_t page : pageSizes) {
                for (double rate : rates) {
                    driver::SystemConfig cfg =
                        driver::ulmtConfig(opt, algo, app);
                    cfg.vm.enabled = true;
                    cfg.vm.pageBytes = page;
                    // Compare page sizes at equal *migration
                    // bandwidth*: the sweep rate is expressed in
                    // 4 KB-page remaps per Mcycle, and a 2 MB
                    // migration moves 512x the bytes, so its event
                    // rate scales down to keep bytes/cycle matched.
                    // At equal event rates a huge-page machine would
                    // do nothing but relocate.
                    cfg.vm.remapRate = rate * 4096.0 / page;
                    cfg.label = core::to_string(algo) + "/" +
                                vm::pageSizeName(page) + "/r" +
                                std::to_string(
                                    (unsigned long long)rate);
                    jobs.push_back({app, std::move(cfg), opt});
                }
            }
        }
    }

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Algo", "Page", "Rate/Mc",
                             "Coverage", "Accuracy", "Remaps",
                             "TLB miss", "PF page-cross"});
    std::size_t idx = 0;
    for (const std::string &app : apps) {
        for (core::UlmtAlgo algo : algos) {
            for (std::uint32_t page : pageSizes) {
                for (double rate : rates) {
                    const driver::RunResult &r = results[idx++];
                    const mem::AuditCoreReport &cr = r.audit.cores[0];
                    const std::string page_s = vm::pageSizeName(page);
                    table.addRow(
                        {app, core::to_string(algo), page_s,
                         std::to_string((unsigned long long)rate),
                         driver::fmt(cr.coverage),
                         driver::fmt(cr.accuracy),
                         std::to_string(r.vmRemaps),
                         driver::fmt(tlbMissRate(r)),
                         std::to_string(pageCrossDrops(r))});
                    const std::string key =
                        app + "_" + core::to_string(algo) + "_" +
                        page_s + "_r" +
                        std::to_string((unsigned long long)rate);
                    harness.metric("coverage_" + key, cr.coverage);
                    harness.metric("accuracy_" + key, cr.accuracy);
                    harness.metric("remaps_" + key,
                                   double(r.vmRemaps));
                    harness.metric("tlb_miss_rate_" + key,
                                   tlbMissRate(r));
                    harness.metric("pf_page_cross_" + key,
                                   double(pageCrossDrops(r)));
                }
            }
        }
    }
    table.print("VM churn: remap rate x page size "
                "(correlation survival)");
    harness.writeJson();
    return 0;
}
