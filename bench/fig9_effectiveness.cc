/**
 * @file
 * Figure 9: breakdown of L2 misses and ULMT-pushed prefetches,
 * normalized to the application's original (NoPref) L2 miss count.
 *
 *   Hits          prefetches that eliminated an L2 miss
 *   DelayedHits   prefetches that arrived a bit late (partial save)
 *   NonPrefMisses misses that paid full latency (plus processor-side
 *                 prefetch requests that reached memory, as the paper
 *                 lumps them here)
 *   Replaced      pushed lines evicted before any reference
 *   Redundant     pushed lines dropped on arrival at the L2
 *
 * Reported for Sparse, Tree, and the average of the other seven
 * applications, for Base, Chain, Repl, Conven4+Repl, Conven4+ReplMC.
 *
 * Usage: fig9_effectiveness [scale] [--jobs=N] [--apps=A,B,...]
 *
 * --apps accepts any mix of application names and trace:<path>
 * corpora (captured with tools/ulmt-trace or converted from external
 * access traces), so recorded miss streams run through the same
 * effectiveness breakdown as the synthetic kernels.
 */

#include <cstdio>
#include <map>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

struct Breakdown
{
    double hits = 0, delayed = 0, nonpref = 0, replaced = 0,
           redundant = 0;
    /** The same outcomes in the audit layer's lifecycle taxonomy
     *  (ISSUE 8): useful_timely == Hits and useful_late ==
     *  DelayedHits by construction, so legacy coverage() equals
     *  useful_timely + useful_late (test_audit checks the identity on
     *  raw counters; the bench reports both views side by side). */
    double useful_timely = 0, useful_late = 0, dropped = 0;

    double coverage() const { return hits + delayed; }

    Breakdown &
    operator+=(const Breakdown &o)
    {
        hits += o.hits;
        delayed += o.delayed;
        nonpref += o.nonpref;
        replaced += o.replaced;
        redundant += o.redundant;
        useful_timely += o.useful_timely;
        useful_late += o.useful_late;
        dropped += o.dropped;
        return *this;
    }

    Breakdown &
    operator/=(double d)
    {
        hits /= d;
        delayed /= d;
        nonpref /= d;
        replaced /= d;
        redundant /= d;
        useful_timely /= d;
        useful_late /= d;
        dropped /= d;
        return *this;
    }
};

Breakdown
breakdown(const driver::RunResult &r, const driver::RunResult &base)
{
    const double orig = static_cast<double>(base.hier.l2Misses);
    Breakdown b;
    b.hits = static_cast<double>(r.hier.ulmtHits) / orig;
    b.delayed = static_cast<double>(r.hier.ulmtDelayedHits) / orig;
    b.nonpref = static_cast<double>(r.hier.nonPrefMisses +
                                    r.hier.cpuPfToMemory) /
                orig;
    b.replaced = static_cast<double>(r.hier.ulmtReplaced) / orig;
    b.redundant = static_cast<double>(r.hier.pushRedundant()) / orig;
    if (r.audit.enabled && !r.audit.cores.empty()) {
        mem::AuditOutcomeCounts c;
        for (const auto &cr : r.audit.cores) {
            c.usefulTimely += cr.push.usefulTimely;
            c.usefulLate += cr.push.usefulLate;
            c.droppedFilter += cr.push.droppedFilter;
            c.droppedQueueFull += cr.push.droppedQueueFull;
            c.droppedDemandMatch += cr.push.droppedDemandMatch;
            c.droppedCpuPfMatch += cr.push.droppedCpuPfMatch;
        }
        b.useful_timely = static_cast<double>(c.usefulTimely) / orig;
        b.useful_late = static_cast<double>(c.usefulLate) / orig;
        b.dropped = static_cast<double>(
                        c.droppedFilter + c.droppedQueueFull +
                        c.droppedDemandMatch + c.droppedCpuPfMatch) /
                    orig;
    }
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig9_effectiveness", bopt);

    const std::vector<std::string> configs = {
        "Base", "Chain", "Repl", "Conven4+Repl", "Conven4+ReplMC"};

    const auto &apps = bopt.appList();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        for (const std::string &name : configs) {
            driver::ExperimentOptions o = opt;
            driver::SystemConfig cfg;
            if (name == "Base") {
                cfg = driver::ulmtConfig(o, core::UlmtAlgo::Base, app);
            } else if (name == "Chain") {
                cfg = driver::ulmtConfig(o, core::UlmtAlgo::Chain, app);
            } else if (name == "Repl") {
                cfg = driver::ulmtConfig(o, core::UlmtAlgo::Repl, app);
            } else if (name == "Conven4+Repl") {
                cfg = driver::conven4PlusUlmtConfig(
                    o, core::UlmtAlgo::Repl, app);
            } else {
                o.placement = mem::MemProcPlacement::NorthBridge;
                cfg = driver::conven4PlusUlmtConfig(
                    o, core::UlmtAlgo::Repl, app);
                cfg.label = "Conven4+ReplMC";
            }
            jobs.push_back({app, std::move(cfg), o});
        }
    }
    const std::size_t per_app = 1 + configs.size();

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    // group -> config -> accumulated breakdown
    std::map<std::string, std::map<std::string, Breakdown>> groups;
    int others = 0;

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const std::string &app = apps[ai];
        const driver::RunResult &base = results[ai * per_app];
        const std::string group =
            (app == "Sparse" || app == "Tree") ? app : "Other7";
        if (group == "Other7")
            ++others;
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            const driver::RunResult &r =
                results[ai * per_app + 1 + ci];
            groups[group][configs[ci]] += breakdown(r, base);
        }
    }
    for (auto &[name, b] : groups["Other7"])
        b /= static_cast<double>(others);

    driver::TextTable table({"Group", "Config", "Hits", "DelayedHits",
                             "NonPrefMisses", "Replaced", "Redundant",
                             "Dropped", "Coverage"});
    for (const char *group_name : {"Sparse", "Tree", "Other7"}) {
        const std::string group(group_name);
        for (const std::string &name : configs) {
            const Breakdown &b = groups[group][name];
            table.addRow({group, name, driver::fmt(b.hits),
                          driver::fmt(b.delayed),
                          driver::fmt(b.nonpref),
                          driver::fmt(b.replaced),
                          driver::fmt(b.redundant),
                          driver::fmt(b.dropped),
                          driver::fmt(b.coverage())});
            harness.metric("coverage_" + group + "_" + name,
                           b.coverage());
            // The lifecycle-taxonomy view of the same runs; with
            // auditing on, useful_timely + useful_late must equal the
            // legacy coverage metric above.
            harness.metric("useful_timely_" + group + "_" + name,
                           b.useful_timely);
            harness.metric("useful_late_" + group + "_" + name,
                           b.useful_late);
            harness.metric("dropped_" + group + "_" + name, b.dropped);
        }
    }
    table.print("Figure 9: L2 miss + prefetch breakdown "
                "(normalized to original misses)");
    harness.writeJson();
    return 0;
}
