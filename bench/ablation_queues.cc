/**
 * @file
 * Ablation: depth of the observation/prefetch queues (Fig. 3's
 * queues, all 16 deep in the paper).
 *
 * A shallow queue 2 drops observed misses when the ULMT falls behind
 * (lost learning + lost prefetch opportunities); a shallow queue 3
 * throttles prefetches in flight.  The sweep shows how deep the
 * queues must be before the ULMT stops losing work.
 *
 * Usage: ablation_queues [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

    const std::vector<std::string> apps = {"Mcf", "Sparse", "Gap"};
    driver::TextTable table({"Appl", "Depth", "Speedup",
                             "Obs dropped", "PF dropped (q3)"});

    for (const std::string &app : apps) {
        const driver::RunResult base =
            driver::runOne(app, driver::noPrefConfig(opt), opt);
        for (std::uint32_t depth : {2u, 4u, 8u, 16u, 64u}) {
            driver::SystemConfig cfg =
                driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app);
            cfg.timing.queueDepth = depth;
            const driver::RunResult r = driver::runOne(app, cfg, opt);
            table.addRow(
                {app, std::to_string(depth),
                 driver::fmt(r.speedup(base)),
                 std::to_string(r.ulmt.missesDroppedQueueFull),
                 std::to_string(
                     r.memsys.ulmtPrefetchesDroppedQueueFull)});
        }
    }
    table.print("Ablation: queue depth sweep (Repl)");
    return 0;
}
