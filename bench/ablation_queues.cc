/**
 * @file
 * Ablation: depth of the observation/prefetch queues (Fig. 3's
 * queues, all 16 deep in the paper).
 *
 * A shallow queue 2 drops observed misses when the ULMT falls behind
 * (lost learning + lost prefetch opportunities); a shallow queue 3
 * throttles prefetches in flight.  The sweep shows how deep the
 * queues must be before the ULMT stops losing work.
 *
 * Usage: ablation_queues [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.5);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("ablation_queues", bopt);

    const std::vector<std::string> apps = {"Mcf", "Sparse", "Gap"};
    const std::vector<std::uint32_t> depths = {2, 4, 8, 16, 64};

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        for (std::uint32_t depth : depths) {
            driver::SystemConfig cfg =
                driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app);
            cfg.timing.queueDepth = depth;
            jobs.push_back({app, std::move(cfg), opt});
        }
    }
    const std::size_t per_app = 1 + depths.size();

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Depth", "Speedup",
                             "Obs dropped", "PF dropped (q3)"});
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const driver::RunResult &base = results[ai * per_app];
        for (std::size_t di = 0; di < depths.size(); ++di) {
            const driver::RunResult &r =
                results[ai * per_app + 1 + di];
            table.addRow(
                {apps[ai], std::to_string(depths[di]),
                 driver::fmt(r.speedup(base)),
                 std::to_string(r.ulmt.missesDroppedQueueFull),
                 std::to_string(
                     r.memsys.ulmtPrefetchesDroppedQueueFull)});
            harness.metric(sim::strformat("speedup_%s_depth%u",
                                          apps[ai].c_str(),
                                          depths[di]),
                           r.speedup(base));
        }
    }
    table.print("Ablation: queue depth sweep (Repl)");
    harness.writeJson();
    return 0;
}
