/**
 * @file
 * Table-cache sweep: ULMT service latency vs MSCache geometry.
 *
 * Every machine runs the Replicated prefetcher single-core while the
 * memory-side table cache sweeps {off, 256, 1024, 4096} entries x
 * {4, 8} ways.  The correlation table lives in DRAM, so each miss the
 * memory thread serves pays a row of table reads before the first
 * prefetch goes out (that latency is the response time) and more for
 * the Learning update (occupancy time).  An SRAM cache in front of
 * that traffic converts repeat-row touches into tableCacheHitCycles
 * hits and retires the displaced dirty lines in row-batched bursts,
 * so the figure to look for is the ULMT mean response and occupancy
 * times bending down as the cache grows -- the off column reproduces
 * the pre-MSCache machine bit-identically.
 *
 * Usage: table_cache [scale] [--jobs=N] [--apps=A,B,...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

/** One swept cache geometry; entries 0 = cache off. */
struct Geometry
{
    std::uint32_t entries;
    std::uint32_t assoc;

    std::string
    key() const
    {
        return entries == 0 ? "e0"
                            : "e" + std::to_string(entries) + "_a" +
                                  std::to_string(assoc);
    }
};

double
hitRate(const driver::RunResult &r)
{
    const std::uint64_t total = r.tcache.hits + r.tcache.misses;
    return total ? double(r.tcache.hits) / double(total) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.25);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("table_cache", bopt);

    // Pointer-chasing workloads with large correlation tables: their
    // table rows are re-touched often enough for locality to matter.
    const std::vector<std::string> apps =
        bopt.apps.empty()
            ? std::vector<std::string>{"MST", "Tree", "Sparse"}
            : bopt.apps;
    const std::vector<Geometry> geometries = {
        {0, 4},    {256, 4},  {256, 8},  {1024, 4},
        {1024, 8}, {4096, 4}, {4096, 8},
    };

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        for (const Geometry &g : geometries) {
            driver::SystemConfig cfg =
                driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app);
            cfg.tableCache.entries = g.entries;
            cfg.tableCache.assoc = g.assoc;
            cfg.label = "Repl/tc-" + g.key();
            jobs.push_back({app, std::move(cfg), opt});
        }
    }

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Entries", "Ways", "Resp mean",
                             "Occ mean", "Hit rate", "Table DRAM",
                             "Batched WB"});
    std::size_t idx = 0;
    for (const std::string &app : apps) {
        for (const Geometry &g : geometries) {
            const driver::RunResult &r = results[idx++];
            // The off machine's table traffic all goes to DRAM; count
            // it from the memory system's request counters so the
            // DRAM column stays comparable across the sweep.
            const std::uint64_t dram_accesses =
                r.tcacheOn ? r.tcache.dramAccesses
                           : r.memsys.tableReads + r.memsys.tableWrites;
            table.addRow(
                {app, std::to_string(g.entries),
                 g.entries ? std::to_string(g.assoc) : std::string("-"),
                 driver::fmt(r.ulmt.responseTime.mean()),
                 driver::fmt(r.ulmt.occupancyTime.mean()),
                 g.entries ? driver::fmt(hitRate(r)) : std::string("-"),
                 std::to_string(dram_accesses),
                 std::to_string(r.tcache.rowBatchedWritebacks)});
            const std::string key = app + "_" + g.key();
            harness.metric("response_mean_" + key,
                           r.ulmt.responseTime.mean());
            harness.metric("occupancy_mean_" + key,
                           r.ulmt.occupancyTime.mean());
            harness.metric("table_dram_accesses_" + key,
                           double(dram_accesses));
            if (g.entries) {
                harness.metric("hit_rate_" + key, hitRate(r));
                harness.metric("row_batched_wb_" + key,
                               double(r.tcache.rowBatchedWritebacks));
            }
        }
    }
    table.print("Table cache: ULMT service latency vs geometry");
    harness.writeJson();
    return 0;
}
