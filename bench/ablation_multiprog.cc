/**
 * @file
 * Ablation: table interference in a multiprogrammed environment
 * (Section 3.4).
 *
 * The paper recommends one ULMT (with its own table) per application
 * rather than a single shared table.  This bench quantifies why: two
 * applications are timesliced on the main processor while one shared
 * correlation table serves both, and the prefetch coverage is compared
 * with each application running solo on the same table size.  The
 * shared table loses coverage to inter-application row conflicts; a
 * doubled table (a proxy for per-application tables) restores it.
 *
 * The four runs are independent simulations, so they go through the
 * generic task interface of the parallel runner.
 *
 * Usage: ablation_multiprog [scale] [--jobs=N]
 */

#include <cstdio>
#include <functional>

#include "bench/harness.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/system.hh"
#include "workloads/interleaved.hh"

namespace {

struct Coverage
{
    double covered;  //!< (hits + delayed) / demand misses
    std::uint64_t misses;
};

Coverage
coverageOf(const driver::RunResult &r)
{
    const double misses = static_cast<double>(
        r.hier.ulmtHits + r.hier.ulmtDelayedHits +
        r.hier.nonPrefMisses);
    return {misses > 0 ? (static_cast<double>(r.hier.ulmtHits) +
                          static_cast<double>(r.hier.ulmtDelayedHits)) /
                             misses
                       : 0.0,
            r.hier.l2Misses};
}

driver::RunResult
runSolo(const std::string &app, double scale, std::uint32_t rows)
{
    workloads::WorkloadParams wp;
    wp.scale = scale;
    auto wl = workloads::makeWorkload(app, wp);
    driver::SystemConfig cfg;
    cfg.ulmt.algo = core::UlmtAlgo::Repl;
    cfg.ulmt.numRows = rows;
    cfg.label = "Repl";
    driver::System sys(cfg, *wl);
    return sys.run();
}

driver::RunResult
runShared(const std::string &a, const std::string &b, double scale,
          std::uint32_t rows)
{
    workloads::WorkloadParams wp;
    wp.scale = scale;
    workloads::InterleavedWorkload both(
        workloads::makeWorkload(a, wp), workloads::makeWorkload(b, wp));
    driver::SystemConfig cfg;
    cfg.ulmt.algo = core::UlmtAlgo::Repl;
    cfg.ulmt.numRows = rows;
    cfg.label = "Repl(shared)";
    driver::System sys(cfg, both, both.name());
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.25);
    const double scale = bopt.scale;
    bench::Harness harness("ablation_multiprog", bopt);

    const std::string a = "Mcf", b = "Gap";
    const std::uint32_t rows = 32 * 1024;  // Mcf's Table 2 size

    const std::vector<std::function<driver::RunResult()>> tasks = {
        [&] { return runSolo(a, scale, rows); },
        [&] { return runSolo(b, scale, rows); },
        [&] { return runShared(a, b, scale, rows); },
        [&] { return runShared(a, b, scale, 2 * rows); },
    };
    const std::vector<driver::RunResult> results =
        driver::runTasks(tasks);
    harness.recordAll(results);

    const Coverage solo_a = coverageOf(results[0]);
    const Coverage solo_b = coverageOf(results[1]);
    const Coverage shared = coverageOf(results[2]);
    const Coverage doubled = coverageOf(results[3]);

    driver::TextTable table({"Configuration", "Coverage"});
    table.addRow({a + " solo, table " + std::to_string(rows / 1024) +
                      "K rows",
                  driver::fmtPercent(solo_a.covered)});
    table.addRow({b + " solo, table " + std::to_string(rows / 1024) +
                      "K rows",
                  driver::fmtPercent(solo_b.covered)});
    table.addRow({a + "|" + b + " shared table",
                  driver::fmtPercent(shared.covered)});
    table.addRow({a + "|" + b + " doubled table (~per-app tables)",
                  driver::fmtPercent(doubled.covered)});
    table.print("Ablation: shared vs per-application tables "
                "(Section 3.4)");

    harness.metric("coverage_solo_" + a, solo_a.covered);
    harness.metric("coverage_solo_" + b, solo_b.covered);
    harness.metric("coverage_shared", shared.covered);
    harness.metric("coverage_doubled", doubled.covered);
    harness.writeJson();
    return 0;
}
