/**
 * @file
 * Figure 11: main memory bus utilization, averaged over the nine
 * applications, for NoPref, Conven4, Base, Chain, Repl, Conven4+Repl
 * and Conven4+ReplMC.
 *
 * The increase over NoPref is decomposed the way the paper does:
 * the part caused naturally by the reduced execution time (the same
 * demand traffic squeezed into fewer cycles) and the additional part
 * directly attributable to prefetch traffic.
 *
 * Usage: fig11_bus_util [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    struct Entry
    {
        std::string name;
        double util = 0, pf_util = 0;
        int n = 0;
    };
    std::vector<Entry> entries = {
        {"NoPref", 0, 0, 0},         {"Conven4", 0, 0, 0},
        {"Base", 0, 0, 0},           {"Chain", 0, 0, 0},
        {"Repl", 0, 0, 0},           {"Conven4+Repl", 0, 0, 0},
        {"Conven4+ReplMC", 0, 0, 0},
    };

    for (const std::string &app : workloads::applicationNames()) {
        for (Entry &e : entries) {
            driver::ExperimentOptions o = opt;
            driver::SystemConfig cfg;
            if (e.name == "NoPref") {
                cfg = driver::noPrefConfig(o);
            } else if (e.name == "Conven4") {
                cfg = driver::conven4Config(o);
            } else if (e.name == "Conven4+Repl") {
                cfg = driver::conven4PlusUlmtConfig(
                    o, core::UlmtAlgo::Repl, app);
            } else if (e.name == "Conven4+ReplMC") {
                o.placement = mem::MemProcPlacement::NorthBridge;
                cfg = driver::conven4PlusUlmtConfig(
                    o, core::UlmtAlgo::Repl, app);
            } else {
                cfg = driver::ulmtConfig(
                    o, core::parseUlmtAlgo(e.name), app);
            }
            const driver::RunResult r = driver::runOne(app, cfg, o);
            e.util += r.busUtilization();
            e.pf_util += r.busUtilizationPrefetch();
            ++e.n;
        }
    }

    driver::TextTable table({"Config", "Utilization",
                             "..from demand traffic",
                             "..from prefetch traffic"});
    for (const Entry &e : entries) {
        const double n = static_cast<double>(e.n);
        table.addRow({e.name, driver::fmtPercent(e.util / n),
                      driver::fmtPercent((e.util - e.pf_util) / n),
                      driver::fmtPercent(e.pf_util / n)});
    }
    table.print("Figure 11: main memory bus utilization "
                "(average over applications)");
    return 0;
}
