/**
 * @file
 * Figure 11: main memory bus utilization, averaged over the nine
 * applications, for NoPref, Conven4, Base, Chain, Repl, Conven4+Repl
 * and Conven4+ReplMC.
 *
 * The increase over NoPref is decomposed the way the paper does:
 * the part caused naturally by the reduced execution time (the same
 * demand traffic squeezed into fewer cycles) and the additional part
 * directly attributable to prefetch traffic.
 *
 * Usage: fig11_bus_util [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig11_bus_util", bopt);

    struct Entry
    {
        std::string name;
        double util = 0, pf_util = 0;
        int n = 0;
    };
    std::vector<Entry> entries = {
        {"NoPref", 0, 0, 0},         {"Conven4", 0, 0, 0},
        {"Base", 0, 0, 0},           {"Chain", 0, 0, 0},
        {"Repl", 0, 0, 0},           {"Conven4+Repl", 0, 0, 0},
        {"Conven4+ReplMC", 0, 0, 0},
    };

    const auto &apps = workloads::applicationNames();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        for (const Entry &e : entries) {
            driver::ExperimentOptions o = opt;
            driver::SystemConfig cfg;
            if (e.name == "NoPref") {
                cfg = driver::noPrefConfig(o);
            } else if (e.name == "Conven4") {
                cfg = driver::conven4Config(o);
            } else if (e.name == "Conven4+Repl") {
                cfg = driver::conven4PlusUlmtConfig(
                    o, core::UlmtAlgo::Repl, app);
            } else if (e.name == "Conven4+ReplMC") {
                o.placement = mem::MemProcPlacement::NorthBridge;
                cfg = driver::conven4PlusUlmtConfig(
                    o, core::UlmtAlgo::Repl, app);
            } else {
                cfg = driver::ulmtConfig(
                    o, core::parseUlmtAlgo(e.name), app);
            }
            jobs.push_back({app, std::move(cfg), o});
        }
    }
    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        for (std::size_t ei = 0; ei < entries.size(); ++ei) {
            const driver::RunResult &r =
                results[ai * entries.size() + ei];
            entries[ei].util += r.busUtilization();
            entries[ei].pf_util += r.busUtilizationPrefetch();
            ++entries[ei].n;
        }
    }

    driver::TextTable table({"Config", "Utilization",
                             "..from demand traffic",
                             "..from prefetch traffic"});
    for (const Entry &e : entries) {
        const double n = static_cast<double>(e.n);
        table.addRow({e.name, driver::fmtPercent(e.util / n),
                      driver::fmtPercent((e.util - e.pf_util) / n),
                      driver::fmtPercent(e.pf_util / n)});
        harness.metric("bus_util_" + e.name, e.util / n);
    }
    table.print("Figure 11: main memory bus utilization "
                "(average over applications)");
    harness.writeJson();
    return 0;
}
