/**
 * @file
 * Ablation: the conflict-elimination customization (Section 7).
 *
 * The paper closes by noting that "customization for cache conflict
 * elimination should improve Sparse and Tree, the applications with
 * the smallest speedups".  This bench runs the conflict-aware wrapper
 * (Repl+CA: Replicated with pushes into saturated L2 sets suppressed)
 * against plain Replicated on the conflict-limited applications and
 * on a well-behaved one (Mcf) to check it does no harm there.
 *
 * Usage: ablation_conflict [scale] [--jobs=N]
 */

#include <cstdio>
#include <cstdint>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("ablation_conflict", bopt);

    const std::vector<std::string> apps = {"Sparse", "Tree", "Mcf"};
    const std::vector<core::UlmtAlgo> algos = {core::UlmtAlgo::Repl,
                                               core::UlmtAlgo::ReplCA};

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        for (core::UlmtAlgo algo : algos) {
            jobs.push_back(
                {app,
                 driver::conven4PlusUlmtConfig(opt, algo, app), opt});
        }
    }
    const std::size_t per_app = 1 + algos.size();

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Config", "Speedup", "Hits",
                             "Replaced", "New conflict misses"});
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const driver::RunResult &base = results[ai * per_app];
        for (std::size_t ci = 0; ci < algos.size(); ++ci) {
            const driver::RunResult &r =
                results[ai * per_app + 1 + ci];
            const std::int64_t extra =
                static_cast<std::int64_t>(r.hier.nonPrefMisses +
                                          r.hier.ulmtHits +
                                          r.hier.ulmtDelayedHits) -
                static_cast<std::int64_t>(base.hier.l2Misses);
            table.addRow({apps[ai], r.label,
                          driver::fmt(r.speedup(base)),
                          std::to_string(r.hier.ulmtHits),
                          std::to_string(r.hier.ulmtReplaced),
                          std::to_string(extra)});
            harness.metric("speedup_" + apps[ai] + "_" + r.label,
                           r.speedup(base));
        }
    }
    table.print("Ablation: conflict-aware push suppression "
                "(Conven4 on)");
    harness.writeJson();
    return 0;
}
