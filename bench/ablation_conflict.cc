/**
 * @file
 * Ablation: the conflict-elimination customization (Section 7).
 *
 * The paper closes by noting that "customization for cache conflict
 * elimination should improve Sparse and Tree, the applications with
 * the smallest speedups".  This bench runs the conflict-aware wrapper
 * (Repl+CA: Replicated with pushes into saturated L2 sets suppressed)
 * against plain Replicated on the conflict-limited applications and
 * on a well-behaved one (Mcf) to check it does no harm there.
 *
 * Usage: ablation_conflict [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    driver::TextTable table({"Appl", "Config", "Speedup", "Hits",
                             "Replaced", "New conflict misses"});
    for (const char *app_name : {"Sparse", "Tree", "Mcf"}) {
        const std::string app(app_name);
        const driver::RunResult base =
            driver::runOne(app, driver::noPrefConfig(opt), opt);
        for (core::UlmtAlgo algo :
             {core::UlmtAlgo::Repl, core::UlmtAlgo::ReplCA}) {
            const driver::RunResult r = driver::runOne(
                app,
                driver::conven4PlusUlmtConfig(opt, algo, app), opt);
            const std::int64_t extra =
                static_cast<std::int64_t>(r.hier.nonPrefMisses +
                                          r.hier.ulmtHits +
                                          r.hier.ulmtDelayedHits) -
                static_cast<std::int64_t>(base.hier.l2Misses);
            table.addRow({app, r.label, driver::fmt(r.speedup(base)),
                          std::to_string(r.hier.ulmtHits),
                          std::to_string(r.hier.ulmtReplaced),
                          std::to_string(extra)});
        }
    }
    table.print("Ablation: conflict-aware push suppression "
                "(Conven4 on)");
    return 0;
}
