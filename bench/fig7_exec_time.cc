/**
 * @file
 * Figure 7: execution time of the applications under the different
 * prefetching algorithms, with the memory processor in the DRAM chip.
 *
 * For every application prints the normalized execution time (relative
 * to NoPref) decomposed into Busy / UptoL2 / BeyondL2, for NoPref,
 * Conven4, Base, Chain, Repl, Conven4+Repl and Custom (the Table 5
 * customizations for CG, MST and Mcf), then the average speedups the
 * paper headlines: Repl alone, Conven4+Repl, and with customization.
 *
 * Usage: fig7_exec_time [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig7_exec_time", bopt);

    const auto &apps = workloads::applicationNames();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        jobs.push_back({app, driver::conven4Config(opt), opt});
        jobs.push_back(
            {app, driver::ulmtConfig(opt, core::UlmtAlgo::Base, app),
             opt});
        jobs.push_back(
            {app, driver::ulmtConfig(opt, core::UlmtAlgo::Chain, app),
             opt});
        jobs.push_back(
            {app, driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app),
             opt});
        jobs.push_back({app,
                        driver::conven4PlusUlmtConfig(
                            opt, core::UlmtAlgo::Repl, app),
                        opt});
        bool customized = false;
        jobs.push_back(
            {app, driver::customConfig(opt, app, customized), opt});
    }
    const std::size_t per_app = jobs.size() / apps.size();

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Config", "Norm.time", "Busy",
                             "UptoL2", "BeyondL2", "Speedup"});

    std::vector<double> repl_sp, c4_sp, c4repl_sp, custom_sp, base_sp,
        chain_sp;

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const std::string &app = apps[ai];
        const driver::RunResult &base = results[ai * per_app];

        for (std::size_t i = 0; i < per_app; ++i) {
            const driver::RunResult &r = results[ai * per_app + i];
            const double denom = static_cast<double>(base.cycles);
            const double sp = r.speedup(base);
            table.addRow(
                {app, r.label, driver::fmt(r.normalizedTime(base)),
                 driver::fmt(static_cast<double>(r.busyCycles) / denom),
                 driver::fmt(static_cast<double>(r.uptoL2Stall) /
                             denom),
                 driver::fmt(static_cast<double>(r.beyondL2Stall) /
                             denom),
                 driver::fmt(sp)});
            if (r.label == "Conven4")
                c4_sp.push_back(sp);
            else if (r.label == "Base")
                base_sp.push_back(sp);
            else if (r.label == "Chain")
                chain_sp.push_back(sp);
            else if (r.label == "Repl")
                repl_sp.push_back(sp);
            else if (r.label == "Conven4+Repl")
                c4repl_sp.push_back(sp);
            else if (r.label == "Custom")
                custom_sp.push_back(sp);
        }
    }
    table.print("Figure 7: normalized execution time "
                "(memory processor in DRAM)");

    driver::TextTable avg({"Config", "Avg speedup", "Paper"});
    avg.addRow({"Conven4", driver::fmt(driver::mean(c4_sp)), "1.21"});
    avg.addRow({"Base", driver::fmt(driver::mean(base_sp)), "1.06"});
    avg.addRow({"Chain", driver::fmt(driver::mean(chain_sp)), "1.14"});
    avg.addRow({"Repl", driver::fmt(driver::mean(repl_sp)), "1.32"});
    avg.addRow({"Conven4+Repl", driver::fmt(driver::mean(c4repl_sp)),
                "1.46"});
    avg.addRow({"with Custom", driver::fmt(driver::mean(custom_sp)),
                "1.53"});
    avg.print("Figure 7: average speedups over NoPref");

    harness.metric("avg_speedup_conven4", driver::mean(c4_sp));
    harness.metric("avg_speedup_base", driver::mean(base_sp));
    harness.metric("avg_speedup_chain", driver::mean(chain_sp));
    harness.metric("avg_speedup_repl", driver::mean(repl_sp));
    harness.metric("avg_speedup_conven4_repl",
                   driver::mean(c4repl_sp));
    harness.metric("avg_speedup_custom", driver::mean(custom_sp));
    harness.writeJson();
    return 0;
}
