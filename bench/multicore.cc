/**
 * @file
 * Multicore sweep: cores x ULMT serving mode on three workloads.
 *
 * Every machine runs the Repl ULMT (the paper's best memory-side
 * algorithm) while the core count sweeps {1, 2, 4, 8} and the serving
 * mode sweeps {shared, percore, sharded}.  Core 0 always replays the
 * exact single-core trace; the other tenants run independently seeded
 * instances of the same kernel in private address slices, so the
 * headline number -- core 0's cycle count -- directly measures how
 * much the added tenants slow a fixed program down under each serving
 * discipline.  The per-tenant QoS columns (queue-1 wait, observations
 * dropped because one thread cannot keep up) show where the
 * contention lives: a single shared ULMT saturates first, per-core
 * threads do not contend for the thread but still share bus + DRAM,
 * and sharding keeps one thread but splits the table.
 *
 * Usage: multicore [scale] [--jobs=N] [--apps=A,B,...]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

double
qosWaitMean(const driver::RunResult &r)
{
    // Machine-wide mean queue-1 wait: merge the per-tenant samples.
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const mem::CoreQos &q : r.coreQos) {
        sum += q.q1Wait.sum();
        n += q.q1Wait.count();
    }
    return n ? sum / double(n) : 0.0;
}

/** Per-tenant ULMT prefetch service as a "min..max" range. */
std::string
pfSpread(const driver::RunResult &r)
{
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const mem::CoreQos &q : r.coreQos) {
        lo = std::min(lo, q.ulmtPrefetchesIssued);
        hi = std::max(hi, q.ulmtPrefetchesIssued);
    }
    return std::to_string(lo) + ".." + std::to_string(hi);
}

std::uint64_t
obsDropped(const driver::RunResult &r)
{
    if (r.engineUlmt.empty())
        return r.ulmt.missesDroppedQueueFull;
    std::uint64_t total = 0;
    for (const core::UlmtStats &s : r.engineUlmt)
        total += s.missesDroppedQueueFull;
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.05);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("multicore", bopt);

    // Sparse is the workload whose misses actually repeat, so it also
    // shows how the serving modes split prefetch service between
    // tenants; the pointer-chasing three mostly contend for queue 1,
    // the bus and DRAM.
    const std::vector<std::string> apps =
        bopt.apps.empty() ? std::vector<std::string>{"MST", "Tree",
                                                     "CG", "Sparse"}
                          : bopt.apps;
    const std::vector<unsigned> coreCounts = {1, 2, 4, 8};
    const std::vector<core::UlmtMode> modes = {
        core::UlmtMode::Shared, core::UlmtMode::PerCore,
        core::UlmtMode::Sharded};

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        for (core::UlmtMode mode : modes) {
            for (unsigned cores : coreCounts) {
                driver::SystemConfig cfg = driver::ulmtConfig(
                    opt, core::UlmtAlgo::Repl, app);
                cfg.cores = cores;
                cfg.ulmtMode = mode;
                cfg.label = "Repl/" + core::to_string(mode) + "/" +
                            std::to_string(cores);
                jobs.push_back({app, std::move(cfg), opt});
            }
        }
    }

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Mode", "Cores", "Core0 cycles",
                             "Slowdown", "Q1 wait", "PF/core",
                             "Obs dropped"});
    std::size_t idx = 0;
    for (const std::string &app : apps) {
        for (core::UlmtMode mode : modes) {
            // Core 0 of every machine replays the same trace as the
            // single-core run, so its cycle count is the slowdown
            // numerator.
            const driver::RunResult &solo = results[idx];
            for (unsigned cores : coreCounts) {
                const driver::RunResult &r = results[idx++];
                const sim::Cycle core0 = r.proc.totalCycles;
                const double slowdown =
                    solo.proc.totalCycles
                        ? double(core0) /
                              double(solo.proc.totalCycles)
                        : 0.0;
                const std::string mode_s = core::to_string(mode);
                table.addRow({app, mode_s, std::to_string(cores),
                              std::to_string(core0),
                              driver::fmt(slowdown),
                              driver::fmt(qosWaitMean(r)),
                              pfSpread(r),
                              std::to_string(obsDropped(r))});
                const std::string key = app + "_" + mode_s + "_c" +
                                        std::to_string(cores);
                harness.metric("core0_cycles_" + key, double(core0));
                harness.metric("slowdown_" + key, slowdown);
                harness.metric("q1_wait_mean_" + key, qosWaitMean(r));
                harness.metric("obs_dropped_" + key,
                               double(obsDropped(r)));
                std::uint64_t pf = 0;
                for (const mem::CoreQos &q : r.coreQos)
                    pf += q.ulmtPrefetchesIssued;
                harness.metric("pf_issued_" + key, double(pf));
            }
        }
    }
    table.print("Multicore: cores x ULMT serving mode (Repl)");
    harness.writeJson();
    return 0;
}
