/**
 * @file
 * Baseline: hardware correlation prefetching vs the ULMT.
 *
 * Section 2.2's critique of prior pair-based prefetchers is that they
 * need large dedicated SRAM tables (1-2 MB on chip, up to 7.6 MB off
 * chip).  This bench races such an engine -- ideally placed at the L2,
 * reacting in a few cycles, but capped by its SRAM budget -- against
 * the ULMT running Replicated out of cheap main memory.
 *
 * The expected shape: the hardware engine with a big-enough table wins
 * slightly (no response-time gap), but at 1 MB or less it loses table
 * capacity on the big-footprint applications, while the ULMT sizes its
 * software table per application for free.
 *
 * Usage: baseline_hw_correlation [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

driver::RunResult
runHw(const std::string &app, const driver::ExperimentOptions &opt,
      std::size_t sram_bytes, bool replicated)
{
    driver::SystemConfig cfg = driver::noPrefConfig(opt);
    cfg.hwCorrSramBytes = sram_bytes;
    cfg.hwCorrReplicated = replicated;
    cfg.label = "HW";
    return driver::runOne(app, cfg, opt);
}

} // namespace

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    driver::TextTable table({"Appl", "HW-Base 1MB", "HW-Repl 1MB",
                             "HW-Repl 4MB", "ULMT Repl (no SRAM)"});
    std::vector<double> hw1, hwr1, hwr4, ulmt;
    for (const std::string &app : workloads::applicationNames()) {
        const driver::RunResult base =
            driver::runOne(app, driver::noPrefConfig(opt), opt);
        const double s_hw1 =
            runHw(app, opt, 1 << 20, false).speedup(base);
        const double s_hwr1 =
            runHw(app, opt, 1 << 20, true).speedup(base);
        const double s_hwr4 =
            runHw(app, opt, 4 << 20, true).speedup(base);
        const double s_ulmt =
            driver::runOne(app,
                           driver::ulmtConfig(
                               opt, core::UlmtAlgo::Repl, app),
                           opt)
                .speedup(base);
        hw1.push_back(s_hw1);
        hwr1.push_back(s_hwr1);
        hwr4.push_back(s_hwr4);
        ulmt.push_back(s_ulmt);
        table.addRow({app, driver::fmt(s_hw1), driver::fmt(s_hwr1),
                      driver::fmt(s_hwr4), driver::fmt(s_ulmt)});
    }
    table.addRow({"Average", driver::fmt(driver::mean(hw1)),
                  driver::fmt(driver::mean(hwr1)),
                  driver::fmt(driver::mean(hwr4)),
                  driver::fmt(driver::mean(ulmt))});
    table.print("Baseline: dedicated-SRAM hardware correlation "
                "engines vs the ULMT (speedup over NoPref)");
    std::puts("\nThe ULMT's table is ordinary main memory sized per "
              "application (Table 2);\nthe hardware engines pay for "
              "every byte of SRAM.");
    return 0;
}
