/**
 * @file
 * Baseline: hardware correlation prefetching vs the ULMT.
 *
 * Section 2.2's critique of prior pair-based prefetchers is that they
 * need large dedicated SRAM tables (1-2 MB on chip, up to 7.6 MB off
 * chip).  This bench races such an engine -- ideally placed at the L2,
 * reacting in a few cycles, but capped by its SRAM budget -- against
 * the ULMT running Replicated out of cheap main memory.
 *
 * The expected shape: the hardware engine with a big-enough table wins
 * slightly (no response-time gap), but at 1 MB or less it loses table
 * capacity on the big-footprint applications, while the ULMT sizes its
 * software table per application for free.
 *
 * Usage: baseline_hw_correlation [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

driver::SystemConfig
hwConfig(const driver::ExperimentOptions &opt, std::size_t sram_bytes,
         bool replicated)
{
    driver::SystemConfig cfg = driver::noPrefConfig(opt);
    cfg.hwCorrSramBytes = sram_bytes;
    cfg.hwCorrReplicated = replicated;
    cfg.label = "HW";
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("baseline_hw_correlation", bopt);

    const auto &apps = workloads::applicationNames();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        jobs.push_back({app, hwConfig(opt, 1 << 20, false), opt});
        jobs.push_back({app, hwConfig(opt, 1 << 20, true), opt});
        jobs.push_back({app, hwConfig(opt, 4 << 20, true), opt});
        jobs.push_back(
            {app, driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app),
             opt});
    }
    const std::size_t per_app = 5;

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "HW-Base 1MB", "HW-Repl 1MB",
                             "HW-Repl 4MB", "ULMT Repl (no SRAM)"});
    std::vector<double> hw1, hwr1, hwr4, ulmt;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const driver::RunResult &base = results[ai * per_app];
        const double s_hw1 = results[ai * per_app + 1].speedup(base);
        const double s_hwr1 = results[ai * per_app + 2].speedup(base);
        const double s_hwr4 = results[ai * per_app + 3].speedup(base);
        const double s_ulmt = results[ai * per_app + 4].speedup(base);
        hw1.push_back(s_hw1);
        hwr1.push_back(s_hwr1);
        hwr4.push_back(s_hwr4);
        ulmt.push_back(s_ulmt);
        table.addRow({apps[ai], driver::fmt(s_hw1),
                      driver::fmt(s_hwr1), driver::fmt(s_hwr4),
                      driver::fmt(s_ulmt)});
    }
    table.addRow({"Average", driver::fmt(driver::mean(hw1)),
                  driver::fmt(driver::mean(hwr1)),
                  driver::fmt(driver::mean(hwr4)),
                  driver::fmt(driver::mean(ulmt))});
    table.print("Baseline: dedicated-SRAM hardware correlation "
                "engines vs the ULMT (speedup over NoPref)");
    std::puts("\nThe ULMT's table is ordinary main memory sized per "
              "application (Table 2);\nthe hardware engines pay for "
              "every byte of SRAM.");

    harness.metric("avg_speedup_hw_base_1mb", driver::mean(hw1));
    harness.metric("avg_speedup_hw_repl_1mb", driver::mean(hwr1));
    harness.metric("avg_speedup_hw_repl_4mb", driver::mean(hwr4));
    harness.metric("avg_speedup_ulmt_repl", driver::mean(ulmt));
    harness.writeJson();
    return 0;
}
