/**
 * @file
 * Figure 6: distribution of the time between two consecutive L2
 * misses arriving at memory (NoPref runs), binned as in the paper:
 * [0,80), [80,200), [200,280), [280,inf) 1.6 GHz cycles.
 *
 * The [200,280) bin matters most: it holds the dependent misses whose
 * latency out-of-order execution cannot hide, and its weight bounds
 * the occupancy budget of the ULMT (must stay under ~200 cycles).
 *
 * Usage: fig6_miss_gaps [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    driver::TextTable table({"Appl", "[0,80)", "[80,200)", "[200,280)",
                             "[280,inf)"});
    std::vector<double> sums(4, 0.0);
    const auto &apps = workloads::applicationNames();

    for (const std::string &app : apps) {
        const driver::RunResult r =
            driver::runOne(app, driver::noPrefConfig(opt), opt);
        std::vector<std::string> row = {app};
        for (int b = 0; b < 4; ++b) {
            row.push_back(driver::fmtPercent(
                r.missGapFractions[static_cast<std::size_t>(b)]));
            sums[static_cast<std::size_t>(b)] +=
                r.missGapFractions[static_cast<std::size_t>(b)];
        }
        table.addRow(row);
    }
    std::vector<std::string> avg = {"Average"};
    for (int b = 0; b < 4; ++b) {
        avg.push_back(driver::fmtPercent(
            sums[static_cast<std::size_t>(b)] /
            static_cast<double>(apps.size())));
    }
    table.addRow(avg);
    table.print("Figure 6: time between consecutive L2 misses "
                "(NoPref)");
    return 0;
}
