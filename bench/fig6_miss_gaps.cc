/**
 * @file
 * Figure 6: distribution of the time between two consecutive L2
 * misses arriving at memory (NoPref runs), binned as in the paper:
 * [0,80), [80,200), [200,280), [280,inf) 1.6 GHz cycles.
 *
 * The [200,280) bin matters most: it holds the dependent misses whose
 * latency out-of-order execution cannot hide, and its weight bounds
 * the occupancy budget of the ULMT (must stay under ~200 cycles).
 *
 * Usage: fig6_miss_gaps [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig6_miss_gaps", bopt);

    const auto &apps = workloads::applicationNames();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps)
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "[0,80)", "[80,200)", "[200,280)",
                             "[280,inf)"});
    std::vector<double> sums(4, 0.0);

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const driver::RunResult &r = results[ai];
        std::vector<std::string> row = {apps[ai]};
        for (int b = 0; b < 4; ++b) {
            row.push_back(driver::fmtPercent(
                r.missGapFractions[static_cast<std::size_t>(b)]));
            sums[static_cast<std::size_t>(b)] +=
                r.missGapFractions[static_cast<std::size_t>(b)];
        }
        table.addRow(row);
    }
    std::vector<std::string> avg = {"Average"};
    for (int b = 0; b < 4; ++b) {
        const double v = sums[static_cast<std::size_t>(b)] /
                         static_cast<double>(apps.size());
        avg.push_back(driver::fmtPercent(v));
        harness.metric(sim::strformat("avg_gap_bin%d", b), v);
    }
    table.addRow(avg);
    table.print("Figure 6: time between consecutive L2 misses "
                "(NoPref)");
    harness.writeJson();
    return 0;
}
