/**
 * @file
 * Shared benchmark harness: common CLI parsing, wall-clock timing and
 * machine-readable output.
 *
 * Every bench binary records its simulation runs and headline metrics
 * in a Harness and finishes with writeJson(), which emits
 * `BENCH_<name>.json` (in $ULMT_BENCH_DIR or the working directory).
 * The JSON tracks the repo's performance trajectory across PRs: wall
 * clock per run, simulated events per second, sim cycles, worker
 * count, plus whatever figure-level metrics the bench reports.
 * Schema (see EXPERIMENTS.md for the full description):
 *
 * {
 *   "bench": "fig7_exec_time",
 *   "jobs": 8,
 *   "scale": 1.0,
 *   "wall_seconds_total": 12.34,
 *   "provenance": {"git_sha": "...", "timestamp_utc": "...",
 *                  "host": {...}},
 *   "runs": [
 *     {"workload": "Mcf", "config": "NoPref", "source": "synthetic",
 *      "wall_seconds": 0.51, "events": 1234567,
 *      "events_per_sec": 2.4e6, "sim_cycles": 98765432,
 *      "effectiveness": {"cores": [{"push": {...}, "coverage": ...,
 *        "lead_time": {...}, "blocked_by": [...]}, ...],
 *        "engines": [...], ...}}, ...
 *   ],
 *   "metrics": {"avg_speedup_repl": 1.32, ...,
 *     "series": [{"workload": "Mcf", "config": "NoPref",
 *                 "interval_cycles": 16384, "cycle": [...],
 *                 "channels": {"l2.mshr_occupancy": [...], ...}}]}
 * }
 *
 * "provenance" and the host-performance fields are volatile across
 * machines and commits; determinism comparisons must ignore them.
 */

#ifndef BENCH_HARNESS_HH
#define BENCH_HARNESS_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/system.hh"

namespace bench {

/**
 * Common bench CLI: `bench [scale] [--jobs=N] [--apps=A,B,...]
 * [--trace-events=PATH] [--metrics-interval=N]
 * [--check[=basic|deep]] [--check-interval=N] [--audit=on|off]
 * [--checkpoint-at=SPEC] [--checkpoint-to=DIR] [--restore-from=PATH]
 * [--vm=on|off] [--page-size=4k|2m] [--remap-rate=R]
 * [--table-cache=<entries>[,<assoc>]] [--list-workloads]`.
 */
struct Options
{
    double scale = 1.0;
    unsigned jobs = 0;  //!< 0 = resolve via driver::runnerJobs()
    /** Workload list override (names or trace:<path>); empty = the
     *  bench's default set (usually the nine paper applications). */
    std::vector<std::string> apps;
    /** Chrome trace-event output path; empty = tracing off. */
    std::string traceEvents;
    /** Sampling-interval override in cycles (-1 = config default,
     *  0 = sampling off). */
    long long metricsInterval = -1;
    /** Runtime invariant checking for every run (DESIGN.md sect. 10):
     *  `--check`/`--check=basic` walks structural invariants,
     *  `--check=deep` adds the lockstep reference models.  Off by
     *  default; never perturbs simulated timing. */
    check::CheckOptions check;
    /** Checkpoint trigger spec ("<N>" misses or "<N>c"); empty = off. */
    std::string checkpointAt;
    /** Directory for triggered snapshots (empty = "."). */
    std::string checkpointTo;
    /** Restore every run from this snapshot; empty = off. */
    std::string restoreFrom;
    /** Lifecycle auditing for every run (`--audit=on|off`; the
     *  SystemConfig default -- on -- when unset).  Passive. */
    int audit = -1;
    /** Main processors per simulated machine (`--cores=N`). */
    unsigned cores = 1;
    /** ULMT serving mode (`--ulmt-mode=shared|percore|sharded`). */
    core::UlmtMode ulmtMode = core::UlmtMode::Shared;
    /** VM layer for every run (`--vm=on|off`, `--page-size=4k|2m`,
     *  `--remap-rate=R` remaps/Mcycle).  The defaults describe the
     *  pre-VM machine: vm.on() false, nothing built. */
    vm::VmSpec vm;
    /** True when any of the VM flags was given. */
    bool vmSet = false;
    /** Memory-side table cache for every run
     *  (`--table-cache=<entries>[,<assoc>]`; 0 -- the default --
     *  keeps the pre-MSCache table path, bit-identical). */
    mem::TableCacheSpec tableCache;
    /** True when --table-cache was given. */
    bool tableCacheSet = false;

    /** The bench's workload list: the override, or the nine apps. */
    const std::vector<std::string> &appList() const;
};

/**
 * Parse the common CLI.  A bare positional argument is the workload
 * scale; `--jobs=N` overrides the worker count for this process (it
 * takes precedence over ULMT_JOBS); `--apps=A,B,...` replaces the
 * default workload set with any mix of application names and
 * `trace:<path>` corpora; `--trace-events=PATH` streams Chrome trace
 * events from every run into PATH; `--metrics-interval=N` overrides
 * the time-series sampling interval (0 disables sampling);
 * `--check` (or `--check=basic`) runs the invariant checker on every
 * run, `--check=deep` additionally diffs the lockstep reference
 * models, and `--check-interval=N` sets the cadence in executed
 * events (default 2048);
 * `--audit=on|off` forces the (passive, on-by-default) prefetch
 * lifecycle auditor for every run;
 * `--checkpoint-at=SPEC` snapshots every run after SPEC ("<N>" demand
 * L2 misses, "<N>c" at cycle N) into `--checkpoint-to=DIR`;
 * `--restore-from=PATH` resumes every run from a snapshot;
 * `--cores=N` runs every configuration on an N-core machine and
 * `--ulmt-mode=shared|percore|sharded` picks how its memory-side
 * service is shared among the cores;
 * `--vm=on` forces address translation on for every run,
 * `--page-size=4k|2m` picks the page size and `--remap-rate=R` sets
 * the page-migration churn in remaps per million cycles (any VM flag
 * that leaves the spec non-default builds the VM layer);
 * `--table-cache=<entries>[,<assoc>]` puts an SRAM cache of that
 * geometry in front of the correlation table's DRAM traffic (0
 * disables it, the default);
 * `--list-workloads` prints the registered workload names and exits.
 */
Options parseArgs(int argc, char **argv, double default_scale);

/** Collects per-run perf data and metrics; writes BENCH_<name>.json. */
class Harness
{
  public:
    /** @param name the bench name, e.g. "fig7_exec_time". */
    Harness(std::string name, const Options &opt);

    /** Record one completed simulation run. */
    void record(const driver::RunResult &r);

    /** Record a batch (e.g. the output of driver::runAll). */
    void recordAll(const std::vector<driver::RunResult> &rs);

    /** Report a figure-level metric (average speedup, coverage, ...). */
    void metric(const std::string &key, double value);

    /**
     * Write BENCH_<name>.json; returns the path written.  Also emits
     * BENCH_throughput.json, the host-side throughput summary of this
     * invocation: one {workload, config, scale, cores, ulmt_mode,
     * events, wall_seconds, events_per_sec} row per run plus the
     * aggregate events/sec.
     */
    std::string writeJson() const;

  private:
    struct Run
    {
        std::string workload;
        std::string label;
        std::string source;
        double wallSeconds;
        std::uint64_t events;
        std::uint64_t simCycles;
        double ckptSaveSeconds;
        double ckptRestoreSeconds;
        std::uint64_t ckptBytes;
        unsigned cores;
        std::string ulmtMode;
        mem::AuditReport audit;
        sim::TimeSeriesData metrics;
        // VM fields (all zero / false when the layer was off).
        bool vmOn;
        std::uint32_t vmPageBytes;
        double vmRemapRate;
        std::uint64_t vmRemaps;
        std::uint64_t vmTlbHits;
        std::uint64_t vmTlbMisses;
        std::uint64_t vmWalkCycles;
        std::uint64_t vmPagesMapped;
        // Table-cache fields (all zero / false when --table-cache=0).
        bool tcacheOn;
        std::uint32_t tcacheEntries;
        std::uint32_t tcacheAssoc;
        mem::TableCacheStats tcache;
    };

    void writeThroughputJson() const;

    std::string name_;
    Options opt_;
    std::chrono::steady_clock::time_point start_;
    std::vector<Run> runs_;
    std::vector<std::pair<std::string, double>> metrics_;
};

} // namespace bench

#endif // BENCH_HARNESS_HH
