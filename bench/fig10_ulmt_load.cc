/**
 * @file
 * Figure 10: average response time and occupancy time of the ULMT
 * algorithms (Base, Chain, Repl in the DRAM chip, plus ReplMC in the
 * North Bridge), split into computation (Busy) and table-memory stall
 * (Mem), with the memory-processor IPC on top of each bar.
 *
 * The viability conditions the paper checks: occupancy < 200 cycles
 * (the dominant inter-miss gap), Repl's response the lowest, ReplMC's
 * response roughly double Repl's.
 *
 * Usage: fig10_ulmt_load [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

struct Load
{
    double respBusy = 0, respMem = 0, occBusy = 0, occMem = 0, ipc = 0;
    int n = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 1.0);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("fig10_ulmt_load", bopt);

    struct Variant
    {
        std::string name;
        core::UlmtAlgo algo;
        mem::MemProcPlacement placement;
    };
    const std::vector<Variant> variants = {
        {"Base", core::UlmtAlgo::Base, mem::MemProcPlacement::InDram},
        {"Chain", core::UlmtAlgo::Chain, mem::MemProcPlacement::InDram},
        {"Repl", core::UlmtAlgo::Repl, mem::MemProcPlacement::InDram},
        {"ReplMC", core::UlmtAlgo::Repl,
         mem::MemProcPlacement::NorthBridge},
    };

    const auto &apps = workloads::applicationNames();
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        for (const Variant &v : variants) {
            driver::ExperimentOptions o = opt;
            o.placement = v.placement;
            jobs.push_back(
                {app, driver::ulmtConfig(o, v.algo, app), o});
        }
    }
    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    std::vector<Load> loads(variants.size());
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const driver::RunResult &r =
                results[ai * variants.size() + v];
            if (r.ulmt.missesProcessed == 0)
                continue;
            Load &l = loads[v];
            l.respBusy += r.ulmt.responseBusy.mean();
            l.respMem += r.ulmt.responseMem.mean();
            l.occBusy += r.ulmt.occupancyBusy.mean();
            l.occMem += r.ulmt.occupancyMem.mean();
            l.ipc += r.ulmt.ipc();
            ++l.n;
        }
    }

    driver::TextTable table({"Algorithm", "Resp.Busy", "Resp.Mem",
                             "Response", "Occ.Busy", "Occ.Mem",
                             "Occupancy", "IPC"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const Load &l = loads[v];
        const double n = l.n ? static_cast<double>(l.n) : 1.0;
        table.addRow({variants[v].name, driver::fmt(l.respBusy / n, 1),
                      driver::fmt(l.respMem / n, 1),
                      driver::fmt((l.respBusy + l.respMem) / n, 1),
                      driver::fmt(l.occBusy / n, 1),
                      driver::fmt(l.occMem / n, 1),
                      driver::fmt((l.occBusy + l.occMem) / n, 1),
                      driver::fmt(l.ipc / n)});
        harness.metric("response_" + variants[v].name,
                       (l.respBusy + l.respMem) / n);
        harness.metric("occupancy_" + variants[v].name,
                       (l.occBusy + l.occMem) / n);
    }
    table.print("Figure 10: ULMT response and occupancy "
                "(main-processor cycles, averaged over applications)");
    harness.writeJson();
    return 0;
}
