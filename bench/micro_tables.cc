/**
 * @file
 * Google-benchmark microbenchmarks of the correlation-table
 * operations themselves: host-side throughput of the Prefetching and
 * Learning steps of Base, Chain and Replicated, and of the software
 * sequential prefetcher.  These measure the real data structures (not
 * the simulated memory-processor timing).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/base_chain.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"
#include "sim/trace_event.hh"

namespace {

std::vector<sim::Addr>
missStream(std::size_t n)
{
    std::vector<sim::Addr> stream(n);
    for (std::size_t i = 0; i < n; ++i)
        stream[i] = static_cast<sim::Addr>((i * 2654435761u) % 65536) *
                    64;
    return stream;
}

template <typename Algo>
void
runSteps(benchmark::State &state, Algo &algo)
{
    const auto stream = missStream(4096);
    core::NullCostTracker cost;
    std::vector<sim::Addr> out;
    std::size_t i = 0;
    for (auto _ : state) {
        out.clear();
        algo.prefetchStep(stream[i], out, cost);
        algo.learnStep(stream[i], cost);
        benchmark::DoNotOptimize(out.data());
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_BaseStep(benchmark::State &state)
{
    core::BasePrefetcher algo(core::baseDefaults(64 * 1024));
    runSteps(state, algo);
}

void
BM_ChainStep(benchmark::State &state)
{
    core::ChainPrefetcher algo(core::chainReplDefaults(64 * 1024));
    runSteps(state, algo);
}

void
BM_ReplStep(benchmark::State &state)
{
    core::ReplicatedPrefetcher algo(
        core::chainReplDefaults(64 * 1024));
    runSteps(state, algo);
}

void
BM_SeqStep(benchmark::State &state)
{
    core::SeqPrefetcher algo(core::SeqParams{});
    runSteps(state, algo);
}

void
BM_ReplLookupOnly(benchmark::State &state)
{
    core::ReplicatedPrefetcher algo(
        core::chainReplDefaults(64 * 1024));
    const auto stream = missStream(4096);
    core::NullCostTracker cost;
    std::vector<sim::Addr> out;
    for (sim::Addr m : stream)
        algo.learnStep(m, cost);
    std::size_t i = 0;
    for (auto _ : state) {
        out.clear();
        algo.prefetchStep(stream[i], out, cost);
        benchmark::DoNotOptimize(out.data());
        i = (i + 1) % stream.size();
    }
}

BENCHMARK(BM_BaseStep);
BENCHMARK(BM_ChainStep);
BENCHMARK(BM_ReplStep);
BENCHMARK(BM_SeqStep);
BENCHMARK(BM_ReplLookupOnly);

/**
 * Console reporter that additionally records each completed benchmark
 * as a trace-event span (--trace-events=PATH).  This bench has no
 * simulated clock, so spans are laid out on a synthetic host-time
 * axis: each benchmark occupies [cursor, cursor + cpu_time_ns).
 */
class TracingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit TracingReporter(const std::string &path)
        : writer_(path)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            const auto ns = static_cast<sim::Cycle>(
                run.GetAdjustedCPUTime() *
                static_cast<double>(run.iterations));
            buf_.complete(run.benchmark_name(), "microbench", cursor_,
                          ns > 0 ? ns : 1, sim::traceTidSampler);
            buf_.counter(run.benchmark_name() + "/ns_per_op", cursor_,
                         run.GetAdjustedCPUTime(),
                         sim::traceTidSampler);
            cursor_ += ns > 0 ? ns : 1;
        }
        ConsoleReporter::ReportRuns(runs);
    }

    void
    Finalize() override
    {
        writer_.writeProcess("micro_tables", buf_);
        writer_.finish();
        ConsoleReporter::Finalize();
    }

  private:
    sim::TraceEventWriter writer_;
    sim::TraceEventBuffer buf_;
    sim::Cycle cursor_ = 0;
};

} // namespace

// Like BENCHMARK_MAIN(), but defaults the JSON output file so this
// bench emits BENCH_micro_tables.json like the simulation benches
// (into $ULMT_BENCH_DIR when set).  Explicit --benchmark_out= flags
// still win.  --trace-events=PATH additionally exports each benchmark
// run as a Chrome trace-event span.
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    args.push_back(argv[0]);
    std::string trace_path;
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace-events=", 15) == 0) {
            trace_path = argv[i] + 15;
            continue;  // ours, not google-benchmark's
        }
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
        args.push_back(argv[i]);
    }

    std::string out_flag, fmt_flag;
    if (!has_out) {
        std::string dir;
        if (const char *env = std::getenv("ULMT_BENCH_DIR"))
            dir = std::string(env) + "/";
        out_flag =
            "--benchmark_out=" + dir + "BENCH_micro_tables.json";
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }

    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_argc, args.data()))
        return 1;
    if (trace_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        // Passing a display reporter still honours --benchmark_out.
        TracingReporter reporter(trace_path);
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    benchmark::Shutdown();
    return 0;
}
