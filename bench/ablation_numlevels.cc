/**
 * @file
 * Ablation: NumLevels in Replicated (the knob behind the MST/Mcf
 * customization of Table 5).
 *
 * Sweeps the number of successor levels stored and prefetched.  More
 * levels prefetch further ahead -- valuable when the miss sequence is
 * deeply predictable (MST), wasted when it is not (Mcf shows marginal
 * gains, as the paper observes).
 *
 * Usage: ablation_numlevels [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

    const std::vector<std::string> apps = {"MST", "Mcf", "Tree"};
    driver::TextTable table({"Appl", "NumLevels", "Speedup",
                             "Coverage", "Occupancy", "Table MB"});

    for (const std::string &app : apps) {
        const driver::RunResult base =
            driver::runOne(app, driver::noPrefConfig(opt), opt);
        for (std::uint32_t levels : {1u, 2u, 3u, 4u, 5u, 6u}) {
            driver::SystemConfig cfg = driver::conven4PlusUlmtConfig(
                opt, core::UlmtAlgo::Repl, app);
            cfg.ulmt.numLevels = levels;
            const driver::RunResult r = driver::runOne(app, cfg, opt);
            const double cov =
                static_cast<double>(r.hier.ulmtHits +
                                    r.hier.ulmtDelayedHits) /
                static_cast<double>(base.hier.l2Misses);
            const double mb =
                static_cast<double>(workloads::tableNumRows(app)) *
                (4.0 + levels * 2 * 4.0) / (1024.0 * 1024.0);
            table.addRow({app, std::to_string(levels),
                          driver::fmt(r.speedup(base)),
                          driver::fmt(cov),
                          driver::fmt(r.ulmt.occupancyTime.mean(), 0),
                          driver::fmt(mb, 1)});
        }
    }
    table.print("Ablation: Replicated NumLevels sweep "
                "(Conven4 on)");
    return 0;
}
