/**
 * @file
 * Ablation: NumLevels in Replicated (the knob behind the MST/Mcf
 * customization of Table 5).
 *
 * Sweeps the number of successor levels stored and prefetched.  More
 * levels prefetch further ahead -- valuable when the miss sequence is
 * deeply predictable (MST), wasted when it is not (Mcf shows marginal
 * gains, as the paper observes).
 *
 * Usage: ablation_numlevels [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.5);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("ablation_numlevels", bopt);

    const std::vector<std::string> apps = {"MST", "Mcf", "Tree"};
    const std::vector<std::uint32_t> levels_sweep = {1, 2, 3, 4, 5, 6};

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        for (std::uint32_t levels : levels_sweep) {
            driver::SystemConfig cfg = driver::conven4PlusUlmtConfig(
                opt, core::UlmtAlgo::Repl, app);
            cfg.ulmt.numLevels = levels;
            jobs.push_back({app, std::move(cfg), opt});
        }
    }
    const std::size_t per_app = 1 + levels_sweep.size();

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "NumLevels", "Speedup",
                             "Coverage", "Occupancy", "Table MB"});
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const std::string &app = apps[ai];
        const driver::RunResult &base = results[ai * per_app];
        for (std::size_t li = 0; li < levels_sweep.size(); ++li) {
            const std::uint32_t levels = levels_sweep[li];
            const driver::RunResult &r =
                results[ai * per_app + 1 + li];
            const double cov =
                static_cast<double>(r.hier.ulmtHits +
                                    r.hier.ulmtDelayedHits) /
                static_cast<double>(base.hier.l2Misses);
            const double mb =
                static_cast<double>(workloads::tableNumRows(app)) *
                (4.0 + levels * 2 * 4.0) / (1024.0 * 1024.0);
            table.addRow({app, std::to_string(levels),
                          driver::fmt(r.speedup(base)),
                          driver::fmt(cov),
                          driver::fmt(r.ulmt.occupancyTime.mean(), 0),
                          driver::fmt(mb, 1)});
            harness.metric(sim::strformat("speedup_%s_levels%u",
                                          app.c_str(), levels),
                           r.speedup(base));
        }
    }
    table.print("Ablation: Replicated NumLevels sweep "
                "(Conven4 on)");
    harness.writeJson();
    return 0;
}
