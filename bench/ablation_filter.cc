/**
 * @file
 * Ablation: the Filter module (Section 3.2).
 *
 * Correlation prefetching regenerates the same addresses in short
 * windows; the FIFO filter in front of queue 3 drops them.  This
 * sweep varies the filter size (0 disables it) and reports the
 * speedup, prefetch traffic and redundant-push rate under Repl for a
 * few representative applications.
 *
 * Usage: ablation_filter [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

    const std::vector<std::uint32_t> sizes = {0, 8, 32, 128};
    const std::vector<std::string> apps = {"Mcf", "Gap", "Equake"};

    driver::TextTable table({"Appl", "Filter", "Speedup", "PF issued",
                             "PF dropped (filter)", "Push redundant"});
    for (const std::string &app : apps) {
        const driver::RunResult base =
            driver::runOne(app, driver::noPrefConfig(opt), opt);
        for (std::uint32_t size : sizes) {
            driver::SystemConfig cfg =
                driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app);
            cfg.timing.filterEntries = size;
            const driver::RunResult r = driver::runOne(app, cfg, opt);
            table.addRow(
                {app, std::to_string(size),
                 driver::fmt(r.speedup(base)),
                 std::to_string(r.memsys.ulmtPrefetchesIssued),
                 std::to_string(r.memsys.ulmtPrefetchesDroppedFilter),
                 std::to_string(r.hier.pushRedundant())});
        }
    }
    table.print("Ablation: Filter module size (Repl)");
    return 0;
}
