/**
 * @file
 * Ablation: the Filter module (Section 3.2).
 *
 * Correlation prefetching regenerates the same addresses in short
 * windows; the FIFO filter in front of queue 3 drops them.  This
 * sweep varies the filter size (0 disables it) and reports the
 * speedup, prefetch traffic and redundant-push rate under Repl for a
 * few representative applications.
 *
 * Usage: ablation_filter [scale] [--jobs=N]
 */

#include <cstdio>

#include "bench/harness.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

int
main(int argc, char **argv)
{
    const bench::Options bopt = bench::parseArgs(argc, argv, 0.5);
    driver::ExperimentOptions opt;
    opt.scale = bopt.scale;
    bench::Harness harness("ablation_filter", bopt);

    const std::vector<std::uint32_t> sizes = {0, 8, 32, 128};
    const std::vector<std::string> apps = {"Mcf", "Gap", "Equake"};

    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        for (std::uint32_t size : sizes) {
            driver::SystemConfig cfg =
                driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app);
            cfg.timing.filterEntries = size;
            jobs.push_back({app, std::move(cfg), opt});
        }
    }
    const std::size_t per_app = 1 + sizes.size();

    const std::vector<driver::RunResult> results =
        driver::runAll(jobs);
    harness.recordAll(results);

    driver::TextTable table({"Appl", "Filter", "Speedup", "PF issued",
                             "PF dropped (filter)", "Push redundant"});
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const driver::RunResult &base = results[ai * per_app];
        for (std::size_t si = 0; si < sizes.size(); ++si) {
            const driver::RunResult &r =
                results[ai * per_app + 1 + si];
            table.addRow(
                {apps[ai], std::to_string(sizes[si]),
                 driver::fmt(r.speedup(base)),
                 std::to_string(r.memsys.ulmtPrefetchesIssued),
                 std::to_string(r.memsys.ulmtPrefetchesDroppedFilter),
                 std::to_string(r.hier.pushRedundant())});
            harness.metric(sim::strformat("speedup_%s_filter%u",
                                          apps[ai].c_str(),
                                          sizes[si]),
                           r.speedup(base));
        }
    }
    table.print("Ablation: Filter module size (Repl)");
    harness.writeJson();
    return 0;
}
