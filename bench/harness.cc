#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <stdexcept>

#include <sys/utsname.h>
#include <unistd.h>

#include "ckpt/checkpoint.hh"
#include "driver/experiment.hh"
#include "driver/runner.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace bench {

const std::vector<std::string> &
Options::appList() const
{
    return apps.empty() ? workloads::applicationNames() : apps;
}

Options
parseArgs(int argc, char **argv, double default_scale)
{
    Options opt;
    opt.scale = default_scale;
    bool scale_seen = false;
    bool cores_seen = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            char *end = nullptr;
            const long v = std::strtol(arg + 7, &end, 10);
            if (*end != '\0' || v < 1 || v > 1024)
                sim::fatal("bad --jobs value '%s'", arg + 7);
            opt.jobs = static_cast<unsigned>(v);
        } else if (std::strncmp(arg, "--apps=", 7) == 0) {
            std::string cur;
            for (const char *p = arg + 7;; ++p) {
                if (*p == ',' || *p == '\0') {
                    if (!cur.empty())
                        opt.apps.push_back(cur);
                    cur.clear();
                    if (*p == '\0')
                        break;
                } else {
                    cur += *p;
                }
            }
            if (opt.apps.empty())
                sim::fatal("empty --apps list");
        } else if (std::strncmp(arg, "--trace-events=", 15) == 0) {
            if (arg[15] == '\0')
                sim::fatal("empty --trace-events path");
            opt.traceEvents = arg + 15;
        } else if (std::strncmp(arg, "--metrics-interval=", 19) == 0) {
            char *end = nullptr;
            const long long v = std::strtoll(arg + 19, &end, 10);
            if (*end != '\0' || v < 0)
                sim::fatal("bad --metrics-interval value '%s'",
                           arg + 19);
            opt.metricsInterval = v;
        } else if (std::strcmp(arg, "--check") == 0 ||
                   std::strcmp(arg, "--check=basic") == 0) {
            opt.check.mode = check::CheckMode::Basic;
        } else if (std::strcmp(arg, "--check=deep") == 0) {
            opt.check.mode = check::CheckMode::Deep;
        } else if (std::strncmp(arg, "--check=", 8) == 0) {
            sim::fatal("bad --check mode '%s' (expected basic or deep)",
                       arg + 8);
        } else if (std::strncmp(arg, "--check-interval=", 17) == 0) {
            char *end = nullptr;
            const long long v = std::strtoll(arg + 17, &end, 10);
            if (*end != '\0' || v < 1)
                sim::fatal("bad --check-interval value '%s'", arg + 17);
            opt.check.everyEvents = static_cast<std::uint64_t>(v);
        } else if (std::strcmp(arg, "--audit=on") == 0) {
            opt.audit = 1;
        } else if (std::strcmp(arg, "--audit=off") == 0) {
            opt.audit = 0;
        } else if (std::strncmp(arg, "--audit", 7) == 0) {
            sim::fatal("bad --audit value '%s' (expected on or off)",
                       arg);
        } else if (std::strncmp(arg, "--checkpoint-at=", 16) == 0) {
            if (arg[16] == '\0')
                sim::fatal("empty --checkpoint-at spec");
            opt.checkpointAt = arg + 16;
        } else if (std::strncmp(arg, "--checkpoint-to=", 16) == 0) {
            if (arg[16] == '\0')
                sim::fatal("empty --checkpoint-to directory");
            opt.checkpointTo = arg + 16;
        } else if (std::strncmp(arg, "--restore-from=", 15) == 0) {
            if (arg[15] == '\0')
                sim::fatal("empty --restore-from path");
            opt.restoreFrom = arg + 15;
        } else if (std::strcmp(arg, "--vm=on") == 0) {
            opt.vm.enabled = true;
            opt.vmSet = true;
        } else if (std::strcmp(arg, "--vm=off") == 0) {
            opt.vm.enabled = false;
            opt.vmSet = true;
        } else if (std::strncmp(arg, "--vm", 4) == 0 &&
                   (arg[4] == '\0' || arg[4] == '=')) {
            sim::fatal("bad --vm value '%s' (expected on or off)", arg);
        } else if (std::strncmp(arg, "--page-size=", 12) == 0) {
            try {
                opt.vm.pageBytes = vm::parsePageSize(arg + 12);
            } catch (const std::invalid_argument &e) {
                sim::fatal("%s", e.what());
            }
            opt.vmSet = true;
        } else if (std::strncmp(arg, "--remap-rate=", 13) == 0) {
            char *end = nullptr;
            const double v = std::strtod(arg + 13, &end);
            if (*end != '\0' || !(v >= 0.0) || v > 1e6)
                sim::fatal("bad --remap-rate value '%s' (remaps per "
                           "million cycles, >= 0)",
                           arg + 13);
            opt.vm.remapRate = v;
            opt.vmSet = true;
        } else if (std::strncmp(arg, "--table-cache=", 14) == 0) {
            // <entries>[,<assoc>]; entries 0 disables the cache.
            char *end = nullptr;
            const long e = std::strtol(arg + 14, &end, 10);
            long a = opt.tableCache.assoc;
            if (*end == ',')
                a = std::strtol(end + 1, &end, 10);
            if (*end != '\0' || e < 0 || e > (1 << 20) || a < 1 ||
                a > 64 || (e > 0 && e % a != 0))
                sim::fatal("bad --table-cache value '%s' (expected "
                           "<entries>[,<assoc>], entries divisible by "
                           "assoc, 0 disables)",
                           arg + 14);
            opt.tableCache.entries = static_cast<std::uint32_t>(e);
            opt.tableCache.assoc = static_cast<std::uint32_t>(a);
            opt.tableCacheSet = true;
        } else if (std::strncmp(arg, "--cores=", 8) == 0) {
            char *end = nullptr;
            const long v = std::strtol(arg + 8, &end, 10);
            if (*end != '\0' || v < 1 ||
                v > static_cast<long>(sim::maxCores))
                sim::fatal("bad --cores value '%s' (expected 1..%u)",
                           arg + 8, unsigned(sim::maxCores));
            opt.cores = static_cast<unsigned>(v);
            cores_seen = true;
        } else if (std::strncmp(arg, "--ulmt-mode=", 12) == 0) {
            opt.ulmtMode = core::parseUlmtMode(arg + 12);
            cores_seen = true;
        } else if (std::strcmp(arg, "--list-workloads") == 0) {
            for (const std::string &w : driver::listWorkloads())
                std::printf("%s\n", w.c_str());
            std::printf("trace:<path>\n");
            std::exit(0);
        } else if (!scale_seen) {
            opt.scale = std::atof(arg);
            scale_seen = true;
        } else {
            sim::fatal("unexpected argument '%s' (usage: bench "
                       "[scale] [--jobs=N] [--apps=A,B,...] "
                       "[--trace-events=PATH] [--metrics-interval=N] "
                       "[--check[=basic|deep]] [--check-interval=N] "
                       "[--audit=on|off] "
                       "[--checkpoint-at=SPEC] [--checkpoint-to=DIR] "
                       "[--restore-from=PATH] [--cores=N] "
                       "[--ulmt-mode=shared|percore|sharded] "
                       "[--vm=on|off] [--page-size=4k|2m] "
                       "[--remap-rate=R] "
                       "[--table-cache=<entries>[,<assoc>]] "
                       "[--list-workloads])",
                       arg);
        }
    }
    if (opt.jobs)
        driver::setRunnerJobs(opt.jobs);
    if (!opt.traceEvents.empty())
        driver::setTraceEventsPath(opt.traceEvents);
    if (opt.metricsInterval >= 0)
        driver::setMetricsIntervalOverride(
            static_cast<sim::Cycle>(opt.metricsInterval));
    if (opt.check.enabled())
        driver::setCheckOverride(opt.check);
    if (opt.audit >= 0)
        driver::setAuditOverride(opt.audit != 0);
    if (!opt.checkpointAt.empty())
        driver::setCheckpointAt(opt.checkpointAt);
    if (!opt.checkpointTo.empty())
        driver::setCheckpointTo(opt.checkpointTo);
    if (cores_seen)
        driver::setCoresOverride(opt.cores, opt.ulmtMode);
    if (opt.vmSet)
        driver::setVmOverride(opt.vm);
    if (opt.tableCacheSet)
        driver::setTableCacheOverride(opt.tableCache);
    if (!opt.restoreFrom.empty()) {
        // Validate up front so a bad path or corrupt snapshot fails
        // before the sweep starts, with a clean diagnostic.
        try {
            (void)ckpt::CheckpointImage::readHeader(opt.restoreFrom);
        } catch (const ckpt::CkptError &e) {
            sim::fatal("--restore-from: %s", e.what());
        }
        driver::setRestoreFrom(opt.restoreFrom);
    }
    return opt;
}

Harness::Harness(std::string name, const Options &opt)
    : name_(std::move(name)), opt_(opt),
      start_(std::chrono::steady_clock::now())
{
}

void
Harness::record(const driver::RunResult &r)
{
    const unsigned cores = r.cores ? r.cores : 1u;
    runs_.push_back(Run{r.workload, r.label, r.source, r.wallSeconds,
                        r.eventsExecuted, r.cycles, r.ckptSaveSeconds,
                        r.ckptRestoreSeconds, r.ckptBytes, cores,
                        r.ulmtMode, r.audit, r.metrics, r.vmOn,
                        r.vmPageBytes, r.vmRemapRate, r.vmRemaps,
                        r.vmTlbHits, r.vmTlbMisses, r.vmWalkCycles,
                        r.vmPagesMapped, r.tcacheOn, r.tcacheEntries,
                        r.tcacheAssoc, r.tcache});
}

void
Harness::recordAll(const std::vector<driver::RunResult> &rs)
{
    for (const driver::RunResult &r : rs)
        record(r);
}

void
Harness::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += sim::strformat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

std::string
jsonNumber(double v)
{
    // Shortest round-trippable decimal; JSON has no inf/nan.
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0)
        return "null";
    return sim::strformat("%.17g", v);
}

/** Series samples need far less precision than headline metrics. */
std::string
seriesNumber(double v)
{
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0)
        return "null";
    return sim::strformat("%.6g", v);
}

/** The commit being benchmarked: CI env var, else git, else unknown. */
std::string
gitSha()
{
    if (const char *sha = std::getenv("GITHUB_SHA")) {
        if (*sha)
            return sha;
    }
    std::string out;
    if (std::FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128];
        while (std::fgets(buf, sizeof(buf), p))
            out += buf;
        ::pclose(p);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    if (out.size() != 40)
        return "unknown";
    return out;
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/** The {"git_sha", "timestamp_utc", "host"} provenance stamp. */
std::string
provenanceJson()
{
    std::string out = "  \"provenance\": {\n";
    out += "    \"git_sha\": ";
    appendEscaped(out, gitSha());
    out += ",\n    \"timestamp_utc\": ";
    appendEscaped(out, utcTimestamp());
    out += ",\n    \"host\": {";
    struct utsname un{};
    if (::uname(&un) == 0) {
        out += "\"hostname\": ";
        appendEscaped(out, un.nodename);
        out += ", \"sysname\": ";
        appendEscaped(out, un.sysname);
        out += ", \"release\": ";
        appendEscaped(out, un.release);
        out += ", \"machine\": ";
        appendEscaped(out, un.machine);
        out += sim::strformat(", \"nproc\": %ld",
                              ::sysconf(_SC_NPROCESSORS_ONLN));
    }
    out += "}\n  },\n";
    return out;
}

/** One push-outcome counter set as a JSON object.  The page-cross
 *  drop class exists only when the VM layer is on; emitting it
 *  conditionally keeps pre-VM BENCH files byte-identical. */
std::string
outcomeJson(const mem::AuditOutcomeCounts &c, bool with_page_cross)
{
    std::string out = sim::strformat(
        "{\"issued\": %llu, \"useful_timely\": %llu, "
        "\"useful_late\": %llu, \"evicted_unused\": %llu, "
        "\"redundant\": %llu, \"dropped_filter\": %llu, "
        "\"dropped_queue_full\": %llu, \"dropped_demand_match\": %llu, "
        "\"dropped_cpu_pf_match\": %llu",
        (unsigned long long)c.issued, (unsigned long long)c.usefulTimely,
        (unsigned long long)c.usefulLate,
        (unsigned long long)c.evictedUnused,
        (unsigned long long)c.redundant,
        (unsigned long long)c.droppedFilter,
        (unsigned long long)c.droppedQueueFull,
        (unsigned long long)c.droppedDemandMatch,
        (unsigned long long)c.droppedCpuPfMatch);
    if (with_page_cross)
        out += sim::strformat(", \"dropped_page_cross\": %llu",
                              (unsigned long long)c.droppedPageCross);
    return out + "}";
}

/**
 * The per-run "effectiveness" block: the audit layer's lifecycle
 * outcome taxonomy, lead-time histogram, per-tenant bus/DRAM split and
 * the blocked_by interference matrix.  Fully deterministic (no host
 * times), so regression gates may compare it exactly.
 */
std::string
effectivenessJson(const mem::AuditReport &a, bool vm_on)
{
    std::string out = "{\"cores\": [";
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        const mem::AuditCoreReport &cr = a.cores[c];
        out += c ? ",\n        " : "\n        ";
        out += "{\"push\": " + outcomeJson(cr.push, vm_on);
        out += ", \"coverage\": " + jsonNumber(cr.coverage);
        out += ", \"accuracy\": " + jsonNumber(cr.accuracy);
        out += ", \"timeliness\": " + jsonNumber(cr.timeliness);
        out += sim::strformat(
            ",\n         \"cpu_pf\": {\"issued\": %llu, "
            "\"to_memory\": %llu, \"useful_timely\": %llu, "
            "\"useful_late\": %llu, \"replaced\": %llu",
            (unsigned long long)cr.cpuPfIssued,
            (unsigned long long)cr.cpuPfToMemory,
            (unsigned long long)cr.cpuPfUsefulTimely,
            (unsigned long long)cr.cpuPfUsefulLate,
            (unsigned long long)cr.cpuPfReplaced);
        if (vm_on)
            out += sim::strformat(
                ", \"dropped_page_cross\": %llu",
                (unsigned long long)cr.cpuPfDroppedPageCross);
        out += "}";
        out += ",\n         \"lead_time\": {\"edges\": [";
        for (std::size_t i = 0; i < cr.leadEdges.size(); ++i)
            out += (i ? ", " : "") + jsonNumber(cr.leadEdges[i]);
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < cr.leadCounts.size(); ++i)
            out += sim::strformat("%s%llu", i ? ", " : "",
                                  (unsigned long long)cr.leadCounts[i]);
        out += sim::strformat("], \"below\": %llu",
                              (unsigned long long)cr.leadBelow);
        out += ", \"p50\": " + jsonNumber(cr.leadP50);
        out += ", \"p95\": " + jsonNumber(cr.leadP95) + "}";
        out += sim::strformat(",\n         \"late\": {\"count\": %llu",
                              (unsigned long long)cr.lateCount);
        out += ", \"mean\": " + jsonNumber(cr.lateMean) + "}";
        out += sim::strformat(
            ",\n         \"bus_cycles\": {\"demand\": %llu, "
            "\"prefetch\": %llu, \"other\": %llu}",
            (unsigned long long)cr.busDemandCycles,
            (unsigned long long)cr.busPrefetchCycles,
            (unsigned long long)cr.busOtherCycles);
        out += sim::strformat(
            ", \"dram_cycles\": {\"demand\": %llu, "
            "\"prefetch\": %llu, \"other\": %llu}",
            (unsigned long long)cr.dramDemandCycles,
            (unsigned long long)cr.dramPrefetchCycles,
            (unsigned long long)cr.dramOtherCycles);
        out += ",\n         \"blocked_by\": [";
        for (std::size_t i = 0; i < cr.blockedBy.size(); ++i)
            out += sim::strformat("%s%llu", i ? ", " : "",
                                  (unsigned long long)cr.blockedBy[i]);
        out += "]}";
    }
    out += "],\n       \"engines\": [";
    for (std::size_t e = 0; e < a.engines.size(); ++e) {
        out += e ? ", " : "";
        out += sim::strformat("{\"engine\": %u, \"push\": ",
                              a.engines[e].engine);
        out += outcomeJson(a.engines[e].push, vm_on) + "}";
    }
    out += sim::strformat(
        "],\n       \"table_dram_cycles\": %llu, "
        "\"open_inflight\": %llu, \"open_installed\": %llu}",
        (unsigned long long)a.tableDramCycles,
        (unsigned long long)a.openInflight,
        (unsigned long long)a.openInstalled);
    return out;
}

} // namespace

std::string
Harness::writeJson() const
{
    const double total = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();

    std::string out = "{\n";
    out += "  \"bench\": ";
    appendEscaped(out, name_);
    out += ",\n";
    out += sim::strformat("  \"jobs\": %u,\n", driver::runnerJobs());
    out += "  \"scale\": " + jsonNumber(opt_.scale) + ",\n";
    out += "  \"wall_seconds_total\": " + jsonNumber(total) + ",\n";
    out += provenanceJson();

    out += "  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const Run &r = runs_[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"workload\": ";
        appendEscaped(out, r.workload);
        out += ", \"config\": ";
        appendEscaped(out, r.label);
        out += ", \"source\": ";
        appendEscaped(out, r.source);
        out += ", \"wall_seconds\": " + jsonNumber(r.wallSeconds);
        out += sim::strformat(", \"events\": %llu",
                              (unsigned long long)r.events);
        out += ", \"events_per_sec\": " +
               jsonNumber(r.wallSeconds > 0.0
                              ? static_cast<double>(r.events) /
                                    r.wallSeconds
                              : 0.0);
        out += sim::strformat(", \"sim_cycles\": %llu",
                              (unsigned long long)r.simCycles);
        // Core count only on multicore runs, so single-core benches
        // keep the established schema byte-for-byte.
        if (r.cores > 1)
            out += sim::strformat(", \"cores\": %u", r.cores);
        // Checkpoint costs only when the run actually checkpointed,
        // so runs without one keep the established schema.
        if (r.ckptSaveSeconds > 0.0 || r.ckptRestoreSeconds > 0.0 ||
            r.ckptBytes > 0) {
            out += ", \"ckpt_save_seconds\": " +
                   jsonNumber(r.ckptSaveSeconds);
            out += ", \"ckpt_restore_seconds\": " +
                   jsonNumber(r.ckptRestoreSeconds);
            out += sim::strformat(", \"ckpt_bytes\": %llu",
                                  (unsigned long long)r.ckptBytes);
        }
        // VM layer (ISSUE 9): present only when translation ran, so
        // every pre-VM bench keeps the established schema.
        if (r.vmOn) {
            out += sim::strformat(",\n     \"vm\": {\"page_bytes\": %u",
                                  r.vmPageBytes);
            out += ", \"remap_rate\": " + jsonNumber(r.vmRemapRate);
            out += sim::strformat(
                ", \"remaps\": %llu, \"tlb_hits\": %llu, "
                "\"tlb_misses\": %llu, \"walk_cycles\": %llu, "
                "\"pages_mapped\": %llu}",
                (unsigned long long)r.vmRemaps,
                (unsigned long long)r.vmTlbHits,
                (unsigned long long)r.vmTlbMisses,
                (unsigned long long)r.vmWalkCycles,
                (unsigned long long)r.vmPagesMapped);
        }
        // Table cache (ISSUE 10): present only when --table-cache was
        // on, so cache-off runs keep the established schema.
        if (r.tcacheOn) {
            out += sim::strformat(
                ",\n     \"tcache\": {\"entries\": %u, \"assoc\": %u, "
                "\"hits\": %llu, \"misses\": %llu, "
                "\"writebacks\": %llu, "
                "\"row_batched_writebacks\": %llu, "
                "\"dirty_buf_high_water\": %llu, "
                "\"dram_accesses\": %llu}",
                r.tcacheEntries, r.tcacheAssoc,
                (unsigned long long)r.tcache.hits,
                (unsigned long long)r.tcache.misses,
                (unsigned long long)r.tcache.writebacks,
                (unsigned long long)r.tcache.rowBatchedWritebacks,
                (unsigned long long)r.tcache.dirtyBufHighWater,
                (unsigned long long)r.tcache.dramAccesses);
        }
        // Lifecycle audit (ISSUE 8): present only when the auditor ran,
        // so audit-off invocations keep the established schema.
        if (r.audit.enabled) {
            out += ",\n     \"effectiveness\": ";
            out += effectivenessJson(r.audit, r.vmOn);
        }
        out += "}";
    }
    out += runs_.empty() ? "],\n" : "\n  ],\n";

    out += "  \"metrics\": {";
    bool first_metric = true;
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        out += first_metric ? "\n    " : ",\n    ";
        first_metric = false;
        appendEscaped(out, metrics_[i].first);
        out += ": " + jsonNumber(metrics_[i].second);
    }
    // Per-run sampled time series (runs with sampling off are
    // skipped).
    bool any_series = false;
    for (const Run &r : runs_)
        any_series = any_series || !r.metrics.empty();
    if (any_series) {
        out += first_metric ? "\n    " : ",\n    ";
        first_metric = false;
        out += "\"series\": [";
        bool first_run = true;
        for (const Run &r : runs_) {
            if (r.metrics.empty())
                continue;
            out += first_run ? "\n      " : ",\n      ";
            first_run = false;
            out += "{\"workload\": ";
            appendEscaped(out, r.workload);
            out += ", \"config\": ";
            appendEscaped(out, r.label);
            out += sim::strformat(
                ", \"interval_cycles\": %llu",
                (unsigned long long)r.metrics.interval);
            out += ",\n       \"cycle\": [";
            for (std::size_t s = 0; s < r.metrics.cycles.size(); ++s)
                out += sim::strformat(
                    "%s%llu", s ? ", " : "",
                    (unsigned long long)r.metrics.cycles[s]);
            out += "],\n       \"channels\": {";
            for (std::size_t c = 0; c < r.metrics.channels.size();
                 ++c) {
                out += c ? ",\n         " : "\n         ";
                appendEscaped(out, r.metrics.channels[c]);
                out += ": [";
                const auto &vals = r.metrics.values[c];
                for (std::size_t s = 0; s < vals.size(); ++s) {
                    if (s)
                        out += ", ";
                    out += seriesNumber(vals[s]);
                }
                out += "]";
            }
            out += "}}";
        }
        out += "\n    ]";
    }
    out += first_metric ? "}\n" : "\n  }\n";
    out += "}\n";

    // A bench owns the process-wide trace file: close it here so the
    // JSON epilogue lands even when main never returns normally.
    driver::finishTraceEvents();

    std::string path = "BENCH_" + name_ + ".json";
    if (const char *dir = std::getenv("ULMT_BENCH_DIR")) {
        if (*dir)
            path = std::string(dir) + "/" + path;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        sim::warn("cannot write %s", path.c_str());
        return path;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    writeThroughputJson();
    std::printf("\n[bench] wrote %s (%.2fs total, %u jobs)\n",
                path.c_str(), total, driver::runnerJobs());
    return path;
}

void
Harness::writeThroughputJson() const
{
    // The host-side throughput summary of this bench invocation: how
    // fast the simulator itself ran each configuration.  Every bench
    // rewrites the file, so it always describes the latest invocation
    // (CI archives it next to the bench's own JSON).
    std::uint64_t total_events = 0;
    double total_wall = 0.0;
    std::string out = "{\n  \"bench\": ";
    appendEscaped(out, name_);
    out += ",\n";
    out += provenanceJson();
    out += "  \"throughput\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const Run &r = runs_[i];
        total_events += r.events;
        total_wall += r.wallSeconds;
        out += i ? ",\n    " : "\n    ";
        out += "{\"workload\": ";
        appendEscaped(out, r.workload);
        out += ", \"config\": ";
        appendEscaped(out, r.label);
        // Self-identifying rows: a throughput archive mixes many bench
        // invocations, so each row carries its machine shape.
        out += ", \"scale\": " + jsonNumber(opt_.scale);
        out += sim::strformat(", \"cores\": %u", r.cores);
        out += ", \"ulmt_mode\": ";
        appendEscaped(out, r.ulmtMode.empty() ? "shared" : r.ulmtMode);
        out += sim::strformat(", \"events\": %llu",
                              (unsigned long long)r.events);
        out += ", \"wall_seconds\": " + jsonNumber(r.wallSeconds);
        out += ", \"events_per_sec\": " +
               jsonNumber(r.wallSeconds > 0.0
                              ? static_cast<double>(r.events) /
                                    r.wallSeconds
                              : 0.0);
        out += "}";
    }
    out += runs_.empty() ? "],\n" : "\n  ],\n";
    out += sim::strformat("  \"events_total\": %llu,\n",
                          (unsigned long long)total_events);
    out += "  \"wall_seconds_sim\": " + jsonNumber(total_wall) + ",\n";
    out += "  \"events_per_sec_overall\": " +
           jsonNumber(total_wall > 0.0
                          ? static_cast<double>(total_events) /
                                total_wall
                          : 0.0) +
           "\n}\n";

    std::string path = "BENCH_throughput.json";
    if (const char *dir = std::getenv("ULMT_BENCH_DIR")) {
        if (*dir)
            path = std::string(dir) + "/" + path;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        sim::warn("cannot write %s", path.c_str());
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
}

} // namespace bench
