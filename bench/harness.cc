#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "driver/runner.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace bench {

const std::vector<std::string> &
Options::appList() const
{
    return apps.empty() ? workloads::applicationNames() : apps;
}

Options
parseArgs(int argc, char **argv, double default_scale)
{
    Options opt;
    opt.scale = default_scale;
    bool scale_seen = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            char *end = nullptr;
            const long v = std::strtol(arg + 7, &end, 10);
            if (*end != '\0' || v < 1 || v > 1024)
                sim::fatal("bad --jobs value '%s'", arg + 7);
            opt.jobs = static_cast<unsigned>(v);
        } else if (std::strncmp(arg, "--apps=", 7) == 0) {
            std::string cur;
            for (const char *p = arg + 7;; ++p) {
                if (*p == ',' || *p == '\0') {
                    if (!cur.empty())
                        opt.apps.push_back(cur);
                    cur.clear();
                    if (*p == '\0')
                        break;
                } else {
                    cur += *p;
                }
            }
            if (opt.apps.empty())
                sim::fatal("empty --apps list");
        } else if (!scale_seen) {
            opt.scale = std::atof(arg);
            scale_seen = true;
        } else {
            sim::fatal("unexpected argument '%s' (usage: bench "
                       "[scale] [--jobs=N] [--apps=A,B,...])", arg);
        }
    }
    if (opt.jobs)
        driver::setRunnerJobs(opt.jobs);
    return opt;
}

Harness::Harness(std::string name, const Options &opt)
    : name_(std::move(name)), opt_(opt),
      start_(std::chrono::steady_clock::now())
{
}

void
Harness::record(const driver::RunResult &r)
{
    runs_.push_back(Run{r.workload, r.label, r.source, r.wallSeconds,
                        r.eventsExecuted, r.cycles});
}

void
Harness::recordAll(const std::vector<driver::RunResult> &rs)
{
    for (const driver::RunResult &r : rs)
        record(r);
}

void
Harness::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += sim::strformat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

std::string
jsonNumber(double v)
{
    // Shortest round-trippable decimal; JSON has no inf/nan.
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0)
        return "null";
    return sim::strformat("%.17g", v);
}

} // namespace

std::string
Harness::writeJson() const
{
    const double total = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();

    std::string out = "{\n";
    out += "  \"bench\": ";
    appendEscaped(out, name_);
    out += ",\n";
    out += sim::strformat("  \"jobs\": %u,\n", driver::runnerJobs());
    out += "  \"scale\": " + jsonNumber(opt_.scale) + ",\n";
    out += "  \"wall_seconds_total\": " + jsonNumber(total) + ",\n";

    out += "  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const Run &r = runs_[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"workload\": ";
        appendEscaped(out, r.workload);
        out += ", \"config\": ";
        appendEscaped(out, r.label);
        out += ", \"source\": ";
        appendEscaped(out, r.source);
        out += ", \"wall_seconds\": " + jsonNumber(r.wallSeconds);
        out += sim::strformat(", \"events\": %llu",
                              (unsigned long long)r.events);
        out += ", \"events_per_sec\": " +
               jsonNumber(r.wallSeconds > 0.0
                              ? static_cast<double>(r.events) /
                                    r.wallSeconds
                              : 0.0);
        out += sim::strformat(", \"sim_cycles\": %llu}",
                              (unsigned long long)r.simCycles);
    }
    out += runs_.empty() ? "],\n" : "\n  ],\n";

    out += "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        appendEscaped(out, metrics_[i].first);
        out += ": " + jsonNumber(metrics_[i].second);
    }
    out += metrics_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";

    std::string path = "BENCH_" + name_ + ".json";
    if (const char *dir = std::getenv("ULMT_BENCH_DIR")) {
        if (*dir)
            path = std::string(dir) + "/" + path;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        sim::warn("cannot write %s", path.c_str());
        return path;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\n[bench] wrote %s (%.2fs total, %u jobs)\n",
                path.c_str(), total, driver::runnerJobs());
    return path;
}

} // namespace bench
