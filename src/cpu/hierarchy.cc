#include "cpu/hierarchy.hh"

#include <algorithm>
#include <vector>

#include "ckpt/sim_state.hh"
#include "vm/vm.hh"

namespace cpu {

namespace {

/** How long an evicted dirty line stays visible in the WB queue. */
constexpr sim::Cycle wbQueueResidency = 96;

} // namespace

Hierarchy::Hierarchy(sim::EventQueue &eq, const mem::TimingParams &tp,
                     mem::MemorySystem &ms, bool enable_stream_pf,
                     unsigned core)
    : eq_(eq), tp_(tp), ms_(ms), core_(core), l1_("L1", tp.l1),
      l2_("L2", tp.l2),
      l2Mshrs_(tp.l2Mshrs), streamPfEnabled_(enable_stream_pf),
      streamPf_(StreamPrefetcherParams{tp.streamNumSeq,
                                       tp.streamNumPref,
                                       tp.l1.lineBytes, 16}),
      missGaps_({0.0, 80.0, 200.0, 280.0})
{
}

void
Hierarchy::setVm(vm::Vm *v)
{
    vm_ = v;
    pageShift_ = v ? v->pageShift() : 0;
}

void
Hierarchy::recordMissAtMemory(sim::Cycle at_memory)
{
    if (lastMissAtMemory_ != sim::neverCycle &&
        at_memory >= lastMissAtMemory_) {
        missGaps_.sample(
            static_cast<double>(at_memory - lastMissAtMemory_));
    }
    lastMissAtMemory_ = at_memory;
}

AccessOutcome
Hierarchy::access(sim::Cycle when, sim::Addr addr, bool is_write)
{
    if (is_write)
        ++stats_.stores;
    else
        ++stats_.loads;

    // With the VM layer attached the processor issues virtual
    // addresses; translate before the L1 index (a TLB miss charges the
    // page walk onto the issue cycle).
    if (vm_)
        addr = vm_->translate(core_, addr, when);

    if (mem::CacheLine *line = l1_.access(addr)) {
        ++stats_.l1Hits;
        AccessOutcome out;
        if (line->readyAt > when) {
            // Delayed hit on an in-flight L1 fill (MSHR merge).
            out.complete = line->readyAt;
            out.served = line->fillOrigin;
        } else {
            out.complete = when + tp_.l1HitRt;
            out.served = sim::ServedBy::L1;
        }
        if (line->cpuPrefetched) {
            // First demand touch of a stream-prefetched line.
            line->cpuPrefetched = false;
            ++stats_.cpuPfUseful;
            const bool late = line->readyAt > when;
            if (!late)
                ++stats_.cpuPfTimely;
            if (streamPfEnabled_) {
                pfScratch_.clear();
                streamPf_.observePrefetchedTouch(addr, late,
                                                 pfScratch_);
                for (sim::Addr pf : pfScratch_) {
                    if (pageShift_ != 0 &&
                        (pf >> pageShift_) != (addr >> pageShift_)) {
                        ++stats_.cpuPfDroppedPageCross;
                        continue;
                    }
                    issueCpuPrefetch(when, pf);
                }
            }
        }
        if (is_write)
            line->dirty = true;
        return out;
    }

    ++stats_.l1Misses;
    AccessOutcome out = accessL2(when, addr, /*count_demand=*/true);
    fillL1(when, addr, out.complete, out.served, false);
    if (is_write) {
        if (mem::CacheLine *line = l1_.find(addr))
            line->dirty = true;
    }

    if (streamPfEnabled_) {
        pfScratch_.clear();
        streamPf_.observeMiss(addr, pfScratch_);
        for (sim::Addr pf : pfScratch_) {
            if (pageShift_ != 0 &&
                (pf >> pageShift_) != (addr >> pageShift_)) {
                ++stats_.cpuPfDroppedPageCross;
                continue;
            }
            issueCpuPrefetch(when, pf);
        }
    }
    return out;
}

AccessOutcome
Hierarchy::accessL2(sim::Cycle when, sim::Addr addr, bool count_demand)
{
    const sim::Addr line_addr = l2_.lineAddr(addr);

    if (mem::CacheLine *line = l2_.access(line_addr)) {
        AccessOutcome out;
        if (line->readyAt > when) {
            // The line is being filled already: merge into the MSHR.
            if (count_demand)
                ++stats_.l2MshrMerges;
            out.complete = std::max(when + tp_.l2HitRt, line->readyAt);
            out.served = line->fillOrigin;
        } else {
            if (count_demand)
                ++stats_.l2Hits;
            out.complete = when + tp_.l2HitRt;
            out.served = sim::ServedBy::L2;
        }
        if (line->prefetched) {
            // Demand reference to a ULMT-pushed line: a full hit.
            line->prefetched = false;
            if (count_demand) {
                ++stats_.ulmtHits;
                if (audit_)
                    audit_->pushUsedTimely(core_, line_addr, when);
            }
        }
        line->cpuPrefetched = false;
        return out;
    }

    if (count_demand) {
        ++stats_.l2Misses;
        if (onDemandL2Miss)
            onDemandL2Miss(when, line_addr);
    }

    // A ULMT prefetch for this line is in flight: the reply will steal
    // the MSHR and service this miss (a DelayedHit, Section 2.1).
    const sim::Cycle pf_arrival =
        ms_.inflightPrefetchArrival(line_addr, core_);
    if (pf_arrival != sim::neverCycle) {
        if (count_demand)
            ++stats_.ulmtDelayedHits;
        AccessOutcome out;
        out.complete = std::max(when + tp_.l2HitRt, pf_arrival);
        out.served = sim::ServedBy::Memory;
        const sim::Cycle nominal = tp_.memRowHitRt();
        const sim::Cycle paid = out.complete - when;
        if (count_demand && nominal > paid)
            stats_.delayedHitSavedCycles += nominal - paid;
        claimedPush_.insert(line_addr);
        if (audit_)
            audit_->pushUsedLate(core_, line_addr, when, pf_arrival);
        l2Mshrs_.add(out.complete);
        fillL2(when, line_addr, out.complete, sim::ServedBy::Memory,
               /*ulmt_pushed=*/false, false);
        return out;
    }

    // Genuine memory fetch.
    const sim::Cycle start = l2Mshrs_.acquire(when);
    recordMissAtMemory(start);
    const sim::Cycle complete =
        ms_.fetchLine(start, line_addr, sim::RequestKind::Demand, core_);
    l2Mshrs_.add(complete);
    if (count_demand)
        ++stats_.nonPrefMisses;
    fillL2(when, line_addr, complete, sim::ServedBy::Memory, false,
           false);
    return {complete, sim::ServedBy::Memory};
}

void
Hierarchy::issueCpuPrefetch(sim::Cycle when, sim::Addr addr)
{
    ++stats_.cpuPfIssued;
    if (l1_.find(addr))
        return;

    const sim::Addr line_addr = l2_.lineAddr(addr);
    if (mem::CacheLine *line = l2_.find(line_addr)) {
        l2_.touch(line);
        const sim::Cycle ready =
            std::max(when + tp_.l2HitRt, line->readyAt);
        fillL1(when, addr, ready, sim::ServedBy::L2, true);
        return;
    }

    // A ULMT push in flight covers the L2 fill; just stage the L1 copy.
    const sim::Cycle pf_arrival =
        ms_.inflightPrefetchArrival(line_addr, core_);
    if (pf_arrival != sim::neverCycle) {
        fillL1(when, addr, pf_arrival, sim::ServedBy::Memory, true);
        return;
    }

    l2Mshrs_.expire(when);
    if (l2Mshrs_.full())
        return;  // no MSHR: drop the prefetch

    ++stats_.cpuPfToMemory;
    const sim::Cycle complete =
        ms_.fetchLine(when, line_addr, sim::RequestKind::CpuPrefetch,
                      core_);
    l2Mshrs_.add(complete);
    fillL2(when, line_addr, complete, sim::ServedBy::Memory, false,
           false);
    fillL1(when, addr, complete, sim::ServedBy::Memory, true);
}

void
Hierarchy::fillL1(sim::Cycle now, sim::Addr addr, sim::Cycle ready_at,
                  sim::ServedBy origin, bool cpu_prefetched)
{
    mem::Eviction ev;
    mem::CacheLine *line = l1_.insert(addr, now, ready_at, ev);
    line->fillOrigin = origin;
    line->cpuPrefetched = cpu_prefetched;
    if (ev.valid) {
        if (ev.cpuPrefetched)
            ++stats_.cpuPfReplaced;
        if (ev.dirty) {
            // Write the L1 victim down into the L2 (non-inclusive: if
            // the L2 no longer holds it, it goes to memory).
            if (mem::CacheLine *l2line = l2_.find(ev.lineAddr))
                l2line->dirty = true;
            else
                ms_.writeback(now, l2_.lineAddr(ev.lineAddr), core_);
        }
    }
}

mem::CacheLine *
Hierarchy::fillL2(sim::Cycle now, sim::Addr addr, sim::Cycle ready_at,
                  sim::ServedBy origin, bool ulmt_pushed,
                  bool cpu_prefetched)
{
    mem::Eviction ev;
    mem::CacheLine *line = l2_.insert(addr, now, ready_at, ev);
    line->fillOrigin = origin;
    line->prefetched = ulmt_pushed;
    line->cpuPrefetched = cpu_prefetched;
    if (ev.valid) {
        if (ev.prefetched) {
            ++stats_.ulmtReplaced;
            if (audit_)
                audit_->pushEvicted(core_, ev.lineAddr, now);
        }
        if (ev.dirty) {
            ms_.writeback(now, ev.lineAddr, core_);
            wbQueue_[ev.lineAddr] = now + wbQueueResidency;
        }
    }
    if (wbQueue_.size() > 128) {
        for (auto it = wbQueue_.begin(); it != wbQueue_.end();) {
            if (it->second <= now)
                it = wbQueue_.erase(it);
            else
                ++it;
        }
    }
    return line;
}

void
Hierarchy::acceptPush(sim::Cycle when, sim::Addr line_addr)
{
    // A matching demand miss already claimed this reply (DelayedHit);
    // the line was installed when the claim was made.
    if (claimedPush_.erase(line_addr))
        return;

    // Drop rule 1: the L2 already has a copy.
    if (l2_.find(line_addr)) {
        ++stats_.pushRedundantPresent;
        if (audit_)
            audit_->pushRedundant(core_, line_addr, when);
        return;
    }
    // Drop rule 2: the line sits in the write-back queue.
    auto wb = wbQueue_.find(line_addr);
    if (wb != wbQueue_.end()) {
        if (wb->second > when) {
            ++stats_.pushRedundantWb;
            if (audit_)
                audit_->pushRedundant(core_, line_addr, when);
            return;
        }
        wbQueue_.erase(wb);
    }
    // Drop rule 3: all MSHRs busy.
    l2Mshrs_.expire(when);
    if (l2Mshrs_.full()) {
        ++stats_.pushDroppedMshrFull;
        if (audit_)
            audit_->pushRedundant(core_, line_addr, when);
        return;
    }
    // Drop rule 4: the whole target set is transaction-pending.
    if (l2_.setAllPending(line_addr, when)) {
        ++stats_.pushDroppedSetPending;
        if (audit_)
            audit_->pushRedundant(core_, line_addr, when);
        return;
    }

    fillL2(when, line_addr, when, sim::ServedBy::Memory,
           /*ulmt_pushed=*/true, false);
    ++stats_.pushInstalled;
    if (audit_)
        audit_->pushInstalled(core_, line_addr, when);
}

void
Hierarchy::registerStats(sim::StatRegistry &reg,
                         const std::string &prefix) const
{
    const auto n = [&prefix](const char *name) {
        return prefix + name;
    };
    reg.addCounter(n("proc.loads"), &stats_.loads);
    reg.addCounter(n("proc.stores"), &stats_.stores);
    reg.addCounter(n("l1.hits"), &stats_.l1Hits);
    reg.addCounter(n("l1.misses"), &stats_.l1Misses);
    reg.addCounter(n("l2.hits"), &stats_.l2Hits);
    reg.addCounter(n("l2.misses"), &stats_.l2Misses);
    reg.addCounter(n("l2.mshr.merges"), &stats_.l2MshrMerges);
    reg.addCounter(n("l2.push.hits"), &stats_.ulmtHits);
    reg.addCounter(n("l2.push.delayed_hits"), &stats_.ulmtDelayedHits);
    reg.addCounter(n("l2.push.non_pref_misses"), &stats_.nonPrefMisses);
    reg.addCounter(n("l2.push.replaced"), &stats_.ulmtReplaced);
    reg.addCounter(n("l2.push.redundant_present"),
                   &stats_.pushRedundantPresent);
    reg.addCounter(n("l2.push.redundant_wb"), &stats_.pushRedundantWb);
    reg.addCounter(n("l2.push.dropped_mshr_full"),
                   &stats_.pushDroppedMshrFull);
    reg.addCounter(n("l2.push.dropped_set_pending"),
                   &stats_.pushDroppedSetPending);
    reg.addCounter(n("l2.push.installed"), &stats_.pushInstalled);
    reg.addCounter(n("l2.push.delayed_hit_saved_cycles"),
                   &stats_.delayedHitSavedCycles);
    reg.addCounter(n("cpu_pf.issued"), &stats_.cpuPfIssued);
    reg.addCounter(n("cpu_pf.to_memory"), &stats_.cpuPfToMemory);
    reg.addCounter(n("cpu_pf.useful"), &stats_.cpuPfUseful);
    reg.addCounter(n("cpu_pf.timely"), &stats_.cpuPfTimely);
    reg.addCounter(n("cpu_pf.replaced"), &stats_.cpuPfReplaced);
    reg.addCounter(n("cpu_pf.dropped_page_cross"),
                   &stats_.cpuPfDroppedPageCross);
    reg.addHistogram(n("l2.miss_gap_cycles"), &missGaps_);
}

void
Hierarchy::saveState(ckpt::StateWriter &w) const
{
    l1_.saveState(w);
    l2_.saveState(w);
    l2Mshrs_.saveState(w);
    if (streamPfEnabled_)
        streamPf_.saveState(w);

    // Sorted iteration keeps the checkpoint bytes deterministic.
    std::vector<sim::Addr> claimed(claimedPush_.begin(),
                                   claimedPush_.end());
    std::sort(claimed.begin(), claimed.end());
    w.u64(claimed.size());
    for (sim::Addr line : claimed)
        w.u64(line);

    std::vector<std::pair<sim::Addr, sim::Cycle>> wb(wbQueue_.begin(),
                                                     wbQueue_.end());
    std::sort(wb.begin(), wb.end());
    w.u64(wb.size());
    for (const auto &[line, retire] : wb) {
        w.u64(line);
        w.u64(retire);
    }

    w.u64(stats_.loads);
    w.u64(stats_.stores);
    w.u64(stats_.l1Hits);
    w.u64(stats_.l1Misses);
    w.u64(stats_.l2Hits);
    w.u64(stats_.l2Misses);
    w.u64(stats_.l2MshrMerges);
    w.u64(stats_.ulmtHits);
    w.u64(stats_.ulmtDelayedHits);
    w.u64(stats_.nonPrefMisses);
    w.u64(stats_.ulmtReplaced);
    w.u64(stats_.pushRedundantPresent);
    w.u64(stats_.pushRedundantWb);
    w.u64(stats_.pushDroppedMshrFull);
    w.u64(stats_.pushDroppedSetPending);
    w.u64(stats_.pushInstalled);
    w.u64(stats_.delayedHitSavedCycles);
    w.u64(stats_.cpuPfIssued);
    w.u64(stats_.cpuPfToMemory);
    w.u64(stats_.cpuPfUseful);
    w.u64(stats_.cpuPfTimely);
    w.u64(stats_.cpuPfReplaced);
    w.u64(stats_.cpuPfDroppedPageCross);

    ckpt::save(w, missGaps_);
    w.u64(lastMissAtMemory_);
}

void
Hierarchy::restoreState(ckpt::StateReader &r)
{
    l1_.restoreState(r);
    l2_.restoreState(r);
    l2Mshrs_.restoreState(r);
    if (streamPfEnabled_)
        streamPf_.restoreState(r);

    claimedPush_.clear();
    const std::uint64_t nClaimed = r.u64();
    for (std::uint64_t i = 0; i < nClaimed; ++i)
        claimedPush_.insert(r.u64());

    wbQueue_.clear();
    const std::uint64_t nWb = r.u64();
    for (std::uint64_t i = 0; i < nWb; ++i) {
        const sim::Addr line = r.u64();
        wbQueue_[line] = r.u64();
    }

    stats_.loads = r.u64();
    stats_.stores = r.u64();
    stats_.l1Hits = r.u64();
    stats_.l1Misses = r.u64();
    stats_.l2Hits = r.u64();
    stats_.l2Misses = r.u64();
    stats_.l2MshrMerges = r.u64();
    stats_.ulmtHits = r.u64();
    stats_.ulmtDelayedHits = r.u64();
    stats_.nonPrefMisses = r.u64();
    stats_.ulmtReplaced = r.u64();
    stats_.pushRedundantPresent = r.u64();
    stats_.pushRedundantWb = r.u64();
    stats_.pushDroppedMshrFull = r.u64();
    stats_.pushDroppedSetPending = r.u64();
    stats_.pushInstalled = r.u64();
    stats_.delayedHitSavedCycles = r.u64();
    stats_.cpuPfIssued = r.u64();
    stats_.cpuPfToMemory = r.u64();
    stats_.cpuPfUseful = r.u64();
    stats_.cpuPfTimely = r.u64();
    stats_.cpuPfReplaced = r.u64();
    stats_.cpuPfDroppedPageCross = r.u64();

    ckpt::restore(r, missGaps_);
    lastMissAtMemory_ = r.u64();
}

} // namespace cpu
