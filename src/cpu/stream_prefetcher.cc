#include "cpu/stream_prefetcher.hh"

#include <algorithm>

namespace cpu {

StreamPrefetcher::Stream *
StreamPrefetcher::matchStream(sim::Addr line)
{
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t dist =
            (static_cast<std::int64_t>(s.nextExpected) -
             static_cast<std::int64_t>(line)) *
            s.stride;
        if (dist >= -1 &&
            dist <= 4 * static_cast<std::int64_t>(p_.numPref))
            return &s;
    }
    return nullptr;
}

StreamPrefetcher::Stream *
StreamPrefetcher::allocStream()
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid)
            return &s;
        if (s.stamp < victim->stamp)
            victim = &s;
    }
    return victim;
}

bool
StreamPrefetcher::inHistory(sim::Addr line) const
{
    return std::find(history_.begin(), history_.end(), line) !=
           history_.end();
}

void
StreamPrefetcher::emitExtend(Stream &s, std::uint32_t count,
                             std::vector<sim::Addr> &out)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::int64_t line =
            static_cast<std::int64_t>(s.nextExpected) + s.stride;
        if (line < 0)
            break;
        s.nextExpected = static_cast<sim::Addr>(line);
        out.push_back(s.nextExpected * p_.lineBytes);
    }
    s.stamp = ++stampCounter_;
}

void
StreamPrefetcher::emitAhead(Stream &s, sim::Addr from_line,
                            std::vector<sim::Addr> &out)
{
    const std::int64_t target =
        static_cast<std::int64_t>(from_line) +
        s.stride * static_cast<std::int64_t>(p_.numPref);
    while (true) {
        const std::int64_t next =
            static_cast<std::int64_t>(s.nextExpected) + s.stride;
        if (next < 0 || (target - next) * s.stride < 0)
            break;
        s.nextExpected = static_cast<sim::Addr>(next);
        out.push_back(s.nextExpected * p_.lineBytes);
    }
    s.stamp = ++stampCounter_;
}

void
StreamPrefetcher::observeMiss(sim::Addr addr, std::vector<sim::Addr> &out)
{
    const sim::Addr line = lineOf(addr);

    // An established stream missed within its window: prefetch the
    // next NumPref lines from the miss, as with the paper's stream
    // register.
    if (Stream *s = matchStream(line)) {
        emitAhead(*s, line, out);
        return;
    }

    // Stream detection: the third miss of a +/-1 line sequence.
    for (std::int64_t stride : {std::int64_t{1}, std::int64_t{-1}}) {
        const sim::Addr prev1 = line - static_cast<sim::Addr>(stride);
        const sim::Addr prev2 = line - static_cast<sim::Addr>(2 * stride);
        if (inHistory(prev1) && inHistory(prev2)) {
            Stream *s = allocStream();
            s->valid = true;
            s->stride = stride;
            s->nextExpected = line;
            ++streamsDetected_;
            emitExtend(*s, p_.numPref, out);
            break;
        }
    }

    history_.push_back(line);
    if (history_.size() > p_.historyDepth)
        history_.pop_front();
}

void
StreamPrefetcher::observePrefetchedTouch(sim::Addr addr, bool late,
                                         std::vector<sim::Addr> &out)
{
    // The paper's prefetcher keeps a fixed lookahead: the stream
    // register tops the stream up to NumPref lines past the consumed
    // address, whether or not the line arrived on time.  (This is why
    // its CG prefetches are accurate but only ~64% timely -- the gap
    // the Seq1+Repl Verbose customization closes.)
    (void)late;
    const sim::Addr line = lineOf(addr);
    if (Stream *s = matchStream(line))
        emitAhead(*s, line, out);
}

} // namespace cpu
