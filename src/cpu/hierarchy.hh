/**
 * @file
 * The main processor's cache hierarchy: L1, L2, the Conven4 stream
 * prefetcher, and the L2-side support for accepting ULMT push
 * prefetches (Section 2.1).
 *
 * The L2 implements the paper's four push drop rules (line already
 * present, line in the write-back queue, all MSHRs busy, target set
 * fully transaction-pending), MSHR stealing when a pushed line matches
 * a pending demand miss (delayed hits), and the prefetch-effectiveness
 * classification behind Figure 9 (Hits / DelayedHits / NonPrefMisses /
 * Replaced / Redundant).
 */

#ifndef CPU_HIERARCHY_HH
#define CPU_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/stream_prefetcher.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vm {
class Vm;
}

namespace cpu {

/** Result of a processor memory reference. */
struct AccessOutcome
{
    sim::Cycle complete;   //!< cycle when the data is ready
    sim::ServedBy served;  //!< level that serviced the reference
};

/** Hierarchy-level statistics (feeds Figures 6, 7, 9). */
struct HierarchyStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;        //!< demand L2 misses
    std::uint64_t l2MshrMerges = 0;    //!< merged into a pending fill

    // --- Figure 9 classification ------------------------------------
    std::uint64_t ulmtHits = 0;        //!< demand hit on pushed line
    std::uint64_t ulmtDelayedHits = 0; //!< miss matched in-flight push
    std::uint64_t nonPrefMisses = 0;   //!< demand misses at full latency
    std::uint64_t ulmtReplaced = 0;    //!< pushed line evicted unused
    std::uint64_t pushRedundantPresent = 0;
    std::uint64_t pushRedundantWb = 0;
    std::uint64_t pushDroppedMshrFull = 0;
    std::uint64_t pushDroppedSetPending = 0;
    std::uint64_t pushInstalled = 0;
    /** Latency cycles saved by delayed hits. */
    std::uint64_t delayedHitSavedCycles = 0;

    // --- Processor-side prefetcher ----------------------------------
    std::uint64_t cpuPfIssued = 0;
    std::uint64_t cpuPfToMemory = 0;
    std::uint64_t cpuPfUseful = 0;   //!< prefetched line later referenced
    std::uint64_t cpuPfTimely = 0;   //!< ... and ready when referenced
    std::uint64_t cpuPfReplaced = 0;
    /** Stream-prefetch candidates refused because they crossed a
     *  physical page boundary (VM layer on only). */
    std::uint64_t cpuPfDroppedPageCross = 0;

    /** Total pushed-line redundant drops. */
    std::uint64_t
    pushRedundant() const
    {
        return pushRedundantPresent + pushRedundantWb +
               pushDroppedMshrFull + pushDroppedSetPending;
    }
};

/**
 * A bounded set of outstanding L2 fills (miss status handling
 * registers).  Entries expire at their completion cycle.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t capacity) : capacity_(capacity) {}

    /** Drop entries whose fill completed at or before @p now. */
    void
    expire(sim::Cycle now)
    {
        while (!busyUntil_.empty() && *busyUntil_.begin() <= now)
            busyUntil_.erase(busyUntil_.begin());
    }

    bool full() const { return busyUntil_.size() >= capacity_; }

    /** Entries still busy strictly after @p now (sampling only). */
    std::size_t
    inUse(sim::Cycle now) const
    {
        std::size_t n = 0;
        for (auto it = busyUntil_.rbegin();
             it != busyUntil_.rend() && *it > now; ++it)
            ++n;
        return n;
    }

    /**
     * Reserve an MSHR at @p ready; if all are busy, wait for the
     * earliest outstanding fill.
     * @return the cycle the reservation can start
     */
    sim::Cycle
    acquire(sim::Cycle ready)
    {
        expire(ready);
        if (!full())
            return ready;
        sim::Cycle earliest = *busyUntil_.begin();
        busyUntil_.erase(busyUntil_.begin());
        return earliest > ready ? earliest : ready;
    }

    void add(sim::Cycle complete) { busyUntil_.insert(complete); }

    void clear() { busyUntil_.clear(); }

    /** Serialize outstanding-fill deadlines (multiset iterates sorted,
     *  so the encoding is deterministic). */
    void
    saveState(ckpt::StateWriter &w) const
    {
        w.u64(busyUntil_.size());
        for (sim::Cycle c : busyUntil_)
            w.u64(c);
    }

    void
    restoreState(ckpt::StateReader &r)
    {
        busyUntil_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            busyUntil_.insert(r.u64());
    }

  private:
    std::uint32_t capacity_;
    std::multiset<sim::Cycle> busyUntil_;
};

/** L1 + L2 + stream prefetcher + memory-system glue. */
class Hierarchy
{
  public:
    /**
     * @param eq global event queue
     * @param tp machine parameters
     * @param ms memory system below the L2
     * @param enable_stream_pf enable the Conven4 prefetcher
     * @param core id of the owning main processor (0 on single-core)
     */
    Hierarchy(sim::EventQueue &eq, const mem::TimingParams &tp,
              mem::MemorySystem &ms, bool enable_stream_pf,
              unsigned core = 0);

    /** Id of the owning main processor. */
    unsigned core() const { return core_; }

    /**
     * Attach the passive prefetch-lifecycle auditor (nullptr -- the
     * default -- disables the hooks).  The L2 reports each pushed
     * line's terminal outcome: first demand touch (useful timely),
     * delayed-hit claim (useful late), refusal (redundant) and unused
     * eviction.  Purely observational; timing is unchanged.
     */
    void setAudit(mem::PrefetchAudit *a) { audit_ = a; }

    /**
     * Attach the virtual-memory layer (nullptr -- the default -- keeps
     * the pre-VM flat addressing, bit-for-bit).  When set, access()
     * treats its address as virtual: the per-core TLB translates it
     * (charging the page walk on a miss) and everything below the
     * processor -- caches, prefetchers, queues -- observes physical
     * addresses.  Stream-prefetch candidates that land on a different
     * physical page than their trigger are dropped, since physical
     * contiguity across a page boundary is meaningless under remap.
     */
    void setVm(vm::Vm *v);

    /**
     * A demand reference from the processor.
     *
     * @param when issue cycle
     * @param addr byte address
     * @param is_write store vs. load
     */
    AccessOutcome access(sim::Cycle when, sim::Addr addr, bool is_write);

    /**
     * A ULMT-pushed line arriving at the L2 (wired as the memory
     * system's push callback).
     */
    void acceptPush(sim::Cycle when, sim::Addr line_addr);

    /** L2-line-aligned address. */
    sim::Addr l2LineAddr(sim::Addr addr) const { return l2_.lineAddr(addr); }

    const HierarchyStats &stats() const { return stats_; }
    const mem::Cache &l1() const { return l1_; }
    const mem::Cache &l2() const { return l2_; }
    /** Mutable cache access (deep-checker shadow attachment only). */
    mem::Cache &l1() { return l1_; }
    mem::Cache &l2() { return l2_; }

    /** Structural invariants of both tag arrays. */
    void
    checkInvariants(check::CheckContext &ctx) const
    {
        l1_.checkInvariants(ctx);
        l2_.checkInvariants(ctx);
    }
    const StreamPrefetcher *streamPrefetcher() const
    {
        return streamPfEnabled_ ? &streamPf_ : nullptr;
    }

    /** Inter-arrival histogram of demand misses at memory (Fig. 6). */
    const sim::BinnedHistogram &missGapHistogram() const
    {
        return missGaps_;
    }

    /** L2 MSHRs busy strictly after @p now (sampling only). */
    std::size_t mshrInUse(sim::Cycle now) const
    {
        return l2Mshrs_.inUse(now);
    }

    /**
     * Register cache/push/prefetcher stats under "l1.*"/"l2.*",
     * prepending @p prefix (e.g. "cpu.2." on multicore machines).
     */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix = "") const;

    /** Serialize both tag arrays, MSHRs, stream prefetcher, queues. */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

    /**
     * Optional observer of demand L2 misses (issue cycle, line addr),
     * used to capture the miss stream for the Figure 5 predictability
     * study.
     */
    std::function<void(sim::Cycle, sim::Addr)> onDemandL2Miss;

  private:
    /** Handle an L1 miss: L2 lookup and, if needed, memory. */
    AccessOutcome accessL2(sim::Cycle when, sim::Addr addr,
                           bool count_demand);

    /** Issue one processor-side prefetch into the L1. */
    void issueCpuPrefetch(sim::Cycle when, sim::Addr addr);

    /** Fill the L1 with a line; handle the eviction. */
    void fillL1(sim::Cycle now, sim::Addr addr, sim::Cycle ready_at,
                sim::ServedBy origin, bool cpu_prefetched);

    /** Fill the L2 with a line; handle the eviction. */
    mem::CacheLine *fillL2(sim::Cycle now, sim::Addr addr,
                           sim::Cycle ready_at, sim::ServedBy origin,
                           bool ulmt_pushed, bool cpu_prefetched);

    void recordMissAtMemory(sim::Cycle at_memory);

    sim::EventQueue &eq_;
    const mem::TimingParams &tp_;
    mem::MemorySystem &ms_;
    unsigned core_;
    mem::Cache l1_;
    mem::Cache l2_;
    MshrFile l2Mshrs_;
    bool streamPfEnabled_;
    StreamPrefetcher streamPf_;
    std::vector<sim::Addr> pfScratch_;

    /** Demand misses that claimed an in-flight push (delayed hits). */
    std::unordered_set<sim::Addr> claimedPush_;
    /** Lines recently evicted dirty: line -> write-back retire cycle. */
    std::unordered_map<sim::Addr, sim::Cycle> wbQueue_;

    HierarchyStats stats_;
    sim::BinnedHistogram missGaps_;
    sim::Cycle lastMissAtMemory_ = sim::neverCycle;
    mem::PrefetchAudit *audit_ = nullptr;
    vm::Vm *vm_ = nullptr;
    std::uint32_t pageShift_ = 0;  //!< 0 = VM layer off
};

} // namespace cpu

#endif // CPU_HIERARCHY_HH
