/**
 * @file
 * The processor-side sequential prefetcher ("Conven4" in the paper).
 *
 * Following Section 4: the prefetcher monitors L1 cache misses and can
 * identify and prefetch up to NumSeq concurrent streams of stride +1
 * or -1 (in L1 lines).  When the third miss of an arithmetic sequence
 * is observed it recognizes a stream and prefetches the next NumPref
 * lines into the L1; a register remembers the stride and next expected
 * address, and further activity on the stream keeps it running ahead.
 */

#ifndef CPU_STREAM_PREFETCHER_HH
#define CPU_STREAM_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "ckpt/state.hh"
#include "sim/types.hh"

namespace cpu {

/** Configuration of the stream prefetcher. */
struct StreamPrefetcherParams
{
    std::uint32_t numSeq = 4;    //!< concurrent stream registers
    std::uint32_t numPref = 6;   //!< lines prefetched per trigger
    std::uint32_t lineBytes = 32;
    std::uint32_t historyDepth = 16;  //!< misses kept for detection
};

/** Detects sequential miss streams and emits prefetch addresses. */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const StreamPrefetcherParams &p) : p_(p)
    {
        streams_.resize(p_.numSeq);
    }

    /**
     * Observe a demand L1 miss.  Appends the lines to prefetch (L1-line
     * aligned) to @p out.
     */
    void observeMiss(sim::Addr addr, std::vector<sim::Addr> &out);

    /**
     * Observe the first demand touch of a line this prefetcher brought
     * into the L1: the stream continues.  A timely touch keeps the
     * stream one line ahead; a late touch (the line was still in
     * flight, i.e. the processor effectively missed on the expected
     * address, as with the paper's stream register) pushes it NumPref
     * lines further out so the distance grows until prefetches arrive
     * on time.
     */
    void observePrefetchedTouch(sim::Addr addr, bool late,
                                std::vector<sim::Addr> &out);

    std::uint64_t streamsDetected() const { return streamsDetected_; }

    void
    reset()
    {
        for (auto &s : streams_)
            s = Stream{};
        history_.clear();
        streamsDetected_ = 0;
        stampCounter_ = 0;
    }

    /** Serialize stream registers, miss history and counters. */
    void
    saveState(ckpt::StateWriter &w) const
    {
        w.u64(streams_.size());
        for (const Stream &s : streams_) {
            w.b(s.valid);
            w.u64(s.nextExpected);
            w.i64(s.stride);
            w.u64(s.stamp);
        }
        w.u64(history_.size());
        for (sim::Addr line : history_)
            w.u64(line);
        w.u64(streamsDetected_);
        w.u64(stampCounter_);
    }

    void
    restoreState(ckpt::StateReader &r)
    {
        if (r.u64() != streams_.size())
            throw ckpt::CkptError(
                "stream-prefetcher register count in checkpoint does "
                "not match the configuration");
        for (Stream &s : streams_) {
            s.valid = r.b();
            s.nextExpected = r.u64();
            s.stride = r.i64();
            s.stamp = r.u64();
        }
        history_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            history_.push_back(r.u64());
        streamsDetected_ = r.u64();
        stampCounter_ = r.u64();
    }

  private:
    struct Stream
    {
        bool valid = false;
        sim::Addr nextExpected = 0;  //!< line address
        std::int64_t stride = 0;     //!< in lines, +1 or -1
        std::uint64_t stamp = 0;     //!< LRU
    };

    sim::Addr
    lineOf(sim::Addr addr) const
    {
        return addr / p_.lineBytes;
    }

    Stream *matchStream(sim::Addr line);
    Stream *allocStream();
    /** Advance nextExpected by up to @p count lines, emitting each. */
    void emitExtend(Stream &s, std::uint32_t count,
                    std::vector<sim::Addr> &out);
    /** Top the stream up to numPref lines past @p from_line. */
    void emitAhead(Stream &s, sim::Addr from_line,
                   std::vector<sim::Addr> &out);
    bool inHistory(sim::Addr line) const;

    StreamPrefetcherParams p_;
    std::vector<Stream> streams_;
    std::deque<sim::Addr> history_;  //!< recent miss lines
    std::uint64_t streamsDetected_ = 0;
    std::uint64_t stampCounter_ = 0;
};

} // namespace cpu

#endif // CPU_STREAM_PREFETCHER_HH
