/**
 * @file
 * The main-processor timing model.
 *
 * A window model of the paper's 6-issue dynamic superscalar: work
 * issues in order at up to issueWidth ops per cycle; loads are
 * non-blocking with up to maxPendingLoads outstanding; a reference
 * whose address depends on the previous load waits for that load
 * (pointer chasing serializes); the window stalls when the pending-
 * load or pending-store limit is reached.
 *
 * Every stall is attributed to the hierarchy level that serviced the
 * blocking access, producing the paper's execution-time decomposition
 * (Figure 7): Busy (compute + issue), UptoL2 (stall on L1/L2-serviced
 * accesses) and BeyondL2 (stall on memory-serviced accesses).
 *
 * The model is a resumable state machine over the global event queue:
 * whenever the core's local clock would run more than a few cycles
 * ahead of the event clock (a stall, or accumulated busy work), it
 * reschedules itself, so that cache/memory state it observes is never
 * stale with respect to concurrent ULMT activity.
 */

#ifndef CPU_MAIN_PROCESSOR_HH
#define CPU_MAIN_PROCESSOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "ckpt/state.hh"
#include "cpu/hierarchy.hh"
#include "cpu/trace.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpu {

/** Processor-level statistics (feeds Figure 7). */
struct ProcessorStats
{
    sim::Cycle totalCycles = 0;
    sim::Cycle busyCycles = 0;       //!< compute + issue slots
    sim::Cycle uptoL2Stall = 0;      //!< stall on L1/L2-serviced refs
    sim::Cycle beyondL2Stall = 0;    //!< stall on memory-serviced refs
    std::uint64_t records = 0;
    std::uint64_t ops = 0;

    // Stall-source decomposition (diagnostics).
    sim::Cycle stallDependence = 0;  //!< waits on the previous load
    sim::Cycle stallLoadWindow = 0;  //!< pending-load limit reached
    sim::Cycle stallStoreWindow = 0; //!< pending-store limit reached
    sim::Cycle stallDrain = 0;       //!< end-of-trace drain
    sim::SampleStat beyondWaits;     //!< individual memory-level waits
    sim::SampleStat uptoWaits;       //!< individual L1/L2-level waits
};

/** Event-driven window model of the main processor. */
class MainProcessor
{
  public:
    /**
     * @param eq global event queue
     * @param tp machine parameters
     * @param hierarchy the processor's cache hierarchy
     * @param source the workload's dynamic trace
     * @param core id of this processor; carried in the arg0 of its
     *        ProcStep events so the driver can resolve them on restore
     */
    MainProcessor(sim::EventQueue &eq, const mem::TimingParams &tp,
                  Hierarchy &hierarchy, TraceSource &source,
                  unsigned core = 0)
        : eq_(eq), tp_(tp), hierarchy_(hierarchy), source_(source),
          core_(core)
    {
    }

    /** Id of this processor. */
    unsigned core() const { return core_; }

    /** Schedule the first fetch; the run ends when the trace drains. */
    void
    start()
    {
        eq_.schedule(eq_.now(), sim::EventKind::ProcStep, core_, 0,
                     stepAction());
    }

    bool finished() const { return finished_; }
    const ProcessorStats &stats() const { return stats_; }

    /** The step-resume closure (shared by run and restore). */
    sim::EventQueue::Action
    stepAction()
    {
        return [this] { step(); };
    }

    /**
     * Serialize the window state.  step() re-derives its local clock
     * from the event queue on entry, so the members below are the
     * complete resume state; the workload cursor (how many records
     * source_ has produced) is stats_.records and is fast-forwarded by
     * the driver, not here.
     */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

    /**
     * Register core cycle/stall stats under "proc.*", prepending
     * @p prefix (e.g. "cpu.2." on multicore machines).
     */
    void
    registerStats(sim::StatRegistry &reg,
                  const std::string &prefix = "") const
    {
        const auto n = [&prefix](const char *name) {
            return prefix + name;
        };
        reg.addCounter(n("proc.total_cycles"), &stats_.totalCycles);
        reg.addCounter(n("proc.busy_cycles"), &stats_.busyCycles);
        reg.addCounter(n("proc.stall.upto_l2"), &stats_.uptoL2Stall);
        reg.addCounter(n("proc.stall.beyond_l2"),
                       &stats_.beyondL2Stall);
        reg.addCounter(n("proc.stall.dependence"),
                       &stats_.stallDependence);
        reg.addCounter(n("proc.stall.load_window"),
                       &stats_.stallLoadWindow);
        reg.addCounter(n("proc.stall.store_window"),
                       &stats_.stallStoreWindow);
        reg.addCounter(n("proc.stall.drain"), &stats_.stallDrain);
        reg.addCounter(n("proc.records"), &stats_.records);
        reg.addCounter(n("proc.ops"), &stats_.ops);
        reg.addSample(n("proc.wait.beyond_l2"), &stats_.beyondWaits);
        reg.addSample(n("proc.wait.upto_l2"), &stats_.uptoWaits);
    }

    /** Invoked once when the trace drains and all loads complete. */
    std::function<void(sim::Cycle)> onFinish;

  private:
    struct Pending
    {
        sim::Cycle complete;
        sim::ServedBy served;
        /** Cumulative op count at issue (program order / ROB age). */
        std::uint64_t opStamp;
    };

    /** Program-order queue of in-flight references. */
    using PendingQueue = std::deque<Pending>;

    /** Resume execution at the current event time. */
    void step();

    /** Pop the completed in-order prefix of both queues. */
    void retireCompleted(sim::Cycle c);

    /** Final drain when the trace ends. */
    void finish(sim::Cycle c);

    /** Charge a wait until @p until to the level @p served. */
    void
    stallUntil(sim::Cycle &c, sim::Cycle until, sim::ServedBy served)
    {
        if (until <= c)
            return;
        const sim::Cycle wait = until - c;
        if (served == sim::ServedBy::Memory) {
            stats_.beyondL2Stall += wait;
            stats_.beyondWaits.sample(static_cast<double>(wait));
        } else {
            stats_.uptoL2Stall += wait;
            stats_.uptoWaits.sample(static_cast<double>(wait));
        }
        c = until;
    }

    sim::EventQueue &eq_;
    const mem::TimingParams &tp_;
    Hierarchy &hierarchy_;
    TraceSource &source_;
    unsigned core_ = 0;

    PendingQueue pendingLoads_;
    PendingQueue pendingStores_;
    Pending lastLoad_{0, sim::ServedBy::L1, 0};
    bool lastLoadValid_ = false;
    std::uint64_t opsIssued_ = 0;

    /** The in-progress record, already busy-charged. */
    TraceRecord rec_;
    bool haveRec_ = false;

    bool finished_ = false;
    ProcessorStats stats_;
};

} // namespace cpu

#endif // CPU_MAIN_PROCESSOR_HH
