/**
 * @file
 * The dynamic instruction-trace interface between workloads and the
 * main-processor model.
 *
 * A workload produces TraceRecords: each record represents a short run
 * of computation optionally followed by one memory reference.  The
 * dependsOnPrev flag marks pointer-chasing references whose address is
 * produced by the previous load; the processor model serializes those,
 * which is what puts dependent L2 misses into the paper's critical
 * [200, 280)-cycle inter-miss bin (Figure 6).
 */

#ifndef CPU_TRACE_HH
#define CPU_TRACE_HH

#include <cstdint>

#include "sim/types.hh"

namespace cpu {

/** One unit of dynamic work from a workload. */
struct TraceRecord
{
    /** ALU/branch work preceding the reference, in ops. */
    std::uint32_t computeOps = 0;
    /** Referenced address, or sim::invalidAddr for compute-only. */
    sim::Addr addr = sim::invalidAddr;
    /** True for a store, false for a load. */
    bool isWrite = false;
    /** The address was produced by the previous load (pointer chase). */
    bool dependsOnPrev = false;

    bool hasRef() const { return addr != sim::invalidAddr; }
};

/** Source of a dynamic trace, implemented by every workload. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false when the workload has finished.
     */
    virtual bool next(TraceRecord &rec) = 0;
};

} // namespace cpu

#endif // CPU_TRACE_HH
