#include "cpu/main_processor.hh"

namespace cpu {

namespace {

/**
 * How far (in cycles) the core's local clock may run ahead of the
 * event clock before it must yield.  Keeping this small bounds the
 * window in which the core could observe cache state that a concurrent
 * ULMT event is about to change.
 */
constexpr sim::Cycle maxSkew = 8;

} // namespace

void
MainProcessor::finish(sim::Cycle c)
{
    while (!pendingLoads_.empty()) {
        const Pending p = pendingLoads_.front();
        pendingLoads_.pop_front();
        if (p.complete > c)
            stats_.stallDrain += p.complete - c;
        stallUntil(c, p.complete, p.served);
    }
    while (!pendingStores_.empty()) {
        const Pending p = pendingStores_.front();
        pendingStores_.pop_front();
        if (p.complete > c)
            stats_.stallDrain += p.complete - c;
        stallUntil(c, p.complete, p.served);
    }
    finished_ = true;
    stats_.totalCycles = c;
    if (onFinish)
        onFinish(c);
}

void
MainProcessor::retireCompleted(sim::Cycle c)
{
    // In-order retirement: the queues are in program order, so only a
    // completed prefix can leave.
    while (!pendingLoads_.empty() && pendingLoads_.front().complete <= c)
        pendingLoads_.pop_front();
    while (!pendingStores_.empty() &&
           pendingStores_.front().complete <= c)
        pendingStores_.pop_front();
}

void
MainProcessor::step()
{
    const sim::Cycle now = eq_.now();
    sim::Cycle c = now;
    std::uint32_t processed = 0;

    while (true) {
        if (!haveRec_) {
            if (!source_.next(rec_)) {
                finish(c);
                return;
            }
            haveRec_ = true;
            ++stats_.records;
            const std::uint32_t rec_ops =
                rec_.computeOps + (rec_.hasRef() ? 1 : 0);
            stats_.ops += rec_ops;
            opsIssued_ += rec_ops;
            // Compute phase: issueWidth ops per cycle, minimum one
            // cycle per record (the reference's own issue slot).
            sim::Cycle busy =
                (rec_.computeOps + tp_.issueWidth - 1) / tp_.issueWidth;
            if (busy == 0)
                busy = 1;
            stats_.busyCycles += busy;
            c += busy;
        }

        retireCompleted(c);

        // Reorder-buffer limit: issue may not run more than robSize
        // ops past the oldest incomplete load.  Stalls are charged as
        // discovered; on resumption the deadline has passed, so
        // nothing is charged twice.
        while (!pendingLoads_.empty() &&
               opsIssued_ - pendingLoads_.front().opStamp >
                   tp_.robSize) {
            const Pending oldest = pendingLoads_.front();
            pendingLoads_.pop_front();
            if (oldest.complete > c)
                stats_.stallLoadWindow += oldest.complete - c;
            stallUntil(c, oldest.complete, oldest.served);
        }

        if (rec_.hasRef()) {
            // Address dependence on the previous load (pointer chase).
            if (rec_.dependsOnPrev && lastLoadValid_) {
                if (lastLoad_.complete > c)
                    stats_.stallDependence += lastLoad_.complete - c;
                stallUntil(c, lastLoad_.complete, lastLoad_.served);
            }

            auto &q = rec_.isWrite ? pendingStores_ : pendingLoads_;
            const std::uint32_t cap = rec_.isWrite
                                          ? tp_.maxPendingStores
                                          : tp_.maxPendingLoads;
            retireCompleted(c);
            if (q.size() >= cap) {
                const Pending oldest = q.front();
                q.pop_front();
                if (oldest.complete > c) {
                    if (rec_.isWrite)
                        stats_.stallStoreWindow += oldest.complete - c;
                    else
                        stats_.stallLoadWindow += oldest.complete - c;
                }
                stallUntil(c, oldest.complete, oldest.served);
            }

            // Never touch the hierarchy far ahead of the event clock:
            // yield and resume at the access's issue cycle.
            if (c > now + maxSkew) {
                stats_.totalCycles = c;
                eq_.schedule(c, sim::EventKind::ProcStep, core_, 0,
                             stepAction());
                return;
            }

            AccessOutcome out =
                hierarchy_.access(c, rec_.addr, rec_.isWrite);
            q.push_back({out.complete, out.served, opsIssued_});
            if (!rec_.isWrite) {
                lastLoad_ = {out.complete, out.served, opsIssued_};
                lastLoadValid_ = true;
            }
        }
        haveRec_ = false;

        if (c > now + maxSkew || ++processed >= 64) {
            stats_.totalCycles = c;
            eq_.schedule(c > now ? c : now + 1, sim::EventKind::ProcStep,
                         core_, 0, stepAction());
            return;
        }
    }
}

void
MainProcessor::saveState(ckpt::StateWriter &w) const
{
    auto saveQueue = [&w](const PendingQueue &q) {
        w.u64(q.size());
        for (const Pending &p : q) {
            w.u64(p.complete);
            w.u8(static_cast<std::uint8_t>(p.served));
            w.u64(p.opStamp);
        }
    };
    saveQueue(pendingLoads_);
    saveQueue(pendingStores_);
    w.u64(lastLoad_.complete);
    w.u8(static_cast<std::uint8_t>(lastLoad_.served));
    w.u64(lastLoad_.opStamp);
    w.b(lastLoadValid_);
    w.u64(opsIssued_);

    w.b(haveRec_);
    w.u32(rec_.computeOps);
    w.u64(rec_.addr);
    w.b(rec_.isWrite);
    w.b(rec_.dependsOnPrev);
    w.b(finished_);

    w.u64(stats_.totalCycles);
    w.u64(stats_.busyCycles);
    w.u64(stats_.uptoL2Stall);
    w.u64(stats_.beyondL2Stall);
    w.u64(stats_.records);
    w.u64(stats_.ops);
    w.u64(stats_.stallDependence);
    w.u64(stats_.stallLoadWindow);
    w.u64(stats_.stallStoreWindow);
    w.u64(stats_.stallDrain);
    ckpt::save(w, stats_.beyondWaits);
    ckpt::save(w, stats_.uptoWaits);
}

void
MainProcessor::restoreState(ckpt::StateReader &r)
{
    auto readServed = [&r] {
        const std::uint8_t v = r.u8();
        if (v > static_cast<std::uint8_t>(sim::ServedBy::Memory))
            throw ckpt::CkptError("corrupt ServedBy in processor state");
        return static_cast<sim::ServedBy>(v);
    };
    auto restoreQueue = [&](PendingQueue &q) {
        q.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            Pending p{};
            p.complete = r.u64();
            p.served = readServed();
            p.opStamp = r.u64();
            q.push_back(p);
        }
    };
    restoreQueue(pendingLoads_);
    restoreQueue(pendingStores_);
    lastLoad_.complete = r.u64();
    lastLoad_.served = readServed();
    lastLoad_.opStamp = r.u64();
    lastLoadValid_ = r.b();
    opsIssued_ = r.u64();

    haveRec_ = r.b();
    rec_.computeOps = r.u32();
    rec_.addr = r.u64();
    rec_.isWrite = r.b();
    rec_.dependsOnPrev = r.b();
    finished_ = r.b();

    stats_.totalCycles = r.u64();
    stats_.busyCycles = r.u64();
    stats_.uptoL2Stall = r.u64();
    stats_.beyondL2Stall = r.u64();
    stats_.records = r.u64();
    stats_.ops = r.u64();
    stats_.stallDependence = r.u64();
    stats_.stallLoadWindow = r.u64();
    stats_.stallStoreWindow = r.u64();
    stats_.stallDrain = r.u64();
    ckpt::restore(r, stats_.beyondWaits);
    ckpt::restore(r, stats_.uptoWaits);
}

} // namespace cpu
