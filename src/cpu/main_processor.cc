#include "cpu/main_processor.hh"

namespace cpu {

namespace {

/**
 * How far (in cycles) the core's local clock may run ahead of the
 * event clock before it must yield.  Keeping this small bounds the
 * window in which the core could observe cache state that a concurrent
 * ULMT event is about to change.
 */
constexpr sim::Cycle maxSkew = 8;

} // namespace

void
MainProcessor::finish(sim::Cycle c)
{
    while (!pendingLoads_.empty()) {
        const Pending p = pendingLoads_.front();
        pendingLoads_.pop_front();
        if (p.complete > c)
            stats_.stallDrain += p.complete - c;
        stallUntil(c, p.complete, p.served);
    }
    while (!pendingStores_.empty()) {
        const Pending p = pendingStores_.front();
        pendingStores_.pop_front();
        if (p.complete > c)
            stats_.stallDrain += p.complete - c;
        stallUntil(c, p.complete, p.served);
    }
    finished_ = true;
    stats_.totalCycles = c;
    if (onFinish)
        onFinish(c);
}

void
MainProcessor::retireCompleted(sim::Cycle c)
{
    // In-order retirement: the queues are in program order, so only a
    // completed prefix can leave.
    while (!pendingLoads_.empty() && pendingLoads_.front().complete <= c)
        pendingLoads_.pop_front();
    while (!pendingStores_.empty() &&
           pendingStores_.front().complete <= c)
        pendingStores_.pop_front();
}

void
MainProcessor::step()
{
    const sim::Cycle now = eq_.now();
    sim::Cycle c = now;
    std::uint32_t processed = 0;

    while (true) {
        if (!haveRec_) {
            if (!source_.next(rec_)) {
                finish(c);
                return;
            }
            haveRec_ = true;
            ++stats_.records;
            const std::uint32_t rec_ops =
                rec_.computeOps + (rec_.hasRef() ? 1 : 0);
            stats_.ops += rec_ops;
            opsIssued_ += rec_ops;
            // Compute phase: issueWidth ops per cycle, minimum one
            // cycle per record (the reference's own issue slot).
            sim::Cycle busy =
                (rec_.computeOps + tp_.issueWidth - 1) / tp_.issueWidth;
            if (busy == 0)
                busy = 1;
            stats_.busyCycles += busy;
            c += busy;
        }

        retireCompleted(c);

        // Reorder-buffer limit: issue may not run more than robSize
        // ops past the oldest incomplete load.  Stalls are charged as
        // discovered; on resumption the deadline has passed, so
        // nothing is charged twice.
        while (!pendingLoads_.empty() &&
               opsIssued_ - pendingLoads_.front().opStamp >
                   tp_.robSize) {
            const Pending oldest = pendingLoads_.front();
            pendingLoads_.pop_front();
            if (oldest.complete > c)
                stats_.stallLoadWindow += oldest.complete - c;
            stallUntil(c, oldest.complete, oldest.served);
        }

        if (rec_.hasRef()) {
            // Address dependence on the previous load (pointer chase).
            if (rec_.dependsOnPrev && lastLoadValid_) {
                if (lastLoad_.complete > c)
                    stats_.stallDependence += lastLoad_.complete - c;
                stallUntil(c, lastLoad_.complete, lastLoad_.served);
            }

            auto &q = rec_.isWrite ? pendingStores_ : pendingLoads_;
            const std::uint32_t cap = rec_.isWrite
                                          ? tp_.maxPendingStores
                                          : tp_.maxPendingLoads;
            retireCompleted(c);
            if (q.size() >= cap) {
                const Pending oldest = q.front();
                q.pop_front();
                if (oldest.complete > c) {
                    if (rec_.isWrite)
                        stats_.stallStoreWindow += oldest.complete - c;
                    else
                        stats_.stallLoadWindow += oldest.complete - c;
                }
                stallUntil(c, oldest.complete, oldest.served);
            }

            // Never touch the hierarchy far ahead of the event clock:
            // yield and resume at the access's issue cycle.
            if (c > now + maxSkew) {
                stats_.totalCycles = c;
                eq_.schedule(c, [this] { step(); });
                return;
            }

            AccessOutcome out =
                hierarchy_.access(c, rec_.addr, rec_.isWrite);
            q.push_back({out.complete, out.served, opsIssued_});
            if (!rec_.isWrite) {
                lastLoad_ = {out.complete, out.served, opsIssued_};
                lastLoadValid_ = true;
            }
        }
        haveRec_ = false;

        if (c > now + maxSkew || ++processed >= 64) {
            stats_.totalCycles = c;
            eq_.schedule(c > now ? c : now + 1, [this] { step(); });
            return;
        }
    }
}

} // namespace cpu
