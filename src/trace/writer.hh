/**
 * @file
 * TraceWriter: captures a dynamic TraceRecord stream into the on-disk
 * format of format.hh, and TeeTraceSource, a decorator that records
 * any TraceSource transparently while the simulation consumes it --
 * no workload kernel needs to know it is being captured.
 */

#ifndef TRACE_WRITER_HH
#define TRACE_WRITER_HH

#include <cstdio>
#include <string>

#include "cpu/trace.hh"
#include "trace/format.hh"

namespace trace {

/** Streams TraceRecords into a trace file, block by block. */
class TraceWriter
{
  public:
    struct Options
    {
        /** Provenance recorded in the header. */
        std::string app = "unknown";
        std::uint64_t seed = 0;
        double scale = 1.0;
        /** Block granularity; small values exercise block framing. */
        std::uint32_t recordsPerBlock = 8192;
    };

    /**
     * Create @p path and write the header.
     * @throws TraceError if the file cannot be created.
     */
    TraceWriter(const std::string &path, const Options &opt);

    /** Writes the trailer via finish() if not already done. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (buffered; flushed in blocks). */
    void append(const cpu::TraceRecord &rec);

    /**
     * Flush the last partial block and write the trailer.  Idempotent.
     * @throws TraceError on I/O failure.
     */
    void finish();

    std::uint64_t recordsWritten() const { return totalRecords_; }
    const std::string &path() const { return path_; }

  private:
    void flushBlock();
    void write(const void *data, std::size_t len);

    std::string path_;
    Options opt_;
    std::FILE *file_ = nullptr;

    std::string payload_;
    std::uint32_t blockRecords_ = 0;
    sim::Addr prevRefAddr_ = 0;

    std::uint64_t totalRecords_ = 0;
    std::uint32_t totalBlocks_ = 0;
    std::uint64_t chain_ = 1469598103934665603ULL;
    sim::Addr minRef_ = sim::invalidAddr;
    sim::Addr maxRef_ = 0;
    bool anyRef_ = false;
    bool finished_ = false;
};

/**
 * Pass-through TraceSource that appends every record it yields to a
 * TraceWriter.  Wrap any workload (or interleaving, or other source)
 * to capture it:
 *
 *     trace::TraceWriter w(path, opts);
 *     trace::TeeTraceSource tee(*workload, w);
 *     driver::System sys(cfg, tee, workload->name());
 *     sys.run();
 *     w.finish();
 */
class TeeTraceSource : public cpu::TraceSource
{
  public:
    TeeTraceSource(cpu::TraceSource &inner, TraceWriter &writer)
        : inner_(inner), writer_(writer)
    {
    }

    bool
    next(cpu::TraceRecord &rec) override
    {
        if (!inner_.next(rec))
            return false;
        writer_.append(rec);
        return true;
    }

  private:
    cpu::TraceSource &inner_;
    TraceWriter &writer_;
};

} // namespace trace

#endif // TRACE_WRITER_HH
