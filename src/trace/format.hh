/**
 * @file
 * The ULMT on-disk trace format (version 1).
 *
 * A trace file is the serialized dynamic TraceRecord stream of one
 * workload, with enough provenance (app name, scale, seed) to
 * reproduce the capture.  Layout, all integers little-endian:
 *
 *   header    magic "ULMTTRC1" | u32 version | u32 reserved |
 *             u64 seed | f64 scale (IEEE bits) |
 *             u32 appNameLen | appName bytes
 *   blocks    zero or more record blocks (below)
 *   trailer   u32 magic "UEND" | u32 blockCount | u64 recordCount |
 *             u64 footprintBytes | u64 chainChecksum
 *
 * Each block is independently decodable and checksummed:
 *
 *   u32 magic "UBLK" | u32 payloadBytes | u32 recordCount |
 *   u32 reserved | u64 fnv1a64(payload) | payload
 *
 * Payload encoding, per record:
 *
 *   flags byte   bit0 hasRef, bit1 isWrite, bit2 dependsOnPrev
 *   varint       computeOps (LEB128)
 *   varint       zigzag(addr - prevRefAddr), only when hasRef
 *
 * prevRefAddr starts at 0 at every block boundary (blocks are
 * self-contained) and is only advanced by records that carry a
 * reference, so compute-only records never disturb the deltas.
 *
 * The trailer's chainChecksum folds every block checksum into one
 * value, so a truncated, reordered or block-dropped file fails loudly
 * at open or at the first bad block -- never as a silent short run.
 */

#ifndef TRACE_FORMAT_HH
#define TRACE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace trace {

/** Raised for any malformed, truncated or corrupted trace file. */
class TraceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

// --- Format constants --------------------------------------------------

/** File magic: "ULMTTRC1". */
inline constexpr char fileMagic[8] = {'U', 'L', 'M', 'T',
                                      'T', 'R', 'C', '1'};

/** Current (and only) format version. */
inline constexpr std::uint32_t formatVersion = 1;

/** Block magic "UBLK" as a little-endian u32. */
inline constexpr std::uint32_t blockMagic = 0x4B4C4255;

/** Trailer magic "UEND" as a little-endian u32. */
inline constexpr std::uint32_t trailerMagic = 0x444E4555;

/** Sanity cap on one block's payload (a record is at most 21 bytes). */
inline constexpr std::uint32_t maxBlockPayload = 4u * 1024u * 1024u;

/** Sanity cap on the embedded application-name length. */
inline constexpr std::uint32_t maxAppNameLen = 4096;

/** Fixed sizes of the framing structures. */
inline constexpr std::size_t headerFixedBytes = 8 + 4 + 4 + 8 + 8 + 4;
inline constexpr std::size_t blockHeaderBytes = 4 + 4 + 4 + 4 + 8;
inline constexpr std::size_t trailerBytes = 4 + 4 + 8 + 8 + 8;

/** Record flag bits. */
inline constexpr std::uint8_t flagHasRef = 1u << 0;
inline constexpr std::uint8_t flagIsWrite = 1u << 1;
inline constexpr std::uint8_t flagDependsOnPrev = 1u << 2;
inline constexpr std::uint8_t flagMask =
    flagHasRef | flagIsWrite | flagDependsOnPrev;

// --- Decoded metadata --------------------------------------------------

/** Provenance stored in the file header. */
struct TraceHeader
{
    std::uint32_t version = formatVersion;
    std::uint64_t seed = 0;
    double scale = 1.0;
    /** Captured workload's name ("Mcf", an imported trace's label...). */
    std::string app;
};

/** Totals stored in the trailer (known only after a full capture). */
struct TraceSummary
{
    std::uint64_t records = 0;
    /** Span of referenced addresses, in bytes (0 if no references). */
    std::uint64_t footprintBytes = 0;
    std::uint32_t blocks = 0;
};

// --- Primitive encoding helpers ----------------------------------------

/** FNV-1a 64-bit, the block/chain checksum. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len,
        std::uint64_t seed = 1469598103934665603ULL)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/** Map a signed delta onto unsigned varint space. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Append a LEB128 varint to @p out. */
inline void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/**
 * Decode a LEB128 varint from @p data at @p pos (advanced past it).
 * @throws TraceError on overrun or overlong encoding.
 */
inline std::uint64_t
getVarint(const std::string &data, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (pos >= data.size())
            throw TraceError("varint runs past end of block payload");
        const auto byte = static_cast<unsigned char>(data[pos++]);
        if (shift == 63 && (byte & 0x7E))
            throw TraceError("varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw TraceError("varint overflows 64 bits");
    }
}

/** Append a little-endian fixed-width integer to @p out. */
template <typename T>
inline void
putLe(std::string &out, T v)
{
    auto u = static_cast<std::uint64_t>(v);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>((u >> (8 * i)) & 0xFF));
}

/** Read a little-endian fixed-width integer from a raw buffer. */
template <typename T>
inline T
getLe(const unsigned char *p)
{
    std::uint64_t u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return static_cast<T>(u);
}

} // namespace trace

#endif // TRACE_FORMAT_HH
