#include "trace/writer.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "sim/logging.hh"

namespace trace {

TraceWriter::TraceWriter(const std::string &path, const Options &opt)
    : path_(path), opt_(opt)
{
    if (opt_.recordsPerBlock == 0)
        opt_.recordsPerBlock = 1;
    if (opt_.app.size() > maxAppNameLen)
        throw TraceError("trace app name longer than " +
                         std::to_string(maxAppNameLen) + " bytes");

    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw TraceError("cannot create trace file '" + path +
                         "': " + std::strerror(errno));

    std::string header;
    header.append(fileMagic, sizeof(fileMagic));
    putLe<std::uint32_t>(header, formatVersion);
    putLe<std::uint32_t>(header, 0);  // reserved
    putLe<std::uint64_t>(header, opt_.seed);
    std::uint64_t scale_bits = 0;
    static_assert(sizeof(scale_bits) == sizeof(opt_.scale));
    std::memcpy(&scale_bits, &opt_.scale, sizeof(scale_bits));
    putLe<std::uint64_t>(header, scale_bits);
    putLe<std::uint32_t>(header,
                         static_cast<std::uint32_t>(opt_.app.size()));
    header += opt_.app;
    write(header.data(), header.size());
}

TraceWriter::~TraceWriter()
{
    if (!finished_) {
        try {
            finish();
        } catch (const TraceError &e) {
            sim::warn("trace writer: %s", e.what());
        }
    }
}

void
TraceWriter::append(const cpu::TraceRecord &rec)
{
    if (finished_)
        throw TraceError("append to finished trace '" + path_ + "'");

    std::uint8_t flags = 0;
    if (rec.hasRef())
        flags |= flagHasRef;
    if (rec.isWrite)
        flags |= flagIsWrite;
    if (rec.dependsOnPrev)
        flags |= flagDependsOnPrev;
    payload_.push_back(static_cast<char>(flags));
    putVarint(payload_, rec.computeOps);
    if (rec.hasRef()) {
        const auto delta =
            static_cast<std::int64_t>(rec.addr - prevRefAddr_);
        putVarint(payload_, zigzagEncode(delta));
        prevRefAddr_ = rec.addr;
        minRef_ = std::min(minRef_, rec.addr);
        maxRef_ = std::max(maxRef_, rec.addr);
        anyRef_ = true;
    }
    ++blockRecords_;
    ++totalRecords_;
    if (blockRecords_ >= opt_.recordsPerBlock ||
        payload_.size() >= maxBlockPayload - 32) {
        flushBlock();
    }
}

void
TraceWriter::flushBlock()
{
    if (payload_.empty())
        return;
    const std::uint64_t checksum =
        fnv1a64(payload_.data(), payload_.size());

    std::string head;
    putLe<std::uint32_t>(head, blockMagic);
    putLe<std::uint32_t>(head,
                         static_cast<std::uint32_t>(payload_.size()));
    putLe<std::uint32_t>(head, blockRecords_);
    putLe<std::uint32_t>(head, 0);  // reserved
    putLe<std::uint64_t>(head, checksum);
    write(head.data(), head.size());
    write(payload_.data(), payload_.size());

    chain_ = fnv1a64(&checksum, sizeof(checksum), chain_);
    ++totalBlocks_;
    payload_.clear();
    blockRecords_ = 0;
    prevRefAddr_ = 0;  // blocks are self-contained
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushBlock();

    const std::uint64_t footprint =
        anyRef_ ? (maxRef_ - minRef_ + 64) : 0;
    std::string trailer;
    putLe<std::uint32_t>(trailer, trailerMagic);
    putLe<std::uint32_t>(trailer, totalBlocks_);
    putLe<std::uint64_t>(trailer, totalRecords_);
    putLe<std::uint64_t>(trailer, footprint);
    putLe<std::uint64_t>(trailer, chain_);
    write(trailer.data(), trailer.size());

    finished_ = true;
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0)
        throw TraceError("error closing trace file '" + path_ + "'");
}

void
TraceWriter::write(const void *data, std::size_t len)
{
    if (std::fwrite(data, 1, len, file_) != len)
        throw TraceError("short write to trace file '" + path_ +
                         "': " + std::strerror(errno));
}

} // namespace trace
