#include "trace/reader.hh"

#include <cerrno>
#include <cstring>
#include <vector>

namespace trace {

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        throw TraceError("cannot open trace file '" + path +
                         "': " + std::strerror(errno));

    // --- Header ---------------------------------------------------
    unsigned char fixed[headerFixedBytes];
    readExact(fixed, sizeof(fixed), "file header");
    if (std::memcmp(fixed, fileMagic, sizeof(fileMagic)) != 0)
        fail("bad magic (not a ULMT trace file)");
    header_.version = getLe<std::uint32_t>(fixed + 8);
    if (header_.version != formatVersion)
        fail("unsupported format version " +
             std::to_string(header_.version) + " (reader supports " +
             std::to_string(formatVersion) + ")");
    header_.seed = getLe<std::uint64_t>(fixed + 16);
    const std::uint64_t scale_bits = getLe<std::uint64_t>(fixed + 24);
    std::memcpy(&header_.scale, &scale_bits, sizeof(header_.scale));
    const std::uint32_t name_len = getLe<std::uint32_t>(fixed + 32);
    if (name_len > maxAppNameLen)
        fail("app name length " + std::to_string(name_len) +
             " exceeds limit");
    std::vector<char> name(name_len);
    readExact(name.data(), name_len, "app name");
    header_.app.assign(name.data(), name_len);

    dataStart_ = std::ftell(file_);
    if (dataStart_ < 0)
        fail("cannot determine data offset");

    // --- Trailer (validated up front: catches truncation) ---------
    if (std::fseek(file_, 0, SEEK_END) != 0)
        fail("cannot seek to end");
    const long file_size = std::ftell(file_);
    if (file_size < 0 ||
        static_cast<std::size_t>(file_size - dataStart_) < trailerBytes)
        fail("truncated: missing trailer");
    trailerOff_ = file_size - static_cast<long>(trailerBytes);
    if (std::fseek(file_, trailerOff_, SEEK_SET) != 0)
        fail("cannot seek to trailer");
    unsigned char trailer[trailerBytes];
    readExact(trailer, sizeof(trailer), "trailer");
    if (getLe<std::uint32_t>(trailer) != trailerMagic)
        fail("truncated or corrupt: trailer magic missing "
             "(capture incomplete?)");
    summary_.blocks = getLe<std::uint32_t>(trailer + 4);
    summary_.records = getLe<std::uint64_t>(trailer + 8);
    summary_.footprintBytes = getLe<std::uint64_t>(trailer + 16);

    rewind();
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

void
TraceReader::rewind()
{
    if (std::fseek(file_, dataStart_, SEEK_SET) != 0)
        fail("cannot seek to first block");
    payload_.clear();
    pos_ = 0;
    blockLeft_ = 0;
    prevRefAddr_ = 0;
    recordsServed_ = 0;
    blocksLoaded_ = 0;
    chain_ = 1469598103934665603ULL;
    endVerified_ = false;
}

bool
TraceReader::next(cpu::TraceRecord &rec)
{
    if (blockLeft_ == 0) {
        if (endVerified_)
            return false;
        loadNextBlock();
        if (blockLeft_ == 0)
            return false;  // verified end of trace
    }

    try {
        const auto flags =
            static_cast<std::uint8_t>(payload_.at(pos_));
        ++pos_;
        if (flags & ~flagMask)
            throw TraceError("unknown record flag bits");
        rec.computeOps =
            static_cast<std::uint32_t>(getVarint(payload_, pos_));
        rec.isWrite = flags & flagIsWrite;
        rec.dependsOnPrev = flags & flagDependsOnPrev;
        if (flags & flagHasRef) {
            const std::int64_t delta =
                zigzagDecode(getVarint(payload_, pos_));
            rec.addr = prevRefAddr_ + static_cast<sim::Addr>(delta);
            prevRefAddr_ = rec.addr;
        } else {
            rec.addr = sim::invalidAddr;
        }
    } catch (const std::out_of_range &) {
        fail("block payload ends mid-record");
    } catch (const TraceError &e) {
        fail(std::string("corrupt record: ") + e.what());
    }

    --blockLeft_;
    ++recordsServed_;
    if (blockLeft_ == 0 && pos_ != payload_.size())
        fail("block decodes to fewer bytes than its payload length");
    return true;
}

void
TraceReader::loadNextBlock()
{
    const long at = std::ftell(file_);
    if (at < 0)
        fail("cannot determine block offset");
    if (at == trailerOff_) {
        // Clean end of data: verify the trailer's totals.
        if (blocksLoaded_ != summary_.blocks)
            fail("block count mismatch: trailer says " +
                 std::to_string(summary_.blocks) + ", file has " +
                 std::to_string(blocksLoaded_));
        if (recordsServed_ != summary_.records)
            fail("record count mismatch: trailer says " +
                 std::to_string(summary_.records) + ", decoded " +
                 std::to_string(recordsServed_));
        unsigned char trailer[trailerBytes];
        readExact(trailer, sizeof(trailer), "trailer");
        if (getLe<std::uint64_t>(trailer + 24) != chain_)
            fail("checksum chain mismatch "
                 "(blocks altered, dropped or reordered)");
        endVerified_ = true;
        return;
    }
    if (at > trailerOff_)
        fail("block framing overruns the trailer");

    unsigned char head[blockHeaderBytes];
    readExact(head, sizeof(head), "block header");
    if (getLe<std::uint32_t>(head) != blockMagic)
        fail("bad block magic at offset " + std::to_string(at));
    const std::uint32_t payload_bytes = getLe<std::uint32_t>(head + 4);
    const std::uint32_t n_records = getLe<std::uint32_t>(head + 8);
    const std::uint64_t checksum = getLe<std::uint64_t>(head + 16);
    if (payload_bytes == 0 || payload_bytes > maxBlockPayload)
        fail("implausible block payload length " +
             std::to_string(payload_bytes));
    if (n_records == 0 || n_records > payload_bytes)
        fail("implausible block record count " +
             std::to_string(n_records));
    if (static_cast<long>(payload_bytes) >
        trailerOff_ - at - static_cast<long>(blockHeaderBytes))
        fail("block payload overruns the trailer (truncated file?)");

    payload_.resize(payload_bytes);
    readExact(payload_.data(), payload_bytes, "block payload");
    if (fnv1a64(payload_.data(), payload_.size()) != checksum)
        fail("block checksum mismatch at offset " +
             std::to_string(at) + " (corrupted data)");

    chain_ = fnv1a64(&checksum, sizeof(checksum), chain_);
    ++blocksLoaded_;
    pos_ = 0;
    blockLeft_ = n_records;
    prevRefAddr_ = 0;  // blocks are self-contained
}

void
TraceReader::readExact(void *dst, std::size_t len, const char *what)
{
    if (len == 0)
        return;
    if (std::fread(dst, 1, len, file_) != len)
        fail(std::string("unexpected end of file reading ") + what);
}

void
TraceReader::fail(const std::string &why) const
{
    throw TraceError("trace file '" + path_ + "': " + why);
}

} // namespace trace
