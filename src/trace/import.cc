#include "trace/import.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

namespace trace {

namespace {

/** Split on any run of whitespace and/or commas. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

bool
parseNumber(const std::string &tok, std::uint64_t &value)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    // Base 0: accepts 0x-prefixed hex and plain decimal.
    value = std::strtoull(tok.c_str(), &end, 0);
    return errno == 0 && end && *end == '\0';
}

/** R/r/L/l/0 = load; W/w/S/s/1 = store. */
bool
parseRw(const std::string &tok, bool &is_write)
{
    if (tok.size() != 1)
        return false;
    switch (tok[0]) {
      case 'R': case 'r': case 'L': case 'l': case '0':
        is_write = false;
        return true;
      case 'W': case 'w': case 'S': case 's': case '1':
        is_write = true;
        return true;
      default:
        return false;
    }
}

[[noreturn]] void
badLine(const std::string &path, std::uint64_t line_no,
        const std::string &why)
{
    throw TraceError("import '" + path + "' line " +
                     std::to_string(line_no) + ": " + why);
}

} // namespace

std::uint64_t
importText(const std::string &in_path, TraceWriter &writer,
           const ImportOptions &opt)
{
    std::ifstream in(in_path);
    if (!in)
        throw TraceError("cannot open access trace '" + in_path +
                         "': " + std::strerror(errno));

    std::uint64_t imported = 0;
    std::uint64_t line_no = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::vector<std::string> toks = tokenize(line);
        if (toks.empty() || toks[0][0] == '#')
            continue;

        std::uint64_t addr = 0;
        bool is_write = false;
        switch (toks.size()) {
          case 1:
            // <addr>
            if (!parseNumber(toks[0], addr))
                badLine(in_path, line_no,
                        "'" + toks[0] + "' is not an address");
            break;
          case 2:
            // <addr> <R|W>
            if (!parseNumber(toks[0], addr))
                badLine(in_path, line_no,
                        "'" + toks[0] + "' is not an address");
            if (!parseRw(toks[1], is_write))
                badLine(in_path, line_no,
                        "'" + toks[1] + "' is not an R/W marker");
            break;
          case 3: {
            // <pc> <addr> <R|W>; the PC is provenance we drop.
            std::uint64_t pc = 0;
            if (!parseNumber(toks[0], pc))
                badLine(in_path, line_no,
                        "'" + toks[0] + "' is not a PC");
            if (!parseNumber(toks[1], addr))
                badLine(in_path, line_no,
                        "'" + toks[1] + "' is not an address");
            if (!parseRw(toks[2], is_write))
                badLine(in_path, line_no,
                        "'" + toks[2] + "' is not an R/W marker");
            break;
          }
          default:
            badLine(in_path, line_no,
                    "expected 1-3 fields (pc, addr, r/w), got " +
                        std::to_string(toks.size()));
        }

        if (addr == sim::invalidAddr)
            badLine(in_path, line_no,
                    "address collides with the reserved sentinel");

        cpu::TraceRecord rec;
        rec.computeOps = opt.computeOps;
        rec.addr = addr;
        rec.isWrite = is_write;
        rec.dependsOnPrev = false;
        writer.append(rec);
        ++imported;
    }
    if (in.bad())
        throw TraceError("I/O error reading '" + in_path + "'");
    return imported;
}

} // namespace trace
