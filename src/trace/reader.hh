/**
 * @file
 * TraceReader: streaming, validating reader for the on-disk trace
 * format.  Holds at most one decoded block's payload in memory, so a
 * multi-gigabyte trace replays in constant space.
 *
 * Validation is strict and loud: the header and trailer are checked at
 * open (so a truncated file is rejected before any record is served),
 * every block checksum is verified when the block is loaded, and the
 * trailer's record/block totals and checksum chain are re-verified at
 * end of stream.  Any mismatch throws TraceError with the file path
 * and the reason -- never a silent short trace.
 */

#ifndef TRACE_READER_HH
#define TRACE_READER_HH

#include <cstdio>
#include <string>

#include "cpu/trace.hh"
#include "trace/format.hh"

namespace trace {

/** Reads a trace file as a cpu::TraceSource. */
class TraceReader : public cpu::TraceSource
{
  public:
    /**
     * Open @p path, validate header and trailer.
     * @throws TraceError on any malformed, truncated or corrupt file.
     */
    explicit TraceReader(const std::string &path);

    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceHeader &header() const { return header_; }
    const TraceSummary &summary() const { return summary_; }
    const std::string &path() const { return path_; }

    /**
     * Produce the next record; false at a (verified) end of trace.
     * @throws TraceError on a corrupt block.
     */
    bool next(cpu::TraceRecord &rec) override;

    /** Seek back to the first block; the stream replays identically. */
    void rewind();

  private:
    void loadNextBlock();
    [[noreturn]] void fail(const std::string &why) const;
    void readExact(void *dst, std::size_t len, const char *what);

    std::string path_;
    std::FILE *file_ = nullptr;
    TraceHeader header_;
    TraceSummary summary_;

    long dataStart_ = 0;   //!< file offset of the first block
    long trailerOff_ = 0;  //!< file offset of the trailer

    std::string payload_;        //!< current block, verified
    std::size_t pos_ = 0;        //!< decode cursor into payload_
    std::uint32_t blockLeft_ = 0;  //!< records left in current block
    sim::Addr prevRefAddr_ = 0;

    std::uint64_t recordsServed_ = 0;
    std::uint32_t blocksLoaded_ = 0;
    std::uint64_t chain_ = 1469598103934665603ULL;
    bool endVerified_ = false;
};

} // namespace trace

#endif // TRACE_READER_HH
