/**
 * @file
 * Importer for external text access traces.
 *
 * Accepts the simple line-oriented formats used by ChampSim-style
 * public traces and most academic trace dumps: one access per line,
 * fields separated by whitespace or commas, addresses in hex (0x...)
 * or decimal, with an optional leading PC column and an optional
 * trailing R/W marker:
 *
 *     <pc> <addr> <R|W>        # 3 columns (ChampSim text dump)
 *     <addr> <R|W>             # 2 columns
 *     <addr>                   # 1 column (all loads)
 *
 * Blank lines and lines starting with '#' are ignored.  Every parsed
 * access becomes one TraceRecord with a fixed computeOps gap (the
 * external formats carry no timing), written through a TraceWriter
 * into the native format so the result replays like any captured
 * corpus (`trace:<path>`).
 */

#ifndef TRACE_IMPORT_HH
#define TRACE_IMPORT_HH

#include <cstdint>
#include <string>

#include "trace/writer.hh"

namespace trace {

/** Knobs for importText(). */
struct ImportOptions
{
    /** Workload name recorded as provenance in the output header. */
    std::string app = "imported";
    /** computeOps attached to every access (external traces have no
     *  compute information); paper-scale irregular kernels average a
     *  handful of ops between references. */
    std::uint32_t computeOps = 4;
};

/**
 * Parse @p in_path and write the accesses through @p writer (the
 * caller finalizes the writer).
 *
 * @return number of accesses imported.
 * @throws TraceError on an unreadable file or a malformed line
 *         (message includes the line number).
 */
std::uint64_t importText(const std::string &in_path,
                         TraceWriter &writer,
                         const ImportOptions &opt = {});

} // namespace trace

#endif // TRACE_IMPORT_HH
