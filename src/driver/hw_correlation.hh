/**
 * @file
 * A hardware correlation-prefetching baseline.
 *
 * Prior pair-based correlation prefetchers are "hardware controllers
 * that typically require a large hardware table" -- 1-2 MB of on-chip
 * SRAM, with some applications needing 7.6 MB off chip (Section 2.2,
 * citing Joseph & Grunwald and Lai et al.).  This baseline models such
 * an engine at the L2: it sees every demand L2 miss immediately (no
 * bus crossing), reacts in a few cycles (dedicated hardware: no
 * software response/occupancy time), but its table is fixed SRAM --
 * whatever fits the budget -- instead of the ULMT's cheap main-memory
 * table.
 *
 * Comparing it against the ULMT quantifies the paper's motivation:
 * the ULMT gets comparable coverage with zero SRAM, losing only the
 * response-time gap.
 */

#ifndef DRIVER_HW_CORRELATION_HH
#define DRIVER_HW_CORRELATION_HH

#include <memory>

#include "core/base_chain.hh"
#include "core/replicated.hh"
#include "mem/memory_system.hh"

namespace driver {

/** An L2-side hardware correlation prefetch engine. */
class HwCorrelationEngine
{
  public:
    /**
     * @param ms memory system used to fetch the prefetched lines
     * @param sram_bytes hardware table budget
     * @param use_replicated use the Replicated organization instead
     *        of the conventional Base table
     * @param react_cycles reaction latency of the engine
     */
    HwCorrelationEngine(mem::MemorySystem &ms, std::size_t sram_bytes,
                        bool use_replicated = false,
                        sim::Cycle react_cycles = 4)
        : ms_(ms), reactCycles_(react_cycles)
    {
        if (use_replicated) {
            // 28 B per row (Table 2 accounting).
            core::CorrelationParams p = core::chainReplDefaults(
                roundRows(sram_bytes / 28));
            algo_ = std::make_unique<core::ReplicatedPrefetcher>(p);
        } else {
            // The classic Joseph & Grunwald organization: 20 B rows.
            core::CorrelationParams p =
                core::baseDefaults(roundRows(sram_bytes / 20));
            algo_ = std::make_unique<core::BasePrefetcher>(p);
        }
    }

    /** The L2 miss wire: called directly at miss-detection time. */
    void
    observeMiss(sim::Cycle when, sim::Addr line_addr)
    {
        scratch_.clear();
        algo_->prefetchStep(line_addr, scratch_, nullCost_);
        for (sim::Addr addr : scratch_) {
            const sim::Addr line = addr & ~static_cast<sim::Addr>(63);
            if (line != line_addr)
                ms_.ulmtPrefetch(when + reactCycles_, line);
        }
        algo_->learnStep(line_addr, nullCost_);
    }

    std::size_t tableBytes() const { return algo_->tableBytes(); }
    const core::CorrelationPrefetcher &algorithm() const
    {
        return *algo_;
    }

  private:
    static std::uint32_t
    roundRows(std::size_t rows)
    {
        // Largest power of two not above the budget (the tables hash
        // with low bits, so row counts are powers of two).
        std::uint32_t r = 1;
        while (2ull * r <= rows)
            r *= 2;
        return r;
    }

    mem::MemorySystem &ms_;
    sim::Cycle reactCycles_;
    std::unique_ptr<core::CorrelationPrefetcher> algo_;
    core::NullCostTracker nullCost_;
    std::vector<sim::Addr> scratch_;
};

} // namespace driver

#endif // DRIVER_HW_CORRELATION_HH
