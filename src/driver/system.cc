#include "driver/system.hh"

#include <chrono>

#include "sim/logging.hh"

namespace driver {

namespace {

/** Safety valve: no run should need more events than this. */
constexpr std::uint64_t maxEvents = 4'000'000'000ULL;

} // namespace

System::System(const SystemConfig &cfg, workloads::Workload &workload)
    : System(cfg, workload, workload.name())
{
    workloadSource_ = workload.source();
}

System::System(const SystemConfig &cfg, cpu::TraceSource &source,
               std::string name)
    : cfg_(cfg), source_(source), workloadName_(std::move(name))
{
    ms_ = std::make_unique<mem::MemorySystem>(eq_, cfg_.timing);
    hier_ = std::make_unique<cpu::Hierarchy>(eq_, cfg_.timing, *ms_,
                                             cfg_.conven4);
    ms_->setPushCallback([this](sim::Cycle when, sim::Addr line) {
        hier_->acceptPush(when, line);
    });

    if (cfg_.ulmt.enabled()) {
        auto algo = core::makeAlgorithm(cfg_.ulmt);
        engine_ = std::make_unique<core::UlmtEngine>(eq_, cfg_.timing,
                                                     *ms_,
                                                     std::move(algo));
        ms_->setObserver(engine_.get(), cfg_.ulmt.verbose);
    }

    if (cfg_.hwCorrSramBytes > 0) {
        hwCorr_ = std::make_unique<HwCorrelationEngine>(
            *ms_, cfg_.hwCorrSramBytes, cfg_.hwCorrReplicated);
    }

    if (cfg_.recordMissStream || hwCorr_) {
        hier_->onDemandL2Miss = [this](sim::Cycle when,
                                       sim::Addr line) {
            if (cfg_.recordMissStream)
                missStream_.push_back(line);
            if (hwCorr_)
                hwCorr_->observeMiss(when, line);
        };
    }

    cpu_ = std::make_unique<cpu::MainProcessor>(eq_, cfg_.timing,
                                                *hier_, source_);
}

RunResult
System::run()
{
    cpu_->start();
    const auto wall_start = std::chrono::steady_clock::now();
    const bool drained = eq_.run(maxEvents);
    const auto wall_end = std::chrono::steady_clock::now();
    SIM_ASSERT(drained && cpu_->finished(),
               "simulation did not complete (event limit hit?)");

    RunResult r;
    r.workload = workloadName_;
    r.label = cfg_.label;
    r.source = workloadSource_;
    r.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.eventsExecuted = eq_.executed();

    const cpu::ProcessorStats &ps = cpu_->stats();
    r.cycles = ps.totalCycles;
    r.busyCycles = ps.busyCycles;
    r.uptoL2Stall = ps.uptoL2Stall;
    r.beyondL2Stall = ps.beyondL2Stall;
    r.records = ps.records;
    r.proc = ps;

    r.hier = hier_->stats();
    if (engine_)
        r.ulmt = engine_->stats();
    r.memsys = ms_->stats();
    r.dram = ms_->dram().stats();
    r.busBusyTotal = ms_->bus().busyTotal();
    r.busBusyPrefetch = ms_->bus().busyPrefetch();

    const sim::BinnedHistogram &gaps = hier_->missGapHistogram();
    r.missGapFractions.resize(gaps.numBins());
    for (std::size_t i = 0; i < gaps.numBins(); ++i)
        r.missGapFractions[i] = gaps.binFraction(i);

    r.missStream = std::move(missStream_);
    return r;
}

void
System::pageRemap(sim::Addr old_page, sim::Addr new_page,
                  std::uint32_t page_bytes)
{
    if (engine_)
        engine_->pageRemap(old_page, new_page, page_bytes);
}

} // namespace driver
