#include "driver/system.hh"

#include <chrono>

#include "sim/logging.hh"

namespace driver {

namespace {

/** Safety valve: no run should need more events than this. */
constexpr std::uint64_t maxEvents = 4'000'000'000ULL;

} // namespace

System::System(const SystemConfig &cfg, workloads::Workload &workload)
    : System(cfg, workload, workload.name())
{
    workloadSource_ = workload.source();
}

System::System(const SystemConfig &cfg, cpu::TraceSource &source,
               std::string name)
    : cfg_(cfg), source_(source), workloadName_(std::move(name))
{
    ms_ = std::make_unique<mem::MemorySystem>(eq_, cfg_.timing);
    hier_ = std::make_unique<cpu::Hierarchy>(eq_, cfg_.timing, *ms_,
                                             cfg_.conven4);
    ms_->setPushCallback([this](sim::Cycle when, sim::Addr line) {
        hier_->acceptPush(when, line);
    });

    if (cfg_.ulmt.enabled()) {
        auto algo = core::makeAlgorithm(cfg_.ulmt);
        engine_ = std::make_unique<core::UlmtEngine>(eq_, cfg_.timing,
                                                     *ms_,
                                                     std::move(algo));
        ms_->setObserver(engine_.get(), cfg_.ulmt.verbose);
    }

    if (cfg_.hwCorrSramBytes > 0) {
        hwCorr_ = std::make_unique<HwCorrelationEngine>(
            *ms_, cfg_.hwCorrSramBytes, cfg_.hwCorrReplicated);
    }

    if (cfg_.recordMissStream || hwCorr_) {
        hier_->onDemandL2Miss = [this](sim::Cycle when,
                                       sim::Addr line) {
            if (cfg_.recordMissStream)
                missStream_.push_back(line);
            if (hwCorr_)
                hwCorr_->observeMiss(when, line);
        };
    }

    cpu_ = std::make_unique<cpu::MainProcessor>(eq_, cfg_.timing,
                                                *hier_, source_);

    initObservability();
}

void
System::initObservability()
{
    // One dotted namespace over every component's counters.
    ms_->registerStats(registry_);
    hier_->registerStats(registry_);
    cpu_->registerStats(registry_);
    if (engine_)
        engine_->registerStats(registry_);

    if (cfg_.metricsInterval == 0)
        return;

    sampler_ = std::make_unique<sim::TimeSeriesSampler>(
        cfg_.metricsInterval);
    sampler_->addChannel("l2.mshr_occupancy", [this] {
        return double(hier_->mshrInUse(eq_.now()));
    });
    sampler_->addChannel("memsys.queue1_inflight", [this] {
        return double(ms_->inflightDemandCount());
    });
    sampler_->addChannel("memsys.queue3_inflight", [this] {
        return double(ms_->inflightPrefetchCount());
    });
    // Fraction of ULMT prefetch requests the Filter module caught.
    sampler_->addChannel("memsys.filter_hit_rate", [this] {
        const mem::PrefetchFilter &f = ms_->filter();
        const double total = double(f.admits() + f.drops());
        return total > 0.0 ? double(f.drops()) / total : 0.0;
    });
    sampler_->addChannel("bus.utilization", [this] {
        const sim::Cycle now = eq_.now();
        return now ? double(ms_->bus().busyTotal()) / double(now)
                   : 0.0;
    });
    sampler_->addChannel("dram.row_hit_rate", [this] {
        const mem::DramStats &d = ms_->dram().stats();
        return d.accesses ? double(d.rowHits) / double(d.accesses)
                          : 0.0;
    });
    if (engine_) {
        sampler_->addChannel("ulmt.queue2_depth", [this] {
            return double(engine_->queue2Depth());
        });
        sampler_->addChannel("ulmt.table_bytes", [this] {
            return double(engine_->algorithm().tableBytes());
        });
        sampler_->addChannel("ulmt.response_mean", [this] {
            return engine_->stats().responseTime.mean();
        });
        sampler_->addChannel("ulmt.occupancy_mean", [this] {
            return engine_->stats().occupancyTime.mean();
        });
    }
    // Passive ticker: the sampler only reads state, so timing and
    // executed-event counts are identical with sampling on or off.
    eq_.setTicker(cfg_.metricsInterval,
                  [this](sim::Cycle now) { sampler_->tick(now); });
}

void
System::setTraceEvents(sim::TraceEventBuffer *buf)
{
    trace_ = buf;
    ms_->setTrace(buf);
    if (engine_)
        engine_->setTrace(buf);
    if (sampler_)
        sampler_->setTrace(buf);
}

RunResult
System::run()
{
    cpu_->start();
    const auto wall_start = std::chrono::steady_clock::now();
    const bool drained = eq_.run(maxEvents);
    const auto wall_end = std::chrono::steady_clock::now();
    SIM_ASSERT(drained && cpu_->finished(),
               "simulation did not complete (event limit hit?)");

    RunResult r;
    r.workload = workloadName_;
    r.label = cfg_.label;
    r.source = workloadSource_;
    r.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.eventsExecuted = eq_.executed();

    const cpu::ProcessorStats &ps = cpu_->stats();
    r.cycles = ps.totalCycles;
    r.busyCycles = ps.busyCycles;
    r.uptoL2Stall = ps.uptoL2Stall;
    r.beyondL2Stall = ps.beyondL2Stall;
    r.records = ps.records;
    r.proc = ps;

    r.hier = hier_->stats();
    if (engine_)
        r.ulmt = engine_->stats();
    r.memsys = ms_->stats();
    r.dram = ms_->dram().stats();
    r.busBusyTotal = ms_->bus().busyTotal();
    r.busBusyPrefetch = ms_->bus().busyPrefetch();

    const sim::BinnedHistogram &gaps = hier_->missGapHistogram();
    r.missGapFractions.resize(gaps.numBins());
    for (std::size_t i = 0; i < gaps.numBins(); ++i)
        r.missGapFractions[i] = gaps.binFraction(i);

    r.missStream = std::move(missStream_);
    if (sampler_) {
        sampler_->flush(eq_.now());  // final end-of-run row
        r.metrics = sampler_->take();
    }
    return r;
}

void
System::pageRemap(sim::Addr old_page, sim::Addr new_page,
                  std::uint32_t page_bytes)
{
    if (engine_)
        engine_->pageRemap(old_page, new_page, page_bytes);
}

} // namespace driver
