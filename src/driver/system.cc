#include "driver/system.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "ckpt/sim_state.hh"
#include "sim/logging.hh"

namespace driver {

namespace {

/** Safety valve: no run should need more events than this. */
constexpr std::uint64_t maxEvents = 4'000'000'000ULL;

/**
 * The config's check options, unless the config leaves checking off
 * and the ULMT_CHECK environment variable (1/basic/deep) asks for it
 * process-wide (the CI hook for a checker-enabled test pass).
 */
check::CheckOptions
effectiveCheckOptions(const SystemConfig &cfg)
{
    check::CheckOptions opts = cfg.check;
    if (opts.enabled())
        return opts;
    if (const char *env = std::getenv("ULMT_CHECK")) {
        const std::string v(env);
        if (v == "deep")
            opts.mode = check::CheckMode::Deep;
        else if (v == "1" || v == "basic")
            opts.mode = check::CheckMode::Basic;
    }
    return opts;
}

/**
 * The config's audit flag, unless the ULMT_AUDIT environment variable
 * overrides it process-wide (0/off disables, 1/on enables) -- the same
 * escape hatch pattern as ULMT_CHECK, e.g. for an A/B passivity sweep
 * over an unmodified benchmark binary.
 */
bool
effectiveAuditEnabled(const SystemConfig &cfg)
{
    if (const char *env = std::getenv("ULMT_AUDIT")) {
        const std::string v(env);
        if (v == "0" || v == "off")
            return false;
        if (v == "1" || v == "on")
            return true;
    }
    return cfg.audit;
}

/** Section name of core/engine @p i: instance 0 keeps the
 *  pre-multicore unsuffixed name. */
std::string
sectionName(const char *base, std::size_t i)
{
    return i ? base + std::to_string(i) : base;
}

} // namespace

System::System(const SystemConfig &cfg, workloads::Workload &workload)
    : System(cfg, workload, workload.name())
{
    workloadSource_ = workload.source();
    coreWorkloads_[0] = &workload;
    ckptApp_ = workload.name();
}

System::System(const SystemConfig &cfg, cpu::TraceSource &source,
               std::string name)
    : cfg_(cfg), workloadName_(std::move(name))
{
    if (cfg_.cores != 1) {
        throw std::invalid_argument(
            "System: a multicore machine needs one workload per core "
            "(use the vector-of-workloads constructor)");
    }
    sources_.push_back(&source);
    coreWorkloads_.assign(1, nullptr);
    init();
}

System::System(const SystemConfig &cfg,
               std::vector<std::unique_ptr<workloads::Workload>> workloads,
               std::string name)
    : cfg_(cfg), workloadName_(std::move(name))
{
    if (workloads.size() != cfg_.cores) {
        throw std::invalid_argument(
            "System: got " + std::to_string(workloads.size()) +
            " workloads for " + std::to_string(cfg_.cores) + " cores");
    }
    ownedWorkloads_ = std::move(workloads);
    for (auto &w : ownedWorkloads_) {
        sources_.push_back(w.get());
        coreWorkloads_.push_back(w.get());
    }
    workloadSource_ = ownedWorkloads_[0]->source();
    ckptApp_ = ownedWorkloads_[0]->name();
    init();
}

void
System::init()
{
    if (cfg_.cores < 1 || cfg_.cores > sim::maxCores) {
        throw std::invalid_argument(
            "System: cores must be in [1, " +
            std::to_string(sim::maxCores) + "]");
    }
    SIM_ASSERT(sources_.size() == cfg_.cores,
               "one trace source per core");

    ms_ = std::make_unique<mem::MemorySystem>(eq_, cfg_.timing);
    // Size the per-tenant QoS counters before registerStats() runs:
    // the registry keeps raw pointers into the vector.
    ms_->setNumCores(cfg_.cores);
    if (cfg_.tableCache.on())
        ms_->configureTableCache(cfg_.tableCache);

    for (unsigned c = 0; c < cfg_.cores; ++c) {
        hiers_.push_back(std::make_unique<cpu::Hierarchy>(
            eq_, cfg_.timing, *ms_, cfg_.conven4, c));
    }
    ms_->setPushCallback(
        [this](sim::Cycle when, sim::Addr line, unsigned core) {
            hiers_[core]->acceptPush(when, line);
        });

    if (cfg_.vm.on()) {
        vm_ = std::make_unique<vm::Vm>(eq_, cfg_.vm, cfg_.cores);
        for (auto &h : hiers_)
            h->setVm(vm_.get());
        // The controller enforces the page-cross drop rule on pushes.
        ms_->setPageShift(vm_->pageShift());
        // A migration is an OS event: notify the ULMT (Sec 3.4) and
        // resync the checker's reference models, exactly as an
        // externally injected System::pageRemap would.
        vm_->setRemapCallback([this](sim::Addr old_page,
                                     sim::Addr new_page,
                                     std::uint32_t page_bytes) {
            pageRemap(old_page, new_page, page_bytes);
        });
    }

    if (cfg_.ulmt.enabled()) {
        using Shards =
            std::vector<std::unique_ptr<core::CorrelationPrefetcher>>;
        switch (cfg_.ulmtMode) {
          case core::UlmtMode::Shared: {
            // One thread, one table, every tenant round-robin.
            Shards shards;
            shards.push_back(core::makeAlgorithm(cfg_.ulmt));
            engines_.push_back(std::make_unique<core::UlmtEngine>(
                eq_, cfg_.timing, *ms_, std::move(shards), cfg_.cores,
                /*base_core=*/0, /*engine_id=*/0));
            ms_->setObserver(engines_[0].get(), cfg_.ulmt.verbose);
            break;
          }
          case core::UlmtMode::Sharded: {
            // One thread, one table shard per tenant (disjoint table
            // address ranges so shards never alias in DRAM).
            Shards shards;
            for (unsigned c = 0; c < cfg_.cores; ++c) {
                shards.push_back(core::makeAlgorithm(
                    cfg_.ulmt, core::shardTableBase(c)));
            }
            engines_.push_back(std::make_unique<core::UlmtEngine>(
                eq_, cfg_.timing, *ms_, std::move(shards), cfg_.cores,
                /*base_core=*/0, /*engine_id=*/0));
            ms_->setObserver(engines_[0].get(), cfg_.ulmt.verbose);
            break;
          }
          case core::UlmtMode::PerCore: {
            // One thread (and table) per tenant; each observes only
            // its own core's misses.
            for (unsigned c = 0; c < cfg_.cores; ++c) {
                Shards shards;
                shards.push_back(core::makeAlgorithm(
                    cfg_.ulmt, core::shardTableBase(c)));
                engines_.push_back(std::make_unique<core::UlmtEngine>(
                    eq_, cfg_.timing, *ms_, std::move(shards),
                    /*num_cores=*/1, /*base_core=*/c,
                    /*engine_id=*/c));
                ms_->setCoreObserver(c, engines_[c].get(),
                                     cfg_.ulmt.verbose);
            }
            break;
          }
        }
    }

    if (effectiveAuditEnabled(cfg_)) {
        audit_ = std::make_unique<mem::PrefetchAudit>(
            cfg_.cores,
            static_cast<unsigned>(std::max<std::size_t>(
                engines_.size(), 1)),
            ms_->dram().numBanks(), ms_->dram().numChannels());
        ms_->setAudit(audit_.get());
        for (auto &h : hiers_)
            h->setAudit(audit_.get());
    }

    if (cfg_.hwCorrSramBytes > 0) {
        if (cfg_.cores > 1) {
            throw std::invalid_argument(
                "the hardware correlation baseline is single-core "
                "only");
        }
        hwCorr_ = std::make_unique<HwCorrelationEngine>(
            *ms_, cfg_.hwCorrSramBytes, cfg_.hwCorrReplicated);
    }

    if (cfg_.recordMissStream || hwCorr_) {
        for (auto &h : hiers_) {
            h->onDemandL2Miss = [this](sim::Cycle when,
                                       sim::Addr line) {
                if (cfg_.recordMissStream)
                    missStream_.push_back(line);
                if (hwCorr_)
                    hwCorr_->observeMiss(when, line);
            };
        }
    }

    for (unsigned c = 0; c < cfg_.cores; ++c) {
        cpus_.push_back(std::make_unique<cpu::MainProcessor>(
            eq_, cfg_.timing, *hiers_[c], *sources_[c], c));
    }

    const check::CheckOptions chk = effectiveCheckOptions(cfg_);
    if (chk.enabled()) {
        std::vector<cpu::Hierarchy *> hs;
        for (auto &h : hiers_)
            hs.push_back(h.get());
        std::vector<core::UlmtEngine *> es;
        for (auto &e : engines_)
            es.push_back(e.get());
        checker_ = std::make_unique<check::InvariantChecker>(
            chk, eq_, *ms_, std::move(hs), std::move(es));
        checker_->install();
    }

    initObservability();
}

void
System::initObservability()
{
    // One dotted namespace over every component's counters.  A
    // multicore machine prefixes per-core components with "cpu.<c>."
    // and its engines with "ulmt.<id>."; single-core names are
    // unchanged.
    ms_->registerStats(registry_);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        const std::string p =
            cfg_.cores > 1 ? "cpu." + std::to_string(c) + "." : "";
        hiers_[c]->registerStats(registry_, p);
        cpus_[c]->registerStats(registry_, p);
    }
    for (auto &e : engines_) {
        const std::string p =
            engines_.size() > 1
                ? "ulmt." + std::to_string(e->engineId()) + "."
                : "ulmt.";
        e->registerStats(registry_, p);
    }
    if (checker_)
        checker_->registerStats(registry_);
    if (vm_)
        vm_->registerStats(registry_);
    if (audit_) {
        audit_->registerStats(registry_, [this](unsigned c) {
            return hiers_[c]->stats().nonPrefMisses;
        });
    }

    // Host-side checkpoint costs (0 until a save/restore happens).
    registry_.addGauge("ckpt.save_seconds",
                       [this] { return ckptSaveSeconds_; });
    registry_.addGauge("ckpt.restore_seconds",
                       [this] { return ckptRestoreSeconds_; });
    registry_.addGauge("ckpt.snapshot_bytes",
                       [this] { return double(ckptBytes_); });

    if (cfg_.metricsInterval == 0)
        return;

    // The sampled channels stay on core 0 / engine 0: the time series
    // is a dashboard of the machine's representative tenant, and the
    // per-core registries above carry the full breakdown.
    sampler_ = std::make_unique<sim::TimeSeriesSampler>(
        cfg_.metricsInterval);
    sampler_->addChannel("l2.mshr_occupancy", [this] {
        return double(hiers_[0]->mshrInUse(eq_.now()));
    });
    sampler_->addChannel("memsys.queue1_inflight", [this] {
        return double(ms_->inflightDemandCount() +
                      ms_->inflightCpuPrefetchCount());
    });
    sampler_->addChannel("memsys.queue3_inflight", [this] {
        return double(ms_->inflightPrefetchCount());
    });
    // Fraction of ULMT prefetch requests the Filter module caught.
    sampler_->addChannel("memsys.filter_hit_rate", [this] {
        const mem::PrefetchFilter &f = ms_->filter();
        const double total = double(f.admits() + f.drops());
        return total > 0.0 ? double(f.drops()) / total : 0.0;
    });
    sampler_->addChannel("bus.utilization", [this] {
        const sim::Cycle now = eq_.now();
        return now ? double(ms_->bus().busyTotal()) / double(now)
                   : 0.0;
    });
    sampler_->addChannel("dram.row_hit_rate", [this] {
        const mem::DramStats &d = ms_->dram().stats();
        return d.accesses ? double(d.rowHits) / double(d.accesses)
                          : 0.0;
    });
    if (cfg_.tableCache.on()) {
        sampler_->addChannel("memsys.tcache.hit_rate", [this] {
            const mem::TableCacheStats &t =
                ms_->tableCache().stats();
            const double total = double(t.hits + t.misses);
            return total > 0.0 ? double(t.hits) / total : 0.0;
        });
    }
    if (!engines_.empty()) {
        sampler_->addChannel("ulmt.queue2_depth", [this] {
            return double(engines_[0]->queue2Depth());
        });
        sampler_->addChannel("ulmt.table_bytes", [this] {
            double b = 0.0;
            for (std::size_t i = 0; i < engines_[0]->numShards(); ++i)
                b += double(engines_[0]->shard(i).tableBytes());
            return b;
        });
        sampler_->addChannel("ulmt.response_mean", [this] {
            return engines_[0]->stats().responseTime.mean();
        });
        sampler_->addChannel("ulmt.occupancy_mean", [this] {
            return engines_[0]->stats().occupancyTime.mean();
        });
    }
    if (audit_) {
        // Effectiveness time series: machine-wide outcome ratios plus
        // the cumulative interference charge.
        sampler_->addChannel("audit.coverage", [this] {
            std::uint64_t npm = 0;
            for (const auto &h : hiers_)
                npm += h->stats().nonPrefMisses;
            return audit_->totals().coverage(npm);
        });
        sampler_->addChannel("audit.accuracy", [this] {
            return audit_->totals().accuracy();
        });
        sampler_->addChannel("audit.timeliness", [this] {
            return audit_->totals().timeliness();
        });
        sampler_->addChannel("audit.blocked_cycles", [this] {
            return double(audit_->blockedTotal());
        });
    }

    // Passive ticker: the sampler only reads state, so timing and
    // executed-event counts are identical with sampling on or off.
    eq_.setTicker(cfg_.metricsInterval,
                  [this](sim::Cycle now) { sampler_->tick(now); });
}

void
System::setCheckpointMeta(std::string app_key, std::uint64_t seed,
                          double scale)
{
    ckptApp_ = std::move(app_key);
    ckptSeed_ = seed;
    ckptScale_ = scale;
}

void
System::setCheckpointTrigger(const std::string &spec, std::string path)
{
    if (spec.empty())
        throw ckpt::CkptError("empty checkpoint trigger");
    std::size_t end = 0;
    unsigned long long n = 0;
    try {
        n = std::stoull(spec, &end);
    } catch (const std::exception &) {
        throw ckpt::CkptError("bad checkpoint trigger '" + spec +
                              "' (expected '<N>' misses or '<N>c')");
    }
    if (end == spec.size()) {
        ckptTriggerMisses_ = n;
        ckptTriggerCycle_ = 0;
    } else if (end + 1 == spec.size() && spec[end] == 'c') {
        ckptTriggerCycle_ = n;
        ckptTriggerMisses_ = 0;
    } else {
        throw ckpt::CkptError("bad checkpoint trigger '" + spec +
                              "' (expected '<N>' misses or '<N>c')");
    }
    ckptPath_ = std::move(path);
}

std::uint64_t
System::configFingerprint() const
{
    // Canonical serialization of everything that shapes simulated
    // behaviour; metricsInterval is passive observability and is
    // deliberately excluded so a sampling run can restore a
    // non-sampling snapshot (and vice versa).
    ckpt::StateWriter w;
    const mem::TimingParams &tp = cfg_.timing;
    w.u32(tp.issueWidth);
    w.u32(tp.maxPendingLoads);
    w.u32(tp.maxPendingStores);
    w.u32(tp.robSize);
    for (const mem::CacheGeometry *g :
         {&tp.l1, &tp.l2, &tp.memProcL1}) {
        w.u32(g->sizeBytes);
        w.u32(g->assoc);
        w.u32(g->lineBytes);
    }
    w.u32(tp.streamNumSeq);
    w.u32(tp.streamNumPref);
    w.u64(tp.l1HitRt);
    w.u64(tp.l2HitRt);
    w.u32(tp.l2Mshrs);
    w.u64(tp.busCyclesPerBeat);
    w.u32(tp.busBytesPerBeat);
    w.u64(tp.reqPathCycles);
    w.u64(tp.respPathCycles);
    w.u32(tp.dramChannels);
    w.u32(tp.dramBanksPerChannel);
    w.u32(tp.dramRowBytes);
    w.u64(tp.bankRowHitCycles);
    w.u64(tp.bankRowMissCycles);
    w.u64(tp.channelXferCycles);
    w.u64(tp.tableBankRowHitCycles);
    w.u64(tp.tableBankRowMissCycles);
    w.u64(tp.tableChannelXferCycles);
    w.u8(static_cast<std::uint8_t>(tp.placement));
    w.u32(tp.memProcIssueWidth);
    w.u64(tp.memProcL1HitRtMemCycles);
    w.u64(tp.tableAccessFixedDram);
    w.u64(tp.tableAccessFixedNorthBridge);
    w.u64(tp.prefetchInjectDelay);
    w.u32(tp.queueDepth);
    w.u32(tp.filterEntries);

    w.b(cfg_.conven4);
    w.u32(static_cast<std::uint32_t>(cfg_.ulmt.algo));
    w.u32(cfg_.ulmt.numRows);
    w.u32(cfg_.ulmt.numLevels);
    w.b(cfg_.ulmt.verbose);
    w.u64(cfg_.hwCorrSramBytes);
    w.b(cfg_.hwCorrReplicated);
    w.b(cfg_.recordMissStream);
    w.str(cfg_.label);
    w.str(workloadName_);
    // Appended only for non-default machines so every pre-multicore
    // fingerprint (one core, shared serving) stays bit-identical.
    if (cfg_.cores > 1 || cfg_.ulmtMode != core::UlmtMode::Shared) {
        w.u32(cfg_.cores);
        w.u32(static_cast<std::uint32_t>(cfg_.ulmtMode));
    }
    // Same conditional-append idiom for the VM layer: only a machine
    // that translates extends the fingerprint, so every pre-VM
    // fingerprint stays bit-identical.
    if (cfg_.vm.on()) {
        w.u32(cfg_.vm.pageBytes);
        w.f64(cfg_.vm.remapRate);
        w.u64(cfg_.vm.seed);
    }
    // And for the table cache: --table-cache=0 machines keep the
    // pre-MSCache fingerprint.
    if (cfg_.tableCache.on()) {
        w.u32(cfg_.tableCache.entries);
        w.u32(cfg_.tableCache.assoc);
    }

    const std::string &buf = w.buffer();
    return ckpt::fnv1a64(buf.data(), buf.size());
}

sim::EventQueue::Action
System::resolveEvent(const sim::SavedEvent &s)
{
    switch (static_cast<sim::EventKind>(s.kind)) {
      case sim::EventKind::ProcStep:
        if (s.arg0 >= cpus_.size()) {
            throw ckpt::CkptError(
                "checkpoint step event names a core this machine "
                "does not have");
        }
        return cpus_[s.arg0]->stepAction();
      case sim::EventKind::MemDemandDone:
        return ms_->demandDoneAction(s.arg0);
      case sim::EventKind::MemCpuPfDone:
        return ms_->cpuPfDoneAction(s.arg0);
      case sim::EventKind::MemPfArrival:
        return ms_->prefetchArrivalAction(s.arg0, s.arg1);
      case sim::EventKind::UlmtProcess:
        if (s.arg0 >= engines_.size()) {
            throw ckpt::CkptError(
                "checkpoint has a pending ULMT event but this "
                "configuration has no matching engine");
        }
        return engines_[s.arg0]->processAction();
      case sim::EventKind::VmRemap:
        if (!vm_) {
            throw ckpt::CkptError(
                "checkpoint has a pending VM remap event but this "
                "machine has no VM layer");
        }
        return vm_->remapAction();
      default:
        throw ckpt::CkptError("unresolvable event kind in checkpoint");
    }
}

void
System::saveCheckpoint(const std::string &path)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (hwCorr_) {
        throw ckpt::CkptError(
            "the hardware correlation baseline is not checkpointable");
    }

    ckpt::CheckpointImage img;
    img.header.configFingerprint = configFingerprint();
    img.header.seed = ckptSeed_;
    img.header.scale = ckptScale_;
    img.header.cycle = eq_.now();
    std::uint64_t misses = 0;
    for (const auto &h : hiers_)
        misses += h->stats().l2Misses;
    img.header.misses = misses;
    img.header.cores = cfg_.cores;
    img.header.ulmtMode = static_cast<std::uint32_t>(cfg_.ulmtMode);
    img.header.vmPageBytes = vm_ ? vm_->pageBytes() : 0;
    img.header.workload = ckptApp_;
    img.header.label = cfg_.label;

    {
        ckpt::StateWriter w;
        w.u64(eq_.now());
        w.u64(eq_.nextSeq());
        w.u64(eq_.executed());
        const std::vector<sim::SavedEvent> evs = eq_.saveEvents();
        w.u64(evs.size());
        for (const sim::SavedEvent &e : evs) {
            if (e.kind ==
                static_cast<std::uint32_t>(sim::EventKind::Untagged)) {
                throw ckpt::CkptError(
                    "an untagged event is pending; the queue is not "
                    "checkpointable at this instant");
            }
            w.u64(e.when);
            w.u64(e.seq);
            w.u32(e.kind);
            w.u64(e.arg0);
            w.u64(e.arg1);
        }
        img.addSection("events", w.take());
    }
    for (std::size_t c = 0; c < cpus_.size(); ++c) {
        ckpt::StateWriter w;
        cpus_[c]->saveState(w);
        img.addSection(sectionName("cpu", c), w.take());
    }
    for (std::size_t c = 0; c < hiers_.size(); ++c) {
        ckpt::StateWriter w;
        hiers_[c]->saveState(w);
        img.addSection(sectionName("hier", c), w.take());
    }
    {
        ckpt::StateWriter w;
        ms_->saveState(w);
        img.addSection("memsys", w.take());
    }
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        ckpt::StateWriter w;
        engines_[i]->saveState(w);
        img.addSection(sectionName("ulmt", i), w.take());
    }
    if (vm_) {
        ckpt::StateWriter w;
        vm_->saveState(w);
        img.addSection("vm", w.take());
    }
    if (cfg_.tableCache.on()) {
        ckpt::StateWriter w;
        ms_->tableCache().saveState(w);
        img.addSection("tcache", w.take());
    }
    {
        ckpt::StateWriter w;
        w.b(cfg_.recordMissStream);
        if (cfg_.recordMissStream) {
            w.u64(missStream_.size());
            for (sim::Addr a : missStream_)
                w.u64(a);
        }
        img.addSection("driver", w.take());
    }

    ckptBytes_ = img.writeFile(path);
    ckptSaveSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
}

void
System::restoreCheckpoint(const std::string &path)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (hwCorr_) {
        throw ckpt::CkptError(
            "the hardware correlation baseline is not checkpointable");
    }
    for (workloads::Workload *w : coreWorkloads_) {
        if (!w) {
            throw ckpt::CkptError(
                "restore needs a rewindable workload (raw trace "
                "sources have no fast-forwardable cursor)");
        }
    }
    const ckpt::CheckpointImage img = ckpt::CheckpointImage::readFile(path);
    // The machine-shape checks come before the fingerprint check so a
    // cores or serving-mode mismatch is reported as exactly that.
    if (img.header.cores != cfg_.cores) {
        throw ckpt::CkptError(
            "checkpoint '" + path + "' was taken on a " +
            std::to_string(img.header.cores) + "-core machine, not " +
            std::to_string(cfg_.cores) + " cores");
    }
    if (img.header.ulmtMode !=
        static_cast<std::uint32_t>(cfg_.ulmtMode)) {
        throw ckpt::CkptError(
            "checkpoint '" + path +
            "' was taken under a different ULMT serving mode");
    }
    // VM page size is machine shape too: report a mismatch as such
    // before the opaque fingerprint comparison can mask it.
    const std::uint32_t my_page_bytes = vm_ ? vm_->pageBytes() : 0;
    if (img.header.vmPageBytes != my_page_bytes) {
        const auto shape = [](std::uint32_t pb) {
            return pb ? "VM with " + vm::pageSizeName(pb) + " pages"
                      : std::string("no VM layer");
        };
        throw ckpt::CkptError(
            "checkpoint '" + path + "' was taken with " +
            shape(img.header.vmPageBytes) + ", but this machine has " +
            shape(my_page_bytes));
    }
    // A cache-on machine needs the tcache section.  v4 files (and v5
    // files from --table-cache=0 machines) lack it; report that as
    // the shape mismatch it is before the opaque fingerprint check.
    if (cfg_.tableCache.on() && !img.findSection("tcache")) {
        throw ckpt::CkptError(
            "checkpoint '" + path +
            "' has no table-cache section (format v4, or taken with "
            "--table-cache=0); this machine runs --table-cache=" +
            std::to_string(cfg_.tableCache.entries) + "," +
            std::to_string(cfg_.tableCache.assoc) +
            " -- re-create the checkpoint with the same flag");
    }
    if (img.header.configFingerprint != configFingerprint()) {
        throw ckpt::CkptError(
            "checkpoint '" + path +
            "' was taken under a different machine configuration");
    }
    if (img.header.workload != ckptApp_) {
        throw ckpt::CkptError("checkpoint '" + path + "' is for workload '" +
                              img.header.workload + "', not '" + ckptApp_ +
                              "'");
    }

    for (std::size_t c = 0; c < cpus_.size(); ++c) {
        ckpt::StateReader r(img.section(sectionName("cpu", c)));
        cpus_[c]->restoreState(r);
        r.finish();
    }
    for (std::size_t c = 0; c < hiers_.size(); ++c) {
        ckpt::StateReader r(img.section(sectionName("hier", c)));
        hiers_[c]->restoreState(r);
        r.finish();
    }
    {
        ckpt::StateReader r(img.section("memsys"));
        ms_->restoreState(r);
        r.finish();
    }
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        ckpt::StateReader r(img.section(sectionName("ulmt", i)));
        engines_[i]->restoreState(r);
        r.finish();
    }
    if (vm_) {
        ckpt::StateReader r(img.section("vm"));
        vm_->restoreState(r);
        r.finish();
    }
    if (cfg_.tableCache.on()) {
        ckpt::StateReader r(img.section("tcache"));
        ms_->tableCache().restoreState(r);
        r.finish();
    }
    {
        ckpt::StateReader r(img.section("driver"));
        missStream_.clear();
        if (r.b()) {
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i)
                missStream_.push_back(r.u64());
        }
        r.finish();
    }

    // Fast-forward each core's workload cursor: its processor has
    // consumed stats().records records (including the in-progress
    // one).
    for (std::size_t c = 0; c < cpus_.size(); ++c) {
        coreWorkloads_[c]->reset();
        cpu::TraceRecord rec;
        for (std::uint64_t i = 0; i < cpus_[c]->stats().records; ++i) {
            if (!coreWorkloads_[c]->next(rec)) {
                throw ckpt::CkptError(
                    "workload ended before the checkpoint's trace "
                    "cursor");
            }
        }
    }

    // The event queue goes last: resolving closures needs the
    // components above in their restored state.
    {
        ckpt::StateReader r(img.section("events"));
        const sim::Cycle now = r.u64();
        const std::uint64_t next_seq = r.u64();
        const std::uint64_t executed = r.u64();
        const std::uint64_t count = r.u64();
        std::vector<sim::SavedEvent> evs;
        evs.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            sim::SavedEvent e;
            e.when = r.u64();
            e.seq = r.u64();
            e.kind = r.u32();
            e.arg0 = r.u64();
            e.arg1 = r.u64();
            if (e.kind == 0 ||
                e.kind > static_cast<std::uint32_t>(
                             sim::EventKind::VmRemap))
                throw ckpt::CkptError("corrupt event kind in checkpoint");
            evs.push_back(e);
        }
        r.finish();
        eq_.restoreEvents(now, next_seq, executed, evs,
                          [this](const sim::SavedEvent &s) {
                              return resolveEvent(s);
                          });
    }

    // The shadows saw none of the restored fills; rebuild them from
    // the real structures, then prove the restored state is sane.
    if (checker_) {
        checker_->resyncDeep();
        checker_->runChecks();
    }

    restored_ = true;
    ckptRestoreSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
}

void
System::setTraceEvents(sim::TraceEventBuffer *buf)
{
    trace_ = buf;
    ms_->setTrace(buf);
    for (auto &e : engines_)
        e->setTrace(buf);
    if (sampler_)
        sampler_->setTrace(buf);
    if (audit_)
        audit_->setTrace(buf);
}

RunResult
System::run()
{
    // After a restore the step events are already pending in the
    // queue; scheduling more would double-step the cores.
    if (!restored_) {
        for (auto &c : cpus_)
            c->start();
        if (vm_)
            vm_->start();
    }
    if (!ckptPath_.empty()) {
        if (ckptTriggerCycle_ > 0) {
            eq_.setBreakCheck([this](sim::Cycle now) {
                return now >= ckptTriggerCycle_;
            });
        } else {
            eq_.setBreakCheck([this](sim::Cycle) {
                std::uint64_t misses = 0;
                for (const auto &h : hiers_)
                    misses += h->stats().l2Misses;
                return misses >= ckptTriggerMisses_;
            });
        }
    }
    const auto wall_start = std::chrono::steady_clock::now();
    bool drained = eq_.run(maxEvents);
    while (!drained && eq_.breakHit()) {
        // The trigger fired between events: a consistent instant.
        // Snapshot, disarm, and carry on to completion.
        saveCheckpoint(ckptPath_);
        eq_.clearBreakCheck();
        drained = eq_.run(maxEvents);
    }
    const auto wall_end = std::chrono::steady_clock::now();
    bool finished = true;
    for (const auto &c : cpus_)
        finished = finished && c->finished();
    SIM_ASSERT(drained && finished,
               "simulation did not complete (event limit hit?)");
    if (checker_)
        checker_->runChecks();  // final end-of-run walk

    RunResult r;
    r.workload = workloadName_;
    r.label = cfg_.label;
    r.source = workloadSource_;
    r.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.eventsExecuted = eq_.executed();
    r.ckptSaveSeconds = ckptSaveSeconds_;
    r.ckptRestoreSeconds = ckptRestoreSeconds_;
    r.ckptBytes = ckptBytes_;

    // The scalar fields describe core 0 (the whole machine when
    // cores=1); cycles is the makespan and records the machine total.
    const cpu::ProcessorStats &ps = cpus_[0]->stats();
    r.busyCycles = ps.busyCycles;
    r.uptoL2Stall = ps.uptoL2Stall;
    r.beyondL2Stall = ps.beyondL2Stall;
    r.proc = ps;
    for (const auto &c : cpus_) {
        r.cycles = std::max(r.cycles, c->stats().totalCycles);
        r.records += c->stats().records;
    }

    r.hier = hiers_[0]->stats();
    if (!engines_.empty())
        r.ulmt = engines_[0]->stats();
    r.memsys = ms_->stats();
    r.dram = ms_->dram().stats();
    r.busBusyTotal = ms_->bus().busyTotal();
    r.busBusyPrefetch = ms_->bus().busyPrefetch();

    r.coreQos = ms_->coreQos();
    if (cfg_.cores > 1) {
        for (const auto &c : cpus_)
            r.coreProc.push_back(c->stats());
        for (const auto &h : hiers_)
            r.coreHier.push_back(h->stats());
        for (const auto &e : engines_)
            r.engineUlmt.push_back(e->stats());
    }

    const sim::BinnedHistogram &gaps = hiers_[0]->missGapHistogram();
    r.missGapFractions.resize(gaps.numBins());
    for (std::size_t i = 0; i < gaps.numBins(); ++i)
        r.missGapFractions[i] = gaps.binFraction(i);

    r.cores = cfg_.cores;
    r.ulmtMode = core::to_string(cfg_.ulmtMode);
    if (vm_) {
        r.vmOn = true;
        r.vmPageBytes = vm_->pageBytes();
        r.vmRemapRate = cfg_.vm.remapRate;
        r.vmRemaps = vm_->remaps();
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            const vm::VmCoreStats &vs = vm_->coreStats(c);
            r.vmTlbHits += vs.tlbHits;
            r.vmTlbMisses += vs.tlbMisses;
            r.vmWalkCycles += vs.walkCycles;
            r.vmPagesMapped += vm_->pagesMapped(c);
        }
    }
    if (cfg_.tableCache.on()) {
        r.tcacheOn = true;
        r.tcacheEntries = cfg_.tableCache.entries;
        r.tcacheAssoc = cfg_.tableCache.assoc;
        r.tcache = ms_->tableCache().stats();
    }
    if (audit_) {
        r.audit = audit_->report();
        // Fold in what the auditor cannot see on its own: the coverage
        // denominator and the CPU stream prefetcher's lifecycle, both
        // already counted by the hierarchies.
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            const cpu::HierarchyStats &hs = hiers_[c]->stats();
            mem::AuditCoreReport &cr = r.audit.cores[c];
            cr.coverage = cr.push.coverage(hs.nonPrefMisses);
            cr.cpuPfIssued = hs.cpuPfIssued;
            cr.cpuPfToMemory = hs.cpuPfToMemory;
            cr.cpuPfUsefulTimely = hs.cpuPfTimely;
            cr.cpuPfUsefulLate = hs.cpuPfUseful - hs.cpuPfTimely;
            cr.cpuPfReplaced = hs.cpuPfReplaced;
            cr.cpuPfDroppedPageCross = hs.cpuPfDroppedPageCross;
        }
    }

    r.missStream = std::move(missStream_);
    if (sampler_) {
        sampler_->flush(eq_.now());  // final end-of-run row
        r.metrics = sampler_->take();
    }
    return r;
}

void
System::pageRemap(sim::Addr old_page, sim::Addr new_page,
                  std::uint32_t page_bytes)
{
    for (auto &e : engines_)
        e->pageRemap(old_page, new_page, page_bytes);
    // A remap rewrites table tags in place; the pair-table oracle has
    // no notification stream for it, so rebuild from the real state.
    if (checker_)
        checker_->resyncDeep();
}

} // namespace driver
