#include "driver/system.hh"

#include <chrono>
#include <cstdlib>

#include "ckpt/sim_state.hh"
#include "sim/logging.hh"

namespace driver {

namespace {

/** Safety valve: no run should need more events than this. */
constexpr std::uint64_t maxEvents = 4'000'000'000ULL;

/**
 * The config's check options, unless the config leaves checking off
 * and the ULMT_CHECK environment variable (1/basic/deep) asks for it
 * process-wide (the CI hook for a checker-enabled test pass).
 */
check::CheckOptions
effectiveCheckOptions(const SystemConfig &cfg)
{
    check::CheckOptions opts = cfg.check;
    if (opts.enabled())
        return opts;
    if (const char *env = std::getenv("ULMT_CHECK")) {
        const std::string v(env);
        if (v == "deep")
            opts.mode = check::CheckMode::Deep;
        else if (v == "1" || v == "basic")
            opts.mode = check::CheckMode::Basic;
    }
    return opts;
}

} // namespace

System::System(const SystemConfig &cfg, workloads::Workload &workload)
    : System(cfg, workload, workload.name())
{
    workloadSource_ = workload.source();
    workload_ = &workload;
    ckptApp_ = workload.name();
}

System::System(const SystemConfig &cfg, cpu::TraceSource &source,
               std::string name)
    : cfg_(cfg), source_(source), workloadName_(std::move(name))
{
    ms_ = std::make_unique<mem::MemorySystem>(eq_, cfg_.timing);
    hier_ = std::make_unique<cpu::Hierarchy>(eq_, cfg_.timing, *ms_,
                                             cfg_.conven4);
    ms_->setPushCallback([this](sim::Cycle when, sim::Addr line) {
        hier_->acceptPush(when, line);
    });

    if (cfg_.ulmt.enabled()) {
        auto algo = core::makeAlgorithm(cfg_.ulmt);
        engine_ = std::make_unique<core::UlmtEngine>(eq_, cfg_.timing,
                                                     *ms_,
                                                     std::move(algo));
        ms_->setObserver(engine_.get(), cfg_.ulmt.verbose);
    }

    if (cfg_.hwCorrSramBytes > 0) {
        hwCorr_ = std::make_unique<HwCorrelationEngine>(
            *ms_, cfg_.hwCorrSramBytes, cfg_.hwCorrReplicated);
    }

    if (cfg_.recordMissStream || hwCorr_) {
        hier_->onDemandL2Miss = [this](sim::Cycle when,
                                       sim::Addr line) {
            if (cfg_.recordMissStream)
                missStream_.push_back(line);
            if (hwCorr_)
                hwCorr_->observeMiss(when, line);
        };
    }

    cpu_ = std::make_unique<cpu::MainProcessor>(eq_, cfg_.timing,
                                                *hier_, source_);

    const check::CheckOptions chk = effectiveCheckOptions(cfg_);
    if (chk.enabled()) {
        checker_ = std::make_unique<check::InvariantChecker>(
            chk, eq_, *ms_, *hier_, engine_.get());
        checker_->install();
    }

    initObservability();
}

void
System::initObservability()
{
    // One dotted namespace over every component's counters.
    ms_->registerStats(registry_);
    hier_->registerStats(registry_);
    cpu_->registerStats(registry_);
    if (engine_)
        engine_->registerStats(registry_);
    if (checker_)
        checker_->registerStats(registry_);

    // Host-side checkpoint costs (0 until a save/restore happens).
    registry_.addGauge("ckpt.save_seconds",
                       [this] { return ckptSaveSeconds_; });
    registry_.addGauge("ckpt.restore_seconds",
                       [this] { return ckptRestoreSeconds_; });
    registry_.addGauge("ckpt.snapshot_bytes",
                       [this] { return double(ckptBytes_); });

    if (cfg_.metricsInterval == 0)
        return;

    sampler_ = std::make_unique<sim::TimeSeriesSampler>(
        cfg_.metricsInterval);
    sampler_->addChannel("l2.mshr_occupancy", [this] {
        return double(hier_->mshrInUse(eq_.now()));
    });
    sampler_->addChannel("memsys.queue1_inflight", [this] {
        return double(ms_->inflightDemandCount() +
                      ms_->inflightCpuPrefetchCount());
    });
    sampler_->addChannel("memsys.queue3_inflight", [this] {
        return double(ms_->inflightPrefetchCount());
    });
    // Fraction of ULMT prefetch requests the Filter module caught.
    sampler_->addChannel("memsys.filter_hit_rate", [this] {
        const mem::PrefetchFilter &f = ms_->filter();
        const double total = double(f.admits() + f.drops());
        return total > 0.0 ? double(f.drops()) / total : 0.0;
    });
    sampler_->addChannel("bus.utilization", [this] {
        const sim::Cycle now = eq_.now();
        return now ? double(ms_->bus().busyTotal()) / double(now)
                   : 0.0;
    });
    sampler_->addChannel("dram.row_hit_rate", [this] {
        const mem::DramStats &d = ms_->dram().stats();
        return d.accesses ? double(d.rowHits) / double(d.accesses)
                          : 0.0;
    });
    if (engine_) {
        sampler_->addChannel("ulmt.queue2_depth", [this] {
            return double(engine_->queue2Depth());
        });
        sampler_->addChannel("ulmt.table_bytes", [this] {
            return double(engine_->algorithm().tableBytes());
        });
        sampler_->addChannel("ulmt.response_mean", [this] {
            return engine_->stats().responseTime.mean();
        });
        sampler_->addChannel("ulmt.occupancy_mean", [this] {
            return engine_->stats().occupancyTime.mean();
        });
    }
    // Passive ticker: the sampler only reads state, so timing and
    // executed-event counts are identical with sampling on or off.
    eq_.setTicker(cfg_.metricsInterval,
                  [this](sim::Cycle now) { sampler_->tick(now); });
}

void
System::setCheckpointMeta(std::string app_key, std::uint64_t seed,
                          double scale)
{
    ckptApp_ = std::move(app_key);
    ckptSeed_ = seed;
    ckptScale_ = scale;
}

void
System::setCheckpointTrigger(const std::string &spec, std::string path)
{
    if (spec.empty())
        throw ckpt::CkptError("empty checkpoint trigger");
    std::size_t end = 0;
    unsigned long long n = 0;
    try {
        n = std::stoull(spec, &end);
    } catch (const std::exception &) {
        throw ckpt::CkptError("bad checkpoint trigger '" + spec +
                              "' (expected '<N>' misses or '<N>c')");
    }
    if (end == spec.size()) {
        ckptTriggerMisses_ = n;
        ckptTriggerCycle_ = 0;
    } else if (end + 1 == spec.size() && spec[end] == 'c') {
        ckptTriggerCycle_ = n;
        ckptTriggerMisses_ = 0;
    } else {
        throw ckpt::CkptError("bad checkpoint trigger '" + spec +
                              "' (expected '<N>' misses or '<N>c')");
    }
    ckptPath_ = std::move(path);
}

std::uint64_t
System::configFingerprint() const
{
    // Canonical serialization of everything that shapes simulated
    // behaviour; metricsInterval is passive observability and is
    // deliberately excluded so a sampling run can restore a
    // non-sampling snapshot (and vice versa).
    ckpt::StateWriter w;
    const mem::TimingParams &tp = cfg_.timing;
    w.u32(tp.issueWidth);
    w.u32(tp.maxPendingLoads);
    w.u32(tp.maxPendingStores);
    w.u32(tp.robSize);
    for (const mem::CacheGeometry *g :
         {&tp.l1, &tp.l2, &tp.memProcL1}) {
        w.u32(g->sizeBytes);
        w.u32(g->assoc);
        w.u32(g->lineBytes);
    }
    w.u32(tp.streamNumSeq);
    w.u32(tp.streamNumPref);
    w.u64(tp.l1HitRt);
    w.u64(tp.l2HitRt);
    w.u32(tp.l2Mshrs);
    w.u64(tp.busCyclesPerBeat);
    w.u32(tp.busBytesPerBeat);
    w.u64(tp.reqPathCycles);
    w.u64(tp.respPathCycles);
    w.u32(tp.dramChannels);
    w.u32(tp.dramBanksPerChannel);
    w.u32(tp.dramRowBytes);
    w.u64(tp.bankRowHitCycles);
    w.u64(tp.bankRowMissCycles);
    w.u64(tp.channelXferCycles);
    w.u64(tp.tableBankRowHitCycles);
    w.u64(tp.tableBankRowMissCycles);
    w.u64(tp.tableChannelXferCycles);
    w.u8(static_cast<std::uint8_t>(tp.placement));
    w.u32(tp.memProcIssueWidth);
    w.u64(tp.memProcL1HitRtMemCycles);
    w.u64(tp.tableAccessFixedDram);
    w.u64(tp.tableAccessFixedNorthBridge);
    w.u64(tp.prefetchInjectDelay);
    w.u32(tp.queueDepth);
    w.u32(tp.filterEntries);

    w.b(cfg_.conven4);
    w.u32(static_cast<std::uint32_t>(cfg_.ulmt.algo));
    w.u32(cfg_.ulmt.numRows);
    w.u32(cfg_.ulmt.numLevels);
    w.b(cfg_.ulmt.verbose);
    w.u64(cfg_.hwCorrSramBytes);
    w.b(cfg_.hwCorrReplicated);
    w.b(cfg_.recordMissStream);
    w.str(cfg_.label);
    w.str(workloadName_);

    const std::string &buf = w.buffer();
    return ckpt::fnv1a64(buf.data(), buf.size());
}

sim::EventQueue::Action
System::resolveEvent(const sim::SavedEvent &s)
{
    switch (static_cast<sim::EventKind>(s.kind)) {
      case sim::EventKind::ProcStep:
        return cpu_->stepAction();
      case sim::EventKind::MemDemandDone:
        return ms_->demandDoneAction(s.arg0);
      case sim::EventKind::MemCpuPfDone:
        return ms_->cpuPfDoneAction(s.arg0);
      case sim::EventKind::MemPfArrival:
        return ms_->prefetchArrivalAction(s.arg0, s.arg1);
      case sim::EventKind::UlmtProcess:
        if (!engine_)
            throw ckpt::CkptError(
                "checkpoint has a pending ULMT event but this "
                "configuration has no ULMT");
        return engine_->processAction();
      default:
        throw ckpt::CkptError("unresolvable event kind in checkpoint");
    }
}

void
System::saveCheckpoint(const std::string &path)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (hwCorr_) {
        throw ckpt::CkptError(
            "the hardware correlation baseline is not checkpointable");
    }

    ckpt::CheckpointImage img;
    img.header.configFingerprint = configFingerprint();
    img.header.seed = ckptSeed_;
    img.header.scale = ckptScale_;
    img.header.cycle = eq_.now();
    img.header.misses = hier_->stats().l2Misses;
    img.header.workload = ckptApp_;
    img.header.label = cfg_.label;

    {
        ckpt::StateWriter w;
        w.u64(eq_.now());
        w.u64(eq_.nextSeq());
        w.u64(eq_.executed());
        const std::vector<sim::SavedEvent> evs = eq_.saveEvents();
        w.u64(evs.size());
        for (const sim::SavedEvent &e : evs) {
            if (e.kind ==
                static_cast<std::uint32_t>(sim::EventKind::Untagged)) {
                throw ckpt::CkptError(
                    "an untagged event is pending; the queue is not "
                    "checkpointable at this instant");
            }
            w.u64(e.when);
            w.u64(e.seq);
            w.u32(e.kind);
            w.u64(e.arg0);
            w.u64(e.arg1);
        }
        img.addSection("events", w.take());
    }
    {
        ckpt::StateWriter w;
        cpu_->saveState(w);
        img.addSection("cpu", w.take());
    }
    {
        ckpt::StateWriter w;
        hier_->saveState(w);
        img.addSection("hier", w.take());
    }
    {
        ckpt::StateWriter w;
        ms_->saveState(w);
        img.addSection("memsys", w.take());
    }
    if (engine_) {
        ckpt::StateWriter w;
        engine_->saveState(w);
        img.addSection("ulmt", w.take());
    }
    {
        ckpt::StateWriter w;
        w.b(cfg_.recordMissStream);
        if (cfg_.recordMissStream) {
            w.u64(missStream_.size());
            for (sim::Addr a : missStream_)
                w.u64(a);
        }
        img.addSection("driver", w.take());
    }

    ckptBytes_ = img.writeFile(path);
    ckptSaveSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
}

void
System::restoreCheckpoint(const std::string &path)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (hwCorr_) {
        throw ckpt::CkptError(
            "the hardware correlation baseline is not checkpointable");
    }
    if (!workload_) {
        throw ckpt::CkptError(
            "restore needs a rewindable workload (raw trace sources "
            "have no fast-forwardable cursor)");
    }
    const ckpt::CheckpointImage img = ckpt::CheckpointImage::readFile(path);
    if (img.header.configFingerprint != configFingerprint()) {
        throw ckpt::CkptError(
            "checkpoint '" + path +
            "' was taken under a different machine configuration");
    }
    if (img.header.workload != ckptApp_) {
        throw ckpt::CkptError("checkpoint '" + path + "' is for workload '" +
                              img.header.workload + "', not '" + ckptApp_ +
                              "'");
    }

    {
        ckpt::StateReader r(img.section("cpu"));
        cpu_->restoreState(r);
        r.finish();
    }
    {
        ckpt::StateReader r(img.section("hier"));
        hier_->restoreState(r);
        r.finish();
    }
    {
        ckpt::StateReader r(img.section("memsys"));
        ms_->restoreState(r);
        r.finish();
    }
    if (engine_) {
        ckpt::StateReader r(img.section("ulmt"));
        engine_->restoreState(r);
        r.finish();
    }
    {
        ckpt::StateReader r(img.section("driver"));
        missStream_.clear();
        if (r.b()) {
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i)
                missStream_.push_back(r.u64());
        }
        r.finish();
    }

    // Fast-forward the workload cursor: the processor has consumed
    // stats().records records (including the in-progress one).
    workload_->reset();
    cpu::TraceRecord rec;
    for (std::uint64_t i = 0; i < cpu_->stats().records; ++i) {
        if (!workload_->next(rec)) {
            throw ckpt::CkptError(
                "workload ended before the checkpoint's trace cursor");
        }
    }

    // The event queue goes last: resolving closures needs the
    // components above in their restored state.
    {
        ckpt::StateReader r(img.section("events"));
        const sim::Cycle now = r.u64();
        const std::uint64_t next_seq = r.u64();
        const std::uint64_t executed = r.u64();
        const std::uint64_t count = r.u64();
        std::vector<sim::SavedEvent> evs;
        evs.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            sim::SavedEvent e;
            e.when = r.u64();
            e.seq = r.u64();
            e.kind = r.u32();
            e.arg0 = r.u64();
            e.arg1 = r.u64();
            if (e.kind == 0 ||
                e.kind > static_cast<std::uint32_t>(
                             sim::EventKind::MemCpuPfDone))
                throw ckpt::CkptError("corrupt event kind in checkpoint");
            evs.push_back(e);
        }
        r.finish();
        eq_.restoreEvents(now, next_seq, executed, evs,
                          [this](const sim::SavedEvent &s) {
                              return resolveEvent(s);
                          });
    }

    // The shadows saw none of the restored fills; rebuild them from
    // the real structures, then prove the restored state is sane.
    if (checker_) {
        checker_->resyncDeep();
        checker_->runChecks();
    }

    restored_ = true;
    ckptRestoreSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
}

void
System::setTraceEvents(sim::TraceEventBuffer *buf)
{
    trace_ = buf;
    ms_->setTrace(buf);
    if (engine_)
        engine_->setTrace(buf);
    if (sampler_)
        sampler_->setTrace(buf);
}

RunResult
System::run()
{
    // After a restore the step event is already pending in the queue;
    // scheduling a second one would double-step the core.
    if (!restored_)
        cpu_->start();
    if (!ckptPath_.empty()) {
        if (ckptTriggerCycle_ > 0) {
            eq_.setBreakCheck([this](sim::Cycle now) {
                return now >= ckptTriggerCycle_;
            });
        } else {
            eq_.setBreakCheck([this](sim::Cycle) {
                return hier_->stats().l2Misses >= ckptTriggerMisses_;
            });
        }
    }
    const auto wall_start = std::chrono::steady_clock::now();
    bool drained = eq_.run(maxEvents);
    while (!drained && eq_.breakHit()) {
        // The trigger fired between events: a consistent instant.
        // Snapshot, disarm, and carry on to completion.
        saveCheckpoint(ckptPath_);
        eq_.clearBreakCheck();
        drained = eq_.run(maxEvents);
    }
    const auto wall_end = std::chrono::steady_clock::now();
    SIM_ASSERT(drained && cpu_->finished(),
               "simulation did not complete (event limit hit?)");
    if (checker_)
        checker_->runChecks();  // final end-of-run walk

    RunResult r;
    r.workload = workloadName_;
    r.label = cfg_.label;
    r.source = workloadSource_;
    r.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.eventsExecuted = eq_.executed();
    r.ckptSaveSeconds = ckptSaveSeconds_;
    r.ckptRestoreSeconds = ckptRestoreSeconds_;
    r.ckptBytes = ckptBytes_;

    const cpu::ProcessorStats &ps = cpu_->stats();
    r.cycles = ps.totalCycles;
    r.busyCycles = ps.busyCycles;
    r.uptoL2Stall = ps.uptoL2Stall;
    r.beyondL2Stall = ps.beyondL2Stall;
    r.records = ps.records;
    r.proc = ps;

    r.hier = hier_->stats();
    if (engine_)
        r.ulmt = engine_->stats();
    r.memsys = ms_->stats();
    r.dram = ms_->dram().stats();
    r.busBusyTotal = ms_->bus().busyTotal();
    r.busBusyPrefetch = ms_->bus().busyPrefetch();

    const sim::BinnedHistogram &gaps = hier_->missGapHistogram();
    r.missGapFractions.resize(gaps.numBins());
    for (std::size_t i = 0; i < gaps.numBins(); ++i)
        r.missGapFractions[i] = gaps.binFraction(i);

    r.missStream = std::move(missStream_);
    if (sampler_) {
        sampler_->flush(eq_.now());  // final end-of-run row
        r.metrics = sampler_->take();
    }
    return r;
}

void
System::pageRemap(sim::Addr old_page, sim::Addr new_page,
                  std::uint32_t page_bytes)
{
    if (engine_)
        engine_->pageRemap(old_page, new_page, page_bytes);
    // A remap rewrites table tags in place; the pair-table oracle has
    // no notification stream for it, so rebuild from the real state.
    if (checker_)
        checker_->resyncDeep();
}

} // namespace driver
