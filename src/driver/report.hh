/**
 * @file
 * Plain-text reporting helpers used by the benchmark binaries to print
 * the paper's tables and figures as aligned ASCII tables.
 */

#ifndef DRIVER_REPORT_HH
#define DRIVER_REPORT_HH

#include <string>
#include <vector>

namespace driver {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void addRow(std::vector<std::string> cells);

    /** Render with a title banner to stdout. */
    void print(const std::string &title) const;

    /** Render to a string (tests). */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
std::string fmt(double v, int digits = 2);

/** Format a percentage (0.37 -> "37.0%"). */
std::string fmtPercent(double v, int digits = 1);

/** Geometric-mean-free average of a vector (arithmetic mean). */
double mean(const std::vector<double> &v);

} // namespace driver

#endif // DRIVER_REPORT_HH
