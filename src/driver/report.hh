/**
 * @file
 * Plain-text reporting helpers used by the benchmark binaries to print
 * the paper's tables and figures as aligned ASCII tables.
 */

#ifndef DRIVER_REPORT_HH
#define DRIVER_REPORT_HH

#include <string>
#include <vector>

namespace driver {

struct RunResult;

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void addRow(std::vector<std::string> cells);

    /** Render with a title banner to stdout. */
    void print(const std::string &title) const;

    /** Render to a string (tests). */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
std::string fmt(double v, int digits = 2);

/** Format a percentage (0.37 -> "37.0%"). */
std::string fmtPercent(double v, int digits = 1);

/** Geometric-mean-free average of a vector (arithmetic mean). */
double mean(const std::vector<double> &v);

/**
 * Serialize every deterministic field of a RunResult (all counters,
 * sample statistics with exact hex-float encoding, miss-gap fractions
 * and a hash of the miss stream) into one string.  Two runs of the
 * same (app, config, seed) must produce byte-identical fingerprints
 * regardless of worker count -- the determinism regression tests and
 * golden comparisons rely on this.  Host-side timing (wallSeconds) is
 * deliberately excluded.
 */
std::string resultFingerprint(const RunResult &r);

} // namespace driver

#endif // DRIVER_REPORT_HH
