/**
 * @file
 * Parallel experiment runner: fans independent (app, config) jobs out
 * across a fixed-size thread pool.
 *
 * Every figure/table of the paper's evaluation is a sweep of fully
 * independent simulations (each System owns its event queue, RNG,
 * statistics and -- via sim::setThreadLogSink -- its logging sink), so
 * the sweep is embarrassingly parallel.  The runner guarantees:
 *
 *  - results[i] always corresponds to jobs[i], regardless of the
 *    order in which worker threads finish;
 *  - with one worker (ULMT_JOBS=1 or setRunnerJobs(1)) jobs run
 *    inline on the calling thread, reproducing the historical serial
 *    behavior bit for bit;
 *  - diagnostics (sim::warn/inform) of concurrent jobs never
 *    interleave: each job logs into a private buffer that the runner
 *    replays to stderr in job order.
 *
 * Worker count resolution: setRunnerJobs() override (the benches'
 * --jobs=N flag) > the ULMT_JOBS environment variable > the number of
 * hardware threads.
 */

#ifndef DRIVER_RUNNER_HH
#define DRIVER_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.hh"

namespace driver {

/** One independent simulation: an application under a configuration. */
struct Job
{
    std::string app;
    SystemConfig cfg;
    ExperimentOptions opt;
};

/** Resolve the worker count (flag > ULMT_JOBS > hardware threads). */
unsigned runnerJobs();

/** Program-level override of the worker count (0 clears it). */
void setRunnerJobs(unsigned n);

/** A fixed-size pool of worker threads draining one task queue. */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);

    /** Joins the workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    void submit(std::function<void()> task);

    /** Block until every submitted task has completed. */
    void wait();

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

/**
 * Run every task, placing tasks[i]'s result at results[i].
 *
 * @param jobs worker count; 0 means runnerJobs().  With 1 the tasks
 *             run inline on the calling thread (bit-for-bit serial).
 */
std::vector<RunResult>
runTasks(const std::vector<std::function<RunResult()>> &tasks,
         unsigned jobs = 0);

/** runOne() over every job, in parallel. */
std::vector<RunResult> runAll(const std::vector<Job> &jobs,
                              unsigned jobs_override = 0);

/**
 * Parallel captureMissStream: a recorded NoPref run per application
 * (Figures 5/6, Table 2).  results[i].missStream holds app i's demand
 * L2 miss stream; the full RunResult is returned so callers can also
 * feed the bench harness.
 */
std::vector<RunResult>
captureMissStreamRuns(const std::vector<std::string> &apps,
                      const ExperimentOptions &opt);

/**
 * Run arbitrary host-side chunks in parallel (no return value; chunks
 * write into caller-owned slots).  Chunks must be independent.
 */
void parallelInvoke(const std::vector<std::function<void()>> &chunks,
                    unsigned jobs = 0);

} // namespace driver

#endif // DRIVER_RUNNER_HH
