#include "driver/experiment.hh"

namespace driver {

namespace {

SystemConfig
baseConfig(const ExperimentOptions &opt)
{
    SystemConfig cfg;
    cfg.timing.placement = opt.placement;
    return cfg;
}

} // namespace

SystemConfig
noPrefConfig(const ExperimentOptions &opt)
{
    SystemConfig cfg = baseConfig(opt);
    cfg.label = "NoPref";
    return cfg;
}

SystemConfig
conven4Config(const ExperimentOptions &opt)
{
    SystemConfig cfg = baseConfig(opt);
    cfg.conven4 = true;
    cfg.label = "Conven4";
    return cfg;
}

SystemConfig
ulmtConfig(const ExperimentOptions &opt, core::UlmtAlgo algo,
           const std::string &app)
{
    SystemConfig cfg = baseConfig(opt);
    cfg.ulmt.algo = algo;
    cfg.ulmt.numRows = workloads::tableNumRows(app);
    cfg.label = core::to_string(algo);
    return cfg;
}

SystemConfig
conven4PlusUlmtConfig(const ExperimentOptions &opt, core::UlmtAlgo algo,
                      const std::string &app)
{
    SystemConfig cfg = ulmtConfig(opt, algo, app);
    cfg.conven4 = true;
    cfg.label = "Conven4+" + core::to_string(algo);
    return cfg;
}

SystemConfig
customConfig(const ExperimentOptions &opt, const std::string &app,
             bool &customized)
{
    customized = true;
    if (app == "CG") {
        // Table 5: Seq1+Repl in Verbose mode (Conven4 on).
        SystemConfig cfg =
            conven4PlusUlmtConfig(opt, core::UlmtAlgo::Seq1Repl, app);
        cfg.ulmt.verbose = true;
        cfg.label = "Custom";
        return cfg;
    }
    if (app == "MST" || app == "Mcf") {
        // Table 5: Repl with NumLevels = 4 (Conven4 on).
        SystemConfig cfg =
            conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl, app);
        cfg.ulmt.numLevels = 4;
        cfg.label = "Custom";
        return cfg;
    }
    customized = false;
    SystemConfig cfg =
        conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl, app);
    cfg.label = "Custom";
    return cfg;
}

RunResult
runOne(const std::string &app, const SystemConfig &cfg,
       const ExperimentOptions &opt)
{
    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto workload = workloads::makeWorkload(app, wp);
    System sys(cfg, *workload);
    return sys.run();
}

std::vector<sim::Addr>
captureMissStream(const std::string &app, const ExperimentOptions &opt)
{
    SystemConfig cfg = noPrefConfig(opt);
    cfg.recordMissStream = true;
    RunResult r = runOne(app, cfg, opt);
    return std::move(r.missStream);
}

} // namespace driver
