#include "driver/experiment.hh"

#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "workloads/offset.hh"

namespace driver {

namespace {

SystemConfig
baseConfig(const ExperimentOptions &opt)
{
    SystemConfig cfg;
    cfg.timing.placement = opt.placement;
    return cfg;
}

// Shared trace writer + sampling override.  Guarded by a mutex only
// for pointer swaps; writeProcess serializes internally.
std::mutex obsMutex;
std::unique_ptr<sim::TraceEventWriter> traceWriter;
std::optional<sim::Cycle> metricsOverride;
std::optional<check::CheckOptions> checkOverride;
std::optional<bool> auditOverride;
std::optional<std::pair<unsigned, core::UlmtMode>> coresOverride;
std::optional<vm::VmSpec> vmOverride;
std::optional<mem::TableCacheSpec> tableCacheOverride;

// Process-wide checkpoint hooks (same pattern as the trace writer).
std::string ckptAtSpec;
std::string ckptToDir;
std::string restoreFromPath;

/** Per-run snapshot file name: path-hostile characters in app names
 *  ("trace:/x/y.ulmttrace") and labels become underscores. */
std::string
snapshotName(const std::string &app, const std::string &label)
{
    std::string n = app + "-" + label;
    for (char &c : n) {
        if (c == '/' || c == ':' || c == '\\')
            c = '_';
    }
    return n + ".ulmtckp";
}

} // namespace

void
setTraceEventsPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    traceWriter.reset();
    if (!path.empty())
        traceWriter = std::make_unique<sim::TraceEventWriter>(path);
}

sim::TraceEventWriter *
traceEventWriter()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    return traceWriter.get();
}

void
finishTraceEvents()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    if (traceWriter)
        traceWriter->finish();
}

void
setMetricsIntervalOverride(sim::Cycle interval)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    metricsOverride = interval;
}

void
clearMetricsIntervalOverride()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    metricsOverride.reset();
}

void
setCheckOverride(const check::CheckOptions &opts)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    checkOverride = opts;
}

void
clearCheckOverride()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    checkOverride.reset();
}

void
setAuditOverride(bool enabled)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    auditOverride = enabled;
}

void
clearAuditOverride()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    auditOverride.reset();
}

void
setCoresOverride(unsigned cores, core::UlmtMode mode)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    coresOverride = {cores, mode};
}

void
clearCoresOverride()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    coresOverride.reset();
}

void
setVmOverride(const vm::VmSpec &spec)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    vmOverride = spec;
}

void
clearVmOverride()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    vmOverride.reset();
}

void
setTableCacheOverride(const mem::TableCacheSpec &spec)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    tableCacheOverride = spec;
}

void
clearTableCacheOverride()
{
    std::lock_guard<std::mutex> lock(obsMutex);
    tableCacheOverride.reset();
}

std::vector<std::unique_ptr<workloads::Workload>>
makeCoreWorkloads(const std::string &app, std::uint64_t seed,
                  double scale, unsigned cores)
{
    std::vector<std::unique_ptr<workloads::Workload>> ws;
    for (unsigned c = 0; c < cores; ++c) {
        workloads::WorkloadParams wp;
        // Core 0 keeps the base seed (and offset 0), so its trace is
        // bit-identical to the single-core run; the other tenants are
        // independently seeded so the mix is multiprogrammed, not N
        // lockstep copies.
        wp.seed = c ? seed ^ (0x9E3779B97F4A7C15ULL * c) : seed;
        wp.scale = scale;
        auto w = workloads::makeWorkload(app, wp);
        if (c) {
            ws.push_back(std::make_unique<workloads::OffsetWorkload>(
                std::move(w), c));
        } else {
            ws.push_back(std::move(w));
        }
    }
    return ws;
}

SystemConfig
noPrefConfig(const ExperimentOptions &opt)
{
    SystemConfig cfg = baseConfig(opt);
    cfg.label = "NoPref";
    return cfg;
}

SystemConfig
conven4Config(const ExperimentOptions &opt)
{
    SystemConfig cfg = baseConfig(opt);
    cfg.conven4 = true;
    cfg.label = "Conven4";
    return cfg;
}

SystemConfig
ulmtConfig(const ExperimentOptions &opt, core::UlmtAlgo algo,
           const std::string &app)
{
    SystemConfig cfg = baseConfig(opt);
    cfg.ulmt.algo = algo;
    cfg.ulmt.numRows = workloads::tableNumRows(app);
    cfg.label = core::to_string(algo);
    return cfg;
}

SystemConfig
conven4PlusUlmtConfig(const ExperimentOptions &opt, core::UlmtAlgo algo,
                      const std::string &app)
{
    SystemConfig cfg = ulmtConfig(opt, algo, app);
    cfg.conven4 = true;
    cfg.label = "Conven4+" + core::to_string(algo);
    return cfg;
}

SystemConfig
customConfig(const ExperimentOptions &opt, const std::string &app,
             bool &customized)
{
    customized = true;
    if (app == "CG") {
        // Table 5: Seq1+Repl in Verbose mode (Conven4 on).
        SystemConfig cfg =
            conven4PlusUlmtConfig(opt, core::UlmtAlgo::Seq1Repl, app);
        cfg.ulmt.verbose = true;
        cfg.label = "Custom";
        return cfg;
    }
    if (app == "MST" || app == "Mcf") {
        // Table 5: Repl with NumLevels = 4 (Conven4 on).
        SystemConfig cfg =
            conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl, app);
        cfg.ulmt.numLevels = 4;
        cfg.label = "Custom";
        return cfg;
    }
    customized = false;
    SystemConfig cfg =
        conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl, app);
    cfg.label = "Custom";
    return cfg;
}

void
setCheckpointAt(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    ckptAtSpec = spec;
}

void
setCheckpointTo(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    ckptToDir = dir;
}

void
setRestoreFrom(const std::string &path)
{
    std::lock_guard<std::mutex> lock(obsMutex);
    restoreFromPath = path;
}

const std::vector<std::string> &
listWorkloads()
{
    return workloads::applicationNames();
}

namespace {

/** Single-core systems hold a caller-owned workload; multicore ones
 *  own their per-core set.  This keeps both alive together. */
struct BuiltSystem
{
    std::unique_ptr<workloads::Workload> workload;
    std::unique_ptr<System> sys;
};

BuiltSystem
buildSystem(const SystemConfig &cfg, const std::string &app,
            std::uint64_t seed, double scale)
{
    BuiltSystem b;
    if (cfg.cores > 1) {
        auto ws = makeCoreWorkloads(app, seed, scale, cfg.cores);
        const std::string name = ws[0]->name();
        b.sys = std::make_unique<System>(cfg, std::move(ws), name);
    } else {
        workloads::WorkloadParams wp;
        wp.seed = seed;
        wp.scale = scale;
        b.workload = workloads::makeWorkload(app, wp);
        b.sys = std::make_unique<System>(cfg, *b.workload);
    }
    b.sys->setCheckpointMeta(app, seed, scale);
    return b;
}

} // namespace

RunResult
runSampled(const SystemConfig &cfg, const std::string &ckpt_path)
{
    // The header carries the workload identity AND the machine shape:
    // rebuilding from it guarantees the restored cursors land in the
    // same traces on the same number of cores in the same serving
    // mode.
    const ckpt::CkptHeader h = ckpt::CheckpointImage::readHeader(ckpt_path);

    SystemConfig effective = cfg;
    {
        std::lock_guard<std::mutex> lock(obsMutex);
        if (metricsOverride)
            effective.metricsInterval = *metricsOverride;
        if (checkOverride)
            effective.check = *checkOverride;
        if (auditOverride)
            effective.audit = *auditOverride;
        if (vmOverride)
            effective.vm = *vmOverride;
        if (tableCacheOverride)
            effective.tableCache = *tableCacheOverride;
    }
    effective.cores = h.cores;
    if (h.ulmtMode >
        static_cast<std::uint32_t>(core::UlmtMode::Sharded)) {
        throw ckpt::CkptError("checkpoint '" + ckpt_path +
                              "' names an unknown ULMT serving mode");
    }
    effective.ulmtMode = static_cast<core::UlmtMode>(h.ulmtMode);

    BuiltSystem b =
        buildSystem(effective, h.workload, h.seed, h.scale);
    b.sys->restoreCheckpoint(ckpt_path);
    return b.sys->run();
}

RunResult
runOne(const std::string &app, const SystemConfig &cfg,
       const ExperimentOptions &opt)
{
    SystemConfig effective = cfg;
    sim::TraceEventWriter *writer = nullptr;
    std::string ckpt_at, ckpt_dir, restore_from;
    {
        std::lock_guard<std::mutex> lock(obsMutex);
        if (metricsOverride)
            effective.metricsInterval = *metricsOverride;
        if (checkOverride)
            effective.check = *checkOverride;
        if (auditOverride)
            effective.audit = *auditOverride;
        if (coresOverride) {
            effective.cores = coresOverride->first;
            effective.ulmtMode = coresOverride->second;
        }
        if (vmOverride)
            effective.vm = *vmOverride;
        if (tableCacheOverride)
            effective.tableCache = *tableCacheOverride;
        writer = traceWriter.get();
        ckpt_at = ckptAtSpec;
        ckpt_dir = ckptToDir;
        restore_from = restoreFromPath;
    }

    BuiltSystem b = buildSystem(effective, app, opt.seed, opt.scale);
    System &sys = *b.sys;
    if (!restore_from.empty())
        sys.restoreCheckpoint(restore_from);
    if (!ckpt_at.empty()) {
        const std::string dir = ckpt_dir.empty() ? "." : ckpt_dir;
        sys.setCheckpointTrigger(
            ckpt_at, dir + "/" + snapshotName(app, effective.label));
    }
    if (!writer)
        return sys.run();

    // Per-run buffer, flushed as its own trace process so a parallel
    // sweep lands in one file with one row group per experiment.
    sim::TraceEventBuffer buf;
    sys.setTraceEvents(&buf);
    RunResult r = sys.run();
    writer->writeProcess(app + "/" + effective.label, buf);
    return r;
}

std::vector<sim::Addr>
captureMissStream(const std::string &app, const ExperimentOptions &opt)
{
    SystemConfig cfg = noPrefConfig(opt);
    cfg.recordMissStream = true;
    RunResult r = runOne(app, cfg, opt);
    return std::move(r.missStream);
}

} // namespace driver
