#include "driver/runner.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "sim/logging.hh"

namespace driver {

namespace {

unsigned override_jobs = 0;

unsigned
envJobs()
{
    const char *env = std::getenv("ULMT_JOBS");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (*end != '\0' || v < 1 || v > 1024)
        sim::fatal("ULMT_JOBS='%s' is not a worker count in [1,1024]",
                   env);
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
runnerJobs()
{
    if (override_jobs)
        return override_jobs;
    if (const unsigned env = envJobs())
        return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
setRunnerJobs(unsigned n)
{
    override_jobs = n;
}

ThreadPool::ThreadPool(unsigned workers)
{
    SIM_ASSERT(workers > 0, "thread pool needs at least one worker");
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

std::vector<RunResult>
runTasks(const std::vector<std::function<RunResult()>> &tasks,
         unsigned jobs)
{
    const unsigned workers = jobs ? jobs : runnerJobs();
    std::vector<RunResult> results(tasks.size());

    if (workers <= 1 || tasks.size() <= 1) {
        // Inline serial path: no threads, no log redirection --
        // byte-identical to the historical behavior.
        for (std::size_t i = 0; i < tasks.size(); ++i)
            results[i] = tasks[i]();
        return results;
    }

    std::vector<std::string> logs(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());
    {
        ThreadPool pool(std::min<std::size_t>(workers, tasks.size()));
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            pool.submit([&tasks, &results, &logs, &errors, i] {
                sim::setThreadLogSink(&logs[i]);
                try {
                    results[i] = tasks[i]();
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                sim::setThreadLogSink(nullptr);
            });
        }
        pool.wait();
    }
    // Replay captured diagnostics in deterministic job order.
    for (const std::string &log : logs) {
        if (!log.empty())
            std::fputs(log.c_str(), stderr);
    }
    // A task that threw (bad checkpoint, unknown workload, ...) fails
    // the sweep on the calling thread, not via std::terminate on a
    // worker; the first failure in job order wins, matching serial.
    for (const std::exception_ptr &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
    return results;
}

std::vector<RunResult>
runAll(const std::vector<Job> &jobs, unsigned jobs_override)
{
    std::vector<std::function<RunResult()>> tasks;
    tasks.reserve(jobs.size());
    for (const Job &job : jobs) {
        tasks.push_back(
            [&job] { return runOne(job.app, job.cfg, job.opt); });
    }
    return runTasks(tasks, jobs_override);
}

std::vector<RunResult>
captureMissStreamRuns(const std::vector<std::string> &apps,
                      const ExperimentOptions &opt)
{
    std::vector<Job> jobs;
    jobs.reserve(apps.size());
    for (const std::string &app : apps) {
        SystemConfig cfg = noPrefConfig(opt);
        cfg.recordMissStream = true;
        jobs.push_back(Job{app, std::move(cfg), opt});
    }
    return runAll(jobs);
}

void
parallelInvoke(const std::vector<std::function<void()>> &chunks,
               unsigned jobs)
{
    const unsigned workers = jobs ? jobs : runnerJobs();
    if (workers <= 1 || chunks.size() <= 1) {
        for (const auto &chunk : chunks)
            chunk();
        return;
    }
    ThreadPool pool(std::min<std::size_t>(workers, chunks.size()));
    for (const auto &chunk : chunks)
        pool.submit(chunk);
    pool.wait();
}

} // namespace driver
