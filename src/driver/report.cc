#include "driver/report.hh"

#include <cstdio>
#include <numeric>

#include "sim/logging.hh"

namespace driver {

void
TextTable::addRow(std::vector<std::string> cells)
{
    SIM_ASSERT(cells.size() == headers_.size(),
               "row width %zu != header width %zu", cells.size(),
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(width[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    out.append(total - 2, '-');
    out += "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
TextTable::print(const std::string &title) const
{
    std::printf("\n== %s ==\n%s", title.c_str(), render().c_str());
    std::fflush(stdout);
}

std::string
fmt(double v, int digits)
{
    return sim::strformat("%.*f", digits, v);
}

std::string
fmtPercent(double v, int digits)
{
    return sim::strformat("%.*f%%", digits, v * 100.0);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

} // namespace driver
