#include "driver/report.hh"

#include <cstdio>
#include <numeric>

#include "driver/system.hh"
#include "sim/logging.hh"

namespace driver {

void
TextTable::addRow(std::vector<std::string> cells)
{
    SIM_ASSERT(cells.size() == headers_.size(),
               "row width %zu != header width %zu", cells.size(),
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(width[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    // A table with no columns has total == 0; avoid the size_t
    // underflow in total - 2.
    out.append(total >= 2 ? total - 2 : 0, '-');
    out += "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
TextTable::print(const std::string &title) const
{
    std::printf("\n== %s ==\n%s", title.c_str(), render().c_str());
    std::fflush(stdout);
}

std::string
fmt(double v, int digits)
{
    return sim::strformat("%.*f", digits, v);
}

std::string
fmtPercent(double v, int digits)
{
    return sim::strformat("%.*f%%", digits, v * 100.0);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

namespace {

/** Appends "key=value " pairs; doubles use exact hex-float form. */
class Fingerprint
{
  public:
    void
    add(const char *key, std::uint64_t v)
    {
        out_ += sim::strformat("%s=%llu ", key,
                               (unsigned long long)v);
    }

    void
    add(const char *key, double v)
    {
        out_ += sim::strformat("%s=%a ", key, v);
    }

    void
    add(const char *key, const std::string &v)
    {
        out_ += key;
        out_ += '=';
        out_ += v;
        out_ += ' ';
    }

    void
    add(const char *key, const sim::SampleStat &s)
    {
        out_ += sim::strformat("%s=(%llu,%a,%a,%a) ", key,
                               (unsigned long long)s.count(), s.sum(),
                               s.min(), s.max());
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

} // namespace

std::string
resultFingerprint(const RunResult &r)
{
    Fingerprint fp;
    fp.add("workload", r.workload);
    fp.add("label", r.label);
    fp.add("cycles", r.cycles);
    fp.add("busyCycles", r.busyCycles);
    fp.add("uptoL2Stall", r.uptoL2Stall);
    fp.add("beyondL2Stall", r.beyondL2Stall);
    fp.add("records", r.records);
    fp.add("eventsExecuted", r.eventsExecuted);

    const cpu::ProcessorStats &p = r.proc;
    fp.add("proc.ops", p.ops);
    fp.add("proc.stallDependence", p.stallDependence);
    fp.add("proc.stallLoadWindow", p.stallLoadWindow);
    fp.add("proc.stallStoreWindow", p.stallStoreWindow);
    fp.add("proc.stallDrain", p.stallDrain);
    fp.add("proc.beyondWaits", p.beyondWaits);
    fp.add("proc.uptoWaits", p.uptoWaits);

    const cpu::HierarchyStats &h = r.hier;
    fp.add("hier.loads", h.loads);
    fp.add("hier.stores", h.stores);
    fp.add("hier.l1Hits", h.l1Hits);
    fp.add("hier.l1Misses", h.l1Misses);
    fp.add("hier.l2Hits", h.l2Hits);
    fp.add("hier.l2Misses", h.l2Misses);
    fp.add("hier.l2MshrMerges", h.l2MshrMerges);
    fp.add("hier.ulmtHits", h.ulmtHits);
    fp.add("hier.ulmtDelayedHits", h.ulmtDelayedHits);
    fp.add("hier.nonPrefMisses", h.nonPrefMisses);
    fp.add("hier.ulmtReplaced", h.ulmtReplaced);
    fp.add("hier.pushRedundantPresent", h.pushRedundantPresent);
    fp.add("hier.pushRedundantWb", h.pushRedundantWb);
    fp.add("hier.pushDroppedMshrFull", h.pushDroppedMshrFull);
    fp.add("hier.pushDroppedSetPending", h.pushDroppedSetPending);
    fp.add("hier.pushInstalled", h.pushInstalled);
    fp.add("hier.delayedHitSavedCycles", h.delayedHitSavedCycles);
    fp.add("hier.cpuPfIssued", h.cpuPfIssued);
    fp.add("hier.cpuPfToMemory", h.cpuPfToMemory);
    fp.add("hier.cpuPfUseful", h.cpuPfUseful);
    fp.add("hier.cpuPfTimely", h.cpuPfTimely);
    fp.add("hier.cpuPfReplaced", h.cpuPfReplaced);

    const core::UlmtStats &u = r.ulmt;
    fp.add("ulmt.missesObserved", u.missesObserved);
    fp.add("ulmt.missesProcessed", u.missesProcessed);
    fp.add("ulmt.missesDroppedQueueFull", u.missesDroppedQueueFull);
    fp.add("ulmt.prefetchesGenerated", u.prefetchesGenerated);
    fp.add("ulmt.responseTime", u.responseTime);
    fp.add("ulmt.occupancyTime", u.occupancyTime);
    fp.add("ulmt.responseBusy", u.responseBusy);
    fp.add("ulmt.responseMem", u.responseMem);
    fp.add("ulmt.occupancyBusy", u.occupancyBusy);
    fp.add("ulmt.occupancyMem", u.occupancyMem);
    fp.add("ulmt.busyCycles", u.busyCycles);
    fp.add("ulmt.memStallCycles", u.memStallCycles);
    fp.add("ulmt.instructions", u.instructions);

    const mem::MemorySystemStats &m = r.memsys;
    fp.add("mem.demandFetches", m.demandFetches);
    fp.add("mem.cpuPrefetchFetches", m.cpuPrefetchFetches);
    fp.add("mem.writebacks", m.writebacks);
    fp.add("mem.ulmtPrefetchesIssued", m.ulmtPrefetchesIssued);
    fp.add("mem.ulmtPrefetchesDroppedFilter",
           m.ulmtPrefetchesDroppedFilter);
    fp.add("mem.ulmtPrefetchesDroppedQueueFull",
           m.ulmtPrefetchesDroppedQueueFull);
    fp.add("mem.ulmtPrefetchesDroppedDemandMatch",
           m.ulmtPrefetchesDroppedDemandMatch);
    fp.add("mem.ulmtPrefetchesDroppedCpuPfMatch",
           m.ulmtPrefetchesDroppedCpuPfMatch);
    fp.add("mem.tableReads", m.tableReads);
    fp.add("mem.tableWrites", m.tableWrites);

    fp.add("dram.accesses", r.dram.accesses);
    fp.add("dram.rowHits", r.dram.rowHits);
    fp.add("dram.rowMisses", r.dram.rowMisses);

    fp.add("busBusyTotal", r.busBusyTotal);
    fp.add("busBusyPrefetch", r.busBusyPrefetch);

    for (std::size_t i = 0; i < r.missGapFractions.size(); ++i)
        fp.add(sim::strformat("missGap%zu", i).c_str(),
               r.missGapFractions[i]);

    fp.add("missStream.size",
           static_cast<std::uint64_t>(r.missStream.size()));
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a
    for (sim::Addr a : r.missStream) {
        hash ^= a;
        hash *= 1099511628211ULL;
    }
    fp.add("missStream.hash", hash);

    // Per-core and per-engine slices are populated only on multicore
    // machines, so single-core fingerprints stay what they always
    // were.
    for (std::size_t c = 0; c < r.coreProc.size(); ++c) {
        const std::string pre = sim::strformat("core%zu.", c);
        fp.add((pre + "cycles").c_str(), r.coreProc[c].totalCycles);
        fp.add((pre + "ops").c_str(), r.coreProc[c].ops);
        fp.add((pre + "records").c_str(), r.coreProc[c].records);
    }
    for (std::size_t c = 0; c < r.coreHier.size(); ++c) {
        const std::string pre = sim::strformat("core%zu.", c);
        fp.add((pre + "l1Misses").c_str(), r.coreHier[c].l1Misses);
        fp.add((pre + "l2Misses").c_str(), r.coreHier[c].l2Misses);
        fp.add((pre + "pushInstalled").c_str(),
               r.coreHier[c].pushInstalled);
        fp.add((pre + "ulmtHits").c_str(), r.coreHier[c].ulmtHits);
    }
    for (std::size_t i = 0; i < r.engineUlmt.size(); ++i) {
        const std::string pre = sim::strformat("engine%zu.", i);
        fp.add((pre + "missesObserved").c_str(),
               r.engineUlmt[i].missesObserved);
        fp.add((pre + "missesProcessed").c_str(),
               r.engineUlmt[i].missesProcessed);
        fp.add((pre + "prefetchesGenerated").c_str(),
               r.engineUlmt[i].prefetchesGenerated);
    }
    if (r.coreQos.size() > 1) {
        for (std::size_t c = 0; c < r.coreQos.size(); ++c) {
            const std::string pre = sim::strformat("qos%zu.", c);
            fp.add((pre + "demandFetches").c_str(),
                   r.coreQos[c].demandFetches);
            fp.add((pre + "pfIssued").c_str(),
                   r.coreQos[c].ulmtPrefetchesIssued);
            fp.add((pre + "q1WaitSum").c_str(),
                   std::uint64_t(r.coreQos[c].q1Wait.sum()));
            fp.add((pre + "q1WaitCount").c_str(),
                   r.coreQos[c].q1Wait.count());
        }
    }

    // VM leaves only when the layer ran, so pre-VM fingerprints stay
    // byte-identical (the --remap-rate=0 --page-size=4k default never
    // builds the layer).
    if (r.vmOn) {
        fp.add("vm.pageBytes", std::uint64_t(r.vmPageBytes));
        fp.add("vm.remaps", r.vmRemaps);
        fp.add("vm.tlbHits", r.vmTlbHits);
        fp.add("vm.tlbMisses", r.vmTlbMisses);
        fp.add("vm.walkCycles", r.vmWalkCycles);
        fp.add("vm.pagesMapped", r.vmPagesMapped);
        fp.add("mem.ulmtPrefetchesDroppedPageCross",
               m.ulmtPrefetchesDroppedPageCross);
        fp.add("hier.cpuPfDroppedPageCross", h.cpuPfDroppedPageCross);
    }
    return fp.take();
}

} // namespace driver
