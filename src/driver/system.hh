/**
 * @file
 * Full-system assembly: the public entry point of the library.
 *
 * A System wires together the main processor, its cache hierarchy
 * (optionally with the Conven4 stream prefetcher), the memory system,
 * and -- when configured -- a ULMT on the memory processor, then runs
 * a workload to completion and returns every statistic the paper's
 * evaluation uses.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *     driver::SystemConfig cfg;
 *     cfg.ulmt.algo = core::UlmtAlgo::Repl;
 *     cfg.ulmt.numRows = workloads::tableNumRows("Mcf");
 *     auto wl = workloads::makeWorkload("Mcf", {});
 *     driver::System sys(cfg, *wl);
 *     driver::RunResult r = sys.run();
 */

#ifndef DRIVER_SYSTEM_HH
#define DRIVER_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "check/invariant_checker.hh"
#include "ckpt/checkpoint.hh"
#include "core/factory.hh"
#include "core/ulmt_engine.hh"
#include "driver/hw_correlation.hh"
#include "cpu/hierarchy.hh"
#include "cpu/main_processor.hh"
#include "mem/memory_system.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/timeseries.hh"
#include "sim/trace_event.hh"
#include "vm/vm.hh"
#include "workloads/workload.hh"

namespace driver {

/** Everything that defines one simulated machine configuration. */
struct SystemConfig
{
    /** Machine parameters (Table 3 defaults, incl. placement). */
    mem::TimingParams timing;
    /** Enable the processor-side Conven4 stream prefetcher. */
    bool conven4 = false;
    /** The memory-side ULMT (algo None = no memory-side prefetching). */
    core::UlmtSpec ulmt;
    /**
     * Number of main processors (--cores).  Each core gets a private
     * L1/L2 hierarchy and its own workload; all share the bus, the
     * DRAM and the memory-side queues.  1 (the default) is the paper's
     * machine and is bit-identical to the pre-multicore simulator.
     */
    unsigned cores = 1;
    /** How the memory-side service is shared among the cores. */
    core::UlmtMode ulmtMode = core::UlmtMode::Shared;
    /**
     * SRAM budget of a hardware correlation engine at the L2 (bytes);
     * 0 disables it.  A baseline for the ULMT comparison.
     */
    std::size_t hwCorrSramBytes = 0;
    /** Hardware baseline uses Replicated instead of Base. */
    bool hwCorrReplicated = false;
    /** Record the demand L2 miss stream (predictability studies). */
    bool recordMissStream = false;
    /**
     * Time-series sampling interval in cycles (0 disables).  Sampling
     * is passive -- it never perturbs simulated timing, and the
     * determinism fingerprint is identical with it on or off.
     */
    sim::Cycle metricsInterval = 16384;
    /**
     * Runtime invariant checking (DESIGN.md section 10).  Off by
     * default; Basic walks structural invariants every
     * check.everyEvents executed events, Deep additionally diffs
     * lockstep reference models.  Checking is passive -- simulated
     * timing and results are bit-identical with it on or off -- so,
     * like metricsInterval, it is excluded from configFingerprint().
     * The ULMT_CHECK environment variable (1/basic/deep) enables it
     * process-wide when this field is Off.
     */
    check::CheckOptions check;
    /**
     * Prefetch lifecycle auditing and per-tenant interference
     * attribution (DESIGN.md section 12).  On by default; passive like
     * metricsInterval and check -- simulated timing and determinism
     * fingerprints are bit-identical with it on or off, so it is
     * excluded from configFingerprint().  The ULMT_AUDIT environment
     * variable (0/off or 1/on) overrides this field process-wide.
     */
    bool audit = true;
    /**
     * Virtual-memory layer (DESIGN.md section 13): per-core TLBs, a
     * page-remap engine and page-size control.  Off by default --
     * when vm.on() is false no Vm is built and the machine is
     * bit-identical to the pre-VM simulator (fingerprints included).
     */
    vm::VmSpec vm;
    /**
     * Memory-side table cache (MSCache, DESIGN.md section 14).  Off
     * by default -- when tableCache.on() is false the table/DRAM
     * path is bit-identical to the pre-cache simulator (fingerprints
     * included).
     */
    mem::TableCacheSpec tableCache;
    /** Display name ("NoPref", "Conven4+Repl", ...). */
    std::string label = "NoPref";
};

/** All statistics from one run. */
struct RunResult
{
    std::string workload;
    std::string label;
    /** Where the records came from: "synthetic" or "trace:<path>".
     *  Metadata only -- excluded from determinism fingerprints so a
     *  replayed corpus can be diffed against its live capture. */
    std::string source = "synthetic";

    sim::Cycle cycles = 0;
    sim::Cycle busyCycles = 0;
    sim::Cycle uptoL2Stall = 0;
    sim::Cycle beyondL2Stall = 0;
    std::uint64_t records = 0;
    /** Full processor stats (incl. stall-source decomposition). */
    cpu::ProcessorStats proc;

    cpu::HierarchyStats hier;
    core::UlmtStats ulmt;
    mem::MemorySystemStats memsys;
    mem::DramStats dram;

    /** Machine shape, echoed for report/bench provenance. */
    unsigned cores = 1;
    std::string ulmtMode = "shared";

    // --- Virtual memory (all zero when the VM layer was off) ---------
    bool vmOn = false;
    std::uint32_t vmPageBytes = 0;
    double vmRemapRate = 0.0;
    std::uint64_t vmRemaps = 0;
    /** Machine-wide TLB totals (summed over cores). */
    std::uint64_t vmTlbHits = 0;
    std::uint64_t vmTlbMisses = 0;
    std::uint64_t vmWalkCycles = 0;
    std::uint64_t vmPagesMapped = 0;

    // --- Table cache (all zero when --table-cache was 0) -------------
    bool tcacheOn = false;
    std::uint32_t tcacheEntries = 0;
    std::uint32_t tcacheAssoc = 0;
    mem::TableCacheStats tcache;

    /** Prefetch lifecycle + interference audit (enabled=false when
     *  the auditor was off).  Observability only -- excluded from
     *  determinism fingerprints. */
    mem::AuditReport audit;

    // --- Multicore (populated only when the machine has > 1 core;
    // --- the scalar fields above then refer to core/engine 0) --------
    std::vector<cpu::ProcessorStats> coreProc;
    std::vector<cpu::HierarchyStats> coreHier;
    std::vector<core::UlmtStats> engineUlmt;
    /** Per-tenant controller QoS counters -- always one entry per
     *  core, including the single-core machine. */
    std::vector<mem::CoreQos> coreQos;

    /** Bus busy cycles: total and prefetch-attributable. */
    sim::Cycle busBusyTotal = 0;
    sim::Cycle busBusyPrefetch = 0;

    // --- Host-side performance of the simulation itself -------------
    /** Wall-clock seconds spent inside the event loop (host time;
     *  excluded from determinism comparisons). */
    double wallSeconds = 0.0;
    /** Events executed by the run's event queue. */
    std::uint64_t eventsExecuted = 0;

    // --- Checkpoint costs (0 when no checkpointing happened; host-
    // --- side metadata, excluded from determinism comparisons) ------
    double ckptSaveSeconds = 0.0;
    double ckptRestoreSeconds = 0.0;
    std::uint64_t ckptBytes = 0;

    /** Host-side simulation throughput. */
    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsExecuted) / wallSeconds
                   : 0.0;
    }

    /** Figure 6 bins: fraction of miss gaps in [0,80) [80,200)
     *  [200,280) [280,inf). */
    std::vector<double> missGapFractions;

    /** Demand L2 miss stream (only when recordMissStream was set). */
    std::vector<sim::Addr> missStream;

    /** Sampled time series (empty when metricsInterval was 0).
     *  Observability only -- excluded from determinism fingerprints. */
    sim::TimeSeriesData metrics;

    double
    busUtilization() const
    {
        return cycles ? static_cast<double>(busBusyTotal) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    busUtilizationPrefetch() const
    {
        return cycles ? static_cast<double>(busBusyPrefetch) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Execution time relative to a baseline run. */
    double
    normalizedTime(const RunResult &baseline) const
    {
        return baseline.cycles
                   ? static_cast<double>(cycles) /
                         static_cast<double>(baseline.cycles)
                   : 0.0;
    }

    /** Speedup over a baseline run. */
    double
    speedup(const RunResult &baseline) const
    {
        return cycles ? static_cast<double>(baseline.cycles) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** A fully wired simulated machine running one workload. */
class System
{
  public:
    System(const SystemConfig &cfg, workloads::Workload &workload);

    /**
     * Run an arbitrary trace source (e.g. a multiprogrammed
     * interleaving) under @p name.  Single-core only: a multicore
     * machine needs one source per core.
     */
    System(const SystemConfig &cfg, cpu::TraceSource &source,
           std::string name);

    /**
     * Multicore form: one workload per core (workloads.size() must
     * equal cfg.cores).  The System owns the workloads, so checkpoint
     * restore can rewind and fast-forward each core's trace cursor.
     */
    System(const SystemConfig &cfg,
           std::vector<std::unique_ptr<workloads::Workload>> workloads,
           std::string name);

    /** Run the workload to completion and harvest the statistics. */
    RunResult run();

    // --- Checkpoint / restore (src/ckpt, DESIGN.md section 9) --------

    /**
     * Identify the workload for checkpoint headers: the registry key
     * (@p app_key, e.g. "Mcf" or "trace:<path>") plus the generation
     * seed and scale, so a restoring process can rebuild the identical
     * workload from the header alone.  Defaults to the workload's
     * display name and the WorkloadParams defaults.
     */
    void setCheckpointMeta(std::string app_key, std::uint64_t seed,
                           double scale);

    /**
     * Arm a one-shot checkpoint during run(): @p spec is either
     * "<N>" (after N demand L2 misses) or "<N>c" (at cycle N).  The
     * snapshot is written to @p path and the run continues.
     */
    void setCheckpointTrigger(const std::string &spec, std::string path);

    /** Snapshot the complete simulator state to @p path (between
     *  events; normally invoked via setCheckpointTrigger). */
    void saveCheckpoint(const std::string &path);

    /**
     * Restore a snapshot taken under an identical configuration.
     * Must be called before run(); the run then continues from the
     * snapshot instant and finishes with bit-identical statistics to
     * an uninterrupted run.
     */
    void restoreCheckpoint(const std::string &path);

    /**
     * Fingerprint of everything that defines the simulated machine
     * and its input (timing, algorithm, label, workload name) --
     * excluding passive observability (metricsInterval).  A snapshot
     * only restores into a machine with the same fingerprint.
     */
    std::uint64_t configFingerprint() const;

    /** Deliver an OS page-remap notification to the ULMT (Sec 3.4). */
    void pageRemap(sim::Addr old_page, sim::Addr new_page,
                   std::uint32_t page_bytes);

    // Component access (tests, examples).
    sim::EventQueue &eventQueue() { return eq_; }
    cpu::Hierarchy &hierarchy(unsigned core = 0)
    {
        return *hiers_[core];
    }
    mem::MemorySystem &memorySystem() { return *ms_; }
    /** Engine @p idx, or nullptr when no ULMT is configured. */
    core::UlmtEngine *ulmtEngine(unsigned idx = 0)
    {
        return idx < engines_.size() ? engines_[idx].get() : nullptr;
    }
    cpu::MainProcessor &processor(unsigned core = 0)
    {
        return *cpus_[core];
    }
    unsigned numCores() const { return cfg_.cores; }
    std::size_t numEngines() const { return engines_.size(); }
    const SystemConfig &config() const { return cfg_; }

    /** Every component statistic under one dotted namespace. */
    const sim::StatRegistry &statRegistry() const { return registry_; }

    /** The invariant checker, or nullptr when checking is off. */
    check::InvariantChecker *checker() { return checker_.get(); }

    /** The lifecycle auditor, or nullptr when auditing is off. */
    mem::PrefetchAudit *audit() { return audit_.get(); }

    /** The VM layer, or nullptr when cfg.vm.on() is false. */
    vm::Vm *vm() { return vm_.get(); }

    /**
     * Route trace events into @p buf (owned by the caller; must
     * outlive run()).  nullptr -- the default -- disables tracing at
     * the cost of one pointer test per would-be event.
     */
    void setTraceEvents(sim::TraceEventBuffer *buf);

  private:
    /** Wire every component for cfg_ (shared by all constructors). */
    void init();

    /** Register all component stats and set up the sampler. */
    void initObservability();

    /** Rebuild a pending event's closure from its checkpoint tag. */
    sim::EventQueue::Action resolveEvent(const sim::SavedEvent &s);

    SystemConfig cfg_;
    /** One trace source per core (non-owning). */
    std::vector<cpu::TraceSource *> sources_;
    /** Per-core workloads when known (enables the checkpoint layer to
     *  fast-forward each trace cursor on restore); empty entries when
     *  constructed from a bare TraceSource. */
    std::vector<workloads::Workload *> coreWorkloads_;
    /** Workloads the System owns (multicore constructor). */
    std::vector<std::unique_ptr<workloads::Workload>> ownedWorkloads_;
    std::string workloadName_;
    std::string workloadSource_ = "synthetic";
    bool restored_ = false;
    std::string ckptApp_;
    std::uint64_t ckptSeed_ = workloads::WorkloadParams{}.seed;
    double ckptScale_ = 1.0;
    std::uint64_t ckptTriggerMisses_ = 0;
    sim::Cycle ckptTriggerCycle_ = 0;
    std::string ckptPath_;
    double ckptSaveSeconds_ = 0.0;
    double ckptRestoreSeconds_ = 0.0;
    std::uint64_t ckptBytes_ = 0;
    sim::EventQueue eq_;
    std::unique_ptr<mem::MemorySystem> ms_;
    std::vector<std::unique_ptr<cpu::Hierarchy>> hiers_;
    std::vector<std::unique_ptr<core::UlmtEngine>> engines_;
    std::unique_ptr<HwCorrelationEngine> hwCorr_;
    std::vector<std::unique_ptr<cpu::MainProcessor>> cpus_;
    std::vector<sim::Addr> missStream_;
    sim::StatRegistry registry_;
    std::unique_ptr<sim::TimeSeriesSampler> sampler_;
    std::unique_ptr<check::InvariantChecker> checker_;
    std::unique_ptr<mem::PrefetchAudit> audit_;
    std::unique_ptr<vm::Vm> vm_;
    sim::TraceEventBuffer *trace_ = nullptr;
};

} // namespace driver

#endif // DRIVER_SYSTEM_HH
