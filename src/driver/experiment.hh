/**
 * @file
 * Experiment helpers: the standard machine configurations of the
 * paper's evaluation (Section 5) and the Table 5 customizations.
 */

#ifndef DRIVER_EXPERIMENT_HH
#define DRIVER_EXPERIMENT_HH

#include <string>
#include <vector>

#include "driver/system.hh"

namespace driver {

/** Options shared by all experiment runs. */
struct ExperimentOptions
{
    double scale = 1.0;            //!< workload size multiplier
    std::uint64_t seed = 0xA11CE;  //!< workload structure seed
    mem::MemProcPlacement placement = mem::MemProcPlacement::InDram;
};

/** No prefetching at all. */
SystemConfig noPrefConfig(const ExperimentOptions &opt);

/** Processor-side Conven4 only. */
SystemConfig conven4Config(const ExperimentOptions &opt);

/**
 * Memory-side ULMT only, sized for @p app per Table 2.
 * @param algo Base, Chain, Repl, Seq1, Seq4 or a combination.
 */
SystemConfig ulmtConfig(const ExperimentOptions &opt,
                        core::UlmtAlgo algo, const std::string &app);

/** Conven4 plus a Non-Verbose ULMT ("Conven4+Repl" etc.). */
SystemConfig conven4PlusUlmtConfig(const ExperimentOptions &opt,
                                   core::UlmtAlgo algo,
                                   const std::string &app);

/**
 * The customized configuration of Table 5 (Conven4 always on):
 * CG -> Seq1+Repl in Verbose mode; MST, Mcf -> Repl with NumLevels=4;
 * other applications -> plain Conven4+Repl.
 *
 * @param customized set to whether @p app has a bespoke customization
 */
SystemConfig customConfig(const ExperimentOptions &opt,
                          const std::string &app, bool &customized);

/** Construct the workload and run one configuration to completion. */
RunResult runOne(const std::string &app, const SystemConfig &cfg,
                 const ExperimentOptions &opt);

// --- Process-wide observability hooks --------------------------------
//
// Every experiment funnel (runOne) honours these, so enabling the
// trace-event file or overriding the sampling interval covers an
// entire sweep -- including runs dispatched through the parallel
// runner, each of which lands in the shared file as its own trace
// process.

/**
 * Start writing Chrome trace events from all subsequent runs to
 * @p path (empty string turns tracing back off).
 * @throws std::runtime_error when the file cannot be created.
 */
void setTraceEventsPath(const std::string &path);

/** The active shared writer, or nullptr when tracing is off. */
sim::TraceEventWriter *traceEventWriter();

/** Finalize and close the shared trace file (idempotent). */
void finishTraceEvents();

/**
 * Override SystemConfig::metricsInterval for all subsequent runOne
 * calls (0 disables sampling); pass through without calling to keep
 * each config's own value.
 */
void setMetricsIntervalOverride(sim::Cycle interval);

/** Drop the metrics-interval override. */
void clearMetricsIntervalOverride();

/**
 * Override SystemConfig::check for all subsequent runOne / runSampled
 * calls (the bench harness's `--check` flags).  Checking is passive,
 * so results are bit-identical with it on or off.
 */
void setCheckOverride(const check::CheckOptions &opts);

/** Drop the check override. */
void clearCheckOverride();

/**
 * Override SystemConfig::audit for all subsequent runOne / runSampled
 * calls (the bench harness's `--audit=on|off` flag).  Auditing is
 * passive, so fingerprints and cycle counts are bit-identical with it
 * on or off.
 */
void setAuditOverride(bool enabled);

/** Drop the audit override. */
void clearAuditOverride();

/**
 * Override SystemConfig::cores / ulmtMode for all subsequent runOne
 * calls (the bench harness's `--cores` / `--ulmt-mode` flags), so an
 * entire sweep of single-core configurations runs on a multicore
 * machine without touching each config.
 */
void setCoresOverride(unsigned cores, core::UlmtMode mode);

/** Drop the cores override. */
void clearCoresOverride();

/**
 * Override SystemConfig::vm for all subsequent runOne / runSampled
 * calls (the bench harness's `--vm` / `--page-size` / `--remap-rate`
 * flags).  Unlike the passive observability overrides, the VM layer
 * shapes simulated behaviour, so only runs that opt in share a
 * fingerprint.
 */
void setVmOverride(const vm::VmSpec &spec);

/** Drop the VM override. */
void clearVmOverride();

/**
 * Override SystemConfig::tableCache for all subsequent runOne /
 * runSampled calls (the bench harness's `--table-cache` flag).  Like
 * the VM layer it shapes simulated behaviour, so only runs that opt
 * in share a fingerprint.
 */
void setTableCacheOverride(const mem::TableCacheSpec &spec);

/** Drop the table-cache override. */
void clearTableCacheOverride();

/**
 * The per-core workload set of a multicore run: core 0 replays the
 * exact single-core trace of (@p app, @p seed, @p scale); every other
 * core runs an independently seeded instance of the same kernel,
 * translated into its own private address slice (workloads/offset.hh).
 */
std::vector<std::unique_ptr<workloads::Workload>>
makeCoreWorkloads(const std::string &app, std::uint64_t seed,
                  double scale, unsigned cores);

// --- Checkpointing ---------------------------------------------------

/**
 * Arm a one-shot checkpoint in all subsequent runOne calls: @p spec is
 * "<N>" (after N demand L2 misses) or "<N>c" (at cycle N); empty
 * disarms.  Each run writes `<dir>/<app>-<label>.ulmtckp` where dir is
 * set by setCheckpointTo (default ".").
 */
void setCheckpointAt(const std::string &spec);

/** Directory for triggered snapshots (empty = current directory). */
void setCheckpointTo(const std::string &dir);

/**
 * Restore every subsequent runOne call from @p path before running
 * (empty disarms).  The checkpoint's configuration fingerprint must
 * match the run's config, so this is for single-config invocations.
 */
void setRestoreFrom(const std::string &path);

/**
 * The sampled-run mode (warmup + measure): rebuild the workload from
 * the checkpoint's own header (app key, seed, scale), restore the
 * snapshot and run the remainder.  The result carries full-run
 * cumulative statistics, bit-identical to an uninterrupted run of the
 * same configuration -- the warmup simulation is simply skipped.
 */
RunResult runSampled(const SystemConfig &cfg,
                     const std::string &ckpt_path);

/** Registered workload names (the nine paper applications); the
 *  "trace:<path>" scheme is additionally accepted everywhere. */
const std::vector<std::string> &listWorkloads();

/** Capture the demand L2 miss stream of a NoPref run (Figs. 5/6). */
std::vector<sim::Addr> captureMissStream(const std::string &app,
                                         const ExperimentOptions &opt);

} // namespace driver

#endif // DRIVER_EXPERIMENT_HH
