/**
 * @file
 * Parser: link-grammar word processing.
 *
 * Parsing hashes each word of the input into a large dictionary and
 * chases the word's linked entry.  Natural text reuses words and
 * phrases heavily, so the irregular miss sequences recur -- but
 * interleaved with fresh material, giving the partial predictability
 * (and the modest speedups) the paper reports for Parser.
 */

#include "workloads/apps.hh"

namespace workloads {

void
ParserWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t vocab = scaled(49152, 1024);
    const std::size_t num_phrases = scaled(4096, 64);
    const std::size_t text_words = scaled(360000, 4096);
    const std::size_t bucket_bytes = 8;
    const std::size_t word_bytes = 96;

    const sim::Addr buckets = tb.alloc(bucket_bytes * vocab);
    const sim::Addr words = tb.alloc(word_bytes * vocab);

    // Phrase table: short word-id sequences with Zipf-ish popularity.
    std::vector<std::vector<std::uint32_t>> phrases(num_phrases);
    for (auto &ph : phrases) {
        const std::size_t len = 4 + rng.below(8);
        ph.resize(len);
        for (auto &w : ph) {
            // Zipf-like word choice: small ids are more common.
            const double u = rng.real();
            w = static_cast<std::uint32_t>(
                static_cast<double>(vocab - 1) * u * u);
        }
    }

    std::size_t emitted = 0;
    while (emitted < text_words) {
        // Sample a phrase, favouring popular (low-index) phrases.
        const double u = rng.real();
        const std::size_t p = static_cast<std::size_t>(
            static_cast<double>(num_phrases - 1) * u * u);
        for (std::uint32_t w : phrases[p]) {
            tb.compute(105);
            const std::size_t bucket =
                (static_cast<std::size_t>(w) * 2654435761u) % vocab;
            tb.load(buckets + bucket_bytes * bucket);
            tb.compute(75);
            tb.load(words + word_bytes * w, /*depends_on_prev=*/true);
            if (w % 4 == 0) {
                tb.compute(60);
                tb.load(words + word_bytes * w + 64,
                        /*depends_on_prev=*/true);
            }
            ++emitted;
        }
    }
}

} // namespace workloads
