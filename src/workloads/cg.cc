/**
 * @file
 * NAS CG: conjugate gradient with a banded random sparse matrix in
 * compressed-row storage.
 *
 * The dominant traffic is the streaming SpMV over vals/colidx (several
 * concurrent sequential streams) plus the streaming vector updates;
 * the x gather stays within a vector that largely fits in the L2.
 * This reproduces CG's role in the paper: the one regular application,
 * whose many interleaved sequential streams overwhelm a conventional
 * 4-stream prefetcher (motivating the Seq1+Repl Verbose customization
 * of Table 5).
 */

#include "workloads/apps.hh"

namespace workloads {

void
CgWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t n = scaled(16384, 256);        // rows
    const std::size_t nnz_per_row = 14;
    const std::size_t iters = 3;
    const std::size_t band = n / 8;

    const sim::Addr rowptr = tb.alloc(4 * (n + 1));
    const sim::Addr colidx = tb.alloc(4 * n * nnz_per_row);
    const sim::Addr vals = tb.alloc(8 * n * nnz_per_row);
    const sim::Addr x = tb.alloc(8 * n);
    const sim::Addr p = tb.alloc(8 * n);
    const sim::Addr q = tb.alloc(8 * n);
    const sim::Addr r = tb.alloc(8 * n);

    // Fixed banded sparsity pattern.
    std::vector<std::uint32_t> cols(n * nnz_per_row);
    for (std::size_t row = 0; row < n; ++row) {
        for (std::size_t k = 0; k < nnz_per_row; ++k) {
            const std::size_t lo = row > band ? row - band : 0;
            const std::size_t hi =
                row + band < n ? row + band : n - 1;
            cols[row * nnz_per_row + k] =
                static_cast<std::uint32_t>(rng.range(lo, hi));
        }
    }

    for (std::size_t it = 0; it < iters; ++it) {
        // q = A * p
        for (std::size_t row = 0; row < n; ++row) {
            tb.compute(14);
            tb.load(rowptr + 4 * row);
            for (std::size_t k = 0; k < nnz_per_row; ++k) {
                const std::size_t j = row * nnz_per_row + k;
                tb.compute(26);
                tb.load(vals + 8 * j);
                if (k % 2 == 0) {
                    tb.compute(12);
                    tb.load(colidx + 4 * j);
                }
                tb.compute(18);
                tb.load(p + 8 * cols[j]);
            }
            tb.compute(26);
            tb.store(q + 8 * row);
        }
        // alpha = (r.r)/(p.q); x += alpha p; r -= alpha q  (streams)
        for (std::size_t i = 0; i < n; i += 2) {
            tb.compute(34);
            tb.load(p + 8 * i);
            tb.load(q + 8 * i);
            tb.store(x + 8 * i);
            tb.compute(26);
            tb.load(r + 8 * i);
            tb.store(r + 8 * i);
        }
        // p = r + beta p
        for (std::size_t i = 0; i < n; i += 2) {
            tb.compute(30);
            tb.load(r + 8 * i);
            tb.store(p + 8 * i);
        }
    }
}

} // namespace workloads
