/**
 * @file
 * Mcf: combinatorial optimization (network simplex).
 *
 * The inner loop of mcf repeatedly walks the arc list in a pointer-
 * dependent order, touching the tail/head node of each arc.  We model
 * the arc list as a fixed shuffled cycle over a multi-megabyte arc
 * array: every reference's address comes from the previous load
 * (dependsOnPrev), so misses serialize at full memory round-trip --
 * the [200, 280)-cycle bin of Figure 6 -- and the sequence repeats
 * each simplex iteration, which is why pair-based schemes predict Mcf
 * well while sequential schemes predict nothing (Figure 5).
 */

#include "workloads/apps.hh"

#include <algorithm>
#include <numeric>

namespace workloads {

void
McfWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t num_arcs = scaled(16000, 9000);
    const std::size_t num_nodes = num_arcs / 6;
    const std::size_t arc_bytes = 96;
    const std::size_t node_bytes = 64;
    const std::size_t iters = 38;

    const sim::Addr arcs = tb.alloc(arc_bytes * num_arcs);
    const sim::Addr nodes = tb.alloc(node_bytes * num_nodes);

    // A fixed random cycle through the arcs (the simplex scan order).
    std::vector<std::uint32_t> next(num_arcs);
    std::iota(next.begin(), next.end(), 0);
    for (std::size_t i = num_arcs - 1; i > 0; --i)
        std::swap(next[i], next[rng.below(i + 1)]);
    // Tail node of each arc.
    std::vector<std::uint32_t> tail(num_arcs);
    for (auto &t : tail)
        t = static_cast<std::uint32_t>(rng.below(num_nodes));

    std::uint32_t cur = 0;
    for (std::size_t it = 0; it < iters; ++it) {
        for (std::size_t step = 0; step < num_arcs; ++step) {
            const std::uint32_t arc = next[cur];
            tb.compute(52);
            // Follow the list: the next arc's address is loaded from
            // the current one.
            tb.load(arcs + arc_bytes * arc, /*depends_on_prev=*/true);
            tb.compute(38);
            // Touch the arc's tail node (address from arc data).
            tb.load(nodes + node_bytes * tail[arc],
                    /*depends_on_prev=*/true);
            cur = arc;
        }
        // Occasional pivot: a small fraction of the scan order changes
        // between iterations.
        const std::size_t mutations = num_arcs / 24;
        for (std::size_t m = 0; m < mutations; ++m) {
            const std::size_t a = rng.below(num_arcs);
            const std::size_t b = rng.below(num_arcs);
            std::swap(next[a], next[b]);
        }
    }
}

} // namespace workloads
