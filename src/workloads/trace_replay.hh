/**
 * @file
 * TraceReplayWorkload: a captured (or imported) on-disk trace corpus
 * as a first-class workload.
 *
 * The workload streams records straight from the trace file through
 * trace::TraceReader -- one block buffer in memory, never the whole
 * trace -- so arbitrarily large corpora replay in constant space.
 * name() reports the *captured* application's name (the header
 * provenance), which makes a replayed run's statistics directly
 * comparable (and, for an unmodified simulator, bit-identical) to the
 * live synthetic run it was captured from; source() distinguishes the
 * two in bench metadata.
 */

#ifndef WORKLOADS_TRACE_REPLAY_HH
#define WORKLOADS_TRACE_REPLAY_HH

#include "trace/reader.hh"
#include "workloads/workload.hh"

namespace workloads {

/** Replays a trace file recorded by trace::TraceWriter. */
class TraceReplayWorkload : public Workload
{
  public:
    /**
     * Open and validate @p path.
     * @throws trace::TraceError on a missing/truncated/corrupt file.
     */
    explicit TraceReplayWorkload(std::string path)
        : path_(std::move(path)), reader_(path_)
    {
    }

    std::string name() const override { return reader_.header().app; }
    std::string source() const override { return "trace:" + path_; }

    bool
    next(cpu::TraceRecord &rec) override
    {
        return reader_.next(rec);
    }

    void reset() override { reader_.rewind(); }

    std::size_t
    footprintBytes() override
    {
        return reader_.summary().footprintBytes;
    }

    std::size_t
    traceLength() override
    {
        return reader_.summary().records;
    }

    /** Provenance recorded at capture time. */
    const trace::TraceHeader &traceHeader() const
    {
        return reader_.header();
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    trace::TraceReader reader_;
};

} // namespace workloads

#endif // WORKLOADS_TRACE_REPLAY_HH
