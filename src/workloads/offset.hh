/**
 * @file
 * OffsetWorkload: a per-core copy of a workload in a private slice of
 * the simulated address space.
 *
 * A multicore machine runs one workload instance per core.  Each
 * core's caches are private, but the memory-side structures (filter,
 * in-flight maps) key on (core, line), so cores could legally touch
 * the same addresses -- they would simply also share DRAM rows and
 * bus slots in ways a multiprogrammed mix does not.  To model the
 * paper's multiprogrammed setting, OffsetWorkload shifts every
 * reference of the wrapped workload by core * 2^40 bytes: far above
 * any synthetic footprint (they live below 2^42... in fact below
 * 2^36) and far below the core-tag bits at bit 56 and the table
 * address ranges at 2^38, keeping every simulated address disjoint
 * per core.  Core 0 conventionally uses offset 0 so its stream is
 * bit-identical to the single-core run of the same workload and seed.
 */

#ifndef WORKLOADS_OFFSET_HH
#define WORKLOADS_OFFSET_HH

#include <memory>
#include <utility>

#include "workloads/workload.hh"

namespace workloads {

/** Address-space stride between per-core workload copies. */
inline constexpr sim::Addr coreAddrStride = sim::Addr(1) << 40;

/** A workload translated into core @p core's address slice. */
class OffsetWorkload : public Workload
{
  public:
    OffsetWorkload(std::unique_ptr<Workload> inner, unsigned core)
        : inner_(std::move(inner)),
          offset_(sim::Addr(core) * coreAddrStride)
    {
    }

    bool
    next(cpu::TraceRecord &rec) override
    {
        if (!inner_->next(rec))
            return false;
        // Reference-free compute records carry invalidAddr; shifting
        // it would turn them into (enormous) real references.
        if (rec.addr != sim::invalidAddr)
            rec.addr += offset_;
        return true;
    }

    std::string name() const override { return inner_->name(); }
    std::string source() const override { return inner_->source(); }
    void reset() override { inner_->reset(); }

    std::size_t
    footprintBytes() override
    {
        return inner_->footprintBytes();
    }

    std::size_t traceLength() override { return inner_->traceLength(); }

  private:
    std::unique_ptr<Workload> inner_;
    sim::Addr offset_;
};

} // namespace workloads

#endif // WORKLOADS_OFFSET_HH
