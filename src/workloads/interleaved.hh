/**
 * @file
 * Multiprogrammed workload support (Section 3.4).
 *
 * The paper argues that sharing one correlation table among all
 * applications is a poor approach (the table suffers interference) and
 * proposes one ULMT, with its own table, per application.  This
 * utility interleaves two workloads in timeslices, as a multiprogrammed
 * machine would, so the interference can be measured: run each app
 * solo versus interleaved against the same (shared) table and compare
 * coverage.
 */

#ifndef WORKLOADS_INTERLEAVED_HH
#define WORKLOADS_INTERLEAVED_HH

#include <memory>

#include "workloads/workload.hh"

namespace workloads {

/** Round-robin interleaving of two workloads at a fixed quantum. */
class InterleavedWorkload : public cpu::TraceSource
{
  public:
    /**
     * @param a first workload
     * @param b second workload
     * @param quantum_records records per timeslice
     */
    InterleavedWorkload(std::unique_ptr<Workload> a,
                        std::unique_ptr<Workload> b,
                        std::size_t quantum_records = 20000)
        : a_(std::move(a)), b_(std::move(b)),
          quantum_(quantum_records)
    {
    }

    bool
    next(cpu::TraceRecord &rec) override
    {
        for (int attempts = 0; attempts < 2; ++attempts) {
            Workload *cur = onB_ ? b_.get() : a_.get();
            Workload *other = onB_ ? a_.get() : b_.get();
            if (!curDone(cur) && cur->next(rec)) {
                if (justSwitched_) {
                    // A context switch breaks any pointer chain: the
                    // first reference of a slice depends on nothing
                    // from the other application.
                    rec.dependsOnPrev = false;
                    justSwitched_ = false;
                }
                if (++inQuantum_ >= quantum_ && !curDone(other)) {
                    inQuantum_ = 0;
                    onB_ = !onB_;
                    justSwitched_ = true;
                }
                return true;
            }
            markDone(cur);
            if (curDone(other))
                return false;
            onB_ = !onB_;
            inQuantum_ = 0;
            justSwitched_ = true;
        }
        return false;
    }

    std::string
    name() const
    {
        return a_->name() + "|" + b_->name();
    }

  private:
    bool
    curDone(const Workload *w) const
    {
        return (w == a_.get() && aDone_) || (w == b_.get() && bDone_);
    }

    void
    markDone(const Workload *w)
    {
        if (w == a_.get())
            aDone_ = true;
        else
            bDone_ = true;
    }

    std::unique_ptr<Workload> a_;
    std::unique_ptr<Workload> b_;
    std::size_t quantum_;
    std::size_t inQuantum_ = 0;
    bool onB_ = false;
    bool justSwitched_ = false;
    bool aDone_ = false;
    bool bDone_ = false;
};

} // namespace workloads

#endif // WORKLOADS_INTERLEAVED_HH
