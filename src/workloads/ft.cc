/**
 * @file
 * NAS FT: 3-D fast Fourier transform.
 *
 * Butterfly passes along each dimension of a complex grid: the
 * unit-stride dimension is purely sequential, while the other two
 * dimensions walk the grid at large strides.  The strided miss
 * sequences repeat across FFT invocations, so correlation prefetching
 * learns them while a +/-1-stride sequential prefetcher only covers
 * the contiguous dimension -- FT's mixed profile in Figure 5.
 */

#include "workloads/apps.hh"

#include <cmath>

namespace workloads {

void
FtWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    (void)rng;
    // The footprint scales with the cube of the dimension, so the
    // scale factor applies to the volume, not the side.
    const double side = 48.0 * std::cbrt(params().scale);
    const std::size_t nx =
        side < 8.0 ? 8 : static_cast<std::size_t>(side);
    const std::size_t ny = nx;
    const std::size_t nz = nx;
    const std::size_t elem = 16;  // complex<double>
    const std::size_t ffts = 4;   // two forward + two inverse

    const sim::Addr grid = tb.alloc(elem * nx * ny * nz);
    const sim::Addr twiddle = tb.alloc(elem * nx);

    auto idx = [&](std::size_t x, std::size_t y, std::size_t z) {
        return grid + elem * (x + nx * (y + ny * z));
    };

    for (std::size_t f = 0; f < ffts; ++f) {
        // Pass 1: unit stride along x.
        for (std::size_t z = 0; z < nz; ++z) {
            for (std::size_t y = 0; y < ny; ++y) {
                for (std::size_t x = 0; x < nx; x += 2) {
                    tb.compute(60);
                    tb.load(idx(x, y, z));
                    tb.compute(30);
                    tb.load(twiddle + elem * (x % nx));
                    tb.compute(35);
                    tb.store(idx(x + 1, y, z));
                }
            }
        }
        // Pass 2: stride nx along y.
        for (std::size_t z = 0; z < nz; ++z) {
            for (std::size_t x = 0; x < nx; ++x) {
                for (std::size_t y = 0; y < ny; y += 2) {
                    tb.compute(65);
                    tb.load(idx(x, y, z));
                    tb.compute(40);
                    tb.store(idx(x, y + 1, z));
                }
            }
        }
        // Pass 3: stride nx*ny along z.
        for (std::size_t y = 0; y < ny; ++y) {
            for (std::size_t x = 0; x < nx; ++x) {
                for (std::size_t z = 0; z < nz; z += 2) {
                    tb.compute(65);
                    tb.load(idx(x, y, z));
                    tb.compute(40);
                    tb.store(idx(x, y, z + 1));
                }
            }
        }
    }
}

} // namespace workloads
