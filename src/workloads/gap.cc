/**
 * @file
 * Gap: computational group theory.
 *
 * GAP's workspace is a large heap of small objects (permutation words,
 * bags).  A hot working set of frequently-reused objects stays cache
 * resident, while operations regularly reach into a much larger cold
 * region in a stable, allocation-independent order; a global hash
 * table adds scattered probes.  The cold visits repeat every pass,
 * producing irregular but correlation-predictable misses with no
 * sequential component.
 */

#include "workloads/apps.hh"

#include <algorithm>
#include <numeric>

namespace workloads {

void
GapWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t num_objects = scaled(26000, 1024);
    const std::size_t hot_objects = scaled(2500, 64);
    const std::size_t passes = 14;
    const std::size_t hash_bytes = 4u << 20;

    // Hot set first (contiguous-ish, cache resident), then the heap.
    std::vector<sim::Addr> hot(hot_objects);
    for (auto &h : hot)
        h = tb.alloc(64 + 64 * rng.below(2));
    std::vector<sim::Addr> cold(num_objects);
    for (auto &c : cold)
        c = tb.alloc(64 + 64 * rng.below(3));
    const sim::Addr hash = tb.alloc(hash_bytes);

    // Stable visit order: mostly hot objects, every few operations a
    // cold object in a fixed shuffled order.
    std::vector<std::uint32_t> cold_order(num_objects);
    std::iota(cold_order.begin(), cold_order.end(), 0);
    for (std::size_t i = num_objects - 1; i > 0; --i)
        std::swap(cold_order[i], cold_order[rng.below(i + 1)]);
    std::vector<std::uint32_t> probe(num_objects);
    for (auto &p : probe)
        p = static_cast<std::uint32_t>(rng.below(hash_bytes / 64));
    std::vector<std::uint32_t> hot_pick(num_objects);
    for (auto &p : hot_pick)
        p = static_cast<std::uint32_t>(rng.below(hot_objects));

    for (std::size_t pass = 0; pass < passes; ++pass) {
        // The operation mix drifts a little between passes: a few
        // percent of the cold visits change position, as GAP's bag
        // contents evolve.
        for (std::size_t m = 0; m < num_objects / 32; ++m) {
            const std::size_t x = rng.below(num_objects);
            const std::size_t y = rng.below(num_objects);
            std::swap(cold_order[x], cold_order[y]);
        }
        for (std::size_t i = 0; i < num_objects; ++i) {
            // Work on a hot object (cache resident after warmup).
            const sim::Addr h = hot[hot_pick[i]];
            tb.compute(95);
            tb.load(h);
            tb.compute(75);
            tb.load(h + 32);
            tb.compute(65);
            tb.store(h);

            // Reach into the cold heap in the stable order.
            const std::uint32_t o = cold_order[i];
            tb.compute(85);
            tb.load(cold[o]);
            if (o % 2 == 0) {
                tb.compute(70);
                tb.load(cold[o] + 64);
            }
            if (i % 4 == 0) {
                tb.compute(60);
                tb.load(hash + 64 * probe[o]);
            }
        }
    }
}

} // namespace workloads
