/**
 * @file
 * The nine applications of Table 2.
 *
 * | App    | Source suite   | Kernel reproduced here                  |
 * |--------|----------------|-----------------------------------------|
 * | CG     | NAS            | CRS conjugate-gradient SpMV + vector ops |
 * | Equake | SpecFP2000     | time-stepped unstructured-mesh SpMV      |
 * | FT     | NAS            | 3-D FFT butterfly passes (strided)       |
 * | Gap    | SpecInt2000    | group-theory object/bag traversals       |
 * | Mcf    | SpecInt2000    | network-simplex arc-list pointer chase   |
 * | MST    | Olden          | vertex-list walk + per-vertex hash walk  |
 * | Parser | SpecInt2000    | dictionary hash + linked word lookups    |
 * | Sparse | SparseBench    | GMRES: CRS SpMV + Krylov orthogonalize   |
 * | Tree   | Univ. Hawaii   | Barnes-Hut octree force computation      |
 *
 * Mostly-irregular mix, as in the paper: CG is the regular exception,
 * Mcf/MST/Tree are purely irregular pointer chasers, the rest mix
 * patterns.
 */

#ifndef WORKLOADS_APPS_HH
#define WORKLOADS_APPS_HH

#include "workloads/workload.hh"

namespace workloads {

/** NAS CG: sequential multi-stream behaviour dominates. */
class CgWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "CG"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** Equake: repeating irregular gathers over a fixed mesh. */
class EquakeWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "Equake"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** NAS FT: strided transpose passes of a 3-D FFT. */
class FtWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "FT"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** Gap: heap-object traversals in a fixed irregular order. */
class GapWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "Gap"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** Mcf: dependent arc-list chasing, the same cycle every iteration. */
class McfWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "Mcf"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** Olden MST: repeated linked-list walks with hash probes. */
class MstWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "MST"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** Parser: dictionary lookups driven by phrase-structured text. */
class ParserWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "Parser"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** SparseBench GMRES: SpMV plus conflict-prone Krylov vectors. */
class SparseWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "Sparse"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

/** Barnes-Hut treecode, 2048 bodies. */
class TreeWorkload : public SyntheticWorkload
{
  public:
    using SyntheticWorkload::SyntheticWorkload;
    std::string name() const override { return "Tree"; }

  protected:
    void generate(TraceBuilder &tb, sim::Rng &rng) override;
};

} // namespace workloads

#endif // WORKLOADS_APPS_HH
