/**
 * @file
 * Workload registry: construction by name or trace:<path> scheme, and
 * Table 2 metadata.
 */

#include <cstring>
#include <stdexcept>

#include "workloads/apps.hh"
#include "workloads/trace_replay.hh"

namespace workloads {

namespace {

constexpr const char *traceScheme = "trace:";

bool
isTraceName(const std::string &name)
{
    return name.rfind(traceScheme, 0) == 0;
}

/** "CG, Equake, ..., Tree, or trace:<path>" for error messages. */
std::string
validWorkloadNames()
{
    std::string out;
    for (const std::string &n : applicationNames())
        out += n + ", ";
    out += "or trace:<path>";
    return out;
}

} // namespace

const std::vector<std::string> &
applicationNames()
{
    static const std::vector<std::string> names = {
        "CG",  "Equake", "FT",     "Gap",  "Mcf",
        "MST", "Parser", "Sparse", "Tree",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &p)
{
    if (isTraceName(name)) {
        const std::string path = name.substr(std::strlen(traceScheme));
        if (path.empty()) {
            throw std::invalid_argument(
                "malformed workload name '" + name +
                "': the trace: scheme needs a file path "
                "(trace:<path>); valid workloads are " +
                validWorkloadNames());
        }
        try {
            return std::make_unique<TraceReplayWorkload>(path);
        } catch (const trace::TraceError &e) {
            // Surface the workload name the caller passed, so a bad
            // --apps=trace:... entry is traceable to its input.
            throw std::invalid_argument(
                "cannot open workload '" + name + "': " + e.what());
        }
    }
    if (name == "CG")
        return std::make_unique<CgWorkload>(p);
    if (name == "Equake")
        return std::make_unique<EquakeWorkload>(p);
    if (name == "FT")
        return std::make_unique<FtWorkload>(p);
    if (name == "Gap")
        return std::make_unique<GapWorkload>(p);
    if (name == "Mcf")
        return std::make_unique<McfWorkload>(p);
    if (name == "MST")
        return std::make_unique<MstWorkload>(p);
    if (name == "Parser")
        return std::make_unique<ParserWorkload>(p);
    if (name == "Sparse")
        return std::make_unique<SparseWorkload>(p);
    if (name == "Tree")
        return std::make_unique<TreeWorkload>(p);
    throw std::invalid_argument("unknown workload '" + name +
                                "'; valid workloads are " +
                                validWorkloadNames());
}

std::uint32_t
tableNumRows(const std::string &app_name)
{
    if (isTraceName(app_name)) {
        // Resolve through the trace's recorded provenance.
        try {
            trace::TraceReader reader(
                app_name.substr(std::strlen(traceScheme)));
            const std::string &app = reader.header().app;
            for (const std::string &known : applicationNames()) {
                if (app == known)
                    return tableNumRows(app);
            }
        } catch (const trace::TraceError &e) {
            throw std::invalid_argument("cannot open workload '" +
                                        app_name + "': " + e.what());
        }
        // Imported / externally captured trace: mid-range default.
        return 128 * 1024;
    }

    // Table 2: NumRows (K) per application.
    if (app_name == "CG")
        return 64 * 1024;
    if (app_name == "Equake")
        return 128 * 1024;
    if (app_name == "FT")
        return 256 * 1024;
    if (app_name == "Gap")
        return 128 * 1024;
    if (app_name == "Mcf")
        return 32 * 1024;
    if (app_name == "MST")
        return 256 * 1024;
    if (app_name == "Parser")
        return 128 * 1024;
    if (app_name == "Sparse")
        return 256 * 1024;
    if (app_name == "Tree")
        return 8 * 1024;
    throw std::invalid_argument("unknown application '" + app_name +
                                "'; valid applications are " +
                                validWorkloadNames());
}

} // namespace workloads
