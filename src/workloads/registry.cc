/**
 * @file
 * Workload registry: construction by name and Table 2 metadata.
 */

#include "workloads/apps.hh"

#include "sim/logging.hh"

namespace workloads {

const std::vector<std::string> &
applicationNames()
{
    static const std::vector<std::string> names = {
        "CG",  "Equake", "FT",     "Gap",  "Mcf",
        "MST", "Parser", "Sparse", "Tree",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &p)
{
    if (name == "CG")
        return std::make_unique<CgWorkload>(p);
    if (name == "Equake")
        return std::make_unique<EquakeWorkload>(p);
    if (name == "FT")
        return std::make_unique<FtWorkload>(p);
    if (name == "Gap")
        return std::make_unique<GapWorkload>(p);
    if (name == "Mcf")
        return std::make_unique<McfWorkload>(p);
    if (name == "MST")
        return std::make_unique<MstWorkload>(p);
    if (name == "Parser")
        return std::make_unique<ParserWorkload>(p);
    if (name == "Sparse")
        return std::make_unique<SparseWorkload>(p);
    if (name == "Tree")
        return std::make_unique<TreeWorkload>(p);
    sim::fatal("unknown workload '%s'", name.c_str());
}

std::uint32_t
tableNumRows(const std::string &app_name)
{
    // Table 2: NumRows (K) per application.
    if (app_name == "CG")
        return 64 * 1024;
    if (app_name == "Equake")
        return 128 * 1024;
    if (app_name == "FT")
        return 256 * 1024;
    if (app_name == "Gap")
        return 128 * 1024;
    if (app_name == "Mcf")
        return 32 * 1024;
    if (app_name == "MST")
        return 256 * 1024;
    if (app_name == "Parser")
        return 128 * 1024;
    if (app_name == "Sparse")
        return 256 * 1024;
    if (app_name == "Tree")
        return 8 * 1024;
    sim::fatal("unknown application '%s'", app_name.c_str());
}

} // namespace workloads
