/**
 * @file
 * Equake: seismic wave propagation -- a time-stepped sparse
 * matrix-vector product over a fixed unstructured mesh.
 *
 * Every timestep gathers the displacement of irregularly-indexed
 * neighbour nodes.  The gather index sequence is fixed by the mesh, so
 * the resulting irregular L2 miss sequence repeats each step: exactly
 * the behaviour pair-based correlation prefetching captures and
 * sequential prefetching cannot.
 */

#include "workloads/apps.hh"

namespace workloads {

void
EquakeWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t nodes = scaled(28672, 512);
    const std::size_t nnz = nodes * 9;      // mesh edges (coef matrix)
    const std::size_t steps = 3;
    const std::size_t node_bytes = 24;      // 3 displacement components

    const sim::Addr vals = tb.alloc(8 * nnz);
    const sim::Addr colidx = tb.alloc(4 * nnz);
    const sim::Addr disp = tb.alloc(node_bytes * nodes);
    const sim::Addr vel = tb.alloc(8 * nodes);

    // Fixed mesh connectivity.  Real meshes are bandwidth-reduced:
    // most neighbours of node i are near i, with a minority of far
    // edges.  The resulting gather walks the displacement array mostly
    // in order (miss once per line, every step, in a repeating
    // sequence), with recurring irregular jumps for the far edges.
    std::vector<std::uint32_t> cols(nnz);
    for (std::size_t j = 0; j < nnz; ++j) {
        const std::size_t row = j / 9;
        if (rng.chance(0.8)) {
            const std::size_t lo = row > 48 ? row - 48 : 0;
            const std::size_t hi =
                row + 48 < nodes ? row + 48 : nodes - 1;
            cols[j] = static_cast<std::uint32_t>(rng.range(lo, hi));
        } else {
            cols[j] = static_cast<std::uint32_t>(rng.below(nodes));
        }
    }

    for (std::size_t step = 0; step < steps; ++step) {
        // Stiffness product: streaming matrix + irregular disp gather.
        for (std::size_t j = 0; j < nnz; ++j) {
            if (j % 2 == 0) {
                tb.compute(55);
                tb.load(vals + 8 * j);
            }
            if (j % 4 == 0) {
                tb.compute(25);
                tb.load(colidx + 4 * j);
            }
            tb.compute(45);
            tb.load(disp + node_bytes * cols[j]);
        }
        // Time integration: streaming node update.
        for (std::size_t i = 0; i < nodes; ++i) {
            tb.compute(85);
            tb.load(vel + 8 * i);
            tb.store(disp + node_bytes * i);
        }
    }
}

} // namespace workloads
