/**
 * @file
 * Olden MST: minimum spanning tree with per-vertex hash tables.
 *
 * Olden's MST repeatedly walks the remaining-vertex linked list and,
 * at each vertex, performs a hash lookup.  The list walk is a long
 * dependent chain whose miss sequence repeats on every round (deeply
 * predictable -- this is the application the NumLevels=4 customization
 * of Table 5 targets), while the hash probes add a second dependent
 * level.
 */

#include "workloads/apps.hh"

#include <algorithm>
#include <numeric>

namespace workloads {

void
MstWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t num_vertices = scaled(8192, 256);
    const std::size_t rounds = scaled(56, 4);
    const std::size_t vertex_bytes = 128;
    const std::size_t table_bytes = 1920;  // per-vertex hash table

    const sim::Addr vertices = tb.alloc(vertex_bytes * num_vertices);
    const sim::Addr tables = tb.alloc(table_bytes * num_vertices);

    // Fixed linked-list order over the vertices.
    std::vector<std::uint32_t> order(num_vertices);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = num_vertices - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);

    // The algorithm removes the chosen vertex from the list after each
    // round, so the walked sequence shrinks and splices over time.
    std::vector<std::uint32_t> remaining = order;
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            const std::uint32_t v = remaining[i];
            tb.compute(68);
            // Walk the vertex list (dependent chain).
            tb.load(vertices + vertex_bytes * v,
                    /*depends_on_prev=*/true);
            // Hash probe in this vertex's table.  The probed bucket
            // alternates between two per-vertex hot buckets from round
            // to round, so a vertex's successor set needs NumSucc >= 2
            // entries and deep far-ahead prefetching pays off -- the
            // regularity the NumLevels=4 customization exploits.
            const std::size_t bucket =
                (v * 2654435761u + (round & 1) * 40503u) %
                (table_bytes / 64);
            tb.compute(54);
            tb.load(tables + table_bytes * v + 64 * bucket,
                    /*depends_on_prev=*/true);
        }
        tb.compute(64);  // blue-rule bookkeeping between rounds
        // Remove the round's chosen vertices from the list.
        const std::size_t removals = num_vertices / (2 * rounds) + 1;
        for (std::size_t r = 0; r < removals && remaining.size() > 16;
             ++r) {
            remaining.erase(remaining.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.below(remaining.size())));
        }
    }
}

} // namespace workloads
