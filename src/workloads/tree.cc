/**
 * @file
 * Tree: the Barnes-Hut treecode (2048 bodies, as in Table 2).
 *
 * A real octree is built over random bodies and the force-computation
 * phase performs the classic theta-criterion traversal per body.
 * Bodies are visited in tree order, so consecutive bodies walk almost
 * identical node sequences: long dependent pointer chains whose miss
 * pattern repeats -- purely irregular (no sequential component), with
 * a footprint just above the L2, producing the conflict-limited
 * speedups the paper reports for Tree.
 */

#include "workloads/apps.hh"

#include <array>
#include <cmath>
#include <vector>

namespace workloads {

namespace {

struct BhNode
{
    double cx, cy, cz;      //!< cell center
    double half;            //!< half-width
    double mx, my, mz;      //!< center of mass
    int body = -1;          //!< leaf body index, or -1
    bool leaf = true;
    std::array<int, 8> child{-1, -1, -1, -1, -1, -1, -1, -1};
};

struct Body
{
    double x, y, z;
};

class Octree
{
  public:
    explicit Octree(const std::vector<Body> &bodies) : bodies_(bodies)
    {
        nodes_.push_back(makeCell(0.5, 0.5, 0.5, 0.5));
        for (std::size_t i = 0; i < bodies.size(); ++i)
            insert(0, static_cast<int>(i), 0);
        computeMass(0);
    }

    const std::vector<BhNode> &nodes() const { return nodes_; }

  private:
    BhNode
    makeCell(double cx, double cy, double cz, double half)
    {
        BhNode n;
        n.cx = cx;
        n.cy = cy;
        n.cz = cz;
        n.half = half;
        n.leaf = true;
        return n;
    }

    int
    octant(const BhNode &n, const Body &b) const
    {
        return (b.x >= n.cx ? 1 : 0) | (b.y >= n.cy ? 2 : 0) |
               (b.z >= n.cz ? 4 : 0);
    }

    void
    insert(int node_idx, int body_idx, int depth)
    {
        BhNode &n = nodes_[node_idx];
        if (n.leaf && n.body < 0) {
            n.body = body_idx;
            return;
        }
        if (n.leaf) {
            // Split: push the resident body down (bounded depth).
            if (depth > 24)
                return;  // coincident points: drop
            const int old_body = n.body;
            n.leaf = false;
            n.body = -1;
            pushDown(node_idx, old_body, depth);
        }
        pushDown(node_idx, body_idx, depth);
    }

    void
    pushDown(int node_idx, int body_idx, int depth)
    {
        const int oct = octant(nodes_[node_idx], bodies_[body_idx]);
        int child = nodes_[node_idx].child[oct];
        if (child < 0) {
            const BhNode &n = nodes_[node_idx];
            const double h = n.half / 2;
            BhNode cell = makeCell(n.cx + ((oct & 1) ? h : -h),
                                   n.cy + ((oct & 2) ? h : -h),
                                   n.cz + ((oct & 4) ? h : -h), h);
            nodes_.push_back(cell);
            child = static_cast<int>(nodes_.size()) - 1;
            nodes_[node_idx].child[oct] = child;
        }
        insert(child, body_idx, depth + 1);
    }

    void
    computeMass(int node_idx)
    {
        BhNode &n = nodes_[node_idx];
        if (n.leaf) {
            if (n.body >= 0) {
                n.mx = bodies_[n.body].x;
                n.my = bodies_[n.body].y;
                n.mz = bodies_[n.body].z;
            }
            return;
        }
        double sx = 0, sy = 0, sz = 0;
        int count = 0;
        for (int c : n.child) {
            if (c < 0)
                continue;
            computeMass(c);
            sx += nodes_[c].mx;
            sy += nodes_[c].my;
            sz += nodes_[c].mz;
            ++count;
        }
        if (count > 0) {
            n.mx = sx / count;
            n.my = sy / count;
            n.mz = sz / count;
        }
    }

    const std::vector<Body> &bodies_;
    std::vector<BhNode> nodes_;
};

} // namespace

void
TreeWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t num_bodies = scaled(2048, 64);
    const std::size_t timesteps = 3;
    const std::size_t node_bytes = 256;  // cell + mass + child data
    const std::size_t body_bytes = 256;  // pos/vel/acc/phi per body
    const double theta = 0.45;  // opening angle: deeper traversals

    std::vector<Body> bodies(num_bodies);
    for (auto &b : bodies)
        b = Body{rng.real(), rng.real(), rng.real()};

    Octree tree(bodies);
    const std::size_t num_nodes = tree.nodes().size();

    const sim::Addr node_base = tb.alloc(node_bytes * num_nodes);
    const sim::Addr body_base = tb.alloc(body_bytes * num_bodies);

    // Visit bodies in tree (Morton-ish) order so consecutive bodies
    // make similar traversals, as the real treecode does.
    std::vector<int> body_order;
    body_order.reserve(num_bodies);
    {
        std::vector<int> stack{0};
        while (!stack.empty()) {
            const int idx = stack.back();
            stack.pop_back();
            const BhNode &n = tree.nodes()[idx];
            if (n.leaf) {
                if (n.body >= 0)
                    body_order.push_back(n.body);
                continue;
            }
            for (int c : n.child) {
                if (c >= 0)
                    stack.push_back(c);
            }
        }
    }

    for (std::size_t step = 0; step < timesteps; ++step) {
        for (int bi : body_order) {
            const Body &b = bodies[static_cast<std::size_t>(bi)];
            tb.compute(18);
            tb.load(body_base + body_bytes * bi);

            // Theta-criterion depth-first force traversal.
            std::vector<int> stack{0};
            while (!stack.empty()) {
                const int idx = stack.back();
                stack.pop_back();
                const BhNode &n = tree.nodes()[idx];
                tb.compute(16);
                tb.load(node_base + node_bytes * idx,
                        /*depends_on_prev=*/true);
                tb.compute(12);
                // Center-of-mass data sits on the cell's second line.
                tb.load(node_base + node_bytes * idx + 64,
                        /*depends_on_prev=*/true);

                const double dx = n.mx - b.x;
                const double dy = n.my - b.y;
                const double dz = n.mz - b.z;
                const double dist =
                    std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-9;
                if (n.leaf || (2 * n.half) / dist < theta) {
                    // Body-body interaction: read the other body's
                    // position from the body array.
                    if (n.leaf && n.body >= 0 && n.body != bi) {
                        tb.compute(8);
                        tb.load(body_base + body_bytes * n.body,
                                /*depends_on_prev=*/true);
                    }
                    tb.compute(30);  // force accumulation
                    continue;
                }
                tb.compute(6);
                for (int c : n.child) {
                    if (c >= 0)
                        stack.push_back(c);
                }
            }
            tb.compute(8);
            tb.store(body_base + body_bytes * bi + 64);
        }
    }
}

} // namespace workloads
