/**
 * @file
 * Workload infrastructure: the nine applications of Table 2.
 *
 * The paper drives its simulator with SPEC/NAS/Olden binaries; this
 * repository substitutes kernels that reproduce the same dynamic
 * memory-reference behaviour from the same algorithmic sources (CRS
 * sparse algebra, FFT transposes, network-simplex pointer chasing,
 * spanning-tree hash walks, dictionary lookups, Barnes-Hut octrees).
 * What matters for correlation prefetching is the *shape* of the L2
 * miss stream -- which patterns repeat, which references depend on the
 * previous load, how much compute separates misses -- and each kernel
 * is built to preserve that shape (see DESIGN.md, substitutions).
 *
 * Each workload deterministically generates its full dynamic trace
 * from a seed, so every prefetching configuration replays an identical
 * reference stream.
 */

#ifndef WORKLOADS_WORKLOAD_HH
#define WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace workloads {

/** Size/length multiplier for a workload instance. */
struct WorkloadParams
{
    std::uint64_t seed = 0xA11CE;
    /** 1.0 = evaluation size; tests use smaller scales. */
    double scale = 1.0;
};

/** Accumulates the dynamic trace of a kernel. */
class TraceBuilder
{
  public:
    /** Allocate a region of the simulated address space. */
    sim::Addr
    alloc(std::size_t bytes, std::size_t align = 64)
    {
        cursor_ = (cursor_ + align - 1) / align * align;
        const sim::Addr base = cursor_;
        cursor_ += bytes;
        return base;
    }

    /**
     * Allocate at a set-conflicting address: the region starts at the
     * next multiple of @p stride_bytes, so consecutive allocations
     * alias the same cache sets (used to reproduce the conflict-heavy
     * behaviour of Sparse/FT).
     */
    sim::Addr
    allocAligned(std::size_t bytes, std::size_t stride_bytes)
    {
        cursor_ = (cursor_ + stride_bytes - 1) / stride_bytes *
                  stride_bytes;
        const sim::Addr base = cursor_;
        cursor_ += bytes;
        return base;
    }

    /** Queue compute work to attach to the next reference. */
    void compute(std::uint32_t ops) { pendingOps_ += ops; }

    void
    load(sim::Addr addr, bool depends_on_prev = false)
    {
        recs_.push_back(cpu::TraceRecord{takeOps(), addr, false,
                                         depends_on_prev});
    }

    void
    store(sim::Addr addr, bool depends_on_prev = false)
    {
        recs_.push_back(cpu::TraceRecord{takeOps(), addr, true,
                                         depends_on_prev});
    }

    /** Flush pending compute as a reference-free record. */
    void
    flushCompute()
    {
        if (pendingOps_ > 0) {
            recs_.push_back(cpu::TraceRecord{takeOps(),
                                             sim::invalidAddr, false,
                                             false});
        }
    }

    std::vector<cpu::TraceRecord> &records() { return recs_; }
    std::size_t footprint() const { return cursor_ - base_; }

  private:
    std::uint32_t
    takeOps()
    {
        const std::uint32_t ops = pendingOps_;
        pendingOps_ = 0;
        return ops;
    }

    static constexpr sim::Addr base_ = 0x1000'0000;
    sim::Addr cursor_ = base_;
    std::uint32_t pendingOps_ = 0;
    std::vector<cpu::TraceRecord> recs_;
};

/**
 * A named, resettable workload: the interface every trace consumer
 * (System, benches, the interleaver) programs against.  Two families
 * implement it: SyntheticWorkload (the nine generated kernels below)
 * and trace-replay workloads streaming a captured corpus from disk
 * (workloads/trace_replay.hh, `makeWorkload("trace:<path>")`).
 */
class Workload : public cpu::TraceSource
{
  public:
    virtual std::string name() const = 0;

    /** Where the records come from: "synthetic" or "trace:<path>".
     *  Recorded in bench metadata to tell corpora runs apart. */
    virtual std::string source() const { return "synthetic"; }

    /** Rewind so the identical trace replays. */
    virtual void reset() = 0;

    /** Bytes of simulated address space the trace touches. */
    virtual std::size_t footprintBytes() = 0;

    /** Total number of records in the trace. */
    virtual std::size_t traceLength() = 0;
};

/** A workload whose trace is generated in memory by a kernel. */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(const WorkloadParams &p) : params_(p) {}

    bool
    next(cpu::TraceRecord &rec) override
    {
        if (!generated_) {
            TraceBuilder tb;
            sim::Rng rng(params_.seed);
            generate(tb, rng);
            tb.flushCompute();
            records_ = std::move(tb.records());
            footprint_ = tb.footprint();
            generated_ = true;
        }
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    std::size_t
    footprintBytes() override
    {
        ensureGenerated();
        return footprint_;
    }

    std::size_t
    traceLength() override
    {
        ensureGenerated();
        return records_.size();
    }

  protected:
    /** Produce the full dynamic trace. */
    virtual void generate(TraceBuilder &tb, sim::Rng &rng) = 0;

    /** Scaled size helper: max(minimum, round(n * scale)). */
    std::size_t
    scaled(std::size_t n, std::size_t minimum = 16) const
    {
        const double v = static_cast<double>(n) * params_.scale;
        const auto r = static_cast<std::size_t>(v);
        return r < minimum ? minimum : r;
    }

    const WorkloadParams &params() const { return params_; }

  private:
    void
    ensureGenerated()
    {
        cpu::TraceRecord rec;
        if (!generated_) {
            const std::size_t save = pos_;
            next(rec);
            pos_ = save;
        }
    }

    WorkloadParams params_;
    bool generated_ = false;
    std::vector<cpu::TraceRecord> records_;
    std::size_t footprint_ = 0;
    std::size_t pos_ = 0;
};

/** The nine applications of Table 2, in the paper's order. */
const std::vector<std::string> &applicationNames();

/**
 * Construct a workload by name ("CG", "Equake", ..., "Tree"), or
 * replay a captured trace corpus via the "trace:<path>" scheme (the
 * WorkloadParams are ignored for replay: the trace carries its own
 * provenance).
 *
 * @throws std::invalid_argument for an unknown name or an empty
 *         trace: path, listing the valid names and schemes.
 * @throws trace::TraceError for an unreadable or corrupt trace file.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &p);

/**
 * The paper's per-application correlation-table rows (Table 2).
 * "trace:<path>" names resolve through the trace's recorded app
 * provenance; traces of unknown provenance (e.g. imported external
 * traces) get a mid-range 128K-row default.
 */
std::uint32_t tableNumRows(const std::string &app_name);

} // namespace workloads

#endif // WORKLOADS_WORKLOAD_HH
