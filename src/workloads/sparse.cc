/**
 * @file
 * SparseBench GMRES with compressed-row storage.
 *
 * Each restart iteration performs CRS SpMV (streaming matrix arrays +
 * an x gather that misses, because x exceeds what the L2 retains under
 * this footprint) followed by Gram-Schmidt orthogonalization against
 * the Krylov basis.  The basis vectors are allocated at 512 KB
 * boundaries, so they alias the same L2 sets: the L2-conflict-heavy
 * behaviour the paper reports for Sparse (many NonPrefMisses remain
 * and prefetches are often Replaced -- Figure 9).
 */

#include "workloads/apps.hh"

namespace workloads {

void
SparseWorkload::generate(TraceBuilder &tb, sim::Rng &rng)
{
    const std::size_t n = scaled(16384, 512);
    const std::size_t nnz_per_row = 10;
    const std::size_t nnz = n * nnz_per_row;
    const std::size_t basis = 5;     // Krylov vectors kept
    const std::size_t restarts = 2;

    // The gathered vector is much larger than the L2, so the x gather
    // produces recurring irregular misses (CRS matrices in
    // SparseBench are rectangular in effect: row support spans a wide
    // column space).
    const std::size_t m = n * 3;
    const sim::Addr vals = tb.alloc(8 * nnz);
    const sim::Addr colidx = tb.alloc(4 * nnz);
    const sim::Addr x = tb.alloc(8 * m);
    // Conflict-prone Krylov basis: each vector starts on a 512 KB
    // boundary, aliasing the same L2 sets.
    std::vector<sim::Addr> krylov(basis);
    for (auto &v : krylov)
        v = tb.allocAligned(8 * n, 512 * 1024);

    std::vector<std::uint32_t> cols(nnz);
    for (auto &c : cols)
        c = static_cast<std::uint32_t>(rng.below(m));

    for (std::size_t restart = 0; restart < restarts; ++restart) {
        for (std::size_t k = 0; k < basis; ++k) {
            // w = A * v_k  (streaming matrix + scattered x gather)
            for (std::size_t j = 0; j < nnz; ++j) {
                if (j % 2 == 0) {
                    tb.compute(30);
                    tb.load(vals + 8 * j);
                }
                if (j % 4 == 0) {
                    tb.compute(15);
                    tb.load(colidx + 4 * j);
                }
                tb.compute(21);
                tb.load(x + 8 * cols[j]);
            }
            // Orthogonalize w against v_0..v_k.  The element loop is
            // outermost (as in fused modified Gram-Schmidt), so every
            // index i touches k+2 vectors that alias the same cache
            // sets: the per-set pressure exceeds the associativity,
            // producing the recurring conflict misses -- and the
            // eviction of prefetched lines before use -- that limit
            // Sparse's speedup in the paper (Fig. 9).
            for (std::size_t i = 0; i < n; i += 4) {
                for (std::size_t b = 0; b <= k; ++b) {
                    tb.compute(14);
                    tb.load(krylov[b] + 8 * i);
                }
                tb.compute(10);
                tb.store(krylov[k] + 8 * i);
            }
        }
    }
}

} // namespace workloads
