#include "core/adaptive.hh"

#include <algorithm>

namespace core {

namespace {

bool
covers(const LevelPredictions &preds, sim::Addr miss)
{
    if (preds.empty())
        return false;
    const auto &level1 = preds.front();
    return std::find(level1.begin(), level1.end(), miss) != level1.end();
}

} // namespace

void
AdaptivePrefetcher::scorePrediction(sim::Addr miss_line)
{
    if (havePred_) {
        if (covers(seqPred_, miss_line))
            ++seqHits_;
        if (covers(replPred_, miss_line))
            ++replHits_;
        ++epochCount_;
    }
    // Snapshot both components' level-1 predictions for the next miss,
    // regardless of mode, so disabled components can win back their
    // place.
    seq_->predict(miss_line, seqPred_);
    repl_->predict(miss_line, replPred_);
    havePred_ = true;
}

void
AdaptivePrefetcher::maybeSwitch()
{
    if (epochCount_ < epochMisses_)
        return;
    const double seq_rate =
        static_cast<double>(seqHits_) / static_cast<double>(epochCount_);
    const double repl_rate = static_cast<double>(replHits_) /
                             static_cast<double>(epochCount_);
    Mode next = Mode::Both;
    if (seq_rate >= 0.85 && seq_rate >= repl_rate)
        next = Mode::SeqOnly;
    else if (seq_rate < 0.10)
        next = Mode::ReplOnly;
    if (next != mode_) {
        mode_ = next;
        ++modeSwitches_;
    }
    epochCount_ = 0;
    seqHits_ = 0;
    replHits_ = 0;
}

void
AdaptivePrefetcher::prefetchStep(sim::Addr miss_line,
                                 std::vector<sim::Addr> &out,
                                 CostTracker &cost)
{
    if (mode_ != Mode::ReplOnly)
        seq_->prefetchStep(miss_line, out, cost);
    if (mode_ != Mode::SeqOnly)
        repl_->prefetchStep(miss_line, out, cost);
}

void
AdaptivePrefetcher::learnStep(sim::Addr miss_line, CostTracker &cost)
{
    scorePrediction(miss_line);
    // Both components keep learning in every mode, so that the table
    // stays warm across phase changes.
    seq_->learnStep(miss_line, cost);
    NullCostTracker free;
    // Advance the stream registers even when Seq is disabled: its
    // bookkeeping is free for us but would be stale otherwise.
    if (mode_ == Mode::ReplOnly) {
        std::vector<sim::Addr> discard;
        seq_->prefetchStep(miss_line, discard, free);
    }
    repl_->learnStep(miss_line, cost);
    maybeSwitch();
}

void
AdaptivePrefetcher::predict(sim::Addr miss_line,
                            LevelPredictions &out) const
{
    out.assign(levels(), {});
    LevelPredictions part;
    if (mode_ != Mode::ReplOnly) {
        seq_->predict(miss_line, part);
        for (std::size_t lvl = 0; lvl < part.size() && lvl < out.size();
             ++lvl)
            out[lvl].insert(out[lvl].end(), part[lvl].begin(),
                            part[lvl].end());
    }
    if (mode_ != Mode::SeqOnly) {
        repl_->predict(miss_line, part);
        for (std::size_t lvl = 0; lvl < part.size() && lvl < out.size();
             ++lvl)
            out[lvl].insert(out[lvl].end(), part[lvl].begin(),
                            part[lvl].end());
    }
}

} // namespace core
