/**
 * @file
 * Conflict-aware prefetch customization (the future work announced in
 * Section 7: "customization for cache conflict elimination should
 * improve Sparse and Tree, the applications with the smallest
 * speedups").
 *
 * The wrapper runs any inner algorithm unchanged but watches the L2
 * set index of every observed miss.  Sets that miss far more often
 * than average are conflict hot spots: lines pushed into them are
 * likely to evict live conflict victims (creating new misses) or be
 * evicted before use (Replaced).  Prefetches targeting such sets are
 * suppressed.  The pressure map is a small software array that decays
 * each epoch, so phase changes are tracked.
 */

#ifndef CORE_CONFLICT_AWARE_HH
#define CORE_CONFLICT_AWARE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/correlation_prefetcher.hh"

namespace core {

/** Suppresses prefetches into conflict-saturated L2 sets. */
class ConflictAwarePrefetcher : public CorrelationPrefetcher
{
  public:
    /**
     * @param inner the algorithm whose prefetches are filtered
     * @param l2_sets number of L2 sets
     * @param l2_line_bytes L2 line size
     * @param hot_factor sets with more than hot_factor times the
     *        average per-set miss pressure are considered saturated
     * @param epoch_misses decay period of the pressure map
     */
    ConflictAwarePrefetcher(std::unique_ptr<CorrelationPrefetcher> inner,
                            std::uint32_t l2_sets,
                            std::uint32_t l2_line_bytes,
                            double hot_factor = 4.0,
                            std::uint32_t epoch_misses = 8192)
        : inner_(std::move(inner)), lineBytes_(l2_line_bytes),
          hotFactor_(hot_factor), epochMisses_(epoch_misses),
          pressure_(l2_sets, 0)
    {
    }

    std::string name() const override { return inner_->name() + "+CA"; }
    std::uint32_t levels() const override { return inner_->levels(); }

    void
    prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                 CostTracker &cost) override
    {
        scratch_.clear();
        inner_->prefetchStep(miss_line, scratch_, cost);
        const double avg =
            epochTotal_ > 0
                ? static_cast<double>(epochTotal_) /
                      static_cast<double>(pressure_.size())
                : 0.0;
        for (sim::Addr addr : scratch_) {
            cost.instr(2);  // pressure-map lookup
            if (avg > 0.25 &&
                static_cast<double>(pressure_[setOf(addr)]) >
                    hotFactor_ * avg) {
                ++suppressed_;
                continue;
            }
            out.push_back(addr);
        }
    }

    void
    learnStep(sim::Addr miss_line, CostTracker &cost) override
    {
        cost.instr(3);  // pressure-map bump
        ++pressure_[setOf(miss_line)];
        if (++epochTotal_ >= epochMisses_) {
            // Epoch decay: halve everything (a linear sweep of a
            // small array, charged as table work).
            cost.instr(static_cast<std::uint32_t>(pressure_.size() /
                                                  16));
            std::uint64_t total = 0;
            for (auto &p : pressure_) {
                p /= 2;
                total += p;
            }
            epochTotal_ = total;
        }
        inner_->learnStep(miss_line, cost);
    }

    void
    predict(sim::Addr miss_line, LevelPredictions &out) const override
    {
        inner_->predict(miss_line, out);
    }

    std::size_t
    tableBytes() const override
    {
        return inner_->tableBytes() + pressure_.size() * 2;
    }

    std::uint64_t insertions() const override
    {
        return inner_->insertions();
    }
    std::uint64_t replacements() const override
    {
        return inner_->replacements();
    }

    void
    onPageRemap(sim::Addr old_page, sim::Addr new_page,
                std::uint32_t page_bytes, CostTracker &cost) override
    {
        inner_->onPageRemap(old_page, new_page, page_bytes, cost);
    }

    void
    checkInvariants(check::CheckContext &ctx) const override
    {
        inner_->checkInvariants(ctx);
    }

    /** Prefetches dropped for targeting saturated sets. */
    std::uint64_t suppressed() const { return suppressed_; }

  private:
    std::size_t
    setOf(sim::Addr addr) const
    {
        return static_cast<std::size_t>((addr / lineBytes_) %
                                        pressure_.size());
    }

    std::unique_ptr<CorrelationPrefetcher> inner_;
    std::uint32_t lineBytes_;
    double hotFactor_;
    std::uint32_t epochMisses_;
    std::vector<std::uint32_t> pressure_;
    std::uint64_t epochTotal_ = 0;
    std::uint64_t suppressed_ = 0;
    std::vector<sim::Addr> scratch_;
};

} // namespace core

#endif // CORE_CONFLICT_AWARE_HH
