#include "core/profiler.hh"

#include <algorithm>

namespace core {

void
ProfilingUlmt::learnStep(sim::Addr miss_line, CostTracker &cost)
{
    cost.instr(12);  // histogram bumps
    ++misses_;
    ++pageMisses_[miss_line / pageBytes_];
    ++setMisses_[static_cast<std::uint32_t>(
        (miss_line / l2LineBytes_) % l2Sets_)];
    ++lineSeen_[miss_line];

    if (lastLine_ != sim::invalidAddr) {
        const sim::Addr prev = lastLine_ / l2LineBytes_;
        const sim::Addr cur = miss_line / l2LineBytes_;
        if (cur == prev + 1 || prev == cur + 1)
            ++sequential_;
    }
    lastLine_ = miss_line;
}

MissProfile
ProfilingUlmt::report(std::size_t top_n) const
{
    MissProfile p;
    p.misses = misses_;
    p.distinctLines = lineSeen_.size();
    p.sequentialFraction =
        misses_ > 1 ? static_cast<double>(sequential_) /
                          static_cast<double>(misses_ - 1)
                    : 0.0;

    p.hottestPages.assign(pageMisses_.begin(), pageMisses_.end());
    std::sort(p.hottestPages.begin(), p.hottestPages.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (p.hottestPages.size() > top_n)
        p.hottestPages.resize(top_n);

    p.hottestSets.assign(setMisses_.begin(), setMisses_.end());
    std::sort(p.hottestSets.begin(), p.hottestSets.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (p.hottestSets.size() > top_n)
        p.hottestSets.resize(top_n);
    return p;
}

} // namespace core
