#include "core/base_chain.hh"

namespace core {

namespace {

/** Translate an address from the old page to the new one. */
sim::Addr
translate(sim::Addr addr, sim::Addr old_page, sim::Addr new_page,
          std::uint32_t page_bytes)
{
    if (addr / page_bytes == old_page)
        return new_page * page_bytes + addr % page_bytes;
    return addr;
}

} // namespace

void
remapPairTable(PairTable &table, sim::Addr old_page, sim::Addr new_page,
               std::uint32_t page_bytes, std::uint32_t line_bytes,
               CostTracker &cost)
{
    // The lines of one page map to consecutive sets, so the handler
    // is a linear sweep over a contiguous slice of the table, not N
    // independent hash probes.  Charge the sweep as a packed tag
    // compare (SIMD-style) and pay the full probe + rewrite cost only
    // for rows that actually hold the moved page -- otherwise a 2 MB
    // relocation costs ~32 K charged probes and at high churn the
    // ULMT does nothing but relocate.
    const std::uint32_t lines = page_bytes / line_bytes;
    cost.instr(lines < cost::remapSweepTagsPerCycle
                   ? 1u
                   : lines / cost::remapSweepTagsPerCycle);
    for (std::uint32_t off = 0; off < page_bytes; off += line_bytes) {
        const sim::Addr old_line = old_page * page_bytes + off;
        if (!table.findNoCost(old_line))
            continue;
        PairRow *row = table.find(old_line, cost);
        if (!row)
            continue;
        PairRow copy = *row;
        // The row's simulated bytes move: any memory-side table cache
        // must drop (and flush) its copy or serve stale rows.
        cost.memInvalidate(table.rowAddr(*row), table.rowBytes());
        table.invalidate(old_line);

        const sim::Addr new_line = new_page * page_bytes + off;
        PairRow *dest = table.findOrAlloc(new_line, cost);
        dest->succ.clear();
        for (sim::Addr s : copy.succ) {
            dest->succ.push_back(
                translate(s, old_page, new_page, page_bytes));
        }
        cost.memWrite(table.rowAddr(*dest), 4 + 4 * static_cast<
                          std::uint32_t>(dest->succ.size()));
    }
}

void
BasePrefetcher::onPageRemap(sim::Addr old_page, sim::Addr new_page,
                            std::uint32_t page_bytes, CostTracker &cost)
{
    remapPairTable(table_, old_page, new_page, page_bytes, 64, cost);
}

void
ChainPrefetcher::onPageRemap(sim::Addr old_page, sim::Addr new_page,
                             std::uint32_t page_bytes, CostTracker &cost)
{
    remapPairTable(table_, old_page, new_page, page_bytes, 64, cost);
}

} // namespace core
