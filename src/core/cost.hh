/**
 * @file
 * Cost tracking for ULMT algorithm execution.
 *
 * The correlation tables are real data structures; their operations
 * report instruction counts and simulated table-memory touches through
 * this interface.  The ULMT engine supplies a tracker that runs table
 * touches through the memory processor's modeled L1 cache and charges
 * DRAM latency for misses; predictability studies use the null tracker.
 *
 * Instruction costs reflect the paper's hand-optimized C ULMTs
 * (branches removed, parameters hardwired, no floating point).
 */

#ifndef CORE_COST_HH
#define CORE_COST_HH

#include <cstdint>

#include "sim/types.hh"

namespace core {

/** Receiver for the cost of ULMT operations. */
class CostTracker
{
  public:
    virtual ~CostTracker() = default;

    /** @p n instructions of pure computation. */
    virtual void instr(std::uint32_t n) = 0;

    /** Read @p bytes of table state at simulated address @p addr. */
    virtual void memRead(sim::Addr addr, std::uint32_t bytes) = 0;

    /** Write @p bytes of table state at simulated address @p addr. */
    virtual void memWrite(sim::Addr addr, std::uint32_t bytes) = 0;

    /**
     * @p bytes of table state at @p addr stopped existing (a page
     * remap relocated the row): memory-side caches of the table must
     * drop their copies or they will serve stale rows.  Free of
     * engine time -- the sweep's cost is charged through instr() /
     * memWrite() -- so implementations without such a cache (the
     * default) leave timing untouched.
     */
    virtual void memInvalidate(sim::Addr, std::uint32_t) {}
};

/** Discards all cost information (functional-only runs). */
class NullCostTracker : public CostTracker
{
  public:
    void instr(std::uint32_t) override {}
    void memRead(sim::Addr, std::uint32_t) override {}
    void memWrite(sim::Addr, std::uint32_t) override {}
};

/** Instruction-cost constants for table operations. */
namespace cost {

/** Hash + set-index computation. */
inline constexpr std::uint32_t hashRow = 3;
/** Tag compare per probed way. */
inline constexpr std::uint32_t tagProbe = 2;
/** Insert an address at the MRU position of a successor list. */
inline constexpr std::uint32_t succInsert = 3;
/** Shift one successor entry during an MRU reorder. */
inline constexpr std::uint32_t succShift = 1;
/** Emit one prefetch address to queue 3. */
inline constexpr std::uint32_t emitPrefetch = 2;
/** Allocate / re-tag a row. */
inline constexpr std::uint32_t rowAlloc = 4;
/** Fixed per-miss overhead of the engine loop (dequeue, dispatch). */
inline constexpr std::uint32_t loopOverhead = 6;
/** Stream-register bookkeeping of the software Seq prefetcher. */
inline constexpr std::uint32_t seqCheck = 4;
/** Tags compared per cycle by the vectorized page-relocation sweep
 *  (the lines of one page occupy consecutive sets, so the handler
 *  streams packed tags instead of hashing each line). */
inline constexpr std::uint32_t remapSweepTagsPerCycle = 8;

} // namespace cost

} // namespace core

#endif // CORE_COST_HH
