/**
 * @file
 * Parameters of the ULMT prefetching algorithms (Table 4 defaults).
 */

#ifndef CORE_PARAMS_HH
#define CORE_PARAMS_HH

#include <cstdint>
#include <string>

namespace core {

/** Pair-based correlation-table parameters (Section 2.2 / 3.3). */
struct CorrelationParams
{
    /** Maximum number of misses the table stores predictions for. */
    std::uint32_t numRows = 128 * 1024;
    /** Immediate successors kept per miss (per level). */
    std::uint32_t numSucc = 2;
    /** Table associativity. */
    std::uint32_t assoc = 2;
    /** Levels of successors stored / prefetched (Chain, Replicated). */
    std::uint32_t numLevels = 3;
    /** Simulated base address of the table in main memory. */
    std::uint64_t tableBase = 0x40'0000'0000ULL;
};

/** Table 4: Base uses NumSucc=4, Assoc=4. */
inline CorrelationParams
baseDefaults(std::uint32_t num_rows)
{
    CorrelationParams p;
    p.numRows = num_rows;
    p.numSucc = 4;
    p.assoc = 4;
    p.numLevels = 1;
    return p;
}

/** Table 4: Chain/Repl use NumSucc=2, Assoc=2, NumLevels=3. */
inline CorrelationParams
chainReplDefaults(std::uint32_t num_rows, std::uint32_t num_levels = 3)
{
    CorrelationParams p;
    p.numRows = num_rows;
    p.numSucc = 2;
    p.assoc = 2;
    p.numLevels = num_levels;
    return p;
}

/** Software sequential prefetcher (Seq1 / Seq4) parameters. */
struct SeqParams
{
    std::uint32_t numSeq = 4;    //!< concurrent streams
    std::uint32_t numPref = 6;   //!< lines prefetched per trigger
    std::uint32_t lineBytes = 64;
    std::uint32_t historyDepth = 16;
    /**
     * How far past the observed miss the stream runs (0 = numPref).
     * A customization knob: the CG ULMT (Seq1+Repl, Verbose) uses a
     * deeper lookahead so its pushes land in the L2 before the
     * processor-side prefetcher asks for them (Section 5.2).
     */
    std::uint32_t lookaheadLines = 0;

    std::uint32_t
    lookahead() const
    {
        return lookaheadLines ? lookaheadLines : numPref;
    }
};

} // namespace core

#endif // CORE_PARAMS_HH
