/**
 * @file
 * Software sequential prefetching in the ULMT (Seq1 / Seq4, Table 4).
 *
 * Section 3.3.3 proposes adding sequential-prefetching support to the
 * ULMT algorithms; Seq1 and Seq4 are the 1-stream and 4-stream
 * variants evaluated in Figures 5 and 7, and Seq1 is composed with
 * Replicated in the CG customization (Table 5).  Unlike the hardware
 * Conven4 prefetcher (which watches L1 misses), these observe the L2
 * miss stream arriving at the memory processor.
 *
 * The state is a handful of stream registers that fit in the memory
 * processor's cache, so the algorithm's cost is almost pure
 * computation: very low response time for sequential patterns.
 */

#ifndef CORE_SEQ_PREFETCHER_HH
#define CORE_SEQ_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/correlation_prefetcher.hh"
#include "core/params.hh"

namespace core {

/** ULMT sequential prefetcher with NumSeq stream registers. */
class SeqPrefetcher : public CorrelationPrefetcher
{
  public:
    explicit SeqPrefetcher(const SeqParams &p) : p_(p)
    {
        streams_.resize(p_.numSeq);
    }

    std::string name() const override
    {
        return "Seq" + std::to_string(p_.numSeq);
    }

    std::uint32_t levels() const override { return p_.numPref; }

    void prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                      CostTracker &cost) override;
    void learnStep(sim::Addr miss_line, CostTracker &cost) override;
    void predict(sim::Addr miss_line,
                 LevelPredictions &out) const override;

    std::uint64_t streamsDetected() const { return streamsDetected_; }

    /** Serialize stream registers, miss history and counters. */
    void
    saveState(ckpt::StateWriter &w) const override
    {
        w.u64(streams_.size());
        for (const Stream &s : streams_) {
            w.b(s.valid);
            w.u64(s.nextExpected);
            w.u64(s.lastMiss);
            w.i64(s.stride);
            w.u64(s.stamp);
        }
        w.u64(history_.size());
        for (sim::Addr line : history_)
            w.u64(line);
        w.u64(streamsDetected_);
        w.u64(stampCounter_);
    }

    void
    restoreState(ckpt::StateReader &r) override
    {
        if (r.u64() != streams_.size()) {
            throw ckpt::CkptError(
                "seq-prefetcher register count in checkpoint does not "
                "match the configuration");
        }
        for (Stream &s : streams_) {
            s.valid = r.b();
            s.nextExpected = r.u64();
            s.lastMiss = r.u64();
            s.stride = r.i64();
            s.stamp = r.u64();
        }
        history_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            history_.push_back(r.u64());
        streamsDetected_ = r.u64();
        stampCounter_ = r.u64();
    }

  private:
    struct Stream
    {
        bool valid = false;
        sim::Addr nextExpected = 0;  //!< line index
        sim::Addr lastMiss = 0;      //!< last observed miss on stream
        std::int64_t stride = 0;     //!< +1 or -1, in lines
        std::uint64_t stamp = 0;
    };

    sim::Addr lineOf(sim::Addr addr) const { return addr / p_.lineBytes; }

    /** Stream whose window covers @p line, or nullptr. */
    Stream *match(sim::Addr line);
    const Stream *match(sim::Addr line) const;
    Stream *allocStream();
    bool inHistory(sim::Addr line) const;
    void emitAhead(Stream &s, sim::Addr from_line,
                   std::vector<sim::Addr> &out, CostTracker &cost);

    SeqParams p_;
    std::vector<Stream> streams_;
    std::deque<sim::Addr> history_;
    std::uint64_t streamsDetected_ = 0;
    std::uint64_t stampCounter_ = 0;
};

} // namespace core

#endif // CORE_SEQ_PREFETCHER_HH
