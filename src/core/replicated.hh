/**
 * @file
 * The Replicated correlation prefetching algorithm (Fig. 4-c) -- the
 * paper's new table organization designed for a ULMT.
 *
 * Each row stores the miss tag plus NumLevels successor lists of
 * NumSucc entries each: the true MRU successors at level 1 (immediate
 * successors), level 2 (successors of successors), and so on.  The
 * algorithm keeps NumLevels trailing row pointers (to the rows of the
 * last, second-last, ... misses); learning inserts the new miss into
 * the right level of each pointed-to row without any associative
 * search, and prefetching reads a single row and issues everything in
 * it.  This yields far-ahead prefetching with true-MRU accuracy at
 * every level and a low response time, at the cost of replicated
 * storage -- cheap, because the table lives in main memory.
 */

#ifndef CORE_REPLICATED_HH
#define CORE_REPLICATED_HH

#include <cstdint>
#include <vector>

#include "core/correlation_prefetcher.hh"
#include "core/params.hh"

namespace core {

/** One row of the replicated table. */
struct ReplRow
{
    sim::Addr tag = sim::invalidAddr;
    bool valid = false;
    std::uint64_t lruStamp = 0;
    /** levels[l] = MRU-ordered successors at level l+1. */
    std::vector<std::vector<sim::Addr>> levels;
};

/** The Replicated algorithm. */
class ReplicatedPrefetcher : public CorrelationPrefetcher
{
  public:
    explicit ReplicatedPrefetcher(const CorrelationParams &p);

    std::string name() const override { return "Repl"; }
    std::uint32_t levels() const override { return params_.numLevels; }

    void prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                      CostTracker &cost) override;
    void learnStep(sim::Addr miss_line, CostTracker &cost) override;
    void predict(sim::Addr miss_line,
                 LevelPredictions &out) const override;

    std::size_t tableBytes() const override
    {
        return static_cast<std::size_t>(params_.numRows) * rowBytes_;
    }
    std::uint64_t insertions() const override { return insertions_; }
    std::uint64_t replacements() const override { return replacements_; }

    void onPageRemap(sim::Addr old_page, sim::Addr new_page,
                     std::uint32_t page_bytes,
                     CostTracker &cost) override;

    /** Simulated row size in bytes (28 B for NumLevels=3, NumSucc=2). */
    std::uint32_t rowBytes() const { return rowBytes_; }

    /** Serialize valid rows (sparse), the trailing row pointers and
     *  the LRU/sizing counters. */
    void saveState(ckpt::StateWriter &w) const override;
    void restoreState(ckpt::StateReader &r) override;

    /**
     * Invariants: valid rows hash to the set they sit in with unique
     * tags, every level list is bounded by NumSucc with no repeated
     * address, LRU stamps never exceed the counter, and each trailing
     * pointer indexes a real row (staleness is legal -- the tag check
     * skips it -- but an out-of-range index never is).
     */
    void checkInvariants(check::CheckContext &ctx) const override;

  private:
    friend struct check::CheckTestPeer;

    /** A trailing pointer: row index + the tag it should still hold. */
    struct RowPtr
    {
        std::uint32_t index = 0;
        sim::Addr expectedTag = sim::invalidAddr;
        bool valid = false;
    };

    std::uint32_t setIndex(sim::Addr miss_line) const;
    sim::Addr rowAddr(std::uint32_t index) const;
    ReplRow *find(sim::Addr miss_line, CostTracker &cost);
    const ReplRow *findNoCost(sim::Addr miss_line) const;
    std::uint32_t alloc(sim::Addr miss_line, CostTracker &cost);
    void insertAtLevel(ReplRow &row, std::uint32_t level,
                       sim::Addr succ_line, CostTracker &cost);

    CorrelationParams params_;
    std::uint32_t rowBytes_;
    std::uint32_t rowStride_ = 0;  //!< line-aligned pitch in memory
    std::uint32_t numSets_;
    std::vector<ReplRow> rows_;
    /** ptrs_[0] = row of the last miss, ptrs_[1] = second last, ... */
    std::vector<RowPtr> ptrs_;
    std::uint64_t stampCounter_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t replacements_ = 0;
};

} // namespace core

#endif // CORE_REPLICATED_HH
