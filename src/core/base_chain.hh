/**
 * @file
 * The Base and Chain correlation prefetching algorithms (Fig. 4 a, b).
 *
 * Base is the conventional algorithm of Joseph & Grunwald: on a miss
 * it prefetches the NumSucc immediate successors recorded for that
 * address (one level only).  Chain uses the same table and learning
 * but, in the Prefetching step, follows the MRU successor chain
 * NumLevels deep, issuing the successors found along the way.  Chain
 * prefetches further ahead than Base but is less accurate (it only
 * sees successors along the MRU path, not the true MRU set of each
 * level) and has a higher response time (NumLevels associative
 * searches per observed miss).
 */

#ifndef CORE_BASE_CHAIN_HH
#define CORE_BASE_CHAIN_HH

#include <memory>

#include "core/correlation_prefetcher.hh"
#include "core/pair_table.hh"

namespace core {

/** Learning shared by Base and Chain (Fig. 4-(i)/(ii)). */
class PairLearner
{
  public:
    explicit PairLearner(PairTable &table) : table_(table) {}

    /** Record @p miss_line as the MRU successor of the last miss. */
    void
    learn(sim::Addr miss_line, CostTracker &cost)
    {
        if (lastValid_) {
            PairRow *row = table_.findOrAlloc(lastMiss_, cost);
            table_.insertSuccessor(*row, miss_line, cost);
        }
        table_.findOrAlloc(miss_line, cost);
        lastMiss_ = miss_line;
        lastValid_ = true;
    }

    /** The last-miss context is part of the learning state: without it
     *  a restored run would miss one pair link. */
    void
    saveState(ckpt::StateWriter &w) const
    {
        w.u64(lastMiss_);
        w.b(lastValid_);
    }

    void
    restoreState(ckpt::StateReader &r)
    {
        lastMiss_ = r.u64();
        lastValid_ = r.b();
    }

    /** Last-miss context (reference-model resync). */
    sim::Addr lastMiss() const { return lastMiss_; }
    bool lastValid() const { return lastValid_; }

  private:
    PairTable &table_;
    sim::Addr lastMiss_ = sim::invalidAddr;
    bool lastValid_ = false;
};

/** The Base algorithm. */
class BasePrefetcher : public CorrelationPrefetcher
{
  public:
    /** Paper accounting: a Base row is 20 bytes (tag + 4 successors). */
    explicit BasePrefetcher(const CorrelationParams &p)
        : table_(p, 4 + p.numSucc * 4), learner_(table_)
    {
    }

    std::string name() const override { return "Base"; }
    std::uint32_t levels() const override { return 1; }

    void
    prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                 CostTracker &cost) override
    {
        if (PairRow *row = table_.find(miss_line, cost)) {
            for (sim::Addr s : row->succ) {
                cost.instr(cost::emitPrefetch);
                out.push_back(s);
            }
        }
    }

    void
    learnStep(sim::Addr miss_line, CostTracker &cost) override
    {
        learner_.learn(miss_line, cost);
    }

    void
    predict(sim::Addr miss_line, LevelPredictions &out) const override
    {
        out.assign(1, {});
        if (const PairRow *row = table_.findNoCost(miss_line))
            out[0] = row->succ;
    }

    std::size_t tableBytes() const override { return table_.tableBytes(); }
    std::uint64_t insertions() const override
    {
        return table_.insertions();
    }
    std::uint64_t replacements() const override
    {
        return table_.replacements();
    }

    void onPageRemap(sim::Addr old_page, sim::Addr new_page,
                     std::uint32_t page_bytes, CostTracker &cost) override;

    void
    saveState(ckpt::StateWriter &w) const override
    {
        table_.saveState(w);
        learner_.saveState(w);
    }

    void
    restoreState(ckpt::StateReader &r) override
    {
        table_.restoreState(r);
        learner_.restoreState(r);
    }

    void
    checkInvariants(check::CheckContext &ctx) const override
    {
        table_.checkInvariants(ctx, "table.Base");
    }

    PairTable &table() { return table_; }
    const PairTable &table() const { return table_; }
    const PairLearner &learner() const { return learner_; }

  private:
    PairTable table_;
    PairLearner learner_;
};

/** The Chain algorithm. */
class ChainPrefetcher : public CorrelationPrefetcher
{
  public:
    /** Paper accounting: a Chain row is 12 bytes (tag + 2 successors). */
    explicit ChainPrefetcher(const CorrelationParams &p)
        : table_(p, 4 + p.numSucc * 4), learner_(table_),
          numLevels_(p.numLevels)
    {
    }

    std::string name() const override { return "Chain"; }
    std::uint32_t levels() const override { return numLevels_; }

    void
    prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                 CostTracker &cost) override
    {
        sim::Addr cur = miss_line;
        for (std::uint32_t lvl = 0; lvl < numLevels_; ++lvl) {
            PairRow *row = table_.find(cur, cost);
            if (!row || row->succ.empty())
                break;
            for (sim::Addr s : row->succ) {
                cost.instr(cost::emitPrefetch);
                out.push_back(s);
            }
            cur = row->succ.front();  // follow the MRU link
        }
    }

    void
    learnStep(sim::Addr miss_line, CostTracker &cost) override
    {
        learner_.learn(miss_line, cost);
    }

    void
    predict(sim::Addr miss_line, LevelPredictions &out) const override
    {
        out.assign(numLevels_, {});
        sim::Addr cur = miss_line;
        for (std::uint32_t lvl = 0; lvl < numLevels_; ++lvl) {
            const PairRow *row = table_.findNoCost(cur);
            if (!row || row->succ.empty())
                break;
            out[lvl] = row->succ;
            cur = row->succ.front();
        }
    }

    std::size_t tableBytes() const override { return table_.tableBytes(); }
    std::uint64_t insertions() const override
    {
        return table_.insertions();
    }
    std::uint64_t replacements() const override
    {
        return table_.replacements();
    }

    void onPageRemap(sim::Addr old_page, sim::Addr new_page,
                     std::uint32_t page_bytes, CostTracker &cost) override;

    void
    saveState(ckpt::StateWriter &w) const override
    {
        table_.saveState(w);
        learner_.saveState(w);
    }

    void
    restoreState(ckpt::StateReader &r) override
    {
        table_.restoreState(r);
        learner_.restoreState(r);
    }

    void
    checkInvariants(check::CheckContext &ctx) const override
    {
        table_.checkInvariants(ctx, "table.Chain");
    }

    PairTable &table() { return table_; }
    const PairTable &table() const { return table_; }
    const PairLearner &learner() const { return learner_; }

  private:
    PairTable table_;
    PairLearner learner_;
    std::uint32_t numLevels_;
};

/**
 * Relocate the rows of a remapped page (Section 3.4): for each line of
 * the old page whose row exists, move the row to the new tag and
 * rewrite any successors within the row that point into the old page.
 */
void remapPairTable(PairTable &table, sim::Addr old_page,
                    sim::Addr new_page, std::uint32_t page_bytes,
                    std::uint32_t line_bytes, CostTracker &cost);

} // namespace core

#endif // CORE_BASE_CHAIN_HH
