/**
 * @file
 * Miss-stream predictability evaluation (Figure 5).
 *
 * Replays a recorded L2 miss-address stream through an algorithm
 * without performing any prefetching, and measures, per successor
 * level k, the fraction of misses m(i+k) that appear in the level-k
 * successor set the algorithm predicted when it observed m(i).
 */

#ifndef CORE_PREDICTABILITY_HH
#define CORE_PREDICTABILITY_HH

#include <cstdint>
#include <vector>

#include "core/correlation_prefetcher.hh"

namespace core {

/** Per-level prediction accuracy of one algorithm on one stream. */
struct PredictabilityResult
{
    /** accuracy[k-1] = fraction of misses predicted at level k. */
    std::vector<double> accuracy;
    std::uint64_t misses = 0;
};

/**
 * Run the observe-only loop over @p miss_stream.
 *
 * @param algo   the algorithm under test (consumed: it learns)
 * @param miss_stream L2-line-aligned miss addresses in order
 * @param levels how many successor levels to score ((<=3 in the paper)
 */
PredictabilityResult
evaluatePredictability(CorrelationPrefetcher &algo,
                       const std::vector<sim::Addr> &miss_stream,
                       std::uint32_t levels);

} // namespace core

#endif // CORE_PREDICTABILITY_HH
