#include "core/pair_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace core {

namespace {

/** Cache-friendly row pitch: rows never straddle a 32 B line. */
std::uint32_t
strideFor(std::uint32_t row_bytes)
{
    std::uint32_t stride = 16;
    while (stride < row_bytes)
        stride *= 2;
    return stride;
}

} // namespace

PairTable::PairTable(const CorrelationParams &p, std::uint32_t row_bytes)
    : params_(p), rowBytes_(row_bytes), rowStride_(strideFor(row_bytes))
{
    SIM_ASSERT(p.assoc > 0 && p.numRows % p.assoc == 0,
               "numRows must be a multiple of assoc");
    numSets_ = p.numRows / p.assoc;
    rows_.resize(p.numRows);
}

std::uint32_t
PairTable::setIndex(sim::Addr miss_line) const
{
    // Trivial hash: low bits of the line address (Section 4).
    return static_cast<std::uint32_t>((miss_line / 64) % numSets_);
}

sim::Addr
PairTable::rowAddr(const PairRow &row) const
{
    const std::size_t idx = static_cast<std::size_t>(&row - rows_.data());
    return params_.tableBase + idx * rowStride_;
}

PairRow *
PairTable::find(sim::Addr miss_line, CostTracker &cost)
{
    cost.instr(cost::hashRow);
    const std::uint32_t set = setIndex(miss_line);
    PairRow *base = &rows_[static_cast<std::size_t>(set) * params_.assoc];
    // Rows are line-aligned, so probing a way pulls its tag and body
    // in one access; the search stops at the first match.
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        PairRow &row = base[w];
        cost.instr(cost::tagProbe);
        cost.memRead(rowAddr(row), rowBytes_);
        if (row.valid && row.tag == miss_line) {
            row.lruStamp = ++stampCounter_;
            return &row;
        }
    }
    return nullptr;
}

const PairRow *
PairTable::findNoCost(sim::Addr miss_line) const
{
    const std::uint32_t set = setIndex(miss_line);
    const PairRow *base =
        &rows_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == miss_line)
            return &base[w];
    }
    return nullptr;
}

PairRow *
PairTable::findOrAlloc(sim::Addr miss_line, CostTracker &cost)
{
    if (PairRow *row = find(miss_line, cost))
        return row;

    const std::uint32_t set = setIndex(miss_line);
    PairRow *base = &rows_[static_cast<std::size_t>(set) * params_.assoc];
    PairRow *victim = base;
    for (std::uint32_t w = 1; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    ++insertions_;
    if (victim->valid)
        ++replacements_;

    cost.instr(cost::rowAlloc);
    cost.memWrite(rowAddr(*victim), rowBytes_);
    victim->tag = miss_line;
    victim->valid = true;
    victim->succ.clear();
    victim->lruStamp = ++stampCounter_;
    return victim;
}

void
PairTable::insertSuccessor(PairRow &row, sim::Addr succ_line,
                           CostTracker &cost)
{
    cost.instr(cost::succInsert);
    auto it = std::find(row.succ.begin(), row.succ.end(), succ_line);
    if (it != row.succ.end()) {
        // Already present: rotate to the MRU position.
        cost.instr(cost::succShift *
                   static_cast<std::uint32_t>(it - row.succ.begin()));
        std::rotate(row.succ.begin(), it, it + 1);
    } else {
        row.succ.insert(row.succ.begin(), succ_line);
        if (row.succ.size() > params_.numSucc)
            row.succ.pop_back();  // LRU replacement within the row
        cost.instr(cost::succShift *
                   static_cast<std::uint32_t>(row.succ.size()));
    }
    cost.memWrite(rowAddr(row), rowBytes_);
}

void
PairTable::saveState(ckpt::StateWriter &w) const
{
    w.u32(params_.numRows);
    w.u32(params_.numSucc);
    w.u32(params_.assoc);
    w.u64(stampCounter_);
    w.u64(insertions_);
    w.u64(replacements_);

    std::uint64_t valid = 0;
    for (const PairRow &row : rows_) {
        if (row.valid)
            ++valid;
    }
    w.u64(valid);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const PairRow &row = rows_[i];
        if (!row.valid)
            continue;
        w.u64(i);
        w.u64(row.tag);
        w.u64(row.lruStamp);
        w.u64(row.succ.size());
        for (sim::Addr s : row.succ)
            w.u64(s);
    }
}

void
PairTable::restoreState(ckpt::StateReader &r)
{
    if (r.u32() != params_.numRows || r.u32() != params_.numSucc ||
        r.u32() != params_.assoc) {
        throw ckpt::CkptError(
            "pair-table geometry in checkpoint does not match this "
            "configuration");
    }
    stampCounter_ = r.u64();
    insertions_ = r.u64();
    replacements_ = r.u64();

    for (PairRow &row : rows_) {
        row = PairRow{};
    }
    const std::uint64_t valid = r.u64();
    for (std::uint64_t n = 0; n < valid; ++n) {
        const std::uint64_t idx = r.u64();
        if (idx >= rows_.size())
            throw ckpt::CkptError("pair-table row index out of range");
        PairRow &row = rows_[idx];
        row.valid = true;
        row.tag = r.u64();
        row.lruStamp = r.u64();
        const std::uint64_t succ = r.u64();
        if (succ > params_.numSucc)
            throw ckpt::CkptError("pair-table successor list too long");
        row.succ.clear();
        for (std::uint64_t s = 0; s < succ; ++s)
            row.succ.push_back(r.u64());
    }
}

void
PairTable::checkInvariants(check::CheckContext &ctx,
                           const std::string &who) const
{
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        const PairRow *base =
            &rows_[static_cast<std::size_t>(set) * params_.assoc];
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            const PairRow &row = base[w];
            if (!row.valid)
                continue;
            ctx.require(setIndex(row.tag) == set, who,
                        "row tag " + check::hex(row.tag) +
                            " resident in set " + std::to_string(set) +
                            " but hashes to set " +
                            std::to_string(setIndex(row.tag)));
            ctx.require(row.lruStamp <= stampCounter_, who,
                        "row " + check::hex(row.tag) +
                            " carries LRU stamp " +
                            std::to_string(row.lruStamp) +
                            " beyond the counter " +
                            std::to_string(stampCounter_));
            ctx.require(row.succ.size() <= params_.numSucc, who,
                        "row " + check::hex(row.tag) + " holds " +
                            std::to_string(row.succ.size()) +
                            " successors, NumSucc " +
                            std::to_string(params_.numSucc));
            for (std::size_t i = 0; i < row.succ.size(); ++i) {
                for (std::size_t j = i + 1; j < row.succ.size(); ++j) {
                    ctx.require(row.succ[i] != row.succ[j], who,
                                "row " + check::hex(row.tag) +
                                    " repeats successor " +
                                    check::hex(row.succ[i]));
                }
            }
            for (std::uint32_t v = w + 1; v < params_.assoc; ++v) {
                ctx.require(!base[v].valid || base[v].tag != row.tag,
                            who,
                            "duplicate row tag " + check::hex(row.tag) +
                                " in set " + std::to_string(set));
            }
        }
    }
}

void
PairTable::invalidate(sim::Addr miss_line)
{
    const std::uint32_t set = setIndex(miss_line);
    PairRow *base = &rows_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == miss_line) {
            base[w].valid = false;
            base[w].succ.clear();
            // Reset the stamp so the freed way always loses the LRU
            // comparison in findOrAlloc: a stale stamp higher than a
            // live row's would make the allocator evict the live row
            // and leave the hole behind.
            base[w].lruStamp = 0;
            return;
        }
    }
}

} // namespace core
