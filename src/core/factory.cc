#include "core/factory.hh"

#include "core/adaptive.hh"
#include "core/conflict_aware.hh"
#include "core/base_chain.hh"
#include "core/composite.hh"
#include "core/profiler.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"
#include "sim/logging.hh"

namespace core {

std::string
to_string(UlmtAlgo algo)
{
    switch (algo) {
      case UlmtAlgo::None:
        return "None";
      case UlmtAlgo::Base:
        return "Base";
      case UlmtAlgo::Chain:
        return "Chain";
      case UlmtAlgo::Repl:
        return "Repl";
      case UlmtAlgo::Seq1:
        return "Seq1";
      case UlmtAlgo::Seq4:
        return "Seq4";
      case UlmtAlgo::Seq4Base:
        return "Seq4+Base";
      case UlmtAlgo::Seq4Repl:
        return "Seq4+Repl";
      case UlmtAlgo::Seq1Repl:
        return "Seq1+Repl";
      case UlmtAlgo::Adaptive:
        return "Adaptive";
      case UlmtAlgo::ReplCA:
        return "Repl+CA";
      case UlmtAlgo::Profile:
        return "Profile";
    }
    return "?";
}

UlmtAlgo
parseUlmtAlgo(const std::string &name)
{
    for (UlmtAlgo a :
         {UlmtAlgo::None, UlmtAlgo::Base, UlmtAlgo::Chain, UlmtAlgo::Repl,
          UlmtAlgo::Seq1, UlmtAlgo::Seq4, UlmtAlgo::Seq4Base,
          UlmtAlgo::Seq4Repl, UlmtAlgo::Seq1Repl, UlmtAlgo::Adaptive,
          UlmtAlgo::ReplCA, UlmtAlgo::Profile}) {
        if (to_string(a) == name)
            return a;
    }
    sim::fatal("unknown ULMT algorithm '%s'", name.c_str());
}

std::string
to_string(UlmtMode mode)
{
    switch (mode) {
      case UlmtMode::Shared:
        return "shared";
      case UlmtMode::PerCore:
        return "percore";
      case UlmtMode::Sharded:
        return "sharded";
    }
    return "?";
}

UlmtMode
parseUlmtMode(const std::string &name)
{
    for (UlmtMode m :
         {UlmtMode::Shared, UlmtMode::PerCore, UlmtMode::Sharded}) {
        if (to_string(m) == name)
            return m;
    }
    sim::fatal("unknown ULMT serving mode '%s' (expected shared, "
               "percore or sharded)",
               name.c_str());
}

namespace {

SeqParams
seqParams(std::uint32_t num_seq)
{
    SeqParams p;
    p.numSeq = num_seq;
    p.numPref = 6;
    p.lineBytes = 64;
    return p;
}

std::unique_ptr<CorrelationPrefetcher>
compose(std::unique_ptr<CorrelationPrefetcher> a,
        std::unique_ptr<CorrelationPrefetcher> b,
        bool short_circuit = false)
{
    std::vector<std::unique_ptr<CorrelationPrefetcher>> parts;
    parts.push_back(std::move(a));
    parts.push_back(std::move(b));
    return std::make_unique<CompositePrefetcher>(std::move(parts),
                                                 short_circuit);
}

} // namespace

std::unique_ptr<CorrelationPrefetcher>
makeAlgorithm(const UlmtSpec &spec, std::uint64_t table_base)
{
    const auto based = [table_base](CorrelationParams p) {
        if (table_base)
            p.tableBase = table_base;
        return p;
    };
    switch (spec.algo) {
      case UlmtAlgo::None:
        return nullptr;
      case UlmtAlgo::Base:
        return std::make_unique<BasePrefetcher>(
            based(baseDefaults(spec.numRows)));
      case UlmtAlgo::Chain:
        return std::make_unique<ChainPrefetcher>(
            based(chainReplDefaults(spec.numRows, spec.numLevels)));
      case UlmtAlgo::Repl:
        return std::make_unique<ReplicatedPrefetcher>(
            based(chainReplDefaults(spec.numRows, spec.numLevels)));
      case UlmtAlgo::Seq1:
        return std::make_unique<SeqPrefetcher>(seqParams(1));
      case UlmtAlgo::Seq4:
        return std::make_unique<SeqPrefetcher>(seqParams(4));
      case UlmtAlgo::Seq4Base:
        return compose(std::make_unique<SeqPrefetcher>(seqParams(4)),
                       std::make_unique<BasePrefetcher>(
                           based(baseDefaults(spec.numRows))));
      case UlmtAlgo::Seq4Repl:
        return compose(std::make_unique<SeqPrefetcher>(seqParams(4)),
                       std::make_unique<ReplicatedPrefetcher>(
                           based(chainReplDefaults(spec.numRows,
                                                   spec.numLevels))));
      case UlmtAlgo::Seq1Repl: {
        // The CG customization: the cheap sequential check runs first
        // and fully owns the misses it recognizes, pushing far enough
        // ahead that the processor-side prefetcher's requests find
        // their lines already in the L2.
        SeqParams sp = seqParams(1);
        sp.lookaheadLines = 2 * sp.numPref;
        return compose(std::make_unique<SeqPrefetcher>(sp),
                       std::make_unique<ReplicatedPrefetcher>(
                           based(chainReplDefaults(spec.numRows,
                                                   spec.numLevels))),
                       /*short_circuit=*/true);
      }
      case UlmtAlgo::Adaptive:
        return std::make_unique<AdaptivePrefetcher>(
            seqParams(4), based(chainReplDefaults(spec.numRows,
                                                  spec.numLevels)));
      case UlmtAlgo::ReplCA:
        // Conflict-elimination customization (Section 7): Replicated
        // with pushes into saturated L2 sets suppressed.
        return std::make_unique<ConflictAwarePrefetcher>(
            std::make_unique<ReplicatedPrefetcher>(
                based(chainReplDefaults(spec.numRows,
                                        spec.numLevels))),
            /*l2_sets=*/2048, /*l2_line_bytes=*/64);
      case UlmtAlgo::Profile:
        return std::make_unique<ProfilingUlmt>(4096, 2048, 64);
    }
    return nullptr;
}

} // namespace core
