/**
 * @file
 * An adaptive ULMT algorithm (extension of Section 3.3.3).
 *
 * The paper suggests "adaptively deciding the algorithm on-the-fly, as
 * the application executes".  This implementation wraps a sequential
 * prefetcher and a Replicated table and continuously tracks how often
 * each component's level-1 prediction covers the next miss.  Every
 * epoch it enables only the components that are earning their keep:
 * sequential-only for streaming phases (lowest response time),
 * Replicated-only for purely irregular phases (no wasted stream
 * checks), or both for mixed phases.
 */

#ifndef CORE_ADAPTIVE_HH
#define CORE_ADAPTIVE_HH

#include <memory>

#include "core/correlation_prefetcher.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"

namespace core {

/** Self-tuning composition of Seq and Replicated. */
class AdaptivePrefetcher : public CorrelationPrefetcher
{
  public:
    AdaptivePrefetcher(const SeqParams &seq_params,
                       const CorrelationParams &corr_params,
                       std::uint32_t epoch_misses = 1024)
        : seq_(std::make_unique<SeqPrefetcher>(seq_params)),
          repl_(std::make_unique<ReplicatedPrefetcher>(corr_params)),
          epochMisses_(epoch_misses)
    {
    }

    std::string name() const override { return "Adaptive"; }
    std::uint32_t levels() const override { return repl_->levels(); }

    void prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                      CostTracker &cost) override;
    void learnStep(sim::Addr miss_line, CostTracker &cost) override;
    void predict(sim::Addr miss_line,
                 LevelPredictions &out) const override;

    std::size_t
    tableBytes() const override
    {
        return repl_->tableBytes();
    }

    void
    checkInvariants(check::CheckContext &ctx) const override
    {
        seq_->checkInvariants(ctx);
        repl_->checkInvariants(ctx);
    }

    /** Current mode, for tests and reporting. */
    enum class Mode { Both, SeqOnly, ReplOnly };
    Mode mode() const { return mode_; }
    std::uint64_t modeSwitches() const { return modeSwitches_; }

  private:
    void scorePrediction(sim::Addr miss_line);
    void maybeSwitch();

    std::unique_ptr<SeqPrefetcher> seq_;
    std::unique_ptr<ReplicatedPrefetcher> repl_;
    std::uint32_t epochMisses_;

    Mode mode_ = Mode::Both;
    std::uint64_t modeSwitches_ = 0;

    // Epoch bookkeeping: how often each component's level-1 set
    // covered the next miss.
    std::uint32_t epochCount_ = 0;
    std::uint32_t seqHits_ = 0;
    std::uint32_t replHits_ = 0;
    LevelPredictions seqPred_;
    LevelPredictions replPred_;
    bool havePred_ = false;
};

} // namespace core

#endif // CORE_ADAPTIVE_HH
