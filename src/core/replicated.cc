#include "core/replicated.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace core {

ReplicatedPrefetcher::ReplicatedPrefetcher(const CorrelationParams &p)
    : params_(p), rowBytes_(4 + p.numLevels * p.numSucc * 4)
{
    rowStride_ = 16;
    while (rowStride_ < rowBytes_)
        rowStride_ *= 2;
    SIM_ASSERT(p.assoc > 0 && p.numRows % p.assoc == 0,
               "numRows must be a multiple of assoc");
    numSets_ = p.numRows / p.assoc;
    rows_.resize(p.numRows);
    for (auto &row : rows_)
        row.levels.resize(p.numLevels);
    ptrs_.resize(p.numLevels);
}

std::uint32_t
ReplicatedPrefetcher::setIndex(sim::Addr miss_line) const
{
    return static_cast<std::uint32_t>((miss_line / 64) % numSets_);
}

sim::Addr
ReplicatedPrefetcher::rowAddr(std::uint32_t index) const
{
    return params_.tableBase +
           static_cast<sim::Addr>(index) * rowStride_;
}

ReplRow *
ReplicatedPrefetcher::find(sim::Addr miss_line, CostTracker &cost)
{
    cost.instr(cost::hashRow);
    const std::uint32_t set = setIndex(miss_line);
    const std::uint32_t base_idx = set * params_.assoc;
    // Rows are line-aligned: one access pulls a way's tag and all its
    // levels together (Table 1: a single row access per prefetch).
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        ReplRow &row = rows_[base_idx + w];
        cost.instr(cost::tagProbe);
        cost.memRead(rowAddr(base_idx + w), rowBytes_);
        if (row.valid && row.tag == miss_line) {
            row.lruStamp = ++stampCounter_;
            return &row;
        }
    }
    return nullptr;
}

const ReplRow *
ReplicatedPrefetcher::findNoCost(sim::Addr miss_line) const
{
    const std::uint32_t base_idx = setIndex(miss_line) * params_.assoc;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        const ReplRow &row = rows_[base_idx + w];
        if (row.valid && row.tag == miss_line)
            return &row;
    }
    return nullptr;
}

std::uint32_t
ReplicatedPrefetcher::alloc(sim::Addr miss_line, CostTracker &cost)
{
    const std::uint32_t base_idx = setIndex(miss_line) * params_.assoc;
    std::uint32_t victim = base_idx;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        ReplRow &row = rows_[base_idx + w];
        if (!row.valid) {
            victim = base_idx + w;
            break;
        }
        if (row.lruStamp < rows_[victim].lruStamp)
            victim = base_idx + w;
    }
    ++insertions_;
    if (rows_[victim].valid)
        ++replacements_;

    cost.instr(cost::rowAlloc);
    cost.memWrite(rowAddr(victim), rowBytes_);
    ReplRow &row = rows_[victim];
    row.tag = miss_line;
    row.valid = true;
    for (auto &lvl : row.levels)
        lvl.clear();
    row.lruStamp = ++stampCounter_;
    return victim;
}

void
ReplicatedPrefetcher::insertAtLevel(ReplRow &row, std::uint32_t level,
                                    sim::Addr succ_line,
                                    CostTracker &cost)
{
    auto &list = row.levels[level];
    cost.instr(cost::succInsert);
    auto it = std::find(list.begin(), list.end(), succ_line);
    if (it != list.end()) {
        cost.instr(cost::succShift *
                   static_cast<std::uint32_t>(it - list.begin()));
        std::rotate(list.begin(), it, it + 1);
    } else {
        list.insert(list.begin(), succ_line);
        if (list.size() > params_.numSucc)
            list.pop_back();
        cost.instr(cost::succShift *
                   static_cast<std::uint32_t>(list.size()));
    }
    // The pointers let the update go straight to the row: one write,
    // no associative search (Section 3.3.2).
    const std::size_t idx = static_cast<std::size_t>(&row - rows_.data());
    cost.memWrite(rowAddr(static_cast<std::uint32_t>(idx)), 8);
}

void
ReplicatedPrefetcher::prefetchStep(sim::Addr miss_line,
                                   std::vector<sim::Addr> &out,
                                   CostTracker &cost)
{
    // A single row access yields every level (Table 1: one row access,
    // low response time).
    ReplRow *row = find(miss_line, cost);
    if (!row)
        return;
    for (const auto &level : row->levels) {
        for (sim::Addr s : level) {
            cost.instr(cost::emitPrefetch);
            out.push_back(s);
        }
    }
}

void
ReplicatedPrefetcher::learnStep(sim::Addr miss_line, CostTracker &cost)
{
    // Insert the new miss as the MRU successor at the correct level of
    // each trailing row (Fig. 4-c (i)/(ii)).
    for (std::uint32_t lvl = 0; lvl < params_.numLevels; ++lvl) {
        RowPtr &ptr = ptrs_[lvl];
        if (!ptr.valid)
            continue;
        ReplRow &row = rows_[ptr.index];
        // The pointed-to row may have been reallocated since; the tag
        // check catches that (stale pointers are simply skipped).
        if (!row.valid || row.tag != ptr.expectedTag)
            continue;
        insertAtLevel(row, lvl, miss_line, cost);
    }

    // Ensure a row exists for the new miss and shift the pointers.
    std::uint32_t idx;
    if (ReplRow *row = find(miss_line, cost)) {
        idx = static_cast<std::uint32_t>(row - rows_.data());
    } else {
        idx = alloc(miss_line, cost);
    }
    for (std::size_t lvl = ptrs_.size(); lvl-- > 1;)
        ptrs_[lvl] = ptrs_[lvl - 1];
    ptrs_[0] = RowPtr{idx, miss_line, true};
}

void
ReplicatedPrefetcher::predict(sim::Addr miss_line,
                              LevelPredictions &out) const
{
    out.assign(params_.numLevels, {});
    if (const ReplRow *row = findNoCost(miss_line)) {
        for (std::uint32_t lvl = 0; lvl < params_.numLevels; ++lvl)
            out[lvl] = row->levels[lvl];
    }
}

void
ReplicatedPrefetcher::saveState(ckpt::StateWriter &w) const
{
    w.u32(params_.numRows);
    w.u32(params_.numSucc);
    w.u32(params_.assoc);
    w.u32(params_.numLevels);
    w.u64(stampCounter_);
    w.u64(insertions_);
    w.u64(replacements_);

    std::uint64_t valid = 0;
    for (const ReplRow &row : rows_) {
        if (row.valid)
            ++valid;
    }
    w.u64(valid);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const ReplRow &row = rows_[i];
        if (!row.valid)
            continue;
        w.u64(i);
        w.u64(row.tag);
        w.u64(row.lruStamp);
        for (const auto &level : row.levels) {
            w.u64(level.size());
            for (sim::Addr s : level)
                w.u64(s);
        }
    }

    // The trailing pointers are the learning context: they decide
    // which rows the next miss is inserted into.
    w.u64(ptrs_.size());
    for (const RowPtr &p : ptrs_) {
        w.u32(p.index);
        w.u64(p.expectedTag);
        w.b(p.valid);
    }
}

void
ReplicatedPrefetcher::restoreState(ckpt::StateReader &r)
{
    if (r.u32() != params_.numRows || r.u32() != params_.numSucc ||
        r.u32() != params_.assoc || r.u32() != params_.numLevels) {
        throw ckpt::CkptError(
            "replicated-table geometry in checkpoint does not match "
            "this configuration");
    }
    stampCounter_ = r.u64();
    insertions_ = r.u64();
    replacements_ = r.u64();

    for (ReplRow &row : rows_) {
        row.tag = sim::invalidAddr;
        row.valid = false;
        row.lruStamp = 0;
        for (auto &lvl : row.levels)
            lvl.clear();
    }
    const std::uint64_t valid = r.u64();
    for (std::uint64_t n = 0; n < valid; ++n) {
        const std::uint64_t idx = r.u64();
        if (idx >= rows_.size()) {
            throw ckpt::CkptError(
                "replicated-table row index out of range");
        }
        ReplRow &row = rows_[idx];
        row.valid = true;
        row.tag = r.u64();
        row.lruStamp = r.u64();
        for (auto &level : row.levels) {
            const std::uint64_t count = r.u64();
            if (count > params_.numSucc) {
                throw ckpt::CkptError(
                    "replicated-table successor list too long");
            }
            for (std::uint64_t s = 0; s < count; ++s)
                level.push_back(r.u64());
        }
    }

    if (r.u64() != ptrs_.size()) {
        throw ckpt::CkptError(
            "replicated-table pointer count does not match NumLevels");
    }
    for (RowPtr &p : ptrs_) {
        p.index = r.u32();
        p.expectedTag = r.u64();
        p.valid = r.b();
        if (p.valid && p.index >= rows_.size()) {
            throw ckpt::CkptError(
                "replicated-table trailing pointer out of range");
        }
    }
}

void
ReplicatedPrefetcher::onPageRemap(sim::Addr old_page, sim::Addr new_page,
                                  std::uint32_t page_bytes,
                                  CostTracker &cost)
{
    constexpr std::uint32_t line_bytes = 64;
    // Same sweep cost model as remapPairTable: the page's lines hit
    // consecutive sets, so the scan is a packed tag compare and only
    // rows that actually hold the moved page pay probe + rewrite.
    const std::uint32_t lines = page_bytes / line_bytes;
    cost.instr(lines < cost::remapSweepTagsPerCycle
                   ? 1u
                   : lines / cost::remapSweepTagsPerCycle);
    for (std::uint32_t off = 0; off < page_bytes; off += line_bytes) {
        const sim::Addr old_line = old_page * page_bytes + off;
        if (!findNoCost(old_line))
            continue;
        ReplRow *row = find(old_line, cost);
        if (!row)
            continue;
        ReplRow copy = *row;
        // The row's simulated bytes move: any memory-side table cache
        // must drop (and flush) its copy or serve stale rows.
        cost.memInvalidate(
            rowAddr(static_cast<std::uint32_t>(row - rows_.data())),
            rowBytes_);
        row->valid = false;

        const sim::Addr new_line = new_page * page_bytes + off;
        std::uint32_t idx;
        if (ReplRow *existing = find(new_line, cost))
            idx = static_cast<std::uint32_t>(existing - rows_.data());
        else
            idx = alloc(new_line, cost);
        ReplRow &dest = rows_[idx];
        for (std::uint32_t lvl = 0; lvl < params_.numLevels; ++lvl) {
            dest.levels[lvl].clear();
            for (sim::Addr s : copy.levels[lvl]) {
                if (s / page_bytes == old_page)
                    s = new_page * page_bytes + s % page_bytes;
                dest.levels[lvl].push_back(s);
            }
        }
        cost.memWrite(rowAddr(idx), rowBytes_);
    }
}

void
ReplicatedPrefetcher::checkInvariants(check::CheckContext &ctx) const
{
    const std::string who = "table.Repl";
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        const ReplRow *base =
            &rows_[static_cast<std::size_t>(set) * params_.assoc];
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            const ReplRow &row = base[w];
            if (!row.valid)
                continue;
            ctx.require(setIndex(row.tag) == set, who,
                        "row tag " + check::hex(row.tag) +
                            " resident in set " + std::to_string(set) +
                            " but hashes to set " +
                            std::to_string(setIndex(row.tag)));
            ctx.require(row.lruStamp <= stampCounter_, who,
                        "row " + check::hex(row.tag) +
                            " carries LRU stamp " +
                            std::to_string(row.lruStamp) +
                            " beyond the counter " +
                            std::to_string(stampCounter_));
            ctx.require(row.levels.size() == params_.numLevels, who,
                        "row " + check::hex(row.tag) + " has " +
                            std::to_string(row.levels.size()) +
                            " levels, configured " +
                            std::to_string(params_.numLevels));
            for (std::size_t lvl = 0; lvl < row.levels.size(); ++lvl) {
                const auto &list = row.levels[lvl];
                ctx.require(list.size() <= params_.numSucc, who,
                            "row " + check::hex(row.tag) + " level " +
                                std::to_string(lvl + 1) + " holds " +
                                std::to_string(list.size()) +
                                " successors, NumSucc " +
                                std::to_string(params_.numSucc));
                for (std::size_t i = 0; i < list.size(); ++i) {
                    for (std::size_t j = i + 1; j < list.size(); ++j) {
                        ctx.require(list[i] != list[j], who,
                                    "row " + check::hex(row.tag) +
                                        " level " +
                                        std::to_string(lvl + 1) +
                                        " repeats successor " +
                                        check::hex(list[i]));
                    }
                }
            }
            for (std::uint32_t v = w + 1; v < params_.assoc; ++v) {
                ctx.require(!base[v].valid || base[v].tag != row.tag,
                            who,
                            "duplicate row tag " + check::hex(row.tag) +
                                " in set " + std::to_string(set));
            }
        }
    }
    for (std::size_t i = 0; i < ptrs_.size(); ++i) {
        const RowPtr &ptr = ptrs_[i];
        if (!ptr.valid)
            continue;
        ctx.require(ptr.index < rows_.size(), who,
                    "trailing pointer " + std::to_string(i) +
                        " indexes row " + std::to_string(ptr.index) +
                        " of " + std::to_string(rows_.size()));
    }
}

} // namespace core
