/**
 * @file
 * The interface every ULMT prefetching algorithm implements.
 *
 * The ULMT executes the infinite loop of Figure 2: on an observed miss
 * it first runs the Prefetching step (critical: determines the
 * response time) and then the Learning step.  Algorithms additionally
 * expose a pure prediction query used by the Figure 5 predictability
 * study, table-size introspection for Table 2, and the page-remap
 * handler of Section 3.4.
 */

#ifndef CORE_CORRELATION_PREFETCHER_HH
#define CORE_CORRELATION_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "core/cost.hh"
#include "sim/types.hh"

namespace core {

/** Successor predictions, one set per level (index 0 = level 1). */
using LevelPredictions = std::vector<std::vector<sim::Addr>>;

/** A ULMT prefetching algorithm (Base, Chain, Replicated, Seq, ...). */
class CorrelationPrefetcher
{
  public:
    virtual ~CorrelationPrefetcher() = default;

    /** Human-readable algorithm name ("Base", "Repl", ...). */
    virtual std::string name() const = 0;

    /**
     * The Prefetching step: react to an observed miss by generating
     * the line addresses to prefetch, in priority order.
     *
     * @param miss_line observed L2-line-aligned miss address
     * @param out prefetch addresses are appended here
     * @param cost sink for the step's execution cost
     */
    virtual void prefetchStep(sim::Addr miss_line,
                              std::vector<sim::Addr> &out,
                              CostTracker &cost) = 0;

    /**
     * The Learning step: record the observed miss in the table.
     */
    virtual void learnStep(sim::Addr miss_line, CostTracker &cost) = 0;

    /**
     * Pure prediction query for the predictability study: the
     * successor sets this algorithm would predict at each level for
     * the given miss, based on current table state.  Must not learn.
     */
    virtual void predict(sim::Addr miss_line,
                         LevelPredictions &out) const = 0;

    /** Number of successor levels this algorithm predicts. */
    virtual std::uint32_t levels() const = 0;

    /** Size of the software correlation table in bytes (Table 2). */
    virtual std::size_t tableBytes() const { return 0; }

    /** Rows inserted so far (Table 2 sizing criterion). */
    virtual std::uint64_t insertions() const { return 0; }

    /** Insertions that displaced a live row (conflicts). */
    virtual std::uint64_t replacements() const { return 0; }

    /**
     * Operating-system notification that a physical page moved
     * (Section 3.4).  Default: take no action and let the table
     * re-learn.
     */
    virtual void
    onPageRemap(sim::Addr /*old_page*/, sim::Addr /*new_page*/,
                std::uint32_t /*page_bytes*/, CostTracker & /*cost*/)
    {
    }

    /**
     * Serialize the complete table state (and any learning context)
     * for a checkpoint.  Algorithms that do not implement this refuse,
     * so a checkpoint is never silently missing table contents.
     */
    virtual void
    saveState(ckpt::StateWriter & /*w*/) const
    {
        throw ckpt::CkptError("algorithm '" + name() +
                              "' does not support checkpointing");
    }

    /** Restore state written by saveState on an identically configured
     *  instance. */
    virtual void
    restoreState(ckpt::StateReader & /*r*/)
    {
        throw ckpt::CkptError("algorithm '" + name() +
                              "' does not support checkpointing");
    }

    /**
     * Read-only structural self-check for the invariant checker:
     * report any table-state violations (MRU bounds, duplicate tags,
     * dangling pointers) to @p ctx.  Wrappers forward to their inner
     * algorithms; stateless algorithms keep the no-op default.
     */
    virtual void checkInvariants(check::CheckContext & /*ctx*/) const {}
};

} // namespace core

#endif // CORE_CORRELATION_PREFETCHER_HH
