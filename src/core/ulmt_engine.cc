#include "core/ulmt_engine.hh"

#include <algorithm>

#include "ckpt/sim_state.hh"
#include "sim/logging.hh"

namespace core {

namespace {

/** Main cycles charged per memory-processor L1 hit (pipelined). */
constexpr sim::Cycle mpCacheHitCharge = 2;

} // namespace

UlmtEngine::UlmtEngine(sim::EventQueue &eq, const mem::TimingParams &tp,
                       mem::MemorySystem &ms,
                       std::unique_ptr<CorrelationPrefetcher> algo)
    : eq_(eq), tp_(tp), ms_(ms), algo_(std::move(algo)),
      mpCache_("MemProcL1", tp.memProcL1)
{
    SIM_ASSERT(algo_ != nullptr, "UlmtEngine needs an algorithm");
}

void
UlmtEngine::ExecCost::instr(std::uint32_t n)
{
    instructions_ += n;
    // 2-issue at 800 MHz: n/2 memory-processor cycles = n main cycles.
    const std::uint32_t width = engine_.tp_.memProcIssueWidth;
    busy_ += (static_cast<sim::Cycle>(n) *
                  sim::mainCyclesPerMemProcCycle +
              width - 1) /
             width;
}

void
UlmtEngine::ExecCost::touch(sim::Addr addr, std::uint32_t bytes,
                            bool is_write)
{
    const std::uint32_t line_bytes = engine_.mpCache_.lineBytes();
    const sim::Addr first = engine_.mpCache_.lineAddr(addr);
    const sim::Addr last = engine_.mpCache_.lineAddr(addr + bytes - 1);
    for (sim::Addr line = first; line <= last; line += line_bytes) {
        mem::CacheLine *cl = engine_.mpCache_.access(line);
        if (cl) {
            busy_ += mpCacheHitCharge;
        } else {
            // Miss: fetch the table line from DRAM (placement-
            // dependent latency, real bank contention).
            const sim::Cycle ready = start_ + busy_ + memStall_;
            const sim::Cycle done =
                engine_.ms_.tableAccess(ready, line, is_write);
            memStall_ += done - ready;

            mem::Eviction ev;
            cl = engine_.mpCache_.insert(line, 0, 0, ev);
            if (ev.valid && ev.dirty) {
                // Victim write-back drains through a write buffer: it
                // occupies the DRAM bank but does not stall the thread.
                engine_.ms_.tableAccess(done, ev.lineAddr, true);
            }
        }
        if (is_write)
            cl->dirty = true;
    }
}

void
UlmtEngine::ExecCost::memRead(sim::Addr addr, std::uint32_t bytes)
{
    touch(addr, bytes, false);
}

void
UlmtEngine::ExecCost::memWrite(sim::Addr addr, std::uint32_t bytes)
{
    touch(addr, bytes, true);
}

void
UlmtEngine::observeMiss(sim::Cycle when, sim::Addr line_addr,
                        sim::RequestKind /*kind*/)
{
    ++stats_.missesObserved;
    // Queue 2 overflow: the memory processor simply drops the request
    // (Section 3.2).
    if (queue2_.size() >= tp_.queueDepth) {
        ++stats_.missesDroppedQueueFull;
        return;
    }
    queue2_.push_back({when, line_addr, ms_.observedFlowId()});
    kick(when);
}

void
UlmtEngine::kick(sim::Cycle earliest)
{
    if (processingScheduled_)
        return;
    processingScheduled_ = true;
    sim::Cycle at = std::max(earliest, busyUntil_);
    at = std::max(at, eq_.now());
    eq_.schedule(at, sim::EventKind::UlmtProcess, 0, 0, processAction());
}

void
UlmtEngine::processNext()
{
    processingScheduled_ = false;
    if (queue2_.empty())
        return;
    const Observation obs = queue2_.front();
    queue2_.pop_front();

    const sim::Cycle start =
        std::max({eq_.now(), obs.when, busyUntil_});
    ExecCost cost(*this, start);

    // ---- Prefetching step (executed first: it is the critical one).
    cost.instr(cost::loopOverhead);
    scratch_.clear();
    algo_->prefetchStep(obs.line, scratch_, cost);
    const sim::Cycle response = cost.elapsed();
    stats_.responseTime.sample(static_cast<double>(response));
    stats_.responseBusy.sample(static_cast<double>(cost.busy()));
    stats_.responseMem.sample(static_cast<double>(cost.memStall()));

    // Issue the generated addresses to queue 3, de-duplicated and
    // aligned to L2 lines; never prefetch the observed miss itself.
    const sim::Cycle issue_at = start + response;
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
        const sim::Addr line =
            scratch_[i] & ~static_cast<sim::Addr>(tp_.l2.lineBytes - 1);
        if (line == obs.line)
            continue;
        bool dup = false;
        for (std::size_t j = 0; j < emitted && !dup; ++j)
            dup = scratch_[j] == line;
        if (dup)
            continue;
        scratch_[emitted++] = line;
        ++stats_.prefetchesGenerated;
        ms_.ulmtPrefetch(issue_at, line, obs.flow);
    }

    // ---- Learning step.
    algo_->learnStep(obs.line, cost);
    if (missHook_)
        missHook_(obs.line);
    const sim::Cycle occupancy = cost.elapsed();
    stats_.occupancyTime.sample(static_cast<double>(occupancy));
    stats_.occupancyBusy.sample(static_cast<double>(cost.busy()));
    stats_.occupancyMem.sample(static_cast<double>(cost.memStall()));
    stats_.busyCycles += cost.busy();
    stats_.memStallCycles += cost.memStall();
    stats_.instructions += cost.instructions();
    ++stats_.missesProcessed;

    if (trace_) {
        // One episode span per observed miss, with the response-time
        // (prefetch) and learning portions nested inside it.
        trace_->complete("miss_episode", "ulmt", start, occupancy,
                         sim::traceTidUlmt);
        trace_->complete("prefetch_step", "ulmt", start, response,
                         sim::traceTidUlmt);
        if (occupancy > response)
            trace_->complete("learn_step", "ulmt", start + response,
                             occupancy - response, sim::traceTidUlmt);
        if (obs.flow)
            trace_->flow(sim::TracePhase::FlowStep, obs.flow, start,
                         sim::traceTidUlmt);
    }

    busyUntil_ = start + occupancy;
    if (!queue2_.empty())
        kick(busyUntil_);
}

void
UlmtEngine::pageRemap(sim::Addr old_page, sim::Addr new_page,
                      std::uint32_t page_bytes)
{
    const sim::Cycle start = std::max(eq_.now(), busyUntil_);
    ExecCost cost(*this, start);
    algo_->onPageRemap(old_page, new_page, page_bytes, cost);
    stats_.busyCycles += cost.busy();
    stats_.memStallCycles += cost.memStall();
    stats_.instructions += cost.instructions();
    busyUntil_ = start + cost.elapsed();
    if (trace_ && cost.elapsed() > 0)
        trace_->complete("page_remap", "ulmt", start, cost.elapsed(),
                         sim::traceTidUlmt);
}

void
UlmtEngine::saveState(ckpt::StateWriter &w) const
{
    w.u64(queue2_.size());
    for (const Observation &obs : queue2_) {
        w.u64(obs.when);
        w.u64(obs.line);
        w.u64(obs.flow);
    }
    mpCache_.saveState(w);
    w.u64(busyUntil_);
    w.b(processingScheduled_);

    w.u64(stats_.missesObserved);
    w.u64(stats_.missesProcessed);
    w.u64(stats_.missesDroppedQueueFull);
    w.u64(stats_.prefetchesGenerated);
    ckpt::save(w, stats_.responseTime);
    ckpt::save(w, stats_.occupancyTime);
    ckpt::save(w, stats_.responseBusy);
    ckpt::save(w, stats_.responseMem);
    ckpt::save(w, stats_.occupancyBusy);
    ckpt::save(w, stats_.occupancyMem);
    w.u64(stats_.busyCycles);
    w.u64(stats_.memStallCycles);
    w.u64(stats_.instructions);

    algo_->saveState(w);
}

void
UlmtEngine::restoreState(ckpt::StateReader &r)
{
    queue2_.clear();
    const std::uint64_t depth = r.u64();
    if (depth > tp_.queueDepth)
        throw ckpt::CkptError("queue-2 depth exceeds the configuration");
    for (std::uint64_t i = 0; i < depth; ++i) {
        Observation obs{};
        obs.when = r.u64();
        obs.line = r.u64();
        obs.flow = r.u64();
        queue2_.push_back(obs);
    }
    mpCache_.restoreState(r);
    busyUntil_ = r.u64();
    processingScheduled_ = r.b();

    stats_.missesObserved = r.u64();
    stats_.missesProcessed = r.u64();
    stats_.missesDroppedQueueFull = r.u64();
    stats_.prefetchesGenerated = r.u64();
    ckpt::restore(r, stats_.responseTime);
    ckpt::restore(r, stats_.occupancyTime);
    ckpt::restore(r, stats_.responseBusy);
    ckpt::restore(r, stats_.responseMem);
    ckpt::restore(r, stats_.occupancyBusy);
    ckpt::restore(r, stats_.occupancyMem);
    stats_.busyCycles = r.u64();
    stats_.memStallCycles = r.u64();
    stats_.instructions = r.u64();

    algo_->restoreState(r);
}

void
UlmtEngine::registerStats(sim::StatRegistry &reg) const
{
    reg.addCounter("ulmt.misses_observed", &stats_.missesObserved);
    reg.addCounter("ulmt.misses_processed", &stats_.missesProcessed);
    reg.addCounter("ulmt.queue2.drops",
                   &stats_.missesDroppedQueueFull);
    reg.addCounter("ulmt.prefetches_generated",
                   &stats_.prefetchesGenerated);
    reg.addCounter("ulmt.busy_cycles", &stats_.busyCycles);
    reg.addCounter("ulmt.mem_stall_cycles", &stats_.memStallCycles);
    reg.addCounter("ulmt.instructions", &stats_.instructions);
    reg.addSample("ulmt.response_cycles", &stats_.responseTime);
    reg.addSample("ulmt.occupancy_cycles", &stats_.occupancyTime);
    reg.addSample("ulmt.response_busy", &stats_.responseBusy);
    reg.addSample("ulmt.response_mem", &stats_.responseMem);
    reg.addSample("ulmt.occupancy_busy", &stats_.occupancyBusy);
    reg.addSample("ulmt.occupancy_mem", &stats_.occupancyMem);
    reg.addGauge("ulmt.ipc", [this] { return stats_.ipc(); });
    reg.addGauge("ulmt.table.bytes",
                 [this] { return double(algo_->tableBytes()); });
    reg.addGauge("ulmt.table.insertions",
                 [this] { return double(algo_->insertions()); });
    reg.addGauge("ulmt.table.replacements",
                 [this] { return double(algo_->replacements()); });
}

} // namespace core
