#include "core/ulmt_engine.hh"

#include <algorithm>

#include "ckpt/sim_state.hh"
#include "sim/logging.hh"

namespace core {

namespace {

/** Main cycles charged per memory-processor L1 hit (pipelined). */
constexpr sim::Cycle mpCacheHitCharge = 2;

} // namespace

namespace {

std::vector<std::unique_ptr<CorrelationPrefetcher>>
oneShard(std::unique_ptr<CorrelationPrefetcher> algo)
{
    std::vector<std::unique_ptr<CorrelationPrefetcher>> shards;
    shards.push_back(std::move(algo));
    return shards;
}

} // namespace

UlmtEngine::UlmtEngine(sim::EventQueue &eq, const mem::TimingParams &tp,
                       mem::MemorySystem &ms,
                       std::unique_ptr<CorrelationPrefetcher> algo)
    : UlmtEngine(eq, tp, ms, oneShard(std::move(algo)),
                 /*num_cores=*/1, /*base_core=*/0, /*engine_id=*/0)
{
}

UlmtEngine::UlmtEngine(
    sim::EventQueue &eq, const mem::TimingParams &tp,
    mem::MemorySystem &ms,
    std::vector<std::unique_ptr<CorrelationPrefetcher>> shards,
    unsigned num_cores, unsigned base_core, unsigned engine_id)
    : eq_(eq), tp_(tp), ms_(ms), shards_(std::move(shards)),
      numCores_(num_cores), baseCore_(base_core), engineId_(engine_id),
      queues2_(num_cores), servedPerCore_(num_cores, 0),
      mpCache_("MemProcL1", tp.memProcL1)
{
    SIM_ASSERT(!shards_.empty(), "UlmtEngine needs an algorithm");
    SIM_ASSERT(num_cores >= 1, "UlmtEngine must serve a core");
    SIM_ASSERT(shards_.size() == 1 || shards_.size() == num_cores,
               "shard count must be 1 or one per served core");
    for (const auto &s : shards_)
        SIM_ASSERT(s != nullptr, "UlmtEngine shard is null");
}

std::uint32_t
UlmtEngine::traceTid() const
{
    // Engine 0 keeps the classic ULMT track; extra engines (percore
    // mode) get tids above the fixed component tracks.
    return engineId_ == 0 ? sim::traceTidUlmt
                          : sim::traceTidSampler + engineId_;
}

void
UlmtEngine::ExecCost::instr(std::uint32_t n)
{
    instructions_ += n;
    // 2-issue at 800 MHz: n/2 memory-processor cycles = n main cycles.
    const std::uint32_t width = engine_.tp_.memProcIssueWidth;
    busy_ += (static_cast<sim::Cycle>(n) *
                  sim::mainCyclesPerMemProcCycle +
              width - 1) /
             width;
}

void
UlmtEngine::ExecCost::touch(sim::Addr addr, std::uint32_t bytes,
                            bool is_write)
{
    const std::uint32_t line_bytes = engine_.mpCache_.lineBytes();
    const sim::Addr first = engine_.mpCache_.lineAddr(addr);
    const sim::Addr last = engine_.mpCache_.lineAddr(addr + bytes - 1);
    for (sim::Addr line = first; line <= last; line += line_bytes) {
        mem::CacheLine *cl = engine_.mpCache_.access(line);
        if (cl) {
            busy_ += mpCacheHitCharge;
        } else {
            // Miss: fetch the table line from DRAM (placement-
            // dependent latency, real bank contention).
            const sim::Cycle ready = start_ + busy_ + memStall_;
            const sim::Cycle done =
                engine_.ms_.tableAccess(ready, line, is_write);
            memStall_ += done - ready;

            mem::Eviction ev;
            cl = engine_.mpCache_.insert(line, 0, 0, ev);
            if (ev.valid && ev.dirty) {
                // Victim write-back drains through a write buffer: it
                // occupies the DRAM bank but does not stall the thread.
                engine_.ms_.tableAccess(done, ev.lineAddr, true);
            }
        }
        if (is_write)
            cl->dirty = true;
    }
}

void
UlmtEngine::ExecCost::memRead(sim::Addr addr, std::uint32_t bytes)
{
    touch(addr, bytes, false);
}

void
UlmtEngine::ExecCost::memWrite(sim::Addr addr, std::uint32_t bytes)
{
    touch(addr, bytes, true);
}

void
UlmtEngine::ExecCost::memInvalidate(sim::Addr addr, std::uint32_t bytes)
{
    // Remapped table bytes: the memory-side table cache must drop its
    // copies (dirty ones drain fire-and-forget).  Free of engine time
    // and a no-op without --table-cache, so pre-cache remap timing is
    // untouched.  Deliberately leaves the memory processor's own L1
    // alone: its lines are keyed by the same addresses the sweep
    // rewrites through memWrite(), the pre-existing behavior.
    engine_.ms_.tableInvalidate(start_ + busy_ + memStall_, addr,
                                bytes);
}

void
UlmtEngine::observeMiss(sim::Cycle when, sim::Addr line_addr,
                        sim::RequestKind /*kind*/)
{
    ++stats_.missesObserved;
    // Queue 2 overflow: the memory processor simply drops the request
    // (Section 3.2).  The depth limit is the single physical queue's,
    // shared by all per-core sub-queues.
    if (queue2Depth() >= tp_.queueDepth) {
        ++stats_.missesDroppedQueueFull;
        return;
    }
    const unsigned core = ms_.observedCore();
    SIM_ASSERT(core >= baseCore_ && core - baseCore_ < numCores_,
               "miss from a core this engine does not serve");
    queues2_[core - baseCore_].push_back(
        {when, line_addr, ms_.observedFlowId(), core});
    kick(when);
}

void
UlmtEngine::kick(sim::Cycle earliest)
{
    if (processingScheduled_)
        return;
    processingScheduled_ = true;
    sim::Cycle at = std::max(earliest, busyUntil_);
    at = std::max(at, eq_.now());
    eq_.schedule(at, sim::EventKind::UlmtProcess, engineId_, 0,
                 processAction());
}

void
UlmtEngine::processNext()
{
    processingScheduled_ = false;
    // Round-robin over the per-core sub-queues: the first non-empty
    // queue at or after the cursor supplies the next miss, so no
    // tenant can monopolize the thread.
    unsigned idx = rrCursor_;
    bool found = false;
    for (unsigned i = 0; i < numCores_; ++i) {
        const unsigned cand = (rrCursor_ + i) % numCores_;
        if (!queues2_[cand].empty()) {
            idx = cand;
            found = true;
            break;
        }
    }
    if (!found)
        return;
    const Observation obs = queues2_[idx].front();
    queues2_[idx].pop_front();
    rrCursor_ = (idx + 1) % numCores_;
    ++servedPerCore_[idx];

    const sim::Cycle start =
        std::max({eq_.now(), obs.when, busyUntil_});
    ExecCost cost(*this, start);
    CorrelationPrefetcher &algo = algoFor(obs.core);

    // ---- Prefetching step (executed first: it is the critical one).
    cost.instr(cost::loopOverhead);
    scratch_.clear();
    algo.prefetchStep(obs.line, scratch_, cost);
    const sim::Cycle response = cost.elapsed();
    stats_.responseTime.sample(static_cast<double>(response));
    stats_.responseBusy.sample(static_cast<double>(cost.busy()));
    stats_.responseMem.sample(static_cast<double>(cost.memStall()));

    // Issue the generated addresses to queue 3, de-duplicated and
    // aligned to L2 lines; never prefetch the observed miss itself.
    const sim::Cycle issue_at = start + response;
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
        const sim::Addr line =
            scratch_[i] & ~static_cast<sim::Addr>(tp_.l2.lineBytes - 1);
        if (line == obs.line)
            continue;
        bool dup = false;
        for (std::size_t j = 0; j < emitted && !dup; ++j)
            dup = scratch_[j] == line;
        if (dup)
            continue;
        scratch_[emitted++] = line;
        ++stats_.prefetchesGenerated;
        ms_.ulmtPrefetch(issue_at, line, obs.flow, obs.core,
                         engineId_, obs.line);
    }

    // ---- Learning step.
    algo.learnStep(obs.line, cost);
    if (missHook_)
        missHook_(obs.line);
    const sim::Cycle occupancy = cost.elapsed();
    stats_.occupancyTime.sample(static_cast<double>(occupancy));
    stats_.occupancyBusy.sample(static_cast<double>(cost.busy()));
    stats_.occupancyMem.sample(static_cast<double>(cost.memStall()));
    stats_.busyCycles += cost.busy();
    stats_.memStallCycles += cost.memStall();
    stats_.instructions += cost.instructions();
    ++stats_.missesProcessed;

    if (trace_) {
        // One episode span per observed miss, with the response-time
        // (prefetch) and learning portions nested inside it.
        const std::uint32_t tid = traceTid();
        trace_->complete("miss_episode", "ulmt", start, occupancy, tid);
        trace_->complete("prefetch_step", "ulmt", start, response, tid);
        if (occupancy > response)
            trace_->complete("learn_step", "ulmt", start + response,
                             occupancy - response, tid);
        if (obs.flow)
            trace_->flow(sim::TracePhase::FlowStep, obs.flow, start,
                         tid);
    }

    busyUntil_ = start + occupancy;
    if (queue2Depth() > 0)
        kick(busyUntil_);
}

void
UlmtEngine::pageRemap(sim::Addr old_page, sim::Addr new_page,
                      std::uint32_t page_bytes)
{
    const sim::Cycle start = std::max(eq_.now(), busyUntil_);
    ExecCost cost(*this, start);
    for (const auto &s : shards_)
        s->onPageRemap(old_page, new_page, page_bytes, cost);
    stats_.busyCycles += cost.busy();
    stats_.memStallCycles += cost.memStall();
    stats_.instructions += cost.instructions();
    busyUntil_ = start + cost.elapsed();
    if (trace_ && cost.elapsed() > 0)
        trace_->complete("page_remap", "ulmt", start, cost.elapsed(),
                         traceTid());
}

void
UlmtEngine::saveState(ckpt::StateWriter &w) const
{
    // Sub-queue count is configuration-derived (numCores_), so it is
    // implied; each sub-queue is written in order.
    for (const auto &q : queues2_) {
        w.u64(q.size());
        for (const Observation &obs : q) {
            w.u64(obs.when);
            w.u64(obs.line);
            w.u64(obs.flow);
            w.u32(obs.core);
        }
    }
    w.u32(rrCursor_);
    for (std::uint64_t served : servedPerCore_)
        w.u64(served);
    mpCache_.saveState(w);
    w.u64(busyUntil_);
    w.b(processingScheduled_);

    w.u64(stats_.missesObserved);
    w.u64(stats_.missesProcessed);
    w.u64(stats_.missesDroppedQueueFull);
    w.u64(stats_.prefetchesGenerated);
    ckpt::save(w, stats_.responseTime);
    ckpt::save(w, stats_.occupancyTime);
    ckpt::save(w, stats_.responseBusy);
    ckpt::save(w, stats_.responseMem);
    ckpt::save(w, stats_.occupancyBusy);
    ckpt::save(w, stats_.occupancyMem);
    w.u64(stats_.busyCycles);
    w.u64(stats_.memStallCycles);
    w.u64(stats_.instructions);

    for (const auto &s : shards_)
        s->saveState(w);
}

void
UlmtEngine::restoreState(ckpt::StateReader &r)
{
    std::uint64_t depth = 0;
    for (auto &q : queues2_) {
        q.clear();
        const std::uint64_t n = r.u64();
        depth += n;
        if (depth > tp_.queueDepth)
            throw ckpt::CkptError(
                "queue-2 depth exceeds the configuration");
        for (std::uint64_t i = 0; i < n; ++i) {
            Observation obs{};
            obs.when = r.u64();
            obs.line = r.u64();
            obs.flow = r.u64();
            obs.core = r.u32();
            q.push_back(obs);
        }
    }
    rrCursor_ = r.u32();
    if (rrCursor_ >= numCores_)
        throw ckpt::CkptError("round-robin cursor out of range");
    for (std::uint64_t &served : servedPerCore_)
        served = r.u64();
    mpCache_.restoreState(r);
    busyUntil_ = r.u64();
    processingScheduled_ = r.b();

    stats_.missesObserved = r.u64();
    stats_.missesProcessed = r.u64();
    stats_.missesDroppedQueueFull = r.u64();
    stats_.prefetchesGenerated = r.u64();
    ckpt::restore(r, stats_.responseTime);
    ckpt::restore(r, stats_.occupancyTime);
    ckpt::restore(r, stats_.responseBusy);
    ckpt::restore(r, stats_.responseMem);
    ckpt::restore(r, stats_.occupancyBusy);
    ckpt::restore(r, stats_.occupancyMem);
    stats_.busyCycles = r.u64();
    stats_.memStallCycles = r.u64();
    stats_.instructions = r.u64();

    for (const auto &s : shards_)
        s->restoreState(r);
}

void
UlmtEngine::registerStats(sim::StatRegistry &reg,
                          const std::string &prefix) const
{
    const auto n = [&prefix](const char *name) {
        return prefix + name;
    };
    reg.addCounter(n("misses_observed"), &stats_.missesObserved);
    reg.addCounter(n("misses_processed"), &stats_.missesProcessed);
    reg.addCounter(n("queue2.drops"), &stats_.missesDroppedQueueFull);
    reg.addCounter(n("prefetches_generated"),
                   &stats_.prefetchesGenerated);
    reg.addCounter(n("busy_cycles"), &stats_.busyCycles);
    reg.addCounter(n("mem_stall_cycles"), &stats_.memStallCycles);
    reg.addCounter(n("instructions"), &stats_.instructions);
    reg.addSample(n("response_cycles"), &stats_.responseTime);
    reg.addSample(n("occupancy_cycles"), &stats_.occupancyTime);
    reg.addSample(n("response_busy"), &stats_.responseBusy);
    reg.addSample(n("response_mem"), &stats_.responseMem);
    reg.addSample(n("occupancy_busy"), &stats_.occupancyBusy);
    reg.addSample(n("occupancy_mem"), &stats_.occupancyMem);
    reg.addGauge(n("ipc"), [this] { return stats_.ipc(); });
    // Table gauges aggregate across shards (one shard = that table).
    reg.addGauge(n("table.bytes"), [this] {
        double b = 0;
        for (const auto &s : shards_)
            b += double(s->tableBytes());
        return b;
    });
    reg.addGauge(n("table.insertions"), [this] {
        double v = 0;
        for (const auto &s : shards_)
            v += double(s->insertions());
        return v;
    });
    reg.addGauge(n("table.replacements"), [this] {
        double v = 0;
        for (const auto &s : shards_)
            v += double(s->replacements());
        return v;
    });
    // Per-tenant fairness: misses served per core, only on multi-core
    // engines so single-core stat output is unchanged.
    if (numCores_ > 1) {
        for (unsigned c = 0; c < numCores_; ++c) {
            reg.addCounter(prefix + "core." +
                               std::to_string(baseCore_ + c) +
                               ".served",
                           &servedPerCore_[c]);
        }
    }
}

} // namespace core
