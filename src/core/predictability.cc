#include "core/predictability.hh"

#include <algorithm>
#include <deque>

namespace core {

PredictabilityResult
evaluatePredictability(CorrelationPrefetcher &algo,
                       const std::vector<sim::Addr> &miss_stream,
                       std::uint32_t levels)
{
    PredictabilityResult res;
    res.accuracy.assign(levels, 0.0);
    res.misses = miss_stream.size();

    std::vector<std::uint64_t> correct(levels, 0);
    std::vector<std::uint64_t> scored(levels, 0);

    // Rolling window of the last `levels` prediction sets.
    std::deque<LevelPredictions> window;
    NullCostTracker null_cost;
    LevelPredictions preds;
    std::vector<sim::Addr> discard;

    for (sim::Addr miss : miss_stream) {
        // Score this miss against predictions made k misses ago.
        for (std::uint32_t k = 1; k <= levels; ++k) {
            if (window.size() < k)
                continue;
            const LevelPredictions &past = window[k - 1];
            ++scored[k - 1];
            if (k <= past.size()) {
                const auto &set = past[k - 1];
                if (std::find(set.begin(), set.end(), miss) != set.end())
                    ++correct[k - 1];
            }
        }

        // Observe: predict from current state, then advance it the way
        // the running ULMT would (prefetch step first, then learning).
        algo.predict(miss, preds);
        window.push_front(preds);
        if (window.size() > levels)
            window.pop_back();

        discard.clear();
        algo.prefetchStep(miss, discard, null_cost);
        algo.learnStep(miss, null_cost);
    }

    for (std::uint32_t k = 0; k < levels; ++k) {
        res.accuracy[k] = scored[k]
                              ? static_cast<double>(correct[k]) /
                                    static_cast<double>(scored[k])
                              : 0.0;
    }
    return res;
}

} // namespace core
