/**
 * @file
 * Composition of ULMT prefetching algorithms.
 *
 * Customization (Section 3.3.3) lets the programmer combine
 * algorithms: e.g. the CG customization runs a single-stream
 * sequential prefetcher before Replicated (Seq1+Repl, Table 5), and
 * the predictability study evaluates Seq4+Base and Seq4+Repl
 * (Figure 5).  The components execute in order in the Prefetching
 * step -- the cheap sequential check first, so sequential patterns get
 * the lowest response time -- and both learn every observed miss.
 */

#ifndef CORE_COMPOSITE_HH
#define CORE_COMPOSITE_HH

#include <memory>
#include <vector>

#include "core/correlation_prefetcher.hh"

namespace core {

/** Runs two or more prefetching algorithms back to back. */
class CompositePrefetcher : public CorrelationPrefetcher
{
  public:
    /**
     * @param parts components, executed in order
     * @param short_circuit stop after the first component that
     *        generates prefetches: a cheap front component (e.g. Seq1)
     *        then fully handles the misses it recognizes, keeping the
     *        thread's occupancy low on easy patterns (the CG
     *        customization of Section 5.2)
     */
    explicit CompositePrefetcher(
        std::vector<std::unique_ptr<CorrelationPrefetcher>> parts,
        bool short_circuit = false)
        : parts_(std::move(parts)), shortCircuit_(short_circuit)
    {
    }

    std::string
    name() const override
    {
        std::string n;
        for (const auto &p : parts_) {
            if (!n.empty())
                n += "+";
            n += p->name();
        }
        return n;
    }

    std::uint32_t
    levels() const override
    {
        std::uint32_t lv = 0;
        for (const auto &p : parts_)
            lv = std::max(lv, p->levels());
        return lv;
    }

    void
    prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                 CostTracker &cost) override
    {
        handledByFront_ = false;
        for (std::size_t i = 0; i < parts_.size(); ++i) {
            const std::size_t before = out.size();
            parts_[i]->prefetchStep(miss_line, out, cost);
            if (shortCircuit_ && i + 1 < parts_.size() &&
                out.size() > before) {
                handledByFront_ = true;
                break;
            }
        }
    }

    void
    learnStep(sim::Addr miss_line, CostTracker &cost) override
    {
        for (std::size_t i = 0; i < parts_.size(); ++i) {
            // In short-circuit mode the back components neither
            // prefetched nor learn misses the front one owns.
            if (handledByFront_ && i > 0)
                break;
            parts_[i]->learnStep(miss_line, cost);
        }
    }

    void
    predict(sim::Addr miss_line, LevelPredictions &out) const override
    {
        out.assign(levels(), {});
        LevelPredictions part;
        for (const auto &p : parts_) {
            p->predict(miss_line, part);
            for (std::size_t lvl = 0; lvl < part.size(); ++lvl) {
                out[lvl].insert(out[lvl].end(), part[lvl].begin(),
                                part[lvl].end());
            }
        }
    }

    std::size_t
    tableBytes() const override
    {
        std::size_t bytes = 0;
        for (const auto &p : parts_)
            bytes += p->tableBytes();
        return bytes;
    }

    std::uint64_t
    insertions() const override
    {
        std::uint64_t n = 0;
        for (const auto &p : parts_)
            n += p->insertions();
        return n;
    }

    std::uint64_t
    replacements() const override
    {
        std::uint64_t n = 0;
        for (const auto &p : parts_)
            n += p->replacements();
        return n;
    }

    void
    onPageRemap(sim::Addr old_page, sim::Addr new_page,
                std::uint32_t page_bytes, CostTracker &cost) override
    {
        for (auto &p : parts_)
            p->onPageRemap(old_page, new_page, page_bytes, cost);
    }

    /** Serialize each component in order plus the short-circuit flag
     *  that couples a prefetch step to the following learn step. */
    void
    saveState(ckpt::StateWriter &w) const override
    {
        w.u64(parts_.size());
        for (const auto &p : parts_)
            p->saveState(w);
        w.b(handledByFront_);
    }

    void
    restoreState(ckpt::StateReader &r) override
    {
        if (r.u64() != parts_.size()) {
            throw ckpt::CkptError(
                "composite component count in checkpoint does not "
                "match the configuration");
        }
        for (auto &p : parts_)
            p->restoreState(r);
        handledByFront_ = r.b();
    }

    void
    checkInvariants(check::CheckContext &ctx) const override
    {
        for (const auto &p : parts_)
            p->checkInvariants(ctx);
    }

  private:
    std::vector<std::unique_ptr<CorrelationPrefetcher>> parts_;
    bool shortCircuit_ = false;
    bool handledByFront_ = false;
};

} // namespace core

#endif // CORE_COMPOSITE_HH
