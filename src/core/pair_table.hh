/**
 * @file
 * The conventional pair-based correlation table (Section 2.2).
 *
 * Each row stores the tag of a miss address and a list of NumSucc
 * immediate-successor miss addresses kept in MRU order.  The table is
 * set-associative with a trivial hash (low bits of the line address),
 * exactly as the paper sizes it for Table 2.  Base and Chain share
 * this storage; Replicated uses its own multi-level row layout.
 *
 * The table is a software structure in simulated main memory: every
 * probe and update reports its cost (instructions + table-memory
 * touches) through a CostTracker so the ULMT engine can model the
 * memory processor's response and occupancy times.
 */

#ifndef CORE_PAIR_TABLE_HH
#define CORE_PAIR_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "core/cost.hh"
#include "core/params.hh"
#include "sim/types.hh"

namespace core {

/** One row of a conventional correlation table. */
struct PairRow
{
    sim::Addr tag = sim::invalidAddr;
    bool valid = false;
    std::uint64_t lruStamp = 0;
    /** Successors in MRU order (front = most recent). */
    std::vector<sim::Addr> succ;
};

/** Set-associative table of PairRows. */
class PairTable
{
  public:
    /**
     * @param p geometry (numRows, numSucc, assoc) and base address
     * @param row_bytes simulated size of one row (20 B for Base's
     *        4-successor rows, 12 B for Chain's 2-successor rows, in
     *        the paper's 32-bit accounting)
     */
    PairTable(const CorrelationParams &p, std::uint32_t row_bytes);

    /** Associative lookup with cost accounting. */
    PairRow *find(sim::Addr miss_line, CostTracker &cost);
    const PairRow *findNoCost(sim::Addr miss_line) const;

    /**
     * Lookup; on miss, allocate (LRU within the set), recording
     * whether a live row was displaced.
     */
    PairRow *findOrAlloc(sim::Addr miss_line, CostTracker &cost);

    /** Insert @p succ_line at the MRU position of @p row. */
    void insertSuccessor(PairRow &row, sim::Addr succ_line,
                         CostTracker &cost);

    /** Simulated address of a row (for the cost model's cache). */
    sim::Addr rowAddr(const PairRow &row) const;

    /** Bytes one row occupies in simulated memory. */
    std::uint32_t rowBytes() const { return rowBytes_; }

    /** Remove a row so its tag can move (page remapping). */
    void invalidate(sim::Addr miss_line);

    std::size_t tableBytes() const
    {
        return static_cast<std::size_t>(params_.numRows) * rowBytes_;
    }
    std::uint64_t insertions() const { return insertions_; }
    std::uint64_t replacements() const { return replacements_; }
    const CorrelationParams &params() const { return params_; }

    /**
     * Serialize valid rows (sparse), the LRU stamp counter and the
     * insertion/replacement counters.  Restore validates the geometry
     * against this instance's configuration.
     */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

    /** Iterate over all valid rows (page remapping, debug). */
    template <typename Fn>
    void
    forEachRow(Fn &&fn)
    {
        for (auto &row : rows_) {
            if (row.valid)
                fn(row);
        }
    }

    /** Read-only row walk (reference-model resync). */
    template <typename Fn>
    void
    forEachRow(Fn &&fn) const
    {
        for (const auto &row : rows_) {
            if (row.valid)
                fn(row);
        }
    }

    /**
     * Invariants: every valid row's tag maps to the set it sits in
     * and appears only once there, successor lists never exceed
     * NumSucc and never repeat an address (insertSuccessor dedups by
     * rotation), and no LRU stamp exceeds the stamp counter.
     * @p who names the owning algorithm in violation messages.
     */
    void checkInvariants(check::CheckContext &ctx,
                         const std::string &who) const;

  private:
    friend struct check::CheckTestPeer;

    std::uint32_t setIndex(sim::Addr miss_line) const;

    CorrelationParams params_;
    std::uint32_t rowBytes_;
    std::uint32_t rowStride_;  //!< line-aligned pitch of rows in memory
    std::uint32_t numSets_;
    std::vector<PairRow> rows_;
    std::uint64_t stampCounter_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t replacements_ = 0;
};

} // namespace core

#endif // CORE_PAIR_TABLE_HH
