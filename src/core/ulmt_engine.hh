/**
 * @file
 * The User-Level Memory Thread engine: the paper's primary mechanism.
 *
 * The engine runs the infinite loop of Figure 2 on the memory
 * processor.  It observes the miss stream the memory controller
 * exposes (queue 2), and for each observed miss executes the
 * Prefetching step (table lookup + prefetch generation; its duration
 * is the response time) followed by the Learning step (table update);
 * the total is the occupancy time.  Misses arriving while the thread
 * is busy queue up in queue 2 and are dropped when it overflows.
 *
 * Execution cost is derived from the actual operations the algorithm
 * performs: instructions retire at the memory processor's issue width
 * (2-issue, 800 MHz), and every table-memory touch goes through a
 * model of the memory processor's 32 KB L1 cache, with misses paying
 * placement-dependent DRAM latency (and contending for real banks).
 */

#ifndef CORE_ULMT_ENGINE_HH
#define CORE_ULMT_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "core/correlation_prefetcher.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace core {

/** ULMT execution statistics (feeds Figure 10). */
struct UlmtStats
{
    std::uint64_t missesObserved = 0;    //!< deposited in queue 2
    std::uint64_t missesProcessed = 0;
    std::uint64_t missesDroppedQueueFull = 0;
    std::uint64_t prefetchesGenerated = 0;

    sim::SampleStat responseTime;   //!< main cycles, per miss
    sim::SampleStat occupancyTime;  //!< main cycles, per miss
    sim::SampleStat responseBusy;   //!< computation part of response
    sim::SampleStat responseMem;    //!< table-memory part of response
    sim::SampleStat occupancyBusy;  //!< computation part of occupancy
    sim::SampleStat occupancyMem;   //!< table-memory part of occupancy
    sim::Cycle busyCycles = 0;      //!< main cycles of computation
    sim::Cycle memStallCycles = 0;  //!< main cycles of table-mem stall
    sim::InstCount instructions = 0;

    /** Memory-processor IPC: instructions per 800 MHz cycle. */
    double
    ipc() const
    {
        const double mem_proc_cycles =
            static_cast<double>(busyCycles + memStallCycles) /
            static_cast<double>(sim::mainCyclesPerMemProcCycle);
        return mem_proc_cycles > 0.0
                   ? static_cast<double>(instructions) / mem_proc_cycles
                   : 0.0;
    }
};

/** The ULMT running on the memory processor. */
class UlmtEngine : public mem::MissObserver
{
  public:
    /**
     * @param eq global event queue
     * @param tp machine parameters (placement, memproc cache, queues)
     * @param ms the memory system (prefetch injection, table DRAM)
     * @param algo the prefetching algorithm this thread executes
     */
    UlmtEngine(sim::EventQueue &eq, const mem::TimingParams &tp,
               mem::MemorySystem &ms,
               std::unique_ptr<CorrelationPrefetcher> algo);

    /**
     * Multicore form.  @p shards holds either one algorithm serving
     * every tenant (shared mode) or one algorithm per served core
     * (sharded tables, each built with a distinct table base).  The
     * engine serves cores [@p base_core, @p base_core + @p num_cores)
     * round-robin from per-core sub-queues of queue 2; percore mode
     * instantiates one engine per core with num_cores = 1.
     * @p engine_id is carried in the arg0 of UlmtProcess events so the
     * driver can resolve them to the right engine on restore.
     */
    UlmtEngine(sim::EventQueue &eq, const mem::TimingParams &tp,
               mem::MemorySystem &ms,
               std::vector<std::unique_ptr<CorrelationPrefetcher>> shards,
               unsigned num_cores, unsigned base_core,
               unsigned engine_id);

    /** mem::MissObserver: a miss became visible in queue 2. */
    void observeMiss(sim::Cycle when, sim::Addr line_addr,
                     sim::RequestKind kind) override;

    /** Deliver a page-remap notification to the algorithm (Sec 3.4). */
    void pageRemap(sim::Addr old_page, sim::Addr new_page,
                   std::uint32_t page_bytes);

    const UlmtStats &stats() const { return stats_; }
    /** The first (or only) algorithm shard. */
    CorrelationPrefetcher &algorithm() { return *shards_[0]; }
    const CorrelationPrefetcher &algorithm() const { return *shards_[0]; }

    /** Number of algorithm shards (1 unless sharded mode). */
    std::size_t numShards() const { return shards_.size(); }
    CorrelationPrefetcher &shard(std::size_t i) { return *shards_[i]; }
    const CorrelationPrefetcher &shard(std::size_t i) const
    {
        return *shards_[i];
    }

    /** Id carried in this engine's UlmtProcess events. */
    unsigned engineId() const { return engineId_; }
    /** First core this engine serves. */
    unsigned baseCore() const { return baseCore_; }
    /** Number of cores this engine serves. */
    unsigned numCoresServed() const { return numCores_; }

    /** Misses served per core (sized numCoresServed). */
    const std::vector<std::uint64_t> &servedPerCore() const
    {
        return servedPerCore_;
    }

    /** Misses currently waiting in queue 2 (sampling only). */
    std::size_t
    queue2Depth() const
    {
        std::size_t n = 0;
        for (const auto &q : queues2_)
            n += q.size();
        return n;
    }

    /** The memory processor's L1 (deep-checker shadow attachment). */
    mem::Cache &mpCache() { return mpCache_; }
    const mem::Cache &mpCache() const { return mpCache_; }

    /**
     * Install a passive hook fired after each processed miss's
     * Learning step, with the miss line.  The deep checker's oracle
     * pair table feeds on it; nullptr disables (one compare per
     * processed miss).
     */
    void
    setMissHook(std::function<void(sim::Addr)> hook)
    {
        missHook_ = std::move(hook);
    }

    /**
     * Invariants: queue 2 never exceeds the configured depth, the
     * memory-processor cache is structurally sound with every line's
     * fillOrigin at its defined default (its fills never set one),
     * and the algorithm's own table invariants hold.
     */
    void
    checkInvariants(check::CheckContext &ctx) const
    {
        const std::size_t depth = queue2Depth();
        ctx.require(depth <= tp_.queueDepth, "ulmt",
                    "queue 2 holds " + std::to_string(depth) +
                        " observations, depth limit " +
                        std::to_string(tp_.queueDepth));
        mpCache_.checkInvariants(ctx, sim::ServedBy::Memory);
        for (const auto &s : shards_)
            s->checkInvariants(ctx);
    }

    /**
     * Register thread/table stats, prepending @p prefix ("ulmt." by
     * default; multi-engine machines use "ulmt.<engine>.").
     */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix = "ulmt.") const;

    /** Emit prefetch/learn-step spans into @p t (nullptr disables). */
    void setTrace(sim::TraceEventBuffer *t) { trace_ = t; }

    /** The process-queue-2 closure (shared by run and restore). */
    sim::EventQueue::Action
    processAction()
    {
        return [this] { processNext(); };
    }

    /** Serialize queue 2, the memory-processor cache, the thread's
     *  occupancy state, the statistics and the algorithm's table. */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

  private:
    friend struct check::CheckTestPeer;

    /**
     * Cost tracker that models execution on the memory processor:
     * instructions at 1 main cycle each (2-issue at 800 MHz), table
     * touches through the modeled L1 and, on a miss, the DRAM.
     */
    class ExecCost : public CostTracker
    {
      public:
        ExecCost(UlmtEngine &engine, sim::Cycle start)
            : engine_(engine), start_(start)
        {
        }

        void instr(std::uint32_t n) override;
        void memRead(sim::Addr addr, std::uint32_t bytes) override;
        void memWrite(sim::Addr addr, std::uint32_t bytes) override;
        void memInvalidate(sim::Addr addr,
                           std::uint32_t bytes) override;

        sim::Cycle busy() const { return busy_; }
        sim::Cycle memStall() const { return memStall_; }
        sim::Cycle elapsed() const { return busy_ + memStall_; }
        sim::InstCount instructions() const { return instructions_; }

      private:
        void touch(sim::Addr addr, std::uint32_t bytes, bool is_write);

        UlmtEngine &engine_;
        sim::Cycle start_;
        sim::Cycle busy_ = 0;
        sim::Cycle memStall_ = 0;
        sim::InstCount instructions_ = 0;
    };

    /** Process the head of queue 2 (one iteration of Fig. 2's loop). */
    void processNext();

    /** Schedule processNext if idle and work is pending. */
    void kick(sim::Cycle earliest);

    /** Trace track of this engine (distinct per engine id). */
    std::uint32_t traceTid() const;

    /** The shard serving @p core (the single shard in shared mode). */
    CorrelationPrefetcher &
    algoFor(unsigned core)
    {
        return shards_.size() == 1 ? *shards_[0]
                                   : *shards_[core - baseCore_];
    }

    sim::EventQueue &eq_;
    const mem::TimingParams &tp_;
    mem::MemorySystem &ms_;
    /** One algorithm, or one per served core (sharded tables). */
    std::vector<std::unique_ptr<CorrelationPrefetcher>> shards_;
    unsigned numCores_ = 1;   //!< cores served by this engine
    unsigned baseCore_ = 0;   //!< first served core id
    unsigned engineId_ = 0;   //!< arg0 of this engine's events

    /** Queue 2: observed misses waiting for the thread. */
    struct Observation
    {
        sim::Cycle when;
        sim::Addr line;
        std::uint64_t flow;  //!< trace flow id of the miss (0 = none)
        unsigned core;       //!< requesting core
    };
    /**
     * One sub-queue per served core; the thread drains them
     * round-robin so no tenant can starve the others.  Their combined
     * occupancy is bounded by the single physical queue-2 depth.
     */
    std::vector<std::deque<Observation>> queues2_;
    /** Round-robin scan start for the next processed miss. */
    unsigned rrCursor_ = 0;
    /** Misses served per core (fairness accounting). */
    std::vector<std::uint64_t> servedPerCore_;

    /** The memory processor's L1 cache (holds the table's hot rows). */
    mem::Cache mpCache_;

    sim::Cycle busyUntil_ = 0;
    bool processingScheduled_ = false;
    std::vector<sim::Addr> scratch_;
    UlmtStats stats_;
    sim::TraceEventBuffer *trace_ = nullptr;
    /** Deep-checker feed: fired after each miss's Learning step. */
    std::function<void(sim::Addr)> missHook_;
};

} // namespace core

#endif // CORE_ULMT_ENGINE_HH
