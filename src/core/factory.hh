/**
 * @file
 * Construction of ULMT algorithms by name (the customization hook of
 * Section 3.3.3: the programmer or system picks an algorithm and its
 * parameters per application).
 */

#ifndef CORE_FACTORY_HH
#define CORE_FACTORY_HH

#include <memory>
#include <string>

#include "core/correlation_prefetcher.hh"
#include "core/params.hh"

namespace core {

/** The ULMT algorithms evaluated in the paper (Table 4 + Table 5). */
enum class UlmtAlgo {
    None,      //!< no memory-side prefetching
    Base,
    Chain,
    Repl,
    Seq1,
    Seq4,
    Seq4Base,  //!< Figure 5 combination
    Seq4Repl,  //!< Figure 5 combination
    Seq1Repl,  //!< the CG customization (Table 5)
    Adaptive,  //!< extension: on-the-fly algorithm selection
    ReplCA,    //!< extension: Repl + conflict-aware push filtering
    Profile    //!< extension: observe-only profiling ULMT
};

/** Printable algorithm name. */
std::string to_string(UlmtAlgo algo);

/** Parse an algorithm name ("Base", "Repl", "Seq4+Repl", ...). */
UlmtAlgo parseUlmtAlgo(const std::string &name);

/**
 * How the memory-side service is shared among --cores=N tenants
 * (single-core machines always behave as Shared).
 */
enum class UlmtMode : std::uint8_t {
    Shared,  //!< one ULMT + one table, serving all cores round-robin
    PerCore, //!< one ULMT and one table per core
    Sharded  //!< one ULMT, but the table is sharded by core id
};

/** Printable mode name ("shared", "percore", "sharded"). */
std::string to_string(UlmtMode mode);

/** Parse a serving-mode name. */
UlmtMode parseUlmtMode(const std::string &name);

/** Full specification of a ULMT (algorithm + table geometry + mode). */
struct UlmtSpec
{
    UlmtAlgo algo = UlmtAlgo::None;
    /** Table rows, sized per application (Table 2). */
    std::uint32_t numRows = 128 * 1024;
    /** Levels of successors for Chain/Repl (Table 5 uses 4). */
    std::uint32_t numLevels = 3;
    /** Verbose mode: the ULMT also sees processor prefetches. */
    bool verbose = false;

    bool enabled() const { return algo != UlmtAlgo::None; }
};

/**
 * Build the algorithm described by @p spec with Table 4 parameter
 * defaults (Base: NumSucc=4/Assoc=4; Chain/Repl: NumSucc=2/Assoc=2;
 * Seq: NumSeq streams, NumPref=6).
 *
 * @param table_base simulated base address of the correlation table;
 *        0 keeps the CorrelationParams default.  Multicore sharded and
 *        per-core tables pass distinct bases so shards never alias in
 *        the memory processor's cache or the DRAM banks.
 */
std::unique_ptr<CorrelationPrefetcher>
makeAlgorithm(const UlmtSpec &spec, std::uint64_t table_base = 0);

/** Table base of shard @p shard (4 GB of table space per shard). */
constexpr std::uint64_t
shardTableBase(unsigned shard)
{
    return 0x40'0000'0000ULL +
           static_cast<std::uint64_t>(shard) * 0x1'0000'0000ULL;
}

} // namespace core

#endif // CORE_FACTORY_HH
