/**
 * @file
 * A profiling ULMT (Section 3.3.3 / Section 7 extension).
 *
 * The paper notes that the ULMT "can monitor the misses of an
 * application and infer higher-level information such as cache
 * performance, application access patterns, or page conflicts".  This
 * algorithm performs no prefetching; instead it aggregates the
 * observed miss stream into per-page miss counts, an L2-set pressure
 * map (to expose conflict hot spots such as the paper reports for
 * Sparse and Tree), and a sequentiality estimate.
 */

#ifndef CORE_PROFILER_HH
#define CORE_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/correlation_prefetcher.hh"

namespace core {

/** Summary emitted by the profiling ULMT. */
struct MissProfile
{
    std::uint64_t misses = 0;
    /** Fraction of misses at +/-1 line from the previous miss. */
    double sequentialFraction = 0.0;
    /** Pages sorted by miss count (page index, count). */
    std::vector<std::pair<sim::Addr, std::uint64_t>> hottestPages;
    /** L2 sets sorted by miss pressure (set index, count). */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> hottestSets;
    /** Number of distinct lines that missed (footprint estimate). */
    std::uint64_t distinctLines = 0;
};

/** Observe-only ULMT algorithm that builds a MissProfile. */
class ProfilingUlmt : public CorrelationPrefetcher
{
  public:
    /**
     * @param page_bytes page size for the per-page histogram
     * @param l2_sets number of L2 sets (for conflict attribution)
     * @param l2_line_bytes L2 line size
     */
    ProfilingUlmt(std::uint32_t page_bytes, std::uint32_t l2_sets,
                  std::uint32_t l2_line_bytes)
        : pageBytes_(page_bytes), l2Sets_(l2_sets),
          l2LineBytes_(l2_line_bytes)
    {
    }

    std::string name() const override { return "Profile"; }
    std::uint32_t levels() const override { return 1; }

    void
    prefetchStep(sim::Addr, std::vector<sim::Addr> &,
                 CostTracker &cost) override
    {
        cost.instr(2);  // nothing to do: lowest possible response time
    }

    void learnStep(sim::Addr miss_line, CostTracker &cost) override;

    void
    predict(sim::Addr, LevelPredictions &out) const override
    {
        out.assign(1, {});
    }

    /** Build the report (top @p top_n pages and sets). */
    MissProfile report(std::size_t top_n = 10) const;

  private:
    std::uint32_t pageBytes_;
    std::uint32_t l2Sets_;
    std::uint32_t l2LineBytes_;

    std::unordered_map<sim::Addr, std::uint64_t> pageMisses_;
    std::unordered_map<std::uint32_t, std::uint64_t> setMisses_;
    std::unordered_map<sim::Addr, std::uint32_t> lineSeen_;
    std::uint64_t misses_ = 0;
    std::uint64_t sequential_ = 0;
    sim::Addr lastLine_ = sim::invalidAddr;
};

} // namespace core

#endif // CORE_PROFILER_HH
