#include "core/seq_prefetcher.hh"

#include <algorithm>

namespace core {

SeqPrefetcher::Stream *
SeqPrefetcher::match(sim::Addr line)
{
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t dist =
            (static_cast<std::int64_t>(s.nextExpected) -
             static_cast<std::int64_t>(line)) *
            s.stride;
        if (dist >= 0 &&
            dist <= static_cast<std::int64_t>(p_.lookahead()))
            return &s;
    }
    return nullptr;
}

const SeqPrefetcher::Stream *
SeqPrefetcher::match(sim::Addr line) const
{
    return const_cast<SeqPrefetcher *>(this)->match(line);
}

SeqPrefetcher::Stream *
SeqPrefetcher::allocStream()
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid)
            return &s;
        if (s.stamp < victim->stamp)
            victim = &s;
    }
    return victim;
}

bool
SeqPrefetcher::inHistory(sim::Addr line) const
{
    return std::find(history_.begin(), history_.end(), line) !=
           history_.end();
}

void
SeqPrefetcher::emitAhead(Stream &s, sim::Addr from_line,
                         std::vector<sim::Addr> &out, CostTracker &cost)
{
    // Keep the stream lookahead() lines ahead of the observed miss.
    const std::int64_t target =
        static_cast<std::int64_t>(from_line) +
        s.stride * static_cast<std::int64_t>(p_.lookahead());
    while (true) {
        const std::int64_t next =
            static_cast<std::int64_t>(s.nextExpected) + s.stride;
        if (next < 0 || (target - next) * s.stride < 0)
            break;
        s.nextExpected = static_cast<sim::Addr>(next);
        cost.instr(cost::emitPrefetch);
        out.push_back(s.nextExpected * p_.lineBytes);
    }
    s.stamp = ++stampCounter_;
}

void
SeqPrefetcher::prefetchStep(sim::Addr miss_line,
                            std::vector<sim::Addr> &out,
                            CostTracker &cost)
{
    const sim::Addr line = lineOf(miss_line);
    cost.instr(cost::seqCheck * p_.numSeq);

    if (Stream *s = match(line)) {
        s->lastMiss = line;
        emitAhead(*s, line, out, cost);
        return;
    }

    // Detection: the third miss of a +/-1 line sequence.
    for (std::int64_t stride : {std::int64_t{1}, std::int64_t{-1}}) {
        const sim::Addr prev1 = line - static_cast<sim::Addr>(stride);
        const sim::Addr prev2 = line - static_cast<sim::Addr>(2 * stride);
        if (inHistory(prev1) && inHistory(prev2)) {
            cost.instr(cost::seqCheck);
            Stream *s = allocStream();
            s->valid = true;
            s->stride = stride;
            s->nextExpected = line;
            s->lastMiss = line;
            ++streamsDetected_;
            emitAhead(*s, line, out, cost);
            return;
        }
    }
}

void
SeqPrefetcher::learnStep(sim::Addr miss_line, CostTracker &cost)
{
    cost.instr(2);
    history_.push_back(lineOf(miss_line));
    if (history_.size() > p_.historyDepth)
        history_.pop_front();
}

void
SeqPrefetcher::predict(sim::Addr miss_line, LevelPredictions &out) const
{
    // The paper scores a sequential prediction as correct when the
    // upcoming miss "matches the next address predicted by one of the
    // streams identified" -- so every active stream contributes its
    // upcoming lines, not just the stream the current miss belongs to.
    out.assign(p_.numPref, {});
    const sim::Addr line = lineOf(miss_line);
    for (const Stream &s : streams_) {
        if (!s.valid)
            continue;
        // Next expected line of this stream: continue from the current
        // miss if it belongs to the stream, else from the last miss
        // observed on it.
        const std::int64_t dist =
            (static_cast<std::int64_t>(s.nextExpected) -
             static_cast<std::int64_t>(line)) *
            s.stride;
        const sim::Addr from =
            (dist >= -1 &&
             dist <= 4 * static_cast<std::int64_t>(p_.numPref))
                ? line
                : s.lastMiss;
        for (std::uint32_t lvl = 0; lvl < p_.numPref; ++lvl) {
            const std::int64_t pred =
                static_cast<std::int64_t>(from) +
                s.stride * static_cast<std::int64_t>(lvl + 1);
            if (pred >= 0) {
                out[lvl].push_back(static_cast<sim::Addr>(pred) *
                                   p_.lineBytes);
            }
        }
    }
}

} // namespace core
