/**
 * @file
 * A minimal JSON reader for the repo's own machine-readable outputs
 * (BENCH_*.json, stat dumps).  Recursive descent, no dependencies;
 * objects preserve insertion order so reports render keys in the order
 * the writer emitted them.
 *
 * This is a consumer for files the simulator itself writes -- it
 * accepts standard JSON (RFC 8259) but makes no attempt to be a
 * hardened parser for hostile input.
 */

#ifndef SIM_JSON_HH
#define SIM_JSON_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sim {

/** Malformed input, with a byte offset in the message. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One JSON value; a tagged union over the seven RFC types
 *  (integers are kept exact alongside the double). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** Set when the number was written without '.'/exponent and fits
     *  an int64 -- lets consumers compare counters exactly. */
    bool isInteger = false;
    long long integer = 0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Object members in insertion order (duplicates keep both). */
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** find() that throws JsonError naming the missing @p key. */
    const JsonValue &at(const std::string &key) const;

    /** The number (0.0 when not a number). */
    double asNumber() const { return isNumber() ? number : 0.0; }

    /** The string ("" when not a string). */
    const std::string &asString() const { return str; }
};

/**
 * Relative difference between two JSON numbers:
 * |a - b| / max(|a|, |b|), and 0.0 exactly when the values are
 * identical.  When both sides carry the exact-int64 tag the
 * difference is computed in integer space, so counters above 2^53
 * that collapse to the same double still report a nonzero drift --
 * routing them through double would silently forgive it.
 */
double numberRelDiff(const JsonValue &a, const JsonValue &b);

/** Parse one JSON document; trailing whitespace allowed, trailing
 *  garbage is an error.  @throws JsonError */
JsonValue parseJson(const std::string &text);

/** Read and parse a JSON file.  @throws JsonError (also on I/O). */
JsonValue parseJsonFile(const std::string &path);

} // namespace sim

#endif // SIM_JSON_HH
