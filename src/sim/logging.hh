/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for simulator bugs (conditions that should be impossible
 * regardless of configuration); fatal() is for user errors (bad
 * configuration or arguments); warn()/inform() report conditions that do
 * not stop the simulation.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <string>

namespace sim {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message: a condition that indicates a simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: a condition caused by bad user input. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Redirect this thread's warn()/inform() output into @p sink (nullptr
 * restores stderr).  The parallel experiment runner gives every job
 * its own buffer so concurrent simulations never interleave their
 * diagnostics; the runner replays the buffers in job order.  panic()
 * and fatal() flush the pending sink to stderr before exiting.
 */
void setThreadLogSink(std::string *sink);

/** Implementation detail of SIM_ASSERT. */
[[noreturn]] void assertFail(const char *cond, const std::string &msg);

/** panic() unless the condition holds. */
#define SIM_ASSERT(cond, ...)                                            \
    do {                                                                 \
        if (!(cond))                                                     \
            ::sim::assertFail(#cond, ::sim::strformat(__VA_ARGS__));     \
    } while (0)

} // namespace sim

#endif // SIM_LOGGING_HH
