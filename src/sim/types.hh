/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 *
 * All timing in the simulator is expressed in main-processor cycles
 * (1.6 GHz in the paper's configuration, Table 3).  The memory processor
 * runs at half that frequency; components that model it convert with
 * memProcCyclesToMain().
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace sim {

/** A physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** A point in simulated time, in main-processor cycles. */
using Cycle = std::uint64_t;

/** A count of instructions executed by a modeled core. */
using InstCount = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / unscheduled. */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/**
 * Ratio of main-processor cycles to memory-processor cycles.  The paper
 * models a 1.6 GHz main core and an 800 MHz memory core (Table 3).
 */
inline constexpr Cycle mainCyclesPerMemProcCycle = 2;

/** Convert a duration measured in memory-processor cycles to main cycles. */
constexpr Cycle
memProcCyclesToMain(Cycle mem_proc_cycles)
{
    return mem_proc_cycles * mainCyclesPerMemProcCycle;
}

/**
 * Classification of the agent that generated a memory request.  Used to
 * implement the Verbose / Non-Verbose observation modes of Section 3.2:
 * in Non-Verbose mode the ULMT only sees Demand requests, while in
 * Verbose mode it also sees CpuPrefetch requests (the paper assumes
 * prefetch requests are distinguishable, as in the MIPS R10000).
 */
enum class RequestKind : std::uint8_t {
    Demand,      //!< A load/store miss from the main processor.
    CpuPrefetch, //!< Issued by the processor-side stream prefetcher.
    UlmtPrefetch //!< Issued by the user-level memory thread.
};

/** Which level of the hierarchy ultimately served an access. */
enum class ServedBy : std::uint8_t {
    L1,     //!< L1 hit.
    L2,     //!< L1 miss that hit in L2.
    Memory  //!< L2 miss serviced by main memory.
};

} // namespace sim

#endif // SIM_TYPES_HH
