/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 *
 * All timing in the simulator is expressed in main-processor cycles
 * (1.6 GHz in the paper's configuration, Table 3).  The memory processor
 * runs at half that frequency; components that model it convert with
 * memProcCyclesToMain().
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace sim {

/** A physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** A point in simulated time, in main-processor cycles. */
using Cycle = std::uint64_t;

/** A count of instructions executed by a modeled core. */
using InstCount = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / unscheduled. */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/**
 * Ratio of main-processor cycles to memory-processor cycles.  The paper
 * models a 1.6 GHz main core and an 800 MHz memory core (Table 3).
 */
inline constexpr Cycle mainCyclesPerMemProcCycle = 2;

/** Convert a duration measured in memory-processor cycles to main cycles. */
constexpr Cycle
memProcCyclesToMain(Cycle mem_proc_cycles)
{
    return mem_proc_cycles * mainCyclesPerMemProcCycle;
}

// --- Multicore tagging ------------------------------------------------
//
// With --cores=N every miss/prefetch in flight below the L2 belongs to
// one core.  Rather than widening every map, event argument and filter
// key with a second field, the core id is packed into the upper bits of
// the line address: real addresses never reach bit 56 (workload address
// spaces sit below 2^42), so bits [63:56] are free.  Core 0's key is
// numerically identical to the raw line address, which keeps every
// single-core data structure, event payload and checkpoint byte
// bit-identical to the pre-multicore simulator.

/** Maximum number of main processors (--cores). */
inline constexpr unsigned maxCores = 64;

/** Bit position of the core-id tag inside a packed (core,line) key. */
inline constexpr unsigned coreKeyShift = 56;

/** Pack a (core, L2-line address) pair into one map/event key. */
constexpr Addr
packCoreLine(unsigned core, Addr line)
{
    return line | (static_cast<Addr>(core) << coreKeyShift);
}

/** The core id of a packed key (0 for untagged single-core keys). */
constexpr unsigned
coreOfKey(Addr key)
{
    return static_cast<unsigned>(key >> coreKeyShift);
}

/** The raw line address of a packed key. */
constexpr Addr
lineOfKey(Addr key)
{
    return key & ((static_cast<Addr>(1) << coreKeyShift) - 1);
}

/**
 * Classification of the agent that generated a memory request.  Used to
 * implement the Verbose / Non-Verbose observation modes of Section 3.2:
 * in Non-Verbose mode the ULMT only sees Demand requests, while in
 * Verbose mode it also sees CpuPrefetch requests (the paper assumes
 * prefetch requests are distinguishable, as in the MIPS R10000).
 */
enum class RequestKind : std::uint8_t {
    Demand,      //!< A load/store miss from the main processor.
    CpuPrefetch, //!< Issued by the processor-side stream prefetcher.
    UlmtPrefetch //!< Issued by the user-level memory thread.
};

/** Which level of the hierarchy ultimately served an access. */
enum class ServedBy : std::uint8_t {
    L1,     //!< L1 hit.
    L2,     //!< L1 miss that hit in L2.
    Memory  //!< L2 miss serviced by main memory.
};

} // namespace sim

#endif // SIM_TYPES_HH
