#include "sim/trace_event.hh"

#include <stdexcept>

#include "sim/logging.hh"

namespace sim {

namespace {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0)
        return "null";
    return strformat("%.17g", v);
}

/**
 * Flow ids are unique only within one run's buffer; Chrome matches
 * flow events by id globally, so salt with the pid to keep arrows
 * from crossing between processes.
 */
std::uint64_t
saltFlowId(std::uint64_t id, std::uint32_t pid)
{
    return id ^ (static_cast<std::uint64_t>(pid) << 48);
}

/** Metadata event naming a process or thread. */
std::string
metaEvent(const char *what, std::uint32_t pid, std::uint32_t tid,
          const std::string &name)
{
    return strformat("{\"ph\": \"M\", \"name\": \"%s\", "
                     "\"pid\": %u, \"tid\": %u, \"args\": "
                     "{\"name\": %s}}",
                     what, pid, tid, jsonQuote(name).c_str());
}

} // namespace

TraceEventWriter::TraceEventWriter(const std::string &path)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        throw std::runtime_error("cannot create trace-event file '" +
                                 path + "'");
    std::fputs("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n",
               file_);
}

TraceEventWriter::~TraceEventWriter()
{
    finish();
}

void
TraceEventWriter::emitEvent(std::string &out, const TraceEvent &e,
                            std::uint32_t pid) const
{
    out += strformat("{\"ph\": \"%c\", \"name\": ",
                     static_cast<char>(e.ph));
    out += jsonQuote(e.name);
    out += strformat(", \"cat\": \"%s\", \"ts\": %llu, "
                     "\"pid\": %u, \"tid\": %u",
                     e.cat, (unsigned long long)e.ts, pid, e.tid);
    switch (e.ph) {
      case TracePhase::Complete:
        out += strformat(", \"dur\": %llu", (unsigned long long)e.dur);
        break;
      case TracePhase::Instant:
        out += ", \"s\": \"t\"";  // thread-scoped marker
        break;
      case TracePhase::Counter:
        out += ", \"args\": {\"value\": " + jsonNumber(e.value) + "}";
        break;
      case TracePhase::FlowStart:
      case TracePhase::FlowStep:
        out += strformat(", \"id\": %llu",
                         (unsigned long long)saltFlowId(e.id, pid));
        break;
      case TracePhase::FlowEnd:
        // Bind the arrow head to the enclosing slice, not its end.
        out += strformat(", \"id\": %llu, \"bp\": \"e\"",
                         (unsigned long long)saltFlowId(e.id, pid));
        break;
    }
    out += "}";
}

void
TraceEventWriter::writeProcess(const std::string &process_name,
                               const TraceEventBuffer &buf)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;  // finished early; drop silently
    const std::uint32_t pid = nextPid_++;

    std::string out;
    out.reserve(128 * (buf.size() + 8));
    auto sep = [&] {
        if (!firstEvent_)
            out += ",\n";
        firstEvent_ = false;
    };

    sep();
    out += metaEvent("process_name", pid, 0, process_name);
    static const struct
    {
        std::uint32_t tid;
        const char *name;
    } threads[] = {
        {traceTidUlmt, "ulmt"},       {traceTidMemsys, "memsys"},
        {traceTidBus, "bus"},         {traceTidDram, "dram"},
        {traceTidSampler, "sampler"},
    };
    for (const auto &t : threads) {
        sep();
        out += metaEvent("thread_name", pid, t.tid, t.name);
    }
    for (const TraceEvent &e : buf.events()) {
        sep();
        emitEvent(out, e, pid);
    }
    std::fwrite(out.data(), 1, out.size(), file_);
}

void
TraceEventWriter::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fputs("\n]}\n", file_);
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace sim
