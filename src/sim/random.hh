/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator (workload structure
 * generation, input permutations) draws from a seeded Rng so that runs
 * are exactly reproducible.  The generator is xoshiro256**, which is
 * fast and has no observable statistical defects at this scale.
 */

#ifndef SIM_RANDOM_HH
#define SIM_RANDOM_HH

#include <cstdint>

#include "sim/logging.hh"

namespace sim {

/** A small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SIM_ASSERT(bound > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection-free mapping; bias is
        // negligible for the bounds used here (all << 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        SIM_ASSERT(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return real() < p; }

    /** Complete generator state (checkpointing). */
    struct State
    {
        std::uint64_t s[4];
    };

    State
    state() const
    {
        return State{{state_[0], state_[1], state_[2], state_[3]}};
    }

    /** Resume the exact stream position a state() call captured. */
    void
    setState(const State &st)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = st.s[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sim

#endif // SIM_RANDOM_HH
