/**
 * @file
 * Time-series sampling of simulator state, driven off the event
 * queue's ticker hook (EventQueue::setTicker).
 *
 * Each channel is a named gauge re-read on every tick (queue depths,
 * MSHR occupancy, filter hit rate, table footprint, running
 * response/occupancy means, ...).  Samples land in a bounded adaptive
 * ring: when the buffer fills, every other row is dropped and the
 * nominal interval doubles, so an arbitrarily long run is always
 * summarized by at most `capacity` rows spanning the whole run --
 * never a truncated prefix.
 *
 * The sampler only *reads* component state; it never schedules events
 * or mutates the simulation, so runs are bit-identical with sampling
 * on or off (pinned by tests/test_observability.cc).
 */

#ifndef SIM_TIMESERIES_HH
#define SIM_TIMESERIES_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/trace_event.hh"
#include "sim/types.hh"

namespace sim {

/** The captured series, detached from the sampler (into RunResult). */
struct TimeSeriesData
{
    /** Nominal sample spacing in cycles (doubles on compaction). */
    Cycle interval = 0;
    std::vector<std::string> channels;
    /** Cycle stamp of each retained row. */
    std::vector<Cycle> cycles;
    /** values[channel][row], aligned with `cycles`. */
    std::vector<std::vector<double>> values;

    bool empty() const { return cycles.empty(); }
};

/** Periodic sampler over registered gauge channels. */
class TimeSeriesSampler
{
  public:
    /**
     * @param interval initial sample spacing in cycles (> 0)
     * @param capacity ring size; at capacity, rows are halved and the
     *                 interval doubles
     */
    explicit TimeSeriesSampler(Cycle interval,
                               std::size_t capacity = 64)
        : interval_(interval), capacity_(capacity)
    {
        SIM_ASSERT(interval_ > 0, "sampler needs a nonzero interval");
        SIM_ASSERT(capacity_ >= 2, "sampler ring too small");
    }

    void
    addChannel(std::string name, std::function<double()> fn)
    {
        names_.push_back(std::move(name));
        fns_.push_back(std::move(fn));
        rows_.emplace_back();
    }

    Cycle interval() const { return interval_; }
    std::size_t samples() const { return cycles_.size(); }

    /** Mirror each tick into @p buf as counter trace events. */
    void
    setTrace(TraceEventBuffer *buf)
    {
        trace_ = buf;
    }

    /**
     * Offer one row stamped @p now.  The underlying ticker fires at
     * the *initial* interval forever; after each compaction the
     * sampler decimates, recording only every stride-th offer, so
     * the effective spacing matches the doubled interval and an
     * arbitrarily long run performs O(log) compactions rather than
     * one every capacity/2 ticks.  Re-ticking the same cycle (the
     * end-of-run flush may race a regular tick) is a no-op.
     */
    void
    tick(Cycle now)
    {
        if (++sinceLast_ < stride_)
            return;
        record(now);
    }

    /** Record unconditionally — the end-of-run row must not be
     *  decimated away. */
    void
    flush(Cycle now)
    {
        record(now);
    }

    /** Move the captured series out; the sampler is then empty. */
    TimeSeriesData
    take()
    {
        TimeSeriesData d;
        d.interval = interval_;
        d.channels = names_;
        d.cycles = std::move(cycles_);
        d.values = std::move(rows_);
        cycles_ = {};
        rows_.assign(names_.size(), {});
        return d;
    }

  private:
    void
    record(Cycle now)
    {
        sinceLast_ = 0;
        if (!cycles_.empty() && cycles_.back() == now)
            return;
        cycles_.push_back(now);
        for (std::size_t c = 0; c < fns_.size(); ++c) {
            const double v = fns_[c]();
            rows_[c].push_back(v);
            if (trace_)
                trace_->counter(names_[c], now, v, traceTidSampler);
        }
        if (cycles_.size() >= capacity_)
            compact();
    }

    /** Drop every other row, double the nominal interval, and halve
     *  the rate at which future offers are accepted. */
    void
    compact()
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < cycles_.size(); i += 2) {
            cycles_[keep] = cycles_[i];
            for (auto &row : rows_)
                row[keep] = row[i];
            ++keep;
        }
        cycles_.resize(keep);
        for (auto &row : rows_)
            row.resize(keep);
        interval_ *= 2;
        stride_ *= 2;
    }

    Cycle interval_;
    std::size_t capacity_;
    std::uint64_t stride_ = 1;
    std::uint64_t sinceLast_ = 0;
    std::vector<std::string> names_;
    std::vector<std::function<double()>> fns_;
    std::vector<Cycle> cycles_;
    std::vector<std::vector<double>> rows_;
    TraceEventBuffer *trace_ = nullptr;
};

} // namespace sim

#endif // SIM_TIMESERIES_HH
