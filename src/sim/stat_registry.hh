/**
 * @file
 * The simulator-wide statistic registry.
 *
 * Every component registers its counters, sample statistics,
 * histograms and computed gauges under a dotted path
 * ("l2.mshr.stolen", "ulmt.response_cycles", "memsys.queue3.drops"),
 * giving one uniform namespace over statistics that previously lived
 * in per-component structs.  Registration stores *pointers* into the
 * component's live stats -- there is no double bookkeeping and no
 * per-update cost; the registry is only walked when somebody asks.
 *
 * Consumers traverse the registry through StatVisitor; the single
 * built-in visitor renders everything as one JSON object (used by
 * `tools/ulmt-stats dump` and available to any embedder).  Names are
 * visited in byte order so dumps are stable across registration order.
 */

#ifndef SIM_STAT_REGISTRY_HH
#define SIM_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/stats.hh"

namespace sim {

/** Visitor over every registered statistic, one call per entry. */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void counter(const std::string &name,
                         std::uint64_t value) = 0;
    virtual void gauge(const std::string &name, double value) = 0;
    virtual void sampleStat(const std::string &name,
                            const SampleStat &s) = 0;
    virtual void histogram(const std::string &name,
                           const BinnedHistogram &h) = 0;
};

/** Registry of named statistics; one per simulated System. */
class StatRegistry
{
  public:
    /**
     * Register a monotonically updated counter.  @p value must outlive
     * the registry.
     * @throws std::invalid_argument on an empty or duplicate name.
     */
    void addCounter(const std::string &name,
                    const std::uint64_t *value);

    /** Register a computed value, re-evaluated at each visit. */
    void addGauge(const std::string &name,
                  std::function<double()> fn);

    /** Register a running sample statistic. */
    void addSample(const std::string &name, const SampleStat *s);

    /** Register a binned histogram. */
    void addHistogram(const std::string &name,
                      const BinnedHistogram *h);

    bool has(const std::string &name) const
    {
        return names_.count(name) != 0;
    }

    std::size_t size() const { return entries_.size(); }

    /** Walk every entry in byte order of the dotted names. */
    void visit(StatVisitor &v) const;

    /** Walk only the entries whose name @p keep accepts. */
    void
    visit(StatVisitor &v,
          const std::function<bool(const std::string &)> &keep) const;

    /**
     * The JSON dump visitor: one object keyed by dotted path.
     * Counters and gauges render as numbers; samples as
     * {count,sum,min,max,mean,stddev}; histograms as
     * {edges,counts,total,below,p50,p95} (the below-range count is
     * part of the dump, not silently dropped).
     */
    std::string dumpJson() const;

    /** The JSON dump restricted to names @p keep accepts (the backing
     *  of `ulmt-stats --core=<id>` / `--filter=<glob>`). */
    std::string
    dumpJson(const std::function<bool(const std::string &)> &keep) const;

  private:
    enum class Kind { Counter, Gauge, Sample, Histogram };

    struct Entry
    {
        std::string name;
        Kind kind;
        const std::uint64_t *counter = nullptr;
        std::function<double()> gauge;
        const SampleStat *sample = nullptr;
        const BinnedHistogram *hist = nullptr;
    };

    void insert(Entry e);

    std::vector<Entry> entries_;
    std::unordered_set<std::string> names_;
};

} // namespace sim

#endif // SIM_STAT_REGISTRY_HH
