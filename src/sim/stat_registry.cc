#include "sim/stat_registry.hh"

#include <algorithm>
#include <stdexcept>

#include "sim/logging.hh"

namespace sim {

void
StatRegistry::insert(Entry e)
{
    if (e.name.empty())
        throw std::invalid_argument(
            "stat registry: empty statistic name");
    if (!names_.insert(e.name).second)
        throw std::invalid_argument(
            "stat registry: duplicate statistic name '" + e.name +
            "'");
    entries_.push_back(std::move(e));
}

void
StatRegistry::addCounter(const std::string &name,
                         const std::uint64_t *value)
{
    SIM_ASSERT(value != nullptr, "null counter '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = Kind::Counter;
    e.counter = value;
    insert(std::move(e));
}

void
StatRegistry::addGauge(const std::string &name,
                       std::function<double()> fn)
{
    SIM_ASSERT(fn != nullptr, "null gauge '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = Kind::Gauge;
    e.gauge = std::move(fn);
    insert(std::move(e));
}

void
StatRegistry::addSample(const std::string &name, const SampleStat *s)
{
    SIM_ASSERT(s != nullptr, "null sample '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = Kind::Sample;
    e.sample = s;
    insert(std::move(e));
}

void
StatRegistry::addHistogram(const std::string &name,
                           const BinnedHistogram *h)
{
    SIM_ASSERT(h != nullptr, "null histogram '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = Kind::Histogram;
    e.hist = h;
    insert(std::move(e));
}

void
StatRegistry::visit(StatVisitor &v) const
{
    visit(v, [](const std::string &) { return true; });
}

void
StatRegistry::visit(
    StatVisitor &v,
    const std::function<bool(const std::string &)> &keep) const
{
    std::vector<const Entry *> order;
    order.reserve(entries_.size());
    for (const Entry &e : entries_) {
        if (keep(e.name))
            order.push_back(&e);
    }
    std::sort(order.begin(), order.end(),
              [](const Entry *a, const Entry *b) {
                  return a->name < b->name;
              });
    for (const Entry *e : order) {
        switch (e->kind) {
          case Kind::Counter:
            v.counter(e->name, *e->counter);
            break;
          case Kind::Gauge:
            v.gauge(e->name, e->gauge());
            break;
          case Kind::Sample:
            v.sampleStat(e->name, *e->sample);
            break;
          case Kind::Histogram:
            v.histogram(e->name, *e->hist);
            break;
        }
    }
}

namespace {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0)
        return "null";  // JSON has no inf/nan
    return strformat("%.17g", v);
}

/** Renders the registry as one JSON object keyed by dotted path. */
class JsonDumper : public StatVisitor
{
  public:
    void
    counter(const std::string &name, std::uint64_t value) override
    {
        key(name);
        out_ += strformat("%llu", (unsigned long long)value);
    }

    void
    gauge(const std::string &name, double value) override
    {
        key(name);
        out_ += jsonNumber(value);
    }

    void
    sampleStat(const std::string &name, const SampleStat &s) override
    {
        key(name);
        out_ += strformat("{\"count\": %llu",
                          (unsigned long long)s.count());
        out_ += ", \"sum\": " + jsonNumber(s.sum());
        out_ += ", \"min\": " + jsonNumber(s.min());
        out_ += ", \"max\": " + jsonNumber(s.max());
        out_ += ", \"mean\": " + jsonNumber(s.mean());
        out_ += ", \"stddev\": " + jsonNumber(s.stddev()) + "}";
    }

    void
    histogram(const std::string &name,
              const BinnedHistogram &h) override
    {
        key(name);
        out_ += "{\"edges\": [";
        for (std::size_t i = 0; i < h.numBins(); ++i) {
            if (i)
                out_ += ", ";
            out_ += jsonNumber(h.binEdge(i));
        }
        out_ += "], \"counts\": [";
        for (std::size_t i = 0; i < h.numBins(); ++i) {
            if (i)
                out_ += ", ";
            out_ += strformat("%llu",
                              (unsigned long long)h.binCount(i));
        }
        out_ += strformat("], \"total\": %llu, \"below\": %llu",
                          (unsigned long long)h.total(),
                          (unsigned long long)h.below());
        out_ += ", \"p50\": " + jsonNumber(h.p50());
        out_ += ", \"p95\": " + jsonNumber(h.p95()) + "}";
    }

    std::string
    take()
    {
        return "{\n" + std::move(out_) + "\n}\n";
    }

  private:
    void
    key(const std::string &name)
    {
        if (!out_.empty())
            out_ += ",\n";
        out_ += "  " + jsonQuote(name) + ": ";
    }

    std::string out_;
};

} // namespace

std::string
StatRegistry::dumpJson() const
{
    JsonDumper d;
    visit(d);
    return d.take();
}

std::string
StatRegistry::dumpJson(
    const std::function<bool(const std::string &)> &keep) const
{
    JsonDumper d;
    visit(d, keep);
    return d.take();
}

} // namespace sim
