#include "sim/logging.hh"

#include <cstdlib>
#include <vector>

namespace sim {

namespace {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // namespace

std::string
strformat(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
assertFail(const char *cond, const std::string &msg)
{
    std::fprintf(stderr, "panic: assertion '%s' failed: %s\n", cond,
                 msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

} // namespace sim
