#include "sim/logging.hh"

#include <cstdlib>
#include <vector>

namespace sim {

namespace {

thread_local std::string *tls_log_sink = nullptr;

/** Route a finished line to the thread's sink or stderr. */
void
emit(const char *prefix, const std::string &msg)
{
    if (tls_log_sink) {
        *tls_log_sink += prefix;
        *tls_log_sink += msg;
        *tls_log_sink += '\n';
    } else {
        std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    }
}

/** Dump a captured sink to stderr before dying (panic/fatal paths). */
void
flushSinkForExit()
{
    if (tls_log_sink && !tls_log_sink->empty()) {
        std::fputs(tls_log_sink->c_str(), stderr);
        tls_log_sink->clear();
    }
    tls_log_sink = nullptr;
}

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // namespace

std::string
strformat(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    flushSinkForExit();
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    flushSinkForExit();
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
assertFail(const char *cond, const std::string &msg)
{
    flushSinkForExit();
    std::fprintf(stderr, "panic: assertion '%s' failed: %s\n", cond,
                 msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    emit("warn: ", s);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    emit("info: ", s);
}

void
setThreadLogSink(std::string *sink)
{
    tls_log_sink = sink;
}

} // namespace sim
