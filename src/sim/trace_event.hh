/**
 * @file
 * Chrome trace-event / Perfetto export of simulated activity.
 *
 * Split in two so the parallel experiment runner can scope traces per
 * experiment:
 *
 *  - TraceEventBuffer: a per-System, single-threaded append-only log
 *    of spans ("X"), counters ("C"), instants ("i") and flow events
 *    ("s"/"t"/"f").  Components hold a nullable pointer to it and
 *    emit behind an `if (trace_)` guard, so the disabled path costs
 *    one pointer test.  Timestamps are simulated main-processor
 *    cycles, written as the trace's microsecond field (the standard
 *    convention for cycle-accurate simulators).
 *
 *  - TraceEventWriter: the shared on-disk JSON file.  Each completed
 *    run's buffer is flushed as its own trace "process" (pid) with a
 *    "<workload>/<config>" process_name, so a parallel sweep lands in
 *    one file with one timeline row group per experiment.  Flushes
 *    are serialized with a mutex; buffers themselves are never
 *    shared between threads.
 *
 * The span taxonomy (thread ids within each process) is documented in
 * DESIGN.md §8.  The file loads directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 */

#ifndef SIM_TRACE_EVENT_HH
#define SIM_TRACE_EVENT_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sim {

/** Trace-event phases emitted (subset of the Chrome spec). */
enum class TracePhase : char {
    Complete = 'X',   //!< span with ts + dur
    Instant = 'i',    //!< zero-duration marker
    Counter = 'C',    //!< sampled numeric value
    FlowStart = 's',  //!< flow arrow tail
    FlowStep = 't',   //!< flow arrow waypoint
    FlowEnd = 'f',    //!< flow arrow head
};

/** Virtual thread ids used inside every simulated process. */
inline constexpr std::uint32_t traceTidUlmt = 1;
inline constexpr std::uint32_t traceTidMemsys = 2;
inline constexpr std::uint32_t traceTidBus = 3;
inline constexpr std::uint32_t traceTidDram = 4;
inline constexpr std::uint32_t traceTidSampler = 5;

/** One recorded event. */
struct TraceEvent
{
    std::string name;      //!< span/counter name (flow events: "miss")
    const char *cat;       //!< static category string
    TracePhase ph;
    Cycle ts;
    Cycle dur = 0;         //!< Complete only
    std::uint32_t tid = 0;
    std::uint64_t id = 0;  //!< flow correlation id (0 = none)
    double value = 0.0;    //!< Counter only
};

/** Per-run, single-threaded event log. */
class TraceEventBuffer
{
  public:
    void
    complete(std::string name, const char *cat, Cycle ts, Cycle dur,
             std::uint32_t tid)
    {
        TraceEvent e;
        e.name = std::move(name);
        e.cat = cat;
        e.ph = TracePhase::Complete;
        e.ts = ts;
        e.dur = dur;
        e.tid = tid;
        events_.push_back(std::move(e));
    }

    void
    instant(std::string name, const char *cat, Cycle ts,
            std::uint32_t tid)
    {
        TraceEvent e;
        e.name = std::move(name);
        e.cat = cat;
        e.ph = TracePhase::Instant;
        e.ts = ts;
        e.tid = tid;
        events_.push_back(std::move(e));
    }

    void
    counter(std::string name, Cycle ts, double value,
            std::uint32_t tid)
    {
        TraceEvent e;
        e.name = std::move(name);
        e.cat = "metric";
        e.ph = TracePhase::Counter;
        e.ts = ts;
        e.tid = tid;
        e.value = value;
        events_.push_back(std::move(e));
    }

    /** Emit one leg of a miss -> prefetch flow arrow. */
    void
    flow(TracePhase ph, std::uint64_t id, Cycle ts, std::uint32_t tid)
    {
        TraceEvent e;
        e.name = "miss";
        e.cat = "flow";
        e.ph = ph;
        e.ts = ts;
        e.tid = tid;
        e.id = id;
        events_.push_back(std::move(e));
    }

    /** A fresh flow correlation id (never 0). */
    std::uint64_t newFlowId() { return ++lastFlowId_; }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

  private:
    std::vector<TraceEvent> events_;
    std::uint64_t lastFlowId_ = 0;
};

/** The shared trace file; one pid per flushed run. */
class TraceEventWriter
{
  public:
    /**
     * Open @p path and write the trace prologue.
     * @throws std::runtime_error when the file cannot be created.
     */
    explicit TraceEventWriter(const std::string &path);

    /** Finishes the file if finish() was not called. */
    ~TraceEventWriter();

    TraceEventWriter(const TraceEventWriter &) = delete;
    TraceEventWriter &operator=(const TraceEventWriter &) = delete;

    /**
     * Flush one run's buffer as its own trace process named
     * @p process_name.  Thread-safe; callable from runner workers.
     */
    void writeProcess(const std::string &process_name,
                      const TraceEventBuffer &buf);

    /** Write the trace epilogue and close the file (idempotent). */
    void finish();

    const std::string &path() const { return path_; }

  private:
    void emitEvent(std::string &out, const TraceEvent &e,
                   std::uint32_t pid) const;

    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
    std::uint32_t nextPid_ = 1;
    bool firstEvent_ = true;
};

} // namespace sim

#endif // SIM_TRACE_EVENT_HH
