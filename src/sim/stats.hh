/**
 * @file
 * Lightweight statistics containers used by every component.
 *
 * The paper reports counters (miss counts, prefetch classifications),
 * binned histograms (Figure 6's inter-miss-time bins) and running
 * averages (Figure 10's response/occupancy times); these classes cover
 * those three shapes.
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace sim {

/**
 * A running sample statistic: count, sum, min, max, mean, and a
 * streaming (Welford) variance, so dispersion is available without
 * retaining the samples.
 */
class SampleStat
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
        const double delta = v - welfordMean_;
        welfordMean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - welfordMean_);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Population variance (0 with fewer than two samples). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
        welfordMean_ = m2_ = 0.0;
    }

    /** Exact internal state (checkpointing: bit-identical restore). */
    struct State
    {
        std::uint64_t count = 0;
        double sum = 0.0, min = 0.0, max = 0.0;
        double welfordMean = 0.0, m2 = 0.0;
    };

    State
    snapshot() const
    {
        return State{count_, sum_, min_, max_, welfordMean_, m2_};
    }

    void
    restore(const State &s)
    {
        count_ = s.count;
        sum_ = s.sum;
        min_ = s.min;
        max_ = s.max;
        welfordMean_ = s.welfordMean;
        m2_ = s.m2;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double welfordMean_ = 0.0;  //!< Welford running mean
    double m2_ = 0.0;           //!< Welford sum of squared deviations
};

/**
 * A histogram over explicit bin boundaries.  A value v falls into bin i
 * if edges[i] <= v < edges[i+1]; values >= the last edge land in the
 * final (open-ended) bin.
 */
class BinnedHistogram
{
  public:
    /** @param edges Ascending lower bin edges; edges[0] is the minimum. */
    explicit BinnedHistogram(std::vector<double> edges)
        : edges_(std::move(edges)), counts_(edges_.size(), 0)
    {
        SIM_ASSERT(!edges_.empty(), "histogram needs at least one edge");
        for (std::size_t i = 1; i < edges_.size(); ++i)
            SIM_ASSERT(edges_[i] > edges_[i - 1],
                       "histogram edges must ascend");
    }

    void
    sample(double v)
    {
        if (v < edges_.front()) {
            ++below_;
            return;
        }
        std::size_t bin = 0;
        while (bin + 1 < edges_.size() && v >= edges_[bin + 1])
            ++bin;
        ++counts_[bin];
        ++total_;
    }

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    double binEdge(std::size_t i) const { return edges_.at(i); }
    std::uint64_t total() const { return total_; }
    std::uint64_t below() const { return below_; }

    /** Fraction of samples in bin i (0 when empty). */
    double
    binFraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(counts_.at(i)) / total_ : 0.0;
    }

    /**
     * Approximate percentile over the in-range samples (below-range
     * samples are excluded; they are reported separately by below()).
     * Linearly interpolates inside the bin holding the requested rank;
     * the final bin is open-ended, so ranks landing there return its
     * lower edge.  Returns 0 with no samples.
     */
    double
    percentile(double p) const
    {
        SIM_ASSERT(p >= 0.0 && p <= 1.0, "percentile %f out of [0,1]",
                   p);
        if (total_ == 0)
            return 0.0;
        const double rank = p * static_cast<double>(total_);
        double seen = 0.0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            const double c = static_cast<double>(counts_[i]);
            if (seen + c < rank) {
                seen += c;
                continue;
            }
            if (i + 1 >= edges_.size())
                return edges_[i];  // open-ended final bin
            const double frac = c > 0.0 ? (rank - seen) / c : 0.0;
            return edges_[i] + frac * (edges_[i + 1] - edges_[i]);
        }
        return edges_.back();
    }

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        total_ = 0;
        below_ = 0;
    }

    /**
     * Overwrite the counts (checkpointing).  The edges are structural
     * (fixed by the constructing component), so only the counts travel.
     */
    void
    restoreCounts(const std::vector<std::uint64_t> &counts,
                  std::uint64_t total, std::uint64_t below)
    {
        SIM_ASSERT(counts.size() == counts_.size(),
                   "histogram restore with mismatched bin count");
        counts_ = counts;
        total_ = total;
        below_ = below;
    }

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t below_ = 0;
};

} // namespace sim

#endif // SIM_STATS_HH
