/**
 * @file
 * The global discrete-event queue that orders all state mutations.
 *
 * Components never mutate shared state "in the future": anything that
 * happens at a later cycle is scheduled as an event.  Events at the same
 * cycle execute in scheduling order (a monotone sequence number breaks
 * ties), which makes runs fully deterministic.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sim {

/** A deterministic discrete-event scheduler. */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Schedule an action at an absolute cycle.  Scheduling in the past
     * is a simulator bug.
     */
    void
    schedule(Cycle when, Action action)
    {
        SIM_ASSERT(when >= now_,
                   "scheduled at %llu before now %llu",
                   (unsigned long long)when, (unsigned long long)now_);
        events_.push(Event{when, nextSeq_++, std::move(action)});
    }

    /** Schedule an action a relative number of cycles in the future. */
    void
    scheduleIn(Cycle delay, Action action)
    {
        schedule(now_ + delay, std::move(action));
    }

    /**
     * Execute events in order until the queue drains or the event limit
     * is hit.
     *
     * @param max_events Safety valve against runaway simulations.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(std::uint64_t max_events = UINT64_MAX)
    {
        while (!events_.empty()) {
            if (executed_ >= max_events)
                return false;
            // Moving out of the priority queue requires a const_cast
            // because std::priority_queue::top() returns const&; the
            // element is popped immediately after, so this is safe.
            auto &top = const_cast<Event &>(events_.top());
            SIM_ASSERT(top.when >= now_, "event queue went backwards");
            now_ = top.when;
            Action action = std::move(top.action);
            events_.pop();
            ++executed_;
            action();
        }
        return true;
    }

    /** Drop all pending events (used between experiment runs). */
    void
    clear()
    {
        events_ = {};
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Action action;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * A shared resource that is busy for an interval per grant, e.g. a bus
 * or a DRAM bank.  Requests are granted first-come-first-served in
 * event order: a request that becomes ready at cycle R is granted at
 * max(R, nextFree) and the resource is then busy for the stated
 * duration.
 *
 * Because the event queue processes requests in time order, the
 * timeline only ever moves forward and captures contention from every
 * earlier-granted request.
 */
class ResourceTimeline
{
  public:
    /** Reserve the resource; returns the grant (start) cycle. */
    Cycle
    acquire(Cycle ready, Cycle duration)
    {
        Cycle start = ready > nextFree_ ? ready : nextFree_;
        nextFree_ = start + duration;
        busyTotal_ += duration;
        return start;
    }

    /** First cycle at which the resource is idle. */
    Cycle nextFree() const { return nextFree_; }

    /** Total busy time accumulated. */
    Cycle busyTotal() const { return busyTotal_; }

    void
    reset()
    {
        nextFree_ = 0;
        busyTotal_ = 0;
    }

  private:
    Cycle nextFree_ = 0;
    Cycle busyTotal_ = 0;
};

/**
 * A shared resource with two priority classes, modeling the paper's
 * rule that prefetch traffic (queue 3) has lower priority than demand
 * traffic (queue 1).
 *
 * Callers may reserve the resource for ready times in the near future
 * (a demand fetch books its DRAM slot after its queueing delays), so
 * grants cannot be first-come-first-served in call order.  Instead the
 * timeline keeps the set of booked intervals and places each
 * high-priority request in the earliest idle gap at or after its ready
 * time.  Low-priority requests queue strictly behind everything
 * already booked; a high-priority request waits only for bookings of
 * its own class plus at most one low-priority transfer that had
 * already started at its ready time (non-preemptive service).
 */
class PriorityTimeline
{
  public:
    /** Reserve the resource; returns the grant (start) cycle. */
    Cycle
    acquire(Cycle ready, Cycle duration, bool high_priority)
    {
        SIM_ASSERT(duration > 0, "zero-length resource reservation");
        busyTotal_ += duration;
        prune(ready);

        Cycle t = ready;
        std::size_t pos = 0;
        for (; pos < bookings_.size(); ++pos) {
            const Interval &b = bookings_[pos];
            if (b.end <= t)
                continue;
            // A high-priority request displaces low-priority bookings
            // that have not started by its ready time (the controller
            // reorders its queues); it cannot preempt one in progress
            // and never displaces another high-priority booking.  A
            // low-priority request respects every booking.
            if (high_priority && !b.high && b.start > ready)
                continue;
            if (b.start >= t + duration)
                break;  // fits in the gap before this booking
            t = b.end;
        }
        // Insert keeping the list sorted by start (overcommit from
        // displaced low bookings can make it non-disjoint, which the
        // gap search tolerates).
        std::size_t at = bookings_.size();
        while (at > 0 && bookings_[at - 1].start > t)
            --at;
        bookings_.insert(bookings_.begin() +
                             static_cast<std::ptrdiff_t>(at),
                         Interval{t, t + duration, high_priority});
        return t;
    }

    Cycle busyTotal() const { return busyTotal_; }

    void
    reset()
    {
        bookings_.clear();
        pruneBefore_ = 0;
        busyTotal_ = 0;
    }

  private:
    struct Interval
    {
        Cycle start;
        Cycle end;
        bool high;
    };

    /**
     * Drop bookings that can no longer affect placement: event-order
     * skew is bounded by how far components pre-book (well under the
     * margin).
     */
    void
    prune(Cycle ready)
    {
        constexpr Cycle margin = 16384;
        if (ready <= margin || ready - margin <= pruneBefore_)
            return;
        pruneBefore_ = ready - margin;
        std::size_t keep = 0;
        while (keep < bookings_.size() &&
               bookings_[keep].end <= pruneBefore_)
            ++keep;
        if (keep > 0)
            bookings_.erase(bookings_.begin(),
                            bookings_.begin() +
                                static_cast<std::ptrdiff_t>(keep));
    }

    std::vector<Interval> bookings_;
    Cycle pruneBefore_ = 0;
    Cycle busyTotal_ = 0;
};

} // namespace sim

#endif // SIM_EVENT_QUEUE_HH
