/**
 * @file
 * The global discrete-event queue that orders all state mutations.
 *
 * Components never mutate shared state "in the future": anything that
 * happens at a later cycle is scheduled as an event.  Events at the same
 * cycle execute in scheduling order (a monotone sequence number breaks
 * ties), which makes runs fully deterministic.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/action.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sim {

/**
 * Identity of a pending event's action, for checkpointing.  Closures
 * cannot be serialized, so every event that may be pending at a
 * checkpoint carries a kind tag plus up to two integer arguments; on
 * restore the owning component rebuilds the closure from the tag (the
 * saveState/restoreState contract).  Untagged events are legal at
 * runtime but make the queue uncheckpointable at that instant.
 */
enum class EventKind : std::uint32_t {
    Untagged = 0,      //!< plain schedule(); not checkpointable
    ProcStep,          //!< MainProcessor::step resume (no args)
    MemDemandDone,     //!< MemorySystem demand completion (arg0=line)
    MemPfArrival,      //!< MemorySystem prefetch arrival
                       //!< (arg0=line, arg1=arrival cycle)
    UlmtProcess,       //!< UlmtEngine::processNext kick (no args)
    MemCpuPfDone,      //!< MemorySystem CPU-prefetch completion
                       //!< (arg0=line)
    VmRemap,           //!< Vm periodic page-remap tick (no args)
};

/** A pending event in serializable form. */
struct SavedEvent
{
    Cycle when = 0;
    std::uint64_t seq = 0; //!< original tie-break sequence number
    std::uint32_t kind = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
};

/** A deterministic discrete-event scheduler. */
class EventQueue
{
  public:
    using Action = InplaceAction;

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Next tie-break sequence number (checkpointing). */
    std::uint64_t nextSeq() const { return nextSeq_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Install a passive periodic observer.  The ticker fires between
     * events, the first time simulated time reaches now()+interval and
     * then at least @p interval cycles apart (stamped with the actual
     * cycle, which may overshoot when events are sparse).  Because it
     * runs outside the event stream it MUST NOT schedule events or
     * mutate simulated state -- it exists for observability (the
     * time-series sampler), and executed()/timing are bit-identical
     * with or without a ticker installed.  The disabled path costs a
     * single comparison per event.
     */
    void
    setTicker(Cycle interval, std::function<void(Cycle)> fn)
    {
        SIM_ASSERT(interval > 0, "ticker needs a nonzero interval");
        SIM_ASSERT(fn != nullptr, "null ticker");
        ticker_ = std::move(fn);
        tickInterval_ = interval;
        tickDue_ = now_ + interval;
    }

    /** Remove the ticker (the disabled path: one compare per event). */
    void
    clearTicker()
    {
        ticker_ = nullptr;
        tickDue_ = neverCycle;
    }

    /**
     * Install a passive inspector that fires between events every
     * @p every_events executed events.  Like the ticker it runs at a
     * consistent instant (no action half-applied) and MUST NOT mutate
     * simulated state; unlike the ticker it is keyed to the event
     * count, not the clock, so a fixed cadence costs the same work on
     * sparse and dense timelines.  The invariant checker hangs off
     * this hook; it may throw to abort a run that failed a check.
     * The disabled path costs a single comparison per event.
     */
    void
    setInspector(std::uint64_t every_events, std::function<void()> fn)
    {
        SIM_ASSERT(every_events > 0, "inspector needs a nonzero cadence");
        SIM_ASSERT(fn != nullptr, "null inspector");
        inspector_ = std::move(fn);
        inspectEvery_ = every_events;
        inspectDue_ = executed_ + every_events;
    }

    /** Remove the inspector (one compare per event when disabled). */
    void
    clearInspector()
    {
        inspector_ = nullptr;
        inspectDue_ = UINT64_MAX;
    }

    /**
     * Schedule an action at an absolute cycle.  Scheduling in the past
     * is a simulator bug.
     */
    void
    schedule(Cycle when, Action action)
    {
        schedule(when, EventKind::Untagged, 0, 0, std::move(action));
    }

    /**
     * Schedule a *tagged* action: @p kind and the args identify the
     * closure well enough for the owning component to rebuild it after
     * a checkpoint restore.
     */
    void
    schedule(Cycle when, EventKind kind, std::uint64_t arg0,
             std::uint64_t arg1, Action action)
    {
        SIM_ASSERT(when >= now_,
                   "scheduled at %llu before now %llu",
                   (unsigned long long)when, (unsigned long long)now_);
        events_.push_back(Event{when, nextSeq_++,
                                static_cast<std::uint32_t>(kind), arg0,
                                arg1, std::move(action)});
        siftUp(events_.size() - 1);
    }

    /** Schedule an action a relative number of cycles in the future. */
    void
    scheduleIn(Cycle delay, Action action)
    {
        schedule(now_ + delay, std::move(action));
    }

    /**
     * Snapshot the pending events' tags, sorted by execution order
     * (when, seq).  Entries with kind == Untagged cannot be restored;
     * the checkpoint layer rejects them.
     */
    std::vector<SavedEvent>
    saveEvents() const
    {
        std::vector<SavedEvent> out;
        out.reserve(events_.size());
        for (const Event &e : events_)
            out.push_back(
                SavedEvent{e.when, e.seq, e.kind, e.arg0, e.arg1});
        std::sort(out.begin(), out.end(),
                  [](const SavedEvent &a, const SavedEvent &b) {
                      return a.when != b.when ? a.when < b.when
                                              : a.seq < b.seq;
                  });
        return out;
    }

    /**
     * Rebuild the queue from a snapshot: clock, sequence counter,
     * executed count, and every pending event with its *original*
     * (when, seq) pair -- tie-breaking after restore is bit-identical
     * to the run the snapshot was taken from.  @p resolve maps each
     * SavedEvent back to its closure.
     */
    void
    restoreEvents(
        Cycle now, std::uint64_t next_seq, std::uint64_t executed,
        const std::vector<SavedEvent> &events,
        const std::function<Action(const SavedEvent &)> &resolve)
    {
        events_.clear();
        now_ = now;
        nextSeq_ = next_seq;
        executed_ = executed;
        for (const SavedEvent &s : events) {
            SIM_ASSERT(s.when >= now_ && s.seq < next_seq,
                       "restored event outside snapshot bounds");
            events_.push_back(Event{s.when, s.seq, s.kind, s.arg0,
                                    s.arg1, resolve(s)});
            siftUp(events_.size() - 1);
        }
        // A ticker installed before the restore was armed relative to
        // cycle 0; re-arm it relative to the restored clock.  (The
        // ticker is passive observability, excluded from fingerprints.)
        if (ticker_)
            tickDue_ = now_ + tickInterval_;
        if (inspector_)
            inspectDue_ = executed_ + inspectEvery_;
    }

    /**
     * Install a break predicate, checked after every executed event.
     * When it returns true, run() stops *between* events (a consistent
     * instant: no action half-applied) with breakHit() set.  Used by
     * the checkpoint trigger; the disabled path costs one compare per
     * event.
     */
    void
    setBreakCheck(std::function<bool(Cycle)> fn)
    {
        breakCheck_ = std::move(fn);
    }

    void clearBreakCheck() { breakCheck_ = nullptr; }

    /** True when the last run() returned because of the break check. */
    bool breakHit() const { return breakHit_; }

    /**
     * Execute events in order until the queue drains or the event limit
     * is hit.
     *
     * @param max_events Safety valve against runaway simulations.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(std::uint64_t max_events = UINT64_MAX)
    {
        breakHit_ = false;
        while (!events_.empty()) {
            if (executed_ >= max_events)
                return false;
            Event &top = events_.front();
            SIM_ASSERT(top.when >= now_, "event queue went backwards");
            now_ = top.when;
            Action action = std::move(top.action);
            popTop();
            ++executed_;
            action();
            if (now_ >= tickDue_) {
                ticker_(now_);
                tickDue_ = now_ + tickInterval_;
            }
            if (executed_ >= inspectDue_) {
                inspector_();
                inspectDue_ = executed_ + inspectEvery_;
            }
            if (breakCheck_ && breakCheck_(now_)) {
                breakHit_ = true;
                return false;
            }
        }
        return true;
    }

    /** Drop all pending events (used between experiment runs). */
    void
    clear()
    {
        events_.clear();
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t kind;
        std::uint64_t arg0;
        std::uint64_t arg1;
        Action action;
    };

    /** Strict total order: (when, seq) is unique per event, so heap
     *  extraction reproduces the exact order the old priority_queue
     *  produced. */
    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Remove the root of the min-heap (its action already moved out). */
    void
    popTop()
    {
        Event last = std::move(events_.back());
        events_.pop_back();
        if (!events_.empty()) {
            events_.front() = std::move(last);
            siftDown(0);
        }
    }

    // Hole-based sifts: one move per level instead of a three-move
    // swap, which matters at millions of events per run.
    void
    siftUp(std::size_t i)
    {
        Event e = std::move(events_[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!earlier(e, events_[parent]))
                break;
            events_[i] = std::move(events_[parent]);
            i = parent;
        }
        events_[i] = std::move(e);
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = events_.size();
        Event e = std::move(events_[i]);
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n &&
                earlier(events_[child + 1], events_[child]))
                ++child;
            if (!earlier(events_[child], e))
                break;
            events_[i] = std::move(events_[child]);
            i = child;
        }
        events_[i] = std::move(e);
    }

    std::vector<Event> events_;  //!< binary min-heap by (when, seq)
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    /** Passive observability ticker (neverCycle = disabled). */
    Cycle tickDue_ = neverCycle;
    Cycle tickInterval_ = 0;
    std::function<void(Cycle)> ticker_;
    /** Passive event-count inspector (UINT64_MAX = disabled). */
    std::uint64_t inspectDue_ = UINT64_MAX;
    std::uint64_t inspectEvery_ = 0;
    std::function<void()> inspector_;
    /** Between-event stop predicate (checkpoint trigger). */
    std::function<bool(Cycle)> breakCheck_;
    bool breakHit_ = false;
};

/**
 * A shared resource that is busy for an interval per grant, e.g. a bus
 * or a DRAM bank.  Requests are granted first-come-first-served in
 * event order: a request that becomes ready at cycle R is granted at
 * max(R, nextFree) and the resource is then busy for the stated
 * duration.
 *
 * Because the event queue processes requests in time order, the
 * timeline only ever moves forward and captures contention from every
 * earlier-granted request.
 */
class ResourceTimeline
{
  public:
    /** Reserve the resource; returns the grant (start) cycle. */
    Cycle
    acquire(Cycle ready, Cycle duration)
    {
        Cycle start = ready > nextFree_ ? ready : nextFree_;
        nextFree_ = start + duration;
        busyTotal_ += duration;
        return start;
    }

    /** First cycle at which the resource is idle. */
    Cycle nextFree() const { return nextFree_; }

    /** Total busy time accumulated. */
    Cycle busyTotal() const { return busyTotal_; }

    void
    reset()
    {
        nextFree_ = 0;
        busyTotal_ = 0;
    }

    /** Complete serializable state (checkpointing). */
    struct State
    {
        Cycle nextFree = 0;
        Cycle busyTotal = 0;
    };

    State snapshot() const { return State{nextFree_, busyTotal_}; }

    void
    restore(const State &s)
    {
        nextFree_ = s.nextFree;
        busyTotal_ = s.busyTotal;
    }

  private:
    Cycle nextFree_ = 0;
    Cycle busyTotal_ = 0;
};

/**
 * A shared resource with two priority classes, modeling the paper's
 * rule that prefetch traffic (queue 3) has lower priority than demand
 * traffic (queue 1).
 *
 * Callers may reserve the resource for ready times in the near future
 * (a demand fetch books its DRAM slot after its queueing delays), so
 * grants cannot be first-come-first-served in call order.  Instead the
 * timeline keeps the set of booked intervals and places each
 * high-priority request in the earliest idle gap at or after its ready
 * time.  Low-priority requests queue strictly behind everything
 * already booked; a high-priority request waits only for bookings of
 * its own class plus at most one low-priority transfer that had
 * already started at its ready time (non-preemptive service).
 */
class PriorityTimeline
{
  public:
    /** One booked busy interval on the resource. */
    struct Interval
    {
        Cycle start;
        Cycle end;
        bool high;
    };

    /** Reserve the resource; returns the grant (start) cycle. */
    Cycle
    acquire(Cycle ready, Cycle duration, bool high_priority)
    {
        SIM_ASSERT(duration > 0, "zero-length resource reservation");
        busyTotal_ += duration;
        prune(ready);

        // Start the gap search from the cached cursor instead of the
        // front of the list.  Invariant: every booking before cursor_
        // ends at or before cursorReady_, so for a request with
        // ready >= cursorReady_ the search would skip all of them
        // (their end <= ready <= t).  Ready times arrive almost
        // monotonically in event order; the rare out-of-order request
        // falls back to a full scan.
        std::size_t pos = 0;
        if (ready >= cursorReady_) {
            pos = cursor_;
            while (pos < bookings_.size() && bookings_[pos].end <= ready)
                ++pos;
            cursor_ = pos;
            cursorReady_ = ready;
        }

        Cycle t = ready;
        for (; pos < bookings_.size(); ++pos) {
            const Interval &b = bookings_[pos];
            if (b.end <= t)
                continue;
            // A high-priority request displaces low-priority bookings
            // that have not started by its ready time (the controller
            // reorders its queues); it cannot preempt one in progress
            // and never displaces another high-priority booking.  A
            // low-priority request respects every booking.
            if (high_priority && !b.high && b.start > ready)
                continue;
            if (b.start >= t + duration)
                break;  // fits in the gap before this booking
            t = b.end;
        }
        // Insert keeping the list sorted by start (overcommit from
        // displaced low bookings can make it non-disjoint, which the
        // gap search tolerates).
        std::size_t at = bookings_.size();
        while (at > 0 && bookings_[at - 1].start > t)
            --at;
        bookings_.insert(bookings_.begin() +
                             static_cast<std::ptrdiff_t>(at),
                         Interval{t, t + duration, high_priority});
        // The new booking ends after its ready time, so it may violate
        // the cursor invariant if it landed inside the skipped prefix.
        if (at < cursor_)
            cursor_ = at;
        return t;
    }

    Cycle busyTotal() const { return busyTotal_; }

    void
    reset()
    {
        bookings_.clear();
        pruneBefore_ = 0;
        busyTotal_ = 0;
        cursor_ = 0;
        cursorReady_ = 0;
    }

    /** Complete serializable state (checkpointing). */
    struct State
    {
        std::vector<Interval> bookings;
        Cycle pruneBefore = 0;
        Cycle busyTotal = 0;
    };

    State
    snapshot() const
    {
        return State{bookings_, pruneBefore_, busyTotal_};
    }

    void
    restore(const State &s)
    {
        bookings_ = s.bookings;
        pruneBefore_ = s.pruneBefore;
        busyTotal_ = s.busyTotal;
        // The cursor is a pure search accelerator; restarting it from
        // the front changes placement decisions not at all.
        cursor_ = 0;
        cursorReady_ = 0;
    }

  private:
    /**
     * Drop bookings that can no longer affect placement: event-order
     * skew is bounded by how far components pre-book (well under the
     * margin).
     */
    void
    prune(Cycle ready)
    {
        constexpr Cycle margin = 16384;
        if (ready <= margin || ready - margin <= pruneBefore_)
            return;
        pruneBefore_ = ready - margin;
        std::size_t keep = 0;
        while (keep < bookings_.size() &&
               bookings_[keep].end <= pruneBefore_)
            ++keep;
        if (keep > 0) {
            bookings_.erase(bookings_.begin(),
                            bookings_.begin() +
                                static_cast<std::ptrdiff_t>(keep));
            cursor_ = cursor_ > keep ? cursor_ - keep : 0;
        }
    }

    std::vector<Interval> bookings_;
    Cycle pruneBefore_ = 0;
    Cycle busyTotal_ = 0;
    /** Gap-search resume point: bookings_[0..cursor_) all end at or
     *  before cursorReady_. */
    std::size_t cursor_ = 0;
    Cycle cursorReady_ = 0;
};

} // namespace sim

#endif // SIM_EVENT_QUEUE_HH
