#include "sim/json.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sim {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (const JsonValue *v = find(key))
        return *v;
    throw JsonError("missing key '" + key + "'");
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw JsonError("JSON parse error at byte " +
                        std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 s_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        const char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = string();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          default:
            return numberValue();
        }
    }

    JsonValue
    numberValue()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool has_digits = false;
        bool integral = true;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                has_digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (!has_digits)
            fail("bad number");
        const std::string tok = s_.substr(start, pos_ - start);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        errno = 0;
        char *end = nullptr;
        v.number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("bad number '" + tok + "'");
        if (integral) {
            errno = 0;
            const long long i = std::strtoll(tok.c_str(), &end, 10);
            if (errno == 0 && end == tok.c_str() + tok.size()) {
                v.isInteger = true;
                v.integer = i;
            }
        }
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two 3-byte sequences; our writers never emit them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            const char c = peek();
            if (c == ',') {
                ++pos_;
            } else if (c == ']') {
                ++pos_;
                return v;
            } else {
                fail("expected ',' or ']' in array");
            }
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            const char c = peek();
            if (c == ',') {
                ++pos_;
            } else if (c == '}') {
                ++pos_;
                return v;
            } else {
                fail("expected ',' or '}' in object");
            }
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

double
numberRelDiff(const JsonValue &a, const JsonValue &b)
{
    if (a.isInteger && b.isInteger) {
        // Exact comparison: above 2^53 distinct int64s collapse to the
        // same double, so the difference must be formed in integer
        // space.  Unsigned subtraction of the two's-complement values
        // yields the true magnitude for any sign mix (it always fits
        // in a uint64).
        if (a.integer == b.integer)
            return 0.0;
        const unsigned long long ua =
            static_cast<unsigned long long>(a.integer);
        const unsigned long long ub =
            static_cast<unsigned long long>(b.integer);
        const unsigned long long mag =
            a.integer > b.integer ? ua - ub : ub - ua;
        const double denom = std::max(std::fabs(a.number),
                                      std::fabs(b.number));
        // denom can only be 0 when both values are 0, i.e. equal.
        return static_cast<double>(mag) / denom;
    }
    if (a.number == b.number)
        return 0.0;
    const double denom = std::max(std::fabs(a.number),
                                  std::fabs(b.number));
    return denom > 0.0 ? std::fabs(a.number - b.number) / denom : 0.0;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw JsonError("cannot open '" + path + "'");
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        throw JsonError("read error on '" + path + "'");
    return parseJson(text);
}

} // namespace sim
