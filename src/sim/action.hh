/**
 * @file
 * A move-only callable with small-buffer storage, used for scheduled
 * events.
 *
 * The event queue schedules millions of short-lived lambdas per run.
 * std::function heap-allocates once a capture outgrows its internal
 * buffer and carries copy machinery the simulator never uses.  Every
 * lambda the simulator schedules captures a `this` pointer plus at
 * most a couple of words, so InplaceAction stores the callable
 * directly inside the event (up to `inlineBytes`) and only falls back
 * to the heap for oversized captures.
 */

#ifndef SIM_ACTION_HH
#define SIM_ACTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

/** Move-only `void()` callable with small-buffer optimization. */
class InplaceAction
{
  public:
    /** Captures up to this size are stored inline (no allocation). */
    static constexpr std::size_t inlineBytes = 40;

    InplaceAction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceAction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InplaceAction(F &&f)  // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = opsForInline<Fn>();
        } else {
            using P = Fn *;
            ::new (static_cast<void *>(buf_))
                P(new Fn(std::forward<F>(f)));
            ops_ = opsForHeap<Fn>();
        }
    }

    InplaceAction(InplaceAction &&other) noexcept { moveFrom(other); }

    InplaceAction &
    operator=(InplaceAction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceAction(const InplaceAction &) = delete;
    InplaceAction &operator=(const InplaceAction &) = delete;

    ~InplaceAction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(buf_); }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *storage);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static const Ops *
    opsForInline()
    {
        static constexpr Ops ops = {
            [](void *p) { (*static_cast<Fn *>(p))(); },
            [](void *dst, void *src) {
                Fn *s = static_cast<Fn *>(src);
                ::new (dst) Fn(std::move(*s));
                s->~Fn();
            },
            [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    opsForHeap()
    {
        using P = Fn *;
        static constexpr Ops ops = {
            [](void *p) { (**static_cast<P *>(p))(); },
            [](void *dst, void *src) { ::new (dst) P(*static_cast<P *>(src)); },
            [](void *p) { delete *static_cast<P *>(p); },
        };
        return &ops;
    }

    void
    moveFrom(InplaceAction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace sim

#endif // SIM_ACTION_HH
