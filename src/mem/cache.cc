#include "mem/cache.hh"

#include <bit>

namespace mem {

Cache::Cache(std::string name, const CacheGeometry &geom)
    : name_(std::move(name)), geom_(geom), numSets_(geom.numSets()),
      lines_(static_cast<std::size_t>(numSets_) * geom.assoc)
{
    SIM_ASSERT(geom_.lineBytes > 0 &&
               std::has_single_bit(geom_.lineBytes),
               "%s: line size must be a power of two", name_.c_str());
    SIM_ASSERT(numSets_ > 0 && std::has_single_bit(numSets_),
               "%s: set count must be a power of two", name_.c_str());
    SIM_ASSERT(geom_.assoc > 0, "%s: zero associativity", name_.c_str());
}

std::uint32_t
Cache::setIndex(sim::Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / geom_.lineBytes) & (numSets_ - 1));
}

CacheLine *
Cache::setBase(std::uint32_t set)
{
    return &lines_[static_cast<std::size_t>(set) * geom_.assoc];
}

const CacheLine *
Cache::setBase(std::uint32_t set) const
{
    return &lines_[static_cast<std::size_t>(set) * geom_.assoc];
}

CacheLine *
Cache::find(sim::Addr addr)
{
    const sim::Addr line = lineAddr(addr);
    CacheLine *base = setBase(setIndex(addr));
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

const CacheLine *
Cache::find(sim::Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

CacheLine *
Cache::access(sim::Addr addr)
{
    CacheLine *line = find(addr);
    if (line) {
        ++stats_.hits;
        touch(line);
    } else {
        ++stats_.misses;
    }
    return line;
}

CacheLine *
Cache::insert(sim::Addr addr, sim::Cycle now, sim::Cycle ready_at,
              Eviction &evicted)
{
    const sim::Addr line_addr = lineAddr(addr);
    SIM_ASSERT(find(addr) == nullptr,
               "%s: inserting already-resident line", name_.c_str());

    CacheLine *base = setBase(setIndex(addr));
    CacheLine *victim = nullptr;
    CacheLine *settled_victim = nullptr;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        CacheLine *cand = &base[w];
        if (!cand->valid) {
            victim = cand;
            settled_victim = cand;
            break;
        }
        if (!victim || cand->lruStamp < victim->lruStamp)
            victim = cand;
        if (cand->readyAt <= now &&
            (!settled_victim || cand->lruStamp < settled_victim->lruStamp))
            settled_victim = cand;
    }
    // Prefer to displace a line whose fill already completed; fall back
    // to a pending one only when the whole set is in flight.
    if (settled_victim)
        victim = settled_victim;

    evicted = Eviction{};
    if (victim->valid) {
        evicted.valid = true;
        evicted.lineAddr = victim->tag;
        evicted.dirty = victim->dirty;
        evicted.prefetched = victim->prefetched;
        evicted.cpuPrefetched = victim->cpuPrefetched;
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.dirtyEvictions;
    }

    victim->tag = line_addr;
    victim->valid = true;
    victim->dirty = false;
    victim->prefetched = false;
    victim->cpuPrefetched = false;
    // A reused way must not inherit the evicted line's origin: callers
    // that never set fillOrigin themselves (the memory-thread cache)
    // would otherwise report stale attribution.  All fills ultimately
    // come from memory; hierarchy paths that know better overwrite it.
    victim->fillOrigin = sim::ServedBy::Memory;
    victim->readyAt = ready_at;
    touch(victim);
    if (shadow_)
        shadow_->onInsert(line_addr, now, ready_at);
    return victim;
}

bool
Cache::setAllPending(sim::Addr addr, sim::Cycle now) const
{
    const CacheLine *base = setBase(setIndex(addr));
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if (!base[w].valid || base[w].readyAt <= now)
            return false;
    }
    return true;
}

void
Cache::invalidate(sim::Addr addr)
{
    if (CacheLine *line = find(addr)) {
        line->valid = false;
        if (shadow_)
            shadow_->onInvalidate(line->tag);
    }
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = CacheLine{};
    stampCounter_ = 0;
    stats_ = CacheStats{};
    if (shadow_)
        shadow_->onReset();
}

void
Cache::checkInvariants(check::CheckContext &ctx,
                       std::optional<sim::ServedBy> expected_origin) const
{
    const std::string who = "cache." + name_;
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        const CacheLine *base = setBase(set);
        for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
            const CacheLine &line = base[w];
            if (!line.valid)
                continue;
            ctx.require(lineAddr(line.tag) == line.tag, who,
                        "set " + std::to_string(set) + " way " +
                            std::to_string(w) + " tag " +
                            check::hex(line.tag) +
                            " is not line-aligned");
            ctx.require(setIndex(line.tag) == set, who,
                        "tag " + check::hex(line.tag) +
                            " resident in set " + std::to_string(set) +
                            " but maps to set " +
                            std::to_string(setIndex(line.tag)));
            ctx.require(line.lruStamp <= stampCounter_, who,
                        "tag " + check::hex(line.tag) +
                            " carries LRU stamp " +
                            std::to_string(line.lruStamp) +
                            " beyond the counter " +
                            std::to_string(stampCounter_));
            if (expected_origin) {
                ctx.require(
                    line.fillOrigin == *expected_origin, who,
                    "tag " + check::hex(line.tag) +
                        " carries a stale fillOrigin (" +
                        std::to_string(static_cast<int>(
                            line.fillOrigin)) +
                        ")");
            }
            for (std::uint32_t v = w + 1; v < geom_.assoc; ++v) {
                ctx.require(!base[v].valid || base[v].tag != line.tag,
                            who,
                            "duplicate tag " + check::hex(line.tag) +
                                " in set " + std::to_string(set));
            }
        }
    }
}

void
Cache::saveState(ckpt::StateWriter &w) const
{
    // Geometry guard: sets * assoc * lineBytes pins the shape.
    w.u32(numSets_);
    w.u32(geom_.assoc);
    w.u32(geom_.lineBytes);
    w.u64(stampCounter_);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    w.u64(stats_.evictions);
    w.u64(stats_.dirtyEvictions);

    std::uint64_t valid = 0;
    for (const CacheLine &line : lines_)
        valid += line.valid ? 1 : 0;
    w.u64(valid);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const CacheLine &line = lines_[i];
        if (!line.valid)
            continue;
        w.u64(i);
        w.u64(line.tag);
        w.b(line.dirty);
        w.b(line.prefetched);
        w.b(line.cpuPrefetched);
        w.u8(static_cast<std::uint8_t>(line.fillOrigin));
        w.u64(line.readyAt);
        w.u64(line.lruStamp);
    }
}

void
Cache::restoreState(ckpt::StateReader &r)
{
    if (r.u32() != numSets_ || r.u32() != geom_.assoc ||
        r.u32() != geom_.lineBytes)
        throw ckpt::CkptError(
            "cache '" + name_ +
            "': checkpoint geometry does not match this configuration");
    for (auto &line : lines_)
        line = CacheLine{};
    stampCounter_ = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.evictions = r.u64();
    stats_.dirtyEvictions = r.u64();

    const std::uint64_t valid = r.u64();
    for (std::uint64_t n = 0; n < valid; ++n) {
        const std::uint64_t i = r.u64();
        if (i >= lines_.size())
            throw ckpt::CkptError("cache '" + name_ +
                                  "': line index out of range");
        CacheLine &line = lines_[i];
        line.valid = true;
        line.tag = r.u64();
        line.dirty = r.b();
        line.prefetched = r.b();
        line.cpuPrefetched = r.b();
        const std::uint8_t origin = r.u8();
        if (origin > static_cast<std::uint8_t>(sim::ServedBy::Memory))
            throw ckpt::CkptError("cache '" + name_ +
                                  "': corrupt fillOrigin");
        line.fillOrigin = static_cast<sim::ServedBy>(origin);
        line.readyAt = r.u64();
        line.lruStamp = r.u64();
    }
}

} // namespace mem
