#include "mem/memory_system.hh"

#include "sim/logging.hh"

namespace mem {

namespace {

/** Fixed (non-bus, non-DRAM) pipeline latencies on the two paths. */
constexpr sim::Cycle reqPathFixed = 44;   //!< decode/queue at controller
constexpr sim::Cycle respPathFixed = 32;  //!< fill after bus transfer

} // namespace

sim::Cycle
MemorySystem::fetchLine(sim::Cycle issue, sim::Addr line_addr,
                        sim::RequestKind kind)
{
    SIM_ASSERT(kind != sim::RequestKind::UlmtPrefetch,
               "ULMT prefetches use ulmtPrefetch()");
    const bool demand = kind == sim::RequestKind::Demand;
    if (demand)
        ++stats_.demandFetches;
    else
        ++stats_.cpuPrefetchFetches;

    // Address phase on the front-side bus, then the controller's fixed
    // request-path latency.
    const BusTraffic req_cls = demand ? BusTraffic::DemandRequest
                                      : BusTraffic::CpuPrefetchRequest;
    const sim::Cycle at_controller =
        bus_.transfer(issue, tp_.busRequestOccupancy(), req_cls) +
        reqPathFixed;

    // The request is now visible in queue 2.  In Non-Verbose mode the
    // ULMT only sees demand misses (Section 3.2).
    if (observer_ && (demand || verbose_)) {
        if (trace_ && demand) {
            observedFlowId_ = trace_->newFlowId();
            trace_->flow(sim::TracePhase::FlowStart, observedFlowId_,
                         at_controller, sim::traceTidMemsys);
        }
        observer_->observeMiss(at_controller, line_addr, kind);
        observedFlowId_ = 0;
    }

    // Track queue-1 occupancy for the prefetch cross-match.
    ++inflightDemand_[line_addr];

    // Demand fetches outrank all prefetch traffic at the DRAM.
    const DramAccessResult dram =
        dram_.accessLine(at_controller, line_addr,
                         /*high_priority=*/demand);
    const BusTraffic data_cls = demand ? BusTraffic::DemandData
                                       : BusTraffic::CpuPrefetchData;
    const sim::Cycle data_done =
        bus_.transfer(dram.done, tp_.busDataOccupancy(tp_.l2.lineBytes),
                      data_cls);
    const sim::Cycle complete = data_done + respPathFixed;
    if (trace_)
        trace_->complete(demand ? "demand_fetch" : "cpu_pf_fetch",
                         "memsys", issue, complete - issue,
                         sim::traceTidMemsys);

    eq_.schedule(complete, [this, line_addr] {
        auto it = inflightDemand_.find(line_addr);
        SIM_ASSERT(it != inflightDemand_.end(),
                   "in-flight demand entry vanished");
        if (--it->second == 0)
            inflightDemand_.erase(it);
    });
    return complete;
}

bool
MemorySystem::ulmtPrefetch(sim::Cycle ready, sim::Addr line_addr,
                           std::uint64_t flow)
{
    // Queue 3 capacity: bounded number of prefetches in flight.
    if (inflightPf_.size() >= tp_.queueDepth) {
        ++stats_.ulmtPrefetchesDroppedQueueFull;
        if (trace_)
            trace_->instant("pf_drop_queue_full", "memsys", ready,
                            sim::traceTidMemsys);
        return false;
    }
    // Cross-match against queue 1: a higher-priority demand fetch for
    // the same line is already in flight, so the prefetch is redundant.
    if (inflightDemand_.count(line_addr)) {
        ++stats_.ulmtPrefetchesDroppedDemandMatch;
        if (trace_)
            trace_->instant("pf_drop_demand_match", "memsys", ready,
                            sim::traceTidMemsys);
        return false;
    }
    // A prefetch for this line is already in flight.
    if (inflightPf_.count(line_addr)) {
        ++stats_.ulmtPrefetchesDroppedFilter;
        if (trace_)
            trace_->instant("pf_drop_filter", "memsys", ready,
                            sim::traceTidMemsys);
        return false;
    }
    // Filter module: drop addresses prefetched very recently.  Only
    // requests that actually issue are recorded in the FIFO.
    if (!filter_.admit(line_addr)) {
        ++stats_.ulmtPrefetchesDroppedFilter;
        if (trace_)
            trace_->instant("pf_drop_filter", "memsys", ready,
                            sim::traceTidMemsys);
        return false;
    }

    ++stats_.ulmtPrefetchesIssued;

    sim::Cycle start = ready;
    if (tp_.placement == MemProcPlacement::NorthBridge)
        start += tp_.prefetchInjectDelay;

    const DramAccessResult dram =
        dram_.accessLine(start, line_addr, /*high_priority=*/false);
    const sim::Cycle data_done =
        bus_.transfer(dram.done, tp_.busDataOccupancy(tp_.l2.lineBytes),
                      BusTraffic::UlmtPrefetchData);
    const sim::Cycle arrival = data_done + respPathFixed;
    if (trace_) {
        trace_->complete("ulmt_prefetch", "memsys", start,
                         arrival - start, sim::traceTidMemsys);
        if (flow)
            trace_->flow(sim::TracePhase::FlowEnd, flow, start,
                         sim::traceTidMemsys);
    }

    inflightPf_[line_addr] = arrival;
    eq_.schedule(arrival, [this, line_addr, arrival] {
        inflightPf_.erase(line_addr);
        if (push_)
            push_(arrival, line_addr);
    });
    return true;
}

sim::Cycle
MemorySystem::tableAccess(sim::Cycle ready, sim::Addr addr, bool is_write)
{
    if (is_write)
        ++stats_.tableWrites;
    else
        ++stats_.tableReads;

    sim::Cycle done;
    if (tp_.placement == MemProcPlacement::InDram) {
        // Internal access: bank contention applies, but the 25.6 GB/s
        // on-chip bus makes the transfer itself nearly free.
        const DramAccessResult r =
            dram_.accessTable(ready, addr, /*through_channel=*/false);
        tableWait_.sample(static_cast<double>(
            r.done - ready -
            (r.rowHit ? tp_.tableBankRowHitCycles
                      : tp_.tableBankRowMissCycles)));
        done = r.done + tp_.tableAccessFixedDram;
    } else {
        // From the North Bridge the table data crosses the DRAM channel.
        const DramAccessResult r =
            dram_.accessTable(ready, addr, /*through_channel=*/true);
        done = r.done + tp_.tableAccessFixedNorthBridge;
    }
    if (trace_)
        trace_->complete(is_write ? "table_write" : "table_read",
                         "memsys", ready, done - ready,
                         sim::traceTidMemsys);
    return done;
}

void
MemorySystem::writeback(sim::Cycle when, sim::Addr line_addr)
{
    ++stats_.writebacks;
    const sim::Cycle on_bus =
        bus_.transfer(when, tp_.busDataOccupancy(tp_.l2.lineBytes),
                      BusTraffic::Writeback);
    dram_.writeLine(on_bus, line_addr);
    if (trace_)
        trace_->complete("writeback", "memsys", when, on_bus - when,
                         sim::traceTidMemsys);
}

void
MemorySystem::registerStats(sim::StatRegistry &reg) const
{
    reg.addCounter("memsys.demand_fetches", &stats_.demandFetches);
    reg.addCounter("memsys.cpu_pf_fetches", &stats_.cpuPrefetchFetches);
    reg.addCounter("memsys.writebacks", &stats_.writebacks);
    reg.addCounter("memsys.queue3.issued",
                   &stats_.ulmtPrefetchesIssued);
    reg.addCounter("memsys.queue3.drops.filter",
                   &stats_.ulmtPrefetchesDroppedFilter);
    reg.addCounter("memsys.queue3.drops.queue_full",
                   &stats_.ulmtPrefetchesDroppedQueueFull);
    reg.addCounter("memsys.queue3.drops.demand_match",
                   &stats_.ulmtPrefetchesDroppedDemandMatch);
    reg.addCounter("memsys.table.reads", &stats_.tableReads);
    reg.addCounter("memsys.table.writes", &stats_.tableWrites);
    reg.addSample("memsys.table.wait_cycles", &tableWait_);
    reg.addGauge("memsys.filter.admits",
                 [this] { return double(filter_.admits()); });
    reg.addGauge("memsys.filter.drops",
                 [this] { return double(filter_.drops()); });
    bus_.registerStats(reg);
    dram_.registerStats(reg);
}

} // namespace mem
