#include "mem/memory_system.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "ckpt/sim_state.hh"
#include "sim/logging.hh"

namespace mem {

namespace {

/** Fixed (non-bus, non-DRAM) pipeline latencies on the two paths. */
constexpr sim::Cycle reqPathFixed = 44;   //!< decode/queue at controller
constexpr sim::Cycle respPathFixed = 32;  //!< fill after bus transfer

} // namespace

sim::Cycle
MemorySystem::fetchLine(sim::Cycle issue, sim::Addr line_addr,
                        sim::RequestKind kind, unsigned core)
{
    SIM_ASSERT(kind != sim::RequestKind::UlmtPrefetch,
               "ULMT prefetches use ulmtPrefetch()");
    const bool demand = kind == sim::RequestKind::Demand;
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    if (demand)
        ++stats_.demandFetches;
    else
        ++stats_.cpuPrefetchFetches;

    // Address phase on the front-side bus, then the controller's fixed
    // request-path latency.
    const BusTraffic req_cls = demand ? BusTraffic::DemandRequest
                                      : BusTraffic::CpuPrefetchRequest;
    const TrafficSplit split =
        demand ? TrafficSplit::Demand : TrafficSplit::Prefetch;
    const sim::Cycle req_occ = tp_.busRequestOccupancy();
    const sim::Cycle req_done = bus_.transfer(issue, req_occ, req_cls);
    if (audit_)
        audit_->busPhase(core, split, issue, req_done - req_occ,
                         req_occ);
    const sim::Cycle at_controller = req_done + reqPathFixed;

    // The request is now visible in queue 2.  In Non-Verbose mode the
    // ULMT only sees demand misses (Section 3.2).  Per-core observers
    // (percore serving mode) take precedence over the shared one.
    MissObserver *obs =
        core < coreObservers_.size() && coreObservers_[core]
            ? coreObservers_[core]
            : observer_;
    if (obs && (demand || verbose_)) {
        if (trace_ && demand) {
            observedFlowId_ = trace_->newFlowId();
            trace_->flow(sim::TracePhase::FlowStart, observedFlowId_,
                         at_controller, sim::traceTidMemsys);
        }
        observedCore_ = core;
        obs->observeMiss(at_controller, line_addr, kind);
        observedFlowId_ = 0;
        observedCore_ = 0;
    }

    // Track queue-1 occupancy for the prefetch cross-match.  Demand
    // and CPU-prefetch entries live in separate maps so a later
    // cross-match drop is attributed to the right cause (Figure 3)
    // and completions carry the matching event tag.
    if (demand)
        ++inflightDemand_[key];
    else
        ++inflightCpuPf_[key];

    // Demand fetches outrank all prefetch traffic at the DRAM.
    const DramAccessResult dram =
        dram_.accessLine(at_controller, line_addr,
                         /*high_priority=*/demand);
    if (audit_) {
        audit_->dramAccess(core, split, dram_.bankOf(line_addr),
                           dram_.channelOf(line_addr), at_controller,
                           dram.done,
                           (dram.rowHit ? tp_.bankRowHitCycles
                                        : tp_.bankRowMissCycles) +
                               tp_.channelXferCycles);
    }
    const BusTraffic data_cls = demand ? BusTraffic::DemandData
                                       : BusTraffic::CpuPrefetchData;
    const sim::Cycle data_occ = tp_.busDataOccupancy(tp_.l2.lineBytes);
    const sim::Cycle data_done =
        bus_.transfer(dram.done, data_occ, data_cls);
    if (audit_)
        audit_->busPhase(core, split, dram.done, data_done - data_occ,
                         data_occ);
    const sim::Cycle complete = data_done + respPathFixed;
    if (trace_)
        trace_->complete(demand ? "demand_fetch" : "cpu_pf_fetch",
                         "memsys", issue, complete - issue,
                         sim::traceTidMemsys);

    if (demand && core < coreQos_.size()) {
        ++coreQos_[core].demandFetches;
        coreQos_[core].q1Wait.sample(
            static_cast<double>(complete - issue));
    }

    if (demand)
        eq_.schedule(complete, sim::EventKind::MemDemandDone, key, 0,
                     demandDoneAction(key));
    else
        eq_.schedule(complete, sim::EventKind::MemCpuPfDone, key, 0,
                     cpuPfDoneAction(key));
    return complete;
}

sim::EventQueue::Action
MemorySystem::demandDoneAction(sim::Addr key)
{
    return [this, key] {
        auto it = inflightDemand_.find(key);
        SIM_ASSERT(it != inflightDemand_.end(),
                   "in-flight demand entry vanished");
        if (--it->second == 0)
            inflightDemand_.erase(it);
    };
}

sim::EventQueue::Action
MemorySystem::cpuPfDoneAction(sim::Addr key)
{
    return [this, key] {
        auto it = inflightCpuPf_.find(key);
        SIM_ASSERT(it != inflightCpuPf_.end(),
                   "in-flight CPU-prefetch entry vanished");
        if (--it->second == 0)
            inflightCpuPf_.erase(it);
    };
}

bool
MemorySystem::ulmtPrefetch(sim::Cycle ready, sim::Addr line_addr,
                           std::uint64_t flow, unsigned core,
                           unsigned engine, sim::Addr trigger)
{
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    // With the VM layer on, a push whose line lies on a different
    // physical page than its trigger is meaningless: physical
    // contiguity across a page boundary says nothing about virtual
    // adjacency once pages can remap, so the controller refuses it
    // before spending any queue capacity.
    if (pageShift_ != 0 && trigger != noPfTrigger &&
        (line_addr >> pageShift_) != (trigger >> pageShift_)) {
        ++stats_.ulmtPrefetchesDroppedPageCross;
        if (trace_)
            trace_->instant("pf_drop_page_cross", "memsys", ready,
                            sim::traceTidMemsys);
        if (audit_)
            audit_->pushDropped(core, engine,
                                PushOutcome::DroppedPageCross, flow,
                                ready);
        return false;
    }
    // Queue 3 capacity: bounded number of prefetches in flight.  The
    // depth limit is shared by all tenants (one physical queue).
    if (inflightPf_.size() >= tp_.queueDepth) {
        ++stats_.ulmtPrefetchesDroppedQueueFull;
        if (trace_)
            trace_->instant("pf_drop_queue_full", "memsys", ready,
                            sim::traceTidMemsys);
        if (audit_)
            audit_->pushDropped(core, engine,
                                PushOutcome::DroppedQueueFull, flow,
                                ready);
        return false;
    }
    // Cross-match against queue 1: a higher-priority demand fetch for
    // the same line (from the same core) is already in flight, so the
    // prefetch is redundant.
    if (inflightDemand_.count(key)) {
        ++stats_.ulmtPrefetchesDroppedDemandMatch;
        if (trace_)
            trace_->instant("pf_drop_demand_match", "memsys", ready,
                            sim::traceTidMemsys);
        if (audit_)
            audit_->pushDropped(core, engine,
                                PushOutcome::DroppedDemandMatch, flow,
                                ready);
        return false;
    }
    // The same cross-match against an in-flight CPU prefetch: equally
    // redundant, but attributed to its own cause.
    if (inflightCpuPf_.count(key)) {
        ++stats_.ulmtPrefetchesDroppedCpuPfMatch;
        if (trace_)
            trace_->instant("pf_drop_cpu_pf_match", "memsys", ready,
                            sim::traceTidMemsys);
        if (audit_)
            audit_->pushDropped(core, engine,
                                PushOutcome::DroppedCpuPfMatch, flow,
                                ready);
        return false;
    }
    // A prefetch for this line is already in flight to the same core.
    if (inflightPf_.count(key)) {
        ++stats_.ulmtPrefetchesDroppedFilter;
        if (trace_)
            trace_->instant("pf_drop_filter", "memsys", ready,
                            sim::traceTidMemsys);
        if (audit_)
            audit_->pushDropped(core, engine,
                                PushOutcome::DroppedFilter, flow,
                                ready);
        return false;
    }
    // Filter module: drop addresses prefetched very recently.  Only
    // requests that actually issue are recorded in the FIFO.  Keyed by
    // (core, line): the same line pushed to two different L2s is two
    // useful prefetches, not a repeat.
    if (!filter_.admit(key)) {
        ++stats_.ulmtPrefetchesDroppedFilter;
        if (trace_)
            trace_->instant("pf_drop_filter", "memsys", ready,
                            sim::traceTidMemsys);
        if (audit_)
            audit_->pushDropped(core, engine,
                                PushOutcome::DroppedFilter, flow,
                                ready);
        return false;
    }

    ++stats_.ulmtPrefetchesIssued;
    if (core < coreQos_.size())
        ++coreQos_[core].ulmtPrefetchesIssued;

    sim::Cycle start = ready;
    if (tp_.placement == MemProcPlacement::NorthBridge)
        start += tp_.prefetchInjectDelay;

    const DramAccessResult dram =
        dram_.accessLine(start, line_addr, /*high_priority=*/false);
    if (audit_) {
        audit_->dramAccess(core, TrafficSplit::Prefetch,
                           dram_.bankOf(line_addr),
                           dram_.channelOf(line_addr), start, dram.done,
                           (dram.rowHit ? tp_.bankRowHitCycles
                                        : tp_.bankRowMissCycles) +
                               tp_.channelXferCycles);
    }
    const sim::Cycle data_occ = tp_.busDataOccupancy(tp_.l2.lineBytes);
    const sim::Cycle data_done =
        bus_.transfer(dram.done, data_occ,
                      BusTraffic::UlmtPrefetchData);
    if (audit_)
        audit_->busPhase(core, TrafficSplit::Prefetch, dram.done,
                         data_done - data_occ, data_occ);
    const sim::Cycle arrival = data_done + respPathFixed;
    if (trace_) {
        trace_->complete("ulmt_prefetch", "memsys", start,
                         arrival - start, sim::traceTidMemsys);
        // With the auditor attached the flow arrow ends at the push's
        // terminal outcome instead of its issue.
        if (flow)
            trace_->flow(audit_ ? sim::TracePhase::FlowStep
                                : sim::TracePhase::FlowEnd,
                         flow, start, sim::traceTidMemsys);
    }
    if (audit_)
        audit_->pushIssued(core, engine, flow, key, ready, arrival);

    inflightPf_[key] = arrival;
    eq_.schedule(arrival, sim::EventKind::MemPfArrival, key, arrival,
                 prefetchArrivalAction(key, arrival));
    return true;
}

sim::EventQueue::Action
MemorySystem::prefetchArrivalAction(sim::Addr key, sim::Cycle arrival)
{
    return [this, key, arrival] {
        inflightPf_.erase(key);
        if (push_)
            push_(arrival, sim::lineOfKey(key), sim::coreOfKey(key));
    };
}

sim::Cycle
MemorySystem::tableAccess(sim::Cycle ready, sim::Addr addr, bool is_write)
{
    if (is_write)
        ++stats_.tableWrites;
    else
        ++stats_.tableReads;

    if (!tcache_.enabled())
        return dramTableAccess(ready, addr, is_write);

    // MSCache path: probe the SRAM tag array first.  Only misses and
    // the write-backs the access displaced reach the DRAM banks; the
    // displaced lines drain fire-and-forget after the access itself,
    // back-to-back so same-row lines ride open-row hits.
    tcacheWbs_.clear();
    const bool hit = tcache_.access(addr, is_write, tcacheWbs_);
    sim::Cycle done;
    if (hit) {
        done = ready + tableCacheHitCycles;
        if (trace_)
            trace_->complete(is_write ? "tcache_write_hit"
                                      : "tcache_read_hit",
                             "memsys", ready, done - ready,
                             sim::traceTidMemsys);
    } else {
        done = dramTableAccess(ready, addr, is_write);
    }
    sim::Cycle t = done;
    for (sim::Addr wb : tcacheWbs_)
        t = dramTableAccess(t, wb, /*is_write=*/true);
    return done;
}

void
MemorySystem::configureTableCache(const TableCacheSpec &spec)
{
    tcache_.configure(spec, tp_.memProcL1.lineBytes, tp_.dramRowBytes);
}

void
MemorySystem::tableInvalidate(sim::Cycle when, sim::Addr addr,
                              std::uint32_t bytes)
{
    if (!tcache_.enabled() || bytes == 0)
        return;
    tcacheWbs_.clear();
    tcache_.invalidateRange(addr - addr % tcache_.lineBytes(),
                            addr + bytes, tcacheWbs_);
    sim::Cycle t = when;
    for (sim::Addr wb : tcacheWbs_)
        t = dramTableAccess(t, wb, /*is_write=*/true);
}

sim::Cycle
MemorySystem::dramTableAccess(sim::Cycle ready, sim::Addr addr,
                              bool is_write)
{
    sim::Cycle done;
    if (tp_.placement == MemProcPlacement::InDram) {
        // Internal access: bank contention applies, but the 25.6 GB/s
        // on-chip bus makes the transfer itself nearly free.
        const DramAccessResult r =
            dram_.accessTable(ready, addr, /*through_channel=*/false);
        tableWait_.sample(static_cast<double>(
            r.done - ready -
            (r.rowHit ? tp_.tableBankRowHitCycles
                      : tp_.tableBankRowMissCycles)));
        if (audit_) {
            audit_->dramAccess(audit_->ulmtTenant(),
                               TrafficSplit::Other, dram_.bankOf(addr),
                               static_cast<std::size_t>(-1), ready,
                               r.done,
                               r.rowHit ? tp_.tableBankRowHitCycles
                                        : tp_.tableBankRowMissCycles);
        }
        done = r.done + tp_.tableAccessFixedDram;
    } else {
        // From the North Bridge the table data crosses the DRAM channel.
        const DramAccessResult r =
            dram_.accessTable(ready, addr, /*through_channel=*/true);
        if (audit_) {
            audit_->dramAccess(audit_->ulmtTenant(),
                               TrafficSplit::Other, dram_.bankOf(addr),
                               dram_.channelOf(addr), ready, r.done,
                               (r.rowHit ? tp_.tableBankRowHitCycles
                                         : tp_.tableBankRowMissCycles) +
                                   tp_.tableChannelXferCycles);
        }
        done = r.done + tp_.tableAccessFixedNorthBridge;
    }
    if (trace_)
        trace_->complete(is_write ? "table_write" : "table_read",
                         "memsys", ready, done - ready,
                         sim::traceTidMemsys);
    return done;
}

void
MemorySystem::writeback(sim::Cycle when, sim::Addr line_addr,
                        unsigned core)
{
    ++stats_.writebacks;
    const sim::Cycle wb_occ = tp_.busDataOccupancy(tp_.l2.lineBytes);
    const sim::Cycle on_bus =
        bus_.transfer(when, wb_occ, BusTraffic::Writeback);
    if (audit_)
        audit_->busPhase(core, TrafficSplit::Other, when,
                         on_bus - wb_occ, wb_occ);
    const DramAccessResult wr = dram_.writeLine(on_bus, line_addr);
    if (audit_) {
        audit_->dramAccess(core, TrafficSplit::Other,
                           dram_.bankOf(line_addr),
                           dram_.channelOf(line_addr), on_bus, wr.done,
                           (wr.rowHit ? tp_.bankRowHitCycles
                                      : tp_.bankRowMissCycles) +
                               tp_.channelXferCycles);
    }
    if (trace_)
        trace_->complete("writeback", "memsys", when, on_bus - when,
                         sim::traceTidMemsys);
}

void
MemorySystem::registerStats(sim::StatRegistry &reg) const
{
    reg.addCounter("memsys.demand_fetches", &stats_.demandFetches);
    reg.addCounter("memsys.cpu_pf_fetches", &stats_.cpuPrefetchFetches);
    reg.addCounter("memsys.writebacks", &stats_.writebacks);
    reg.addCounter("memsys.queue3.issued",
                   &stats_.ulmtPrefetchesIssued);
    reg.addCounter("memsys.queue3.drops.filter",
                   &stats_.ulmtPrefetchesDroppedFilter);
    reg.addCounter("memsys.queue3.drops.queue_full",
                   &stats_.ulmtPrefetchesDroppedQueueFull);
    reg.addCounter("memsys.queue3.drops.demand_match",
                   &stats_.ulmtPrefetchesDroppedDemandMatch);
    reg.addCounter("memsys.queue3.drops.cpu_pf_match",
                   &stats_.ulmtPrefetchesDroppedCpuPfMatch);
    reg.addCounter("memsys.queue3.drops.page_cross",
                   &stats_.ulmtPrefetchesDroppedPageCross);
    reg.addCounter("memsys.table.reads", &stats_.tableReads);
    reg.addCounter("memsys.table.writes", &stats_.tableWrites);
    reg.addSample("memsys.table.wait_cycles", &tableWait_);
    reg.addGauge("memsys.filter.admits",
                 [this] { return double(filter_.admits()); });
    reg.addGauge("memsys.filter.drops",
                 [this] { return double(filter_.drops()); });
    // Table-cache counters only exist when --table-cache is on so the
    // default stat namespace (and BENCH JSON) is unchanged.
    if (tcache_.enabled())
        tcache_.registerStats(reg);
    // Per-tenant QoS counters only appear on multicore machines so the
    // single-core stat namespace is unchanged.  setNumCores() must run
    // before registration (resizing would invalidate the pointers).
    if (numCores_ > 1) {
        for (unsigned c = 0; c < coreQos_.size(); ++c) {
            const std::string p =
                "memsys.core." + std::to_string(c) + ".";
            reg.addCounter(p + "demand_fetches",
                           &coreQos_[c].demandFetches);
            reg.addCounter(p + "pf_issued",
                           &coreQos_[c].ulmtPrefetchesIssued);
            reg.addSample(p + "q1_wait_cycles", &coreQos_[c].q1Wait);
        }
    }
    bus_.registerStats(reg);
    dram_.registerStats(reg);
}

void
MemorySystem::saveState(ckpt::StateWriter &w) const
{
    w.u64(stats_.demandFetches);
    w.u64(stats_.cpuPrefetchFetches);
    w.u64(stats_.writebacks);
    w.u64(stats_.ulmtPrefetchesIssued);
    w.u64(stats_.ulmtPrefetchesDroppedFilter);
    w.u64(stats_.ulmtPrefetchesDroppedQueueFull);
    w.u64(stats_.ulmtPrefetchesDroppedDemandMatch);
    w.u64(stats_.ulmtPrefetchesDroppedCpuPfMatch);
    w.u64(stats_.ulmtPrefetchesDroppedPageCross);
    w.u64(stats_.tableReads);
    w.u64(stats_.tableWrites);
    ckpt::save(w, tableWait_);
    w.u64(coreQos_.size());
    for (const CoreQos &q : coreQos_) {
        w.u64(q.demandFetches);
        w.u64(q.ulmtPrefetchesIssued);
        ckpt::save(w, q.q1Wait);
    }
    filter_.saveState(w);

    // Unordered maps are written sorted by key so identical simulator
    // state always yields identical checkpoint bytes.
    std::vector<std::pair<sim::Addr, std::uint32_t>> demand(
        inflightDemand_.begin(), inflightDemand_.end());
    std::sort(demand.begin(), demand.end());
    w.u64(demand.size());
    for (const auto &[line, count] : demand) {
        w.u64(line);
        w.u32(count);
    }

    std::vector<std::pair<sim::Addr, std::uint32_t>> cpu_pf(
        inflightCpuPf_.begin(), inflightCpuPf_.end());
    std::sort(cpu_pf.begin(), cpu_pf.end());
    w.u64(cpu_pf.size());
    for (const auto &[line, count] : cpu_pf) {
        w.u64(line);
        w.u32(count);
    }

    std::vector<std::pair<sim::Addr, sim::Cycle>> pf(
        inflightPf_.begin(), inflightPf_.end());
    std::sort(pf.begin(), pf.end());
    w.u64(pf.size());
    for (const auto &[line, arrival] : pf) {
        w.u64(line);
        w.u64(arrival);
    }

    bus_.saveState(w);
    dram_.saveState(w);
}

void
MemorySystem::restoreState(ckpt::StateReader &r)
{
    stats_.demandFetches = r.u64();
    stats_.cpuPrefetchFetches = r.u64();
    stats_.writebacks = r.u64();
    stats_.ulmtPrefetchesIssued = r.u64();
    stats_.ulmtPrefetchesDroppedFilter = r.u64();
    stats_.ulmtPrefetchesDroppedQueueFull = r.u64();
    stats_.ulmtPrefetchesDroppedDemandMatch = r.u64();
    stats_.ulmtPrefetchesDroppedCpuPfMatch = r.u64();
    stats_.ulmtPrefetchesDroppedPageCross = r.u64();
    stats_.tableReads = r.u64();
    stats_.tableWrites = r.u64();
    ckpt::restore(r, tableWait_);
    const std::uint64_t nQos = r.u64();
    SIM_ASSERT(nQos == coreQos_.size(),
               "checkpoint core count does not match this machine");
    for (CoreQos &q : coreQos_) {
        q.demandFetches = r.u64();
        q.ulmtPrefetchesIssued = r.u64();
        ckpt::restore(r, q.q1Wait);
    }
    filter_.restoreState(r);

    inflightDemand_.clear();
    const std::uint64_t nDemand = r.u64();
    for (std::uint64_t i = 0; i < nDemand; ++i) {
        const sim::Addr line = r.u64();
        inflightDemand_[line] = r.u32();
    }

    inflightCpuPf_.clear();
    const std::uint64_t nCpuPf = r.u64();
    for (std::uint64_t i = 0; i < nCpuPf; ++i) {
        const sim::Addr line = r.u64();
        inflightCpuPf_[line] = r.u32();
    }

    inflightPf_.clear();
    const std::uint64_t nPf = r.u64();
    for (std::uint64_t i = 0; i < nPf; ++i) {
        const sim::Addr line = r.u64();
        inflightPf_[line] = r.u64();
    }

    bus_.restoreState(r);
    dram_.restoreState(r);
}

void
MemorySystem::checkInvariants(
    check::CheckContext &ctx,
    const std::vector<sim::SavedEvent> &pending) const
{
    // Recount the pending completion events by kind.
    std::unordered_map<sim::Addr, std::uint32_t> demand_events;
    std::unordered_map<sim::Addr, std::uint32_t> cpu_pf_events;
    std::unordered_map<sim::Addr, sim::Cycle> pf_events;
    for (const sim::SavedEvent &e : pending) {
        switch (static_cast<sim::EventKind>(e.kind)) {
          case sim::EventKind::MemDemandDone:
            ++demand_events[e.arg0];
            break;
          case sim::EventKind::MemCpuPfDone:
            ++cpu_pf_events[e.arg0];
            break;
          case sim::EventKind::MemPfArrival:
            if (!ctx.require(pf_events.count(e.arg0) == 0, "memsys",
                             "two MemPfArrival events pending for " +
                                 check::hex(e.arg0)))
                break;
            pf_events[e.arg0] = e.arg1;
            break;
          default:
            break;
        }
    }

    const auto diffCounts =
        [&ctx](const std::unordered_map<sim::Addr, std::uint32_t> &map,
               const std::unordered_map<sim::Addr, std::uint32_t> &evs,
               const std::string &what) {
            for (const auto &[line, count] : map) {
                auto it = evs.find(line);
                const std::uint32_t have =
                    it == evs.end() ? 0 : it->second;
                ctx.require(count > 0, "memsys",
                            what + " map holds a zero count for " +
                                check::hex(line));
                ctx.require(have == count, "memsys",
                            what + " entry " + check::hex(line) +
                                " has " + std::to_string(count) +
                                " in flight but " +
                                std::to_string(have) +
                                " pending completion event(s)");
            }
            for (const auto &[line, have] : evs) {
                (void)have;
                ctx.require(map.count(line) != 0, "memsys",
                            what + " completion event pending for " +
                                check::hex(line) +
                                " with no in-flight entry");
            }
        };
    diffCounts(inflightDemand_, demand_events, "queue-1 demand");
    diffCounts(inflightCpuPf_, cpu_pf_events, "queue-1 cpu-prefetch");

    ctx.require(inflightPf_.size() <= tp_.queueDepth, "memsys",
                "queue 3 holds " + std::to_string(inflightPf_.size()) +
                    " prefetches, depth limit " +
                    std::to_string(tp_.queueDepth));
    for (const auto &[line, arrival] : inflightPf_) {
        auto it = pf_events.find(line);
        if (!ctx.require(it != pf_events.end(), "memsys",
                         "queue-3 entry " + check::hex(line) +
                             " has no pending MemPfArrival event"))
            continue;
        ctx.require(it->second == arrival, "memsys",
                    "queue-3 entry " + check::hex(line) +
                        " records arrival " + std::to_string(arrival) +
                        " but the event says " +
                        std::to_string(it->second));
    }
    for (const auto &[line, arrival] : pf_events) {
        (void)arrival;
        ctx.require(inflightPf_.count(line) != 0, "memsys",
                    "MemPfArrival pending for " + check::hex(line) +
                        " with no queue-3 entry");
    }

    filter_.checkInvariants(ctx);
    if (tcache_.enabled())
        tcache_.checkInvariants(ctx);
}

} // namespace mem
