#include "mem/prefetch_audit.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mem {

namespace {

/** Lead-time bin edges (cycles).  The row-miss round trip is ~300
 *  cycles, so the bins resolve "barely ahead" through "resident for a
 *  long time before the touch". */
const std::vector<double> leadTimeEdges{0.0,    256.0,   1024.0,
                                        4096.0, 16384.0, 65536.0};

constexpr std::size_t
splitIdx(TrafficSplit cls)
{
    return static_cast<std::size_t>(cls);
}

} // namespace

const char *
pushOutcomeName(PushOutcome o)
{
    switch (o) {
      case PushOutcome::UsefulTimely: return "useful_timely";
      case PushOutcome::UsefulLate: return "useful_late";
      case PushOutcome::EvictedUnused: return "evicted_unused";
      case PushOutcome::Redundant: return "redundant";
      case PushOutcome::DroppedFilter: return "dropped_filter";
      case PushOutcome::DroppedQueueFull: return "dropped_queue_full";
      case PushOutcome::DroppedDemandMatch:
        return "dropped_demand_match";
      case PushOutcome::DroppedCpuPfMatch:
        return "dropped_cpu_pf_match";
      case PushOutcome::DroppedPageCross:
        return "dropped_page_cross";
    }
    return "unknown";
}

PrefetchAudit::PrefetchAudit(unsigned cores, unsigned engines,
                             std::size_t banks, std::size_t channels)
    : numCores_(cores), numEngines_(engines ? engines : 1),
      engines_(numEngines_), bankOwner_(banks), chanOwner_(channels)
{
    SIM_ASSERT(cores >= 1, "PrefetchAudit needs at least one core");
    cores_.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        cores_.emplace_back(leadTimeEdges, cores + 1);
}

void
PrefetchAudit::countOutcome(AuditOutcomeCounts &c, PushOutcome o)
{
    switch (o) {
      case PushOutcome::UsefulTimely: ++c.usefulTimely; break;
      case PushOutcome::UsefulLate: ++c.usefulLate; break;
      case PushOutcome::EvictedUnused: ++c.evictedUnused; break;
      case PushOutcome::Redundant: ++c.redundant; break;
      case PushOutcome::DroppedFilter: ++c.droppedFilter; break;
      case PushOutcome::DroppedQueueFull: ++c.droppedQueueFull; break;
      case PushOutcome::DroppedDemandMatch:
        ++c.droppedDemandMatch;
        break;
      case PushOutcome::DroppedCpuPfMatch:
        ++c.droppedCpuPfMatch;
        break;
      case PushOutcome::DroppedPageCross:
        ++c.droppedPageCross;
        break;
    }
}

void
PrefetchAudit::terminal(unsigned core, const PushRecord *rec,
                        PushOutcome o, sim::Cycle when)
{
    countOutcome(cores_[core].push, o);
    if (rec && rec->engine < numEngines_)
        countOutcome(engines_[rec->engine], o);
    if (trace_) {
        if (rec && rec->flow) {
            trace_->flow(sim::TracePhase::FlowEnd, rec->flow, when,
                         sim::traceTidMemsys);
        }
        trace_->instant(std::string("pf_outcome_") + pushOutcomeName(o),
                        "audit", when, sim::traceTidMemsys);
    }
}

void
PrefetchAudit::pushDropped(unsigned core, unsigned engine,
                           PushOutcome reason, std::uint64_t flow,
                           sim::Cycle when)
{
    // Drops never entered the in-flight map; synthesize the record so
    // the engine attribution and flow end still happen.  The memory
    // system already emitted a pf_drop_* instant, so only the flow arrow
    // is annotated here.
    countOutcome(cores_[core].push, reason);
    if (engine < numEngines_)
        countOutcome(engines_[engine], reason);
    if (trace_ && flow) {
        trace_->flow(sim::TracePhase::FlowEnd, flow, when,
                     sim::traceTidMemsys);
    }
}

void
PrefetchAudit::pushIssued(unsigned core, unsigned engine,
                          std::uint64_t flow, sim::Addr key,
                          sim::Cycle ready, sim::Cycle arrival)
{
    ++cores_[core].push.issued;
    if (engine < numEngines_)
        ++engines_[engine].issued;
    cores_[core].issueToFill.sample(
        static_cast<double>(arrival - ready));
    PushRecord rec;
    rec.engine = engine;
    rec.flow = flow;
    rec.ready = ready;
    inflight_[key] = rec;
}

void
PrefetchAudit::pushInstalled(unsigned core, sim::Addr line_addr,
                             sim::Cycle when)
{
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    auto it = inflight_.find(key);
    if (it == inflight_.end())
        return;  // restored run: the push predates the audit window
    PushRecord rec = it->second;
    inflight_.erase(it);
    rec.fill = when;
    installed_[key] = rec;
}

void
PrefetchAudit::pushUsedTimely(unsigned core, sim::Addr line_addr,
                              sim::Cycle when)
{
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    auto it = installed_.find(key);
    if (it == installed_.end()) {
        terminal(core, nullptr, PushOutcome::UsefulTimely, when);
        return;
    }
    const PushRecord rec = it->second;
    installed_.erase(it);
    cores_[core].leadTime.sample(static_cast<double>(when - rec.fill));
    terminal(core, &rec, PushOutcome::UsefulTimely, when);
}

void
PrefetchAudit::pushUsedLate(unsigned core, sim::Addr line_addr,
                            sim::Cycle when, sim::Cycle arrival)
{
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    cores_[core].lateCycles.sample(
        arrival > when ? static_cast<double>(arrival - when) : 0.0);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        terminal(core, nullptr, PushOutcome::UsefulLate, arrival);
        return;
    }
    const PushRecord rec = it->second;
    inflight_.erase(it);
    terminal(core, &rec, PushOutcome::UsefulLate, arrival);
}

void
PrefetchAudit::pushRedundant(unsigned core, sim::Addr line_addr,
                             sim::Cycle when)
{
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        terminal(core, nullptr, PushOutcome::Redundant, when);
        return;
    }
    const PushRecord rec = it->second;
    inflight_.erase(it);
    terminal(core, &rec, PushOutcome::Redundant, when);
}

void
PrefetchAudit::pushEvicted(unsigned core, sim::Addr line_addr,
                           sim::Cycle when)
{
    const sim::Addr key = sim::packCoreLine(core, line_addr);
    auto it = installed_.find(key);
    if (it == installed_.end()) {
        terminal(core, nullptr, PushOutcome::EvictedUnused, when);
        return;
    }
    const PushRecord rec = it->second;
    installed_.erase(it);
    terminal(core, &rec, PushOutcome::EvictedUnused, when);
}

void
PrefetchAudit::chargeWait(unsigned victim, const ResOwner &owner,
                          sim::Cycle ready, sim::Cycle wait)
{
    if (wait == 0)
        return;
    // Last-owner approximation: blame whoever most recently held the
    // resource past our ready cycle; with no such owner (start of run,
    // post-restore) the wait is self-inflicted queueing.
    const unsigned blame =
        owner.valid && owner.end > ready ? owner.tenant : victim;
    cores_[victim].blockedBy[blame] += wait;
    blockedTotal_ += wait;
}

void
PrefetchAudit::updateOwner(ResOwner &owner, unsigned tenant,
                           sim::Cycle end)
{
    if (!owner.valid || end >= owner.end) {
        owner.tenant = tenant;
        owner.end = end;
        owner.valid = true;
    }
}

void
PrefetchAudit::busPhase(unsigned tenant, TrafficSplit cls,
                        sim::Cycle ready, sim::Cycle start,
                        sim::Cycle duration)
{
    if (tenant < numCores_) {
        cores_[tenant].busCycles[splitIdx(cls)] += duration;
        if (cls == TrafficSplit::Demand && start > ready)
            chargeWait(tenant, busOwner_, ready, start - ready);
    }
    updateOwner(busOwner_, tenant, start + duration);
}

void
PrefetchAudit::dramAccess(unsigned tenant, TrafficSplit cls,
                          std::size_t bank, std::size_t channel,
                          sim::Cycle ready, sim::Cycle done,
                          sim::Cycle occupancy)
{
    if (tenant < numCores_) {
        cores_[tenant].dramCycles[splitIdx(cls)] += occupancy;
        const sim::Cycle busy = done - ready;
        if (cls == TrafficSplit::Demand && busy > occupancy) {
            // Queueing happened at the bank or the channel; the bank's
            // owner is the more specific culprit.
            static const ResOwner none{};
            const ResOwner &bank_o =
                bank < bankOwner_.size() ? bankOwner_[bank] : none;
            const ResOwner &chan_o = channel < chanOwner_.size()
                                         ? chanOwner_[channel]
                                         : none;
            const bool bank_owned = bank_o.valid && bank_o.end > ready;
            chargeWait(tenant, bank_owned ? bank_o : chan_o, ready,
                       busy - occupancy);
        }
    } else {
        tableDramCycles_ += occupancy;
    }
    if (bank < bankOwner_.size())
        updateOwner(bankOwner_[bank], tenant, done);
    if (channel < chanOwner_.size())
        updateOwner(chanOwner_[channel], tenant, done);
}

void
PrefetchAudit::registerStats(
    sim::StatRegistry &reg,
    std::function<std::uint64_t(unsigned)> non_pref_misses)
{
    for (unsigned c = 0; c < numCores_; ++c) {
        CoreAudit &a = cores_[c];
        const std::string p = "audit.core." + std::to_string(c) + ".";
        reg.addCounter(p + "issued", &a.push.issued);
        reg.addCounter(p + "useful_timely", &a.push.usefulTimely);
        reg.addCounter(p + "useful_late", &a.push.usefulLate);
        reg.addCounter(p + "evicted_unused", &a.push.evictedUnused);
        reg.addCounter(p + "redundant", &a.push.redundant);
        reg.addCounter(p + "dropped_filter", &a.push.droppedFilter);
        reg.addCounter(p + "dropped_queue_full",
                       &a.push.droppedQueueFull);
        reg.addCounter(p + "dropped_demand_match",
                       &a.push.droppedDemandMatch);
        reg.addCounter(p + "dropped_cpu_pf_match",
                       &a.push.droppedCpuPfMatch);
        reg.addCounter(p + "dropped_page_cross",
                       &a.push.droppedPageCross);
        reg.addGauge(p + "triggered", [&a] {
            return static_cast<double>(a.push.triggered());
        });
        reg.addGauge(p + "coverage", [&a, non_pref_misses, c] {
            return a.push.coverage(non_pref_misses(c));
        });
        reg.addGauge(p + "accuracy",
                     [&a] { return a.push.accuracy(); });
        reg.addGauge(p + "timeliness",
                     [&a] { return a.push.timeliness(); });
        reg.addHistogram(p + "lead_time_cycles", &a.leadTime);
        reg.addSample(p + "late_fill_cycles", &a.lateCycles);
        reg.addSample(p + "issue_to_fill_cycles", &a.issueToFill);
        reg.addCounter(p + "bus.demand_cycles", &a.busCycles[0]);
        reg.addCounter(p + "bus.prefetch_cycles", &a.busCycles[1]);
        reg.addCounter(p + "bus.other_cycles", &a.busCycles[2]);
        reg.addCounter(p + "dram.demand_cycles", &a.dramCycles[0]);
        reg.addCounter(p + "dram.prefetch_cycles", &a.dramCycles[1]);
        reg.addCounter(p + "dram.other_cycles", &a.dramCycles[2]);

        // The interference matrix lives in the controller's namespace
        // (it is a property of the shared memory system).
        const std::string b =
            "memsys.core." + std::to_string(c) + ".blocked_by.";
        for (unsigned j = 0; j < numCores_; ++j)
            reg.addCounter(b + std::to_string(j), &a.blockedBy[j]);
        reg.addCounter(b + "ulmt", &a.blockedBy[numCores_]);
    }
    for (unsigned e = 0; e < numEngines_; ++e) {
        AuditOutcomeCounts &ec = engines_[e];
        const std::string p =
            "audit.engine." + std::to_string(e) + ".";
        reg.addCounter(p + "issued", &ec.issued);
        reg.addCounter(p + "useful_timely", &ec.usefulTimely);
        reg.addCounter(p + "useful_late", &ec.usefulLate);
        reg.addCounter(p + "evicted_unused", &ec.evictedUnused);
        reg.addCounter(p + "redundant", &ec.redundant);
        reg.addCounter(p + "dropped_filter", &ec.droppedFilter);
        reg.addCounter(p + "dropped_queue_full",
                       &ec.droppedQueueFull);
        reg.addCounter(p + "dropped_demand_match",
                       &ec.droppedDemandMatch);
        reg.addCounter(p + "dropped_cpu_pf_match",
                       &ec.droppedCpuPfMatch);
        reg.addCounter(p + "dropped_page_cross",
                       &ec.droppedPageCross);
    }
    reg.addCounter("audit.ulmt.table_dram_cycles", &tableDramCycles_);
    reg.addCounter("audit.blocked_cycles_total", &blockedTotal_);
}

AuditOutcomeCounts
PrefetchAudit::totals() const
{
    AuditOutcomeCounts t;
    for (const CoreAudit &a : cores_) {
        t.issued += a.push.issued;
        t.usefulTimely += a.push.usefulTimely;
        t.usefulLate += a.push.usefulLate;
        t.evictedUnused += a.push.evictedUnused;
        t.redundant += a.push.redundant;
        t.droppedFilter += a.push.droppedFilter;
        t.droppedQueueFull += a.push.droppedQueueFull;
        t.droppedDemandMatch += a.push.droppedDemandMatch;
        t.droppedCpuPfMatch += a.push.droppedCpuPfMatch;
        t.droppedPageCross += a.push.droppedPageCross;
    }
    return t;
}

AuditReport
PrefetchAudit::report() const
{
    AuditReport r;
    r.enabled = true;
    r.cores.reserve(numCores_);
    for (const CoreAudit &a : cores_) {
        AuditCoreReport cr;
        cr.push = a.push;
        cr.accuracy = a.push.accuracy();
        cr.timeliness = a.push.timeliness();
        for (std::size_t i = 0; i < a.leadTime.numBins(); ++i) {
            cr.leadEdges.push_back(a.leadTime.binEdge(i));
            cr.leadCounts.push_back(a.leadTime.binCount(i));
        }
        cr.leadBelow = a.leadTime.below();
        cr.leadP50 = a.leadTime.p50();
        cr.leadP95 = a.leadTime.p95();
        cr.lateCount = a.lateCycles.count();
        cr.lateMean = a.lateCycles.mean();
        cr.busDemandCycles = a.busCycles[0];
        cr.busPrefetchCycles = a.busCycles[1];
        cr.busOtherCycles = a.busCycles[2];
        cr.dramDemandCycles = a.dramCycles[0];
        cr.dramPrefetchCycles = a.dramCycles[1];
        cr.dramOtherCycles = a.dramCycles[2];
        cr.blockedBy = a.blockedBy;
        r.cores.push_back(std::move(cr));
    }
    r.engines.reserve(numEngines_);
    for (unsigned e = 0; e < numEngines_; ++e) {
        AuditEngineReport er;
        er.engine = e;
        er.push = engines_[e];
        r.engines.push_back(er);
    }
    r.tableDramCycles = tableDramCycles_;
    r.openInflight = inflight_.size();
    r.openInstalled = installed_.size();
    return r;
}

} // namespace mem
