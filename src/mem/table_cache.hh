/**
 * @file
 * MSCache: a small SRAM cache in front of the correlation table's DRAM
 * traffic (DESIGN.md section 14).
 *
 * Every miss in the memory processor's L1 reaches the table through
 * MemorySystem::tableAccess().  With the table cache configured, that
 * choke point first probes this set-associative, write-allocate tag
 * array; only misses and write-backs reach the DRAM banks.  Dirty
 * victims drain through a small bounded buffer, and when the buffer
 * overflows every buffered line belonging to the same DRAM row as the
 * oldest entry is written back back-to-back, so the write burst rides
 * open-row hits instead of paying a row activation per line.
 *
 * The cache is a pure policy structure: it decides hits, victims and
 * drain batches, while MemorySystem performs the resulting DRAM
 * accesses and owns all timing.  Tags are full line addresses, so the
 * sharded ULMT mode's disjoint shardTableBase() regions can never
 * alias -- two shards' lines always differ in tag even when they map
 * to the same set.
 *
 * Disabled (entries == 0, the default) the cache is never probed and
 * the table path is bit-identical to the pre-cache simulator.
 */

#ifndef MEM_TABLE_CACHE_HH
#define MEM_TABLE_CACHE_HH

#include <cstdint>
#include <vector>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "sim/logging.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace mem {

/** Configuration of the table cache (--table-cache=<entries>,<assoc>). */
struct TableCacheSpec
{
    /** Total line entries; 0 (the default) disables the cache. */
    std::uint32_t entries = 0;
    /** Set associativity. */
    std::uint32_t assoc = 4;

    bool on() const { return entries != 0; }
};

/** Main cycles charged for a table-cache hit (SRAM, memory-side). */
inline constexpr sim::Cycle tableCacheHitCycles = 4;

/** Capacity of the dirty write-back buffer (evicted dirty lines). */
inline constexpr std::uint32_t tableCacheDirtyBufEntries = 8;

/**
 * Passive observer of the table cache's operation stream, used by the
 * deep checker's RefTableCache oracle.  Same contract as CacheShadow:
 * notifications fire synchronously from the mutating call and
 * implementations must not touch the cache back.
 */
class TableCacheShadow
{
  public:
    virtual ~TableCacheShadow() = default;
    /** One tableAccess() reached the cache (line-aligned address). */
    virtual void onAccess(sim::Addr line_addr, bool is_write) = 0;
    /** Lines in [lo, hi) were invalidated (dirty ones flushed). */
    virtual void onInvalidateRange(sim::Addr lo, sim::Addr hi) = 0;
    /** The whole array was cleared. */
    virtual void onReset() = 0;
};

/** Counters kept by the table cache ("memsys.tcache.*"). */
struct TableCacheStats
{
    std::uint64_t hits = 0;
    /** Misses that filled from DRAM (one DRAM read each). */
    std::uint64_t misses = 0;
    /** Dirty lines written back to DRAM (one DRAM write each). */
    std::uint64_t writebacks = 0;
    /** Write-backs that rode an already-open drain of the same DRAM
     *  row (batch size minus one, summed over drains). */
    std::uint64_t rowBatchedWritebacks = 0;
    /** Peak dirty-buffer occupancy (including the overflow instant
     *  that triggers a drain). */
    std::uint64_t dirtyBufHighWater = 0;
    /** Every DRAM table access the cache caused.  Conservation law:
     *  dramAccesses == misses + writebacks, always. */
    std::uint64_t dramAccesses = 0;
};

/** One entry of the table cache's tag array. */
struct TableCacheLine
{
    sim::Addr tag = 0;          //!< full line address
    bool valid = false;
    bool dirty = false;
    std::uint64_t lruStamp = 0; //!< larger = more recently used
};

/** The MSCache tag array, dirty buffer and drain policy. */
class TableCache
{
  public:
    TableCache() = default;

    /**
     * Size the array.  Must be called once, before any access and
     * before stats registration; a default-constructed cache stays
     * disabled.
     *
     * @param spec entries/assoc (spec.on() must hold)
     * @param line_bytes table line size (the memory processor's L1
     *        line: tableAccess() addresses arrive at that granularity)
     * @param dram_row_bytes DRAM row size; lines whose
     *        addr / dram_row_bytes match drain in one batch
     */
    void configure(const TableCacheSpec &spec, std::uint32_t line_bytes,
                   std::uint32_t dram_row_bytes);

    bool enabled() const { return numSets_ != 0; }
    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t rowBytes() const { return rowBytes_; }
    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    const TableCacheStats &stats() const { return stats_; }

    /**
     * One table access.  On a miss the caller must fetch the line from
     * DRAM (the cache already counted it); any addresses appended to
     * @p writebacks must each be written to DRAM, in order -- they are
     * dirty lines the access displaced out of the buffer.
     *
     * @return true on a hit (SRAM latency), false on a miss (DRAM).
     */
    bool access(sim::Addr addr, bool is_write,
                std::vector<sim::Addr> &writebacks);

    /**
     * Drop every cached line in [@p lo, @p hi) -- the page-remap hook:
     * relocated table rows must not be served from stale cache lines.
     * Dirty lines (resident or still in the dirty buffer) are flushed:
     * they are appended to @p writebacks for the caller to perform.
     */
    void invalidateRange(sim::Addr lo, sim::Addr hi,
                         std::vector<sim::Addr> &writebacks);

    /** Invalidate everything, drop the buffer, zero the stats. */
    void reset();

    /** Attach/detach the deep checker's shadow (nullptr = off). */
    void setShadow(TableCacheShadow *shadow) { shadow_ = shadow; }

    /** Dirty-buffer contents in FIFO order (oldest first). */
    const std::vector<sim::Addr> &dirtyBuffer() const
    {
        return dirtyBuf_;
    }

    /** Read-only walk over every way: fn(set, way, line). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (std::uint32_t set = 0; set < numSets_; ++set) {
            for (std::uint32_t w = 0; w < assoc_; ++w)
                fn(set, w, lines_[std::size_t(set) * assoc_ + w]);
        }
    }

    /** Register the tcache.* counters under @p prefix. */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix = "memsys.tcache.")
        const;

    /**
     * Serialize stats, the LRU stamp counter, the valid lines (sparse)
     * and the dirty buffer.  Restore validates the geometry, so a
     * snapshot taken under a different --table-cache is rejected
     * before any line is touched.
     */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

    /**
     * Invariants: every valid line's tag is line-aligned and maps to
     * its set, no set holds a tag twice, no LRU stamp exceeds the
     * counter, the dirty buffer is within capacity and never holds a
     * resident line or a duplicate, and the write-back conservation
     * law holds: dramAccesses == misses + writebacks.
     */
    void checkInvariants(check::CheckContext &ctx) const;

  private:
    friend struct check::CheckTestPeer;

    std::uint32_t setIndex(sim::Addr line_addr) const;
    sim::Addr lineAddr(sim::Addr addr) const;
    TableCacheLine *find(sim::Addr line_addr);
    /** Install @p line_addr, spilling a dirty victim into the buffer
     *  (which may overflow into a row-batched drain). */
    void install(sim::Addr line_addr, bool dirty,
                 std::vector<sim::Addr> &writebacks);
    /** Buffer a dirty victim; on overflow drain the oldest entry's
     *  whole DRAM row. */
    void pushDirty(sim::Addr line_addr,
                   std::vector<sim::Addr> &writebacks);
    /** Write back every buffered line in @p row (addr / rowBytes_). */
    void drainRow(sim::Addr row, std::vector<sim::Addr> &writebacks);

    std::uint32_t lineBytes_ = 0;
    std::uint32_t rowBytes_ = 0;
    std::uint32_t numSets_ = 0;
    std::uint32_t assoc_ = 0;
    std::vector<TableCacheLine> lines_;
    /** Evicted dirty lines awaiting write-back, oldest first. */
    std::vector<sim::Addr> dirtyBuf_;
    std::uint64_t stampCounter_ = 0;
    TableCacheStats stats_;
    TableCacheShadow *shadow_ = nullptr;
};

} // namespace mem

#endif // MEM_TABLE_CACHE_HH
