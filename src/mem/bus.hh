/**
 * @file
 * The split-transaction front-side memory bus (8 B wide, 400 MHz).
 *
 * Each transaction reserves the bus for an address phase (requests) or
 * a data phase (line transfers).  Busy time is accounted per traffic
 * class so Figure 11's decomposition (utilization attributable to
 * prefetch traffic vs. everything else) can be regenerated.
 */

#ifndef MEM_BUS_HH
#define MEM_BUS_HH

#include <array>
#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mem {

/** Traffic classes tracked separately on the bus. */
enum class BusTraffic : std::uint8_t {
    DemandRequest,
    DemandData,
    CpuPrefetchRequest,
    CpuPrefetchData,
    UlmtPrefetchData,  //!< pushed lines travelling to the L2
    Writeback,
    NumClasses
};

/** The shared processor <-> memory bus. */
class Bus
{
  public:
    /**
     * Reserve the bus for one phase.  Processor-originated traffic
     * (demand and processor-prefetch) has priority over ULMT pushes
     * and write-backs, per the queue-1-over-queue-3 rule of Fig. 3.
     *
     * @param ready    earliest cycle the transaction can start
     * @param duration bus occupancy in main-processor cycles
     * @param cls      traffic class for utilization accounting
     * @return the cycle the phase completes
     */
    sim::Cycle
    transfer(sim::Cycle ready, sim::Cycle duration, BusTraffic cls)
    {
        const bool high = cls == BusTraffic::DemandRequest ||
                          cls == BusTraffic::DemandData;
        sim::Cycle start = timeline_.acquire(ready, duration, high);
        busyByClass_[static_cast<std::size_t>(cls)] += duration;
        return start + duration;
    }

    /** Total busy cycles across all classes. */
    sim::Cycle
    busyTotal() const
    {
        return timeline_.busyTotal();
    }

    /** Busy cycles of one traffic class. */
    sim::Cycle
    busy(BusTraffic cls) const
    {
        return busyByClass_[static_cast<std::size_t>(cls)];
    }

    /** Busy cycles of all prefetch-attributable classes. */
    sim::Cycle
    busyPrefetch() const
    {
        return busy(BusTraffic::CpuPrefetchRequest) +
               busy(BusTraffic::CpuPrefetchData) +
               busy(BusTraffic::UlmtPrefetchData);
    }

    void
    reset()
    {
        timeline_.reset();
        busyByClass_.fill(0);
    }

  private:
    sim::PriorityTimeline timeline_;
    std::array<sim::Cycle,
               static_cast<std::size_t>(BusTraffic::NumClasses)>
        busyByClass_{};
};

} // namespace mem

#endif // MEM_BUS_HH
