/**
 * @file
 * The split-transaction front-side memory bus (8 B wide, 400 MHz).
 *
 * Each transaction reserves the bus for an address phase (requests) or
 * a data phase (line transfers).  Busy time is accounted per traffic
 * class so Figure 11's decomposition (utilization attributable to
 * prefetch traffic vs. everything else) can be regenerated.
 */

#ifndef MEM_BUS_HH
#define MEM_BUS_HH

#include <array>
#include <cstdint>

#include "ckpt/sim_state.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/trace_event.hh"
#include "sim/types.hh"

namespace mem {

/** Traffic classes tracked separately on the bus. */
enum class BusTraffic : std::uint8_t {
    DemandRequest,
    DemandData,
    CpuPrefetchRequest,
    CpuPrefetchData,
    UlmtPrefetchData,  //!< pushed lines travelling to the L2
    Writeback,
    NumClasses
};

/** Stable lower-case name of a traffic class (stats, trace spans). */
constexpr const char *
busTrafficName(BusTraffic cls)
{
    switch (cls) {
      case BusTraffic::DemandRequest: return "demand_request";
      case BusTraffic::DemandData: return "demand_data";
      case BusTraffic::CpuPrefetchRequest: return "cpu_pf_request";
      case BusTraffic::CpuPrefetchData: return "cpu_pf_data";
      case BusTraffic::UlmtPrefetchData: return "ulmt_pf_data";
      case BusTraffic::Writeback: return "writeback";
      case BusTraffic::NumClasses: break;
    }
    return "unknown";
}

/** The shared processor <-> memory bus. */
class Bus
{
  public:
    /**
     * Reserve the bus for one phase.  Processor-originated traffic
     * (demand and processor-prefetch) has priority over ULMT pushes
     * and write-backs, per the queue-1-over-queue-3 rule of Fig. 3.
     *
     * @param ready    earliest cycle the transaction can start
     * @param duration bus occupancy in main-processor cycles
     * @param cls      traffic class for utilization accounting
     * @return the cycle the phase completes
     */
    sim::Cycle
    transfer(sim::Cycle ready, sim::Cycle duration, BusTraffic cls)
    {
        const bool high = cls == BusTraffic::DemandRequest ||
                          cls == BusTraffic::DemandData;
        sim::Cycle start = timeline_.acquire(ready, duration, high);
        busyByClass_[static_cast<std::size_t>(cls)] += duration;
        if (trace_)
            trace_->complete(busTrafficName(cls), "bus", start,
                             duration, sim::traceTidBus);
        return start + duration;
    }

    /** Total busy cycles across all classes. */
    sim::Cycle
    busyTotal() const
    {
        return timeline_.busyTotal();
    }

    /** Busy cycles of one traffic class. */
    sim::Cycle
    busy(BusTraffic cls) const
    {
        return busyByClass_[static_cast<std::size_t>(cls)];
    }

    /** Busy cycles of all prefetch-attributable classes. */
    sim::Cycle
    busyPrefetch() const
    {
        return busy(BusTraffic::CpuPrefetchRequest) +
               busy(BusTraffic::CpuPrefetchData) +
               busy(BusTraffic::UlmtPrefetchData);
    }

    void
    reset()
    {
        timeline_.reset();
        busyByClass_.fill(0);
    }

    /** Register per-class busy counters under "bus.busy.*". */
    void
    registerStats(sim::StatRegistry &reg) const
    {
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(BusTraffic::NumClasses); ++i)
            reg.addCounter("bus.busy." +
                               std::string(busTrafficName(
                                   static_cast<BusTraffic>(i))),
                           &busyByClass_[i]);
        reg.addGauge("bus.busy.total",
                     [this] {
                         return static_cast<double>(
                             timeline_.busyTotal());
                     });
    }

    /** Emit spans into @p t (nullptr disables; the default). */
    void setTrace(sim::TraceEventBuffer *t) { trace_ = t; }

    /** Serialize arbitration state + per-class busy accounting. */
    void
    saveState(ckpt::StateWriter &w) const
    {
        ckpt::save(w, timeline_);
        for (sim::Cycle busy : busyByClass_)
            w.u64(busy);
    }

    void
    restoreState(ckpt::StateReader &r)
    {
        ckpt::restore(r, timeline_);
        for (sim::Cycle &busy : busyByClass_)
            busy = r.u64();
    }

  private:
    sim::PriorityTimeline timeline_;
    std::array<sim::Cycle,
               static_cast<std::size_t>(BusTraffic::NumClasses)>
        busyByClass_{};
    sim::TraceEventBuffer *trace_ = nullptr;
};

} // namespace mem

#endif // MEM_BUS_HH
