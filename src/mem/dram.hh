/**
 * @file
 * Dual-channel DRAM with per-bank open-row state.
 *
 * Lines are interleaved across channels and banks.  Each access
 * reserves its bank for the row-access time (open-row hits are cheap)
 * and then its channel for the data transfer.  Both the application's
 * demand stream and the ULMT's correlation-table traffic go through
 * the same banks, reproducing the contention the paper models.
 */

#ifndef MEM_DRAM_HH
#define MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "ckpt/sim_state.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/trace_event.hh"
#include "sim/types.hh"

namespace mem {

/** Outcome of one DRAM access. */
struct DramAccessResult
{
    sim::Cycle done;   //!< data fully transferred out of the channel
    bool rowHit;       //!< the bank's open row matched
};

/** Running DRAM statistics. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
};

/** The main-memory DRAM array. */
class Dram
{
  public:
    explicit Dram(const TimingParams &tp)
        : tp_(tp),
          banks_(static_cast<std::size_t>(tp.dramChannels) *
                 tp.dramBanksPerChannel),
          channels_(tp.dramChannels)
    {
    }

    /**
     * Access a full cache line (64 B) for the main processor or for a
     * ULMT push prefetch.
     *
     * @param ready earliest start cycle
     * @param addr  target address
     * @return completion cycle (data has left the channel) + row info
     */
    DramAccessResult
    accessLine(sim::Cycle ready, sim::Addr addr, bool high_priority)
    {
        return access(ready, addr, tp_.bankRowHitCycles,
                      tp_.bankRowMissCycles, tp_.channelXferCycles,
                      /*use_channel=*/true, high_priority);
    }

    /**
     * Access 32 bytes of correlation-table state for the memory
     * processor.  When the memory processor sits inside the DRAM chip
     * it bypasses the external channel (25.6 GB/s internal bus);
     * from the North Bridge the data crosses the channel.
     *
     * Table accesses are latency-critical for the ULMT (they gate its
     * response time) and tiny, so the controller services them ahead
     * of queued line prefetches; only queue-3 prefetch fetches are
     * the explicitly low-priority class.
     */
    DramAccessResult
    accessTable(sim::Cycle ready, sim::Addr addr, bool through_channel)
    {
        return access(ready, addr, tp_.tableBankRowHitCycles,
                      tp_.tableBankRowMissCycles,
                      tp_.tableChannelXferCycles, through_channel,
                      /*high_priority=*/true);
    }

    /** Write a line back to memory (bank occupancy only). */
    DramAccessResult
    writeLine(sim::Cycle ready, sim::Addr addr)
    {
        return access(ready, addr, tp_.bankRowHitCycles,
                      tp_.bankRowMissCycles, tp_.channelXferCycles,
                      /*use_channel=*/true, /*high_priority=*/false);
    }

    const DramStats &stats() const { return stats_; }

    // Pure address-mapping helpers (the same interleave access() uses)
    // so observers can attribute contention per bank/channel without
    // widening the access interface.

    /** Channel index of @p addr. */
    std::size_t
    channelOf(sim::Addr addr) const
    {
        const sim::Addr row = addr / tp_.dramRowBytes;
        return static_cast<std::size_t>(row % tp_.dramChannels);
    }

    /** Global bank index of @p addr. */
    std::size_t
    bankOf(sim::Addr addr) const
    {
        const sim::Addr row = addr / tp_.dramRowBytes;
        return channelOf(addr) * tp_.dramBanksPerChannel +
               static_cast<std::size_t>((row / tp_.dramChannels) %
                                        tp_.dramBanksPerChannel);
    }

    std::size_t numBanks() const { return banks_.size(); }
    std::size_t numChannels() const { return channels_.size(); }

    /** Register access/row-hit counters under "dram.*". */
    void
    registerStats(sim::StatRegistry &reg) const
    {
        reg.addCounter("dram.accesses", &stats_.accesses);
        reg.addCounter("dram.row_hits", &stats_.rowHits);
        reg.addCounter("dram.row_misses", &stats_.rowMisses);
    }

    /** Emit bank/channel spans into @p t (nullptr disables). */
    void setTrace(sim::TraceEventBuffer *t) { trace_ = t; }

    void
    reset()
    {
        for (auto &b : banks_) {
            b.timeline.reset();
            b.openRow = sim::invalidAddr;
        }
        for (auto &c : channels_)
            c.reset();
        stats_ = DramStats{};
    }

    /** Serialize every bank's open row + timeline, channels, stats. */
    void
    saveState(ckpt::StateWriter &w) const
    {
        w.u64(banks_.size());
        for (const Bank &b : banks_) {
            w.u64(b.openRow);
            ckpt::save(w, b.timeline);
        }
        w.u64(channels_.size());
        for (const sim::PriorityTimeline &c : channels_)
            ckpt::save(w, c);
        w.u64(stats_.accesses);
        w.u64(stats_.rowHits);
        w.u64(stats_.rowMisses);
    }

    void
    restoreState(ckpt::StateReader &r)
    {
        if (r.u64() != banks_.size())
            throw ckpt::CkptError(
                "DRAM bank count in checkpoint does not match the "
                "configuration");
        for (Bank &b : banks_) {
            b.openRow = r.u64();
            ckpt::restore(r, b.timeline);
        }
        if (r.u64() != channels_.size())
            throw ckpt::CkptError(
                "DRAM channel count in checkpoint does not match the "
                "configuration");
        for (sim::PriorityTimeline &c : channels_)
            ckpt::restore(r, c);
        stats_.accesses = r.u64();
        stats_.rowHits = r.u64();
        stats_.rowMisses = r.u64();
    }

  private:
    struct Bank
    {
        sim::PriorityTimeline timeline;
        sim::Addr openRow = sim::invalidAddr;
    };

    DramAccessResult
    access(sim::Cycle ready, sim::Addr addr, sim::Cycle row_hit_cycles,
           sim::Cycle row_miss_cycles, sim::Cycle xfer_cycles,
           bool use_channel, bool high_priority)
    {
        const sim::Addr row = addr / tp_.dramRowBytes;
        const std::size_t chan = channelOf(addr);
        const std::size_t bank_idx = bankOf(addr);

        Bank &bank = banks_[bank_idx];
        const bool row_hit = bank.openRow == row;
        bank.openRow = row;
        const sim::Cycle occ = row_hit ? row_hit_cycles : row_miss_cycles;
        const sim::Cycle bank_done =
            bank.timeline.acquire(ready, occ, high_priority) + occ;

        ++stats_.accesses;
        if (row_hit)
            ++stats_.rowHits;
        else
            ++stats_.rowMisses;
        if (trace_)
            trace_->complete(row_hit ? "row_hit" : "row_miss", "dram",
                             bank_done - occ, occ, sim::traceTidDram);

        if (!use_channel)
            return {bank_done, row_hit};
        const sim::Cycle xfer_start =
            channels_[chan].acquire(bank_done, xfer_cycles,
                                    high_priority);
        if (trace_)
            trace_->complete("xfer", "dram", xfer_start, xfer_cycles,
                             sim::traceTidDram);
        return {xfer_start + xfer_cycles, row_hit};
    }

    const TimingParams &tp_;
    std::vector<Bank> banks_;
    std::vector<sim::PriorityTimeline> channels_;
    DramStats stats_;
    sim::TraceEventBuffer *trace_ = nullptr;
};

} // namespace mem

#endif // MEM_DRAM_HH
