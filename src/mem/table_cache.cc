#include "mem/table_cache.hh"

#include <algorithm>

namespace mem {

void
TableCache::configure(const TableCacheSpec &spec,
                      std::uint32_t line_bytes,
                      std::uint32_t dram_row_bytes)
{
    SIM_ASSERT(spec.on(), "table cache configured with zero entries");
    SIM_ASSERT(numSets_ == 0, "table cache configured twice");
    SIM_ASSERT(spec.assoc > 0, "table cache: zero associativity");
    SIM_ASSERT(spec.entries % spec.assoc == 0,
               "table cache: %u entries not divisible by assoc %u",
               spec.entries, spec.assoc);
    SIM_ASSERT(line_bytes > 0, "table cache: zero line size");
    SIM_ASSERT(dram_row_bytes >= line_bytes,
               "table cache: DRAM row smaller than a line");
    lineBytes_ = line_bytes;
    rowBytes_ = dram_row_bytes;
    assoc_ = spec.assoc;
    numSets_ = spec.entries / spec.assoc;
    lines_.assign(static_cast<std::size_t>(numSets_) * assoc_,
                  TableCacheLine{});
    dirtyBuf_.clear();
    dirtyBuf_.reserve(tableCacheDirtyBufEntries + 1);
}

std::uint32_t
TableCache::setIndex(sim::Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr / lineBytes_) %
                                      numSets_);
}

sim::Addr
TableCache::lineAddr(sim::Addr addr) const
{
    return addr - addr % lineBytes_;
}

TableCacheLine *
TableCache::find(sim::Addr line_addr)
{
    TableCacheLine *base =
        &lines_[std::size_t(setIndex(line_addr)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line_addr)
            return &base[w];
    }
    return nullptr;
}

bool
TableCache::access(sim::Addr addr, bool is_write,
                   std::vector<sim::Addr> &writebacks)
{
    SIM_ASSERT(enabled(), "access on a disabled table cache");
    const sim::Addr line = lineAddr(addr);
    if (shadow_)
        shadow_->onAccess(line, is_write);

    if (TableCacheLine *hit = find(line)) {
        ++stats_.hits;
        hit->lruStamp = ++stampCounter_;
        hit->dirty = hit->dirty || is_write;
        return true;
    }

    // A line sitting in the dirty buffer has not reached DRAM yet; a
    // new access to it pulls it back in (still dirty) without any
    // DRAM traffic, exactly like an MSHR-style merge.
    const auto buffered =
        std::find(dirtyBuf_.begin(), dirtyBuf_.end(), line);
    if (buffered != dirtyBuf_.end()) {
        dirtyBuf_.erase(buffered);
        ++stats_.hits;
        install(line, /*dirty=*/true, writebacks);
        return true;
    }

    ++stats_.misses;
    ++stats_.dramAccesses;
    install(line, /*dirty=*/is_write, writebacks);
    return false;
}

void
TableCache::install(sim::Addr line_addr, bool dirty,
                    std::vector<sim::Addr> &writebacks)
{
    TableCacheLine *base =
        &lines_[std::size_t(setIndex(line_addr)) * assoc_];
    TableCacheLine *victim = &base[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        TableCacheLine *cand = &base[w];
        if (!cand->valid) {
            victim = cand;
            break;
        }
        if (cand->lruStamp < victim->lruStamp)
            victim = cand;
    }
    if (victim->valid && victim->dirty)
        pushDirty(victim->tag, writebacks);
    victim->tag = line_addr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lruStamp = ++stampCounter_;
}

void
TableCache::pushDirty(sim::Addr line_addr,
                      std::vector<sim::Addr> &writebacks)
{
    dirtyBuf_.push_back(line_addr);
    // High water is recorded after the push so the overflow instant
    // (capacity + 1, the state that forces a drain) is visible.
    stats_.dirtyBufHighWater =
        std::max(stats_.dirtyBufHighWater,
                 static_cast<std::uint64_t>(dirtyBuf_.size()));
    if (dirtyBuf_.size() > tableCacheDirtyBufEntries)
        drainRow(dirtyBuf_.front() / rowBytes_, writebacks);
}

void
TableCache::drainRow(sim::Addr row, std::vector<sim::Addr> &writebacks)
{
    std::uint64_t batch = 0;
    for (std::size_t i = 0; i < dirtyBuf_.size();) {
        if (dirtyBuf_[i] / rowBytes_ == row) {
            writebacks.push_back(dirtyBuf_[i]);
            dirtyBuf_.erase(dirtyBuf_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            ++batch;
        } else {
            ++i;
        }
    }
    stats_.writebacks += batch;
    stats_.dramAccesses += batch;
    if (batch > 0)
        stats_.rowBatchedWritebacks += batch - 1;
}

void
TableCache::invalidateRange(sim::Addr lo, sim::Addr hi,
                            std::vector<sim::Addr> &writebacks)
{
    if (!enabled() || lo >= hi)
        return;
    if (shadow_)
        shadow_->onInvalidateRange(lo, hi);
    for (auto &line : lines_) {
        if (!line.valid || line.tag < lo || line.tag >= hi)
            continue;
        if (line.dirty) {
            writebacks.push_back(line.tag);
            ++stats_.writebacks;
            ++stats_.dramAccesses;
        }
        line.valid = false;
    }
    for (std::size_t i = 0; i < dirtyBuf_.size();) {
        if (dirtyBuf_[i] >= lo && dirtyBuf_[i] < hi) {
            writebacks.push_back(dirtyBuf_[i]);
            ++stats_.writebacks;
            ++stats_.dramAccesses;
            dirtyBuf_.erase(dirtyBuf_.begin() +
                            static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

void
TableCache::reset()
{
    for (auto &line : lines_)
        line = TableCacheLine{};
    dirtyBuf_.clear();
    stampCounter_ = 0;
    stats_ = TableCacheStats{};
    if (shadow_)
        shadow_->onReset();
}

void
TableCache::registerStats(sim::StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + "hits", &stats_.hits);
    reg.addCounter(prefix + "misses", &stats_.misses);
    reg.addCounter(prefix + "writebacks", &stats_.writebacks);
    reg.addCounter(prefix + "row_batched_writebacks",
                   &stats_.rowBatchedWritebacks);
    reg.addCounter(prefix + "dirty_buf_high_water",
                   &stats_.dirtyBufHighWater);
    reg.addCounter(prefix + "dram_accesses", &stats_.dramAccesses);
}

void
TableCache::saveState(ckpt::StateWriter &w) const
{
    // Geometry guard: sets * assoc * lineBytes pins the shape.
    w.u32(numSets_);
    w.u32(assoc_);
    w.u32(lineBytes_);
    w.u32(rowBytes_);
    w.u64(stampCounter_);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    w.u64(stats_.writebacks);
    w.u64(stats_.rowBatchedWritebacks);
    w.u64(stats_.dirtyBufHighWater);
    w.u64(stats_.dramAccesses);

    std::uint64_t valid = 0;
    for (const TableCacheLine &line : lines_)
        valid += line.valid ? 1 : 0;
    w.u64(valid);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const TableCacheLine &line = lines_[i];
        if (!line.valid)
            continue;
        w.u64(i);
        w.u64(line.tag);
        w.b(line.dirty);
        w.u64(line.lruStamp);
    }

    w.u64(dirtyBuf_.size());
    for (sim::Addr addr : dirtyBuf_)
        w.u64(addr);
}

void
TableCache::restoreState(ckpt::StateReader &r)
{
    if (r.u32() != numSets_ || r.u32() != assoc_ ||
        r.u32() != lineBytes_ || r.u32() != rowBytes_)
        throw ckpt::CkptError(
            "table cache: checkpoint geometry does not match this "
            "--table-cache configuration");
    for (auto &line : lines_)
        line = TableCacheLine{};
    dirtyBuf_.clear();
    stampCounter_ = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.writebacks = r.u64();
    stats_.rowBatchedWritebacks = r.u64();
    stats_.dirtyBufHighWater = r.u64();
    stats_.dramAccesses = r.u64();

    const std::uint64_t valid = r.u64();
    for (std::uint64_t n = 0; n < valid; ++n) {
        const std::uint64_t i = r.u64();
        if (i >= lines_.size())
            throw ckpt::CkptError(
                "table cache: line index out of range");
        TableCacheLine &line = lines_[i];
        line.valid = true;
        line.tag = r.u64();
        line.dirty = r.b();
        line.lruStamp = r.u64();
    }

    const std::uint64_t buffered = r.u64();
    if (buffered > tableCacheDirtyBufEntries)
        throw ckpt::CkptError(
            "table cache: dirty buffer beyond capacity");
    for (std::uint64_t n = 0; n < buffered; ++n)
        dirtyBuf_.push_back(r.u64());
}

void
TableCache::checkInvariants(check::CheckContext &ctx) const
{
    const std::string who = "memsys.tcache";
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        const TableCacheLine *base =
            &lines_[std::size_t(set) * assoc_];
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const TableCacheLine &line = base[w];
            if (!line.valid)
                continue;
            ctx.require(lineAddr(line.tag) == line.tag, who,
                        "set " + std::to_string(set) + " way " +
                            std::to_string(w) + " tag " +
                            check::hex(line.tag) +
                            " is not line-aligned");
            ctx.require(setIndex(line.tag) == set, who,
                        "tag " + check::hex(line.tag) +
                            " resident in set " + std::to_string(set) +
                            " but maps to set " +
                            std::to_string(setIndex(line.tag)));
            ctx.require(line.lruStamp <= stampCounter_, who,
                        "tag " + check::hex(line.tag) +
                            " carries LRU stamp " +
                            std::to_string(line.lruStamp) +
                            " beyond the counter " +
                            std::to_string(stampCounter_));
            for (std::uint32_t v = w + 1; v < assoc_; ++v) {
                ctx.require(!base[v].valid || base[v].tag != line.tag,
                            who,
                            "duplicate tag " + check::hex(line.tag) +
                                " in set " + std::to_string(set));
            }
        }
    }
    ctx.require(dirtyBuf_.size() <= tableCacheDirtyBufEntries, who,
                "dirty buffer holds " +
                    std::to_string(dirtyBuf_.size()) +
                    " lines, beyond its capacity of " +
                    std::to_string(tableCacheDirtyBufEntries));
    for (std::size_t i = 0; i < dirtyBuf_.size(); ++i) {
        const sim::Addr addr = dirtyBuf_[i];
        ctx.require(lineAddr(addr) == addr, who,
                    "buffered write-back " + check::hex(addr) +
                        " is not line-aligned");
        ctx.require(
            const_cast<TableCache *>(this)->find(addr) == nullptr, who,
            "buffered write-back " + check::hex(addr) +
                " is also resident in the tag array");
        for (std::size_t j = i + 1; j < dirtyBuf_.size(); ++j) {
            ctx.require(dirtyBuf_[j] != addr, who,
                        "duplicate write-back " + check::hex(addr) +
                            " in the dirty buffer");
        }
    }
    ctx.require(stats_.dramAccesses ==
                    stats_.misses + stats_.writebacks,
                who,
                "write-back conservation violated: " +
                    std::to_string(stats_.dramAccesses) +
                    " DRAM accesses != " +
                    std::to_string(stats_.misses) + " misses + " +
                    std::to_string(stats_.writebacks) +
                    " writebacks");
}

} // namespace mem
