/**
 * @file
 * A generic set-associative, write-back tag array with LRU replacement.
 *
 * The class models tag state and per-line metadata; the surrounding
 * hierarchy (cpu::Hierarchy, core::MemProcCache) decides what a hit or
 * miss costs and what happens on eviction.  A line installed by a miss
 * is resident immediately but carries a readyAt cycle: accesses before
 * readyAt are delayed hits that complete at readyAt (this models MSHR
 * merging), and a line whose readyAt is in the future counts as
 * "transaction pending" for the push-prefetch drop rules of Section 2.1.
 */

#ifndef MEM_CACHE_HH
#define MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "mem/timing_params.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace mem {

/**
 * Passive observer of a Cache's replacement-relevant transitions,
 * used by the deep checker's reference LRU model.  Notifications fire
 * synchronously from the mutating call; implementations MUST NOT
 * touch the cache back.  All hooks are behind a null-pointer guard,
 * so an unattached cache pays one compare per operation.
 */
class CacheShadow
{
  public:
    virtual ~CacheShadow() = default;
    /** A resident line was promoted to MRU.  Fires for the internal
     *  touch inside insert() too (before onInsert); implementations
     *  ignore addresses they do not know yet. */
    virtual void onTouch(sim::Addr line_addr) = 0;
    /** A line was installed (victim selection already happened). */
    virtual void onInsert(sim::Addr line_addr, sim::Cycle now,
                          sim::Cycle ready_at) = 0;
    /** A resident line was dropped. */
    virtual void onInvalidate(sim::Addr line_addr) = 0;
    /** The whole array was cleared. */
    virtual void onReset() = 0;
};

/** Metadata of one cache line. */
struct CacheLine
{
    sim::Addr tag = 0;          //!< full line address (not just tag bits)
    bool valid = false;
    bool dirty = false;
    /** Pushed by the ULMT and not yet referenced by a demand access. */
    bool prefetched = false;
    /** Filled by the processor-side stream prefetcher, unreferenced. */
    bool cpuPrefetched = false;
    /** Where the fill came from (for stall attribution on delayed hits). */
    sim::ServedBy fillOrigin = sim::ServedBy::L1;
    sim::Cycle readyAt = 0;     //!< cycle when the data is available
    std::uint64_t lruStamp = 0; //!< larger = more recently used
};

/** What fell out of a set when a new line was installed. */
struct Eviction
{
    bool valid = false;         //!< an actual line was displaced
    sim::Addr lineAddr = sim::invalidAddr;
    bool dirty = false;
    bool prefetched = false;    //!< ULMT-pushed line, never referenced
    bool cpuPrefetched = false;
};

/** Statistics kept by the tag array itself. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
};

/**
 * Set-associative tag array with true-LRU replacement.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheGeometry &geom);

    /** Strip the offset bits: the line-aligned address. */
    sim::Addr
    lineAddr(sim::Addr addr) const
    {
        return addr & ~static_cast<sim::Addr>(geom_.lineBytes - 1);
    }

    std::uint32_t lineBytes() const { return geom_.lineBytes; }
    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return geom_.assoc; }
    const std::string &name() const { return name_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Look up a line without modifying replacement state.
     * @return pointer to the resident line, or nullptr on miss.
     */
    CacheLine *find(sim::Addr addr);
    const CacheLine *find(sim::Addr addr) const;

    /** Promote a line to MRU. */
    void
    touch(CacheLine *line)
    {
        line->lruStamp = ++stampCounter_;
        if (shadow_)
            shadow_->onTouch(line->tag);
    }

    /** Attach/detach the deep checker's shadow (nullptr = off). */
    void setShadow(CacheShadow *shadow) { shadow_ = shadow; }

    /**
     * Look up and update stats/LRU: the common demand-access path.
     * @return the line on a hit (promoted to MRU), nullptr on a miss.
     */
    CacheLine *access(sim::Addr addr);

    /**
     * Install a line, evicting the LRU victim of its set.  Victims
     * whose fill is still pending (readyAt > now) are avoided when any
     * settled line exists.
     *
     * @param addr      any address within the new line
     * @param now       current cycle (used to identify pending lines)
     * @param ready_at  cycle at which the new line's data arrives
     * @param evicted   out-parameter describing the displaced line
     * @return the installed line (valid, clean, MRU)
     */
    CacheLine *insert(sim::Addr addr, sim::Cycle now, sim::Cycle ready_at,
                      Eviction &evicted);

    /**
     * True if every line in addr's set is valid with a pending fill:
     * the "all lines in the set are in transaction-pending state" push
     * drop rule.
     */
    bool setAllPending(sim::Addr addr, sim::Cycle now) const;

    /** Drop a line if resident (used by page-remap tests). */
    void invalidate(sim::Addr addr);

    /** Invalidate everything and zero the stats. */
    void reset();

    /**
     * Serialize the tag array: stats, LRU stamp counter, and only the
     * valid lines (sparse: varint line index + fields), so a barely
     * warm cache costs a few bytes per resident line.
     */
    void saveState(ckpt::StateWriter &w) const;

    /**
     * Rebuild from saveState() output.  The geometry is structural and
     * must match; a checkpoint taken under a different geometry is
     * rejected (CkptError) before any line is touched.
     */
    void restoreState(ckpt::StateReader &r);

    /** Read-only walk over every way: fn(set, way, line). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (std::uint32_t set = 0; set < numSets_; ++set) {
            const CacheLine *base = setBase(set);
            for (std::uint32_t w = 0; w < geom_.assoc; ++w)
                fn(set, w, base[w]);
        }
    }

    /**
     * Invariants: every valid line's tag is line-aligned and maps to
     * the set it sits in, no set holds the same tag twice, and no LRU
     * stamp exceeds the stamp counter.  When @p expected_origin is
     * given, every valid line must carry that fillOrigin — the
     * memory-thread cache uses this to pin the "insert resets
     * fillOrigin" fix.
     */
    void checkInvariants(
        check::CheckContext &ctx,
        std::optional<sim::ServedBy> expected_origin = {}) const;

  private:
    friend struct check::CheckTestPeer;

    std::uint32_t setIndex(sim::Addr addr) const;
    CacheLine *setBase(std::uint32_t set);
    const CacheLine *setBase(std::uint32_t set) const;

    std::string name_;
    CacheGeometry geom_;
    std::uint32_t numSets_;
    std::vector<CacheLine> lines_;
    std::uint64_t stampCounter_ = 0;
    CacheStats stats_;
    CacheShadow *shadow_ = nullptr;
};

} // namespace mem

#endif // MEM_CACHE_HH
