/**
 * @file
 * The main memory system: memory controller, DRAM, front-side bus, and
 * the queue/filter machinery of Figure 3 that surrounds the memory
 * processor.
 *
 * Responsibilities:
 *  - service demand and processor-prefetch line fetches (queue 1),
 *  - expose the observed miss stream to the ULMT (queue 2, with
 *    Verbose / Non-Verbose selection),
 *  - inject ULMT push prefetches (queue 3) after the Filter module,
 *    the queue-capacity check, and the queue-1 cross-match,
 *  - service the memory processor's correlation-table accesses with
 *    placement-dependent latency (in-DRAM vs. North Bridge),
 *  - deliver pushed lines to the L2 via a callback, and answer "is a
 *    prefetch for line X in flight?" so the L2 can model prefetch
 *    replies stealing MSHRs (delayed hits).
 */

#ifndef MEM_MEMORY_SYSTEM_HH
#define MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "mem/bus.hh"
#include "sim/stats.hh"
#include "mem/dram.hh"
#include "mem/prefetch_audit.hh"
#include "mem/prefetch_filter.hh"
#include "mem/table_cache.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mem {

/**
 * Observer of the miss stream arriving at the memory controller.
 * Implemented by the ULMT engine (core::UlmtEngine).
 */
class MissObserver
{
  public:
    virtual ~MissObserver() = default;

    /**
     * A request reached the memory controller.
     *
     * @param when cycle at which the address is visible in queue 2
     * @param line_addr L2-line-aligned address
     * @param kind Demand or CpuPrefetch (the latter only in Verbose)
     */
    virtual void observeMiss(sim::Cycle when, sim::Addr line_addr,
                             sim::RequestKind kind) = 0;
};

/**
 * Per-tenant (per-core) QoS counters kept by the controller.  Passive:
 * they never feed back into timing, so they are excluded from config
 * fingerprints, but they are checkpointed so restored runs keep exact
 * fairness accounting.
 */
struct CoreQos
{
    std::uint64_t demandFetches = 0;
    std::uint64_t ulmtPrefetchesIssued = 0;
    /** Queue-1 residency of each demand fetch (complete - issue). */
    sim::SampleStat q1Wait;
};

/** Controller-side statistics. */
struct MemorySystemStats
{
    std::uint64_t demandFetches = 0;
    std::uint64_t cpuPrefetchFetches = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t ulmtPrefetchesIssued = 0;
    std::uint64_t ulmtPrefetchesDroppedFilter = 0;
    std::uint64_t ulmtPrefetchesDroppedQueueFull = 0;
    std::uint64_t ulmtPrefetchesDroppedDemandMatch = 0;
    /** Dropped on a cross-match against an in-flight CPU prefetch
     *  (previously misattributed to demand_match). */
    std::uint64_t ulmtPrefetchesDroppedCpuPfMatch = 0;
    /** Dropped because the push would cross a physical page boundary
     *  relative to its trigger (only with the VM layer on). */
    std::uint64_t ulmtPrefetchesDroppedPageCross = 0;
    std::uint64_t tableReads = 0;
    std::uint64_t tableWrites = 0;
};

/** Sentinel trigger address for ulmtPrefetch: no page-cross check. */
inline constexpr sim::Addr noPfTrigger = ~static_cast<sim::Addr>(0);

/** The memory system below the L2 cache. */
class MemorySystem
{
  public:
    /** Invoked when a pushed line arrives at the L2 of @p core. */
    using PushCallback =
        std::function<void(sim::Cycle, sim::Addr, unsigned core)>;

    MemorySystem(sim::EventQueue &eq, const TimingParams &tp)
        : eq_(eq), tp_(tp), dram_(tp), filter_(tp.filterEntries)
    {
    }

    /** Attach the ULMT observer; @p verbose selects the Verbose mode. */
    void
    setObserver(MissObserver *observer, bool verbose)
    {
        observer_ = observer;
        verbose_ = verbose;
    }

    /**
     * Attach a per-core ULMT observer (percore serving mode).  Misses
     * from @p core go to @p observer; cores without one fall back to
     * the default observer set by setObserver().
     */
    void
    setCoreObserver(unsigned core, MissObserver *observer, bool verbose)
    {
        if (coreObservers_.size() <= core)
            coreObservers_.resize(core + 1, nullptr);
        coreObservers_[core] = observer;
        verbose_ = verbose;
    }

    /**
     * Declare the number of main processors sharing this controller.
     * Sizes the per-tenant QoS counters; 1 (the default) keeps the
     * single-core behavior and stat namespace.
     */
    void
    setNumCores(unsigned cores)
    {
        numCores_ = cores;
        coreQos_.resize(cores);
    }

    unsigned numCores() const { return numCores_; }

    /** Per-tenant QoS counters (sized by setNumCores). */
    const std::vector<CoreQos> &coreQos() const { return coreQos_; }

    /** Set the sink for pushed prefetch lines (the L2). */
    void setPushCallback(PushCallback cb) { push_ = std::move(cb); }

    /**
     * Fetch a line for the main processor (demand miss or processor-
     * side prefetch miss at L2).
     *
     * @param issue cycle the L2 miss is detected
     * @param line_addr L2-line-aligned address
     * @param kind Demand or CpuPrefetch
     * @param core requesting main processor (0 on single-core)
     * @return cycle at which the fill completes at the L2
     */
    sim::Cycle fetchLine(sim::Cycle issue, sim::Addr line_addr,
                         sim::RequestKind kind, unsigned core = 0);

    /**
     * Inject a ULMT push prefetch for @p line_addr, generated at cycle
     * @p ready.  Applies the Filter module, the queue-3 capacity
     * limit, and the cross-match against in-flight demand fetches.
     *
     * @param flow trace-event flow id of the demand miss that triggered
     *             this prefetch (0 = none / tracing off)
     * @param core main processor the push is destined for
     * @param engine id of the issuing ULMT engine (audit attribution)
     * @param trigger physical line address of the triggering miss; with
     *                the VM layer on (setPageShift), a push whose line
     *                lies on a different physical page than its trigger
     *                is dropped (prefetching across a physical page
     *                boundary is meaningless under remapping).
     *                noPfTrigger skips the check.
     * @return true if the prefetch was issued to DRAM
     */
    bool ulmtPrefetch(sim::Cycle ready, sim::Addr line_addr,
                      std::uint64_t flow = 0, unsigned core = 0,
                      unsigned engine = 0,
                      sim::Addr trigger = noPfTrigger);

    /**
     * Enable the physical page-boundary drop rule for pushes
     * (log2(page bytes); 0 -- the default -- disables it, the pre-VM
     * behavior).
     */
    void setPageShift(std::uint32_t shift) { pageShift_ = shift; }

    /**
     * One correlation-table access by the memory processor (on a miss
     * in its own cache).
     *
     * @param ready earliest start cycle
     * @param addr table address
     * @param is_write true for a table update
     * @return completion cycle as seen by the memory processor
     */
    sim::Cycle tableAccess(sim::Cycle ready, sim::Addr addr,
                           bool is_write);

    /**
     * Build the table cache (--table-cache).  Must be called before
     * the first tableAccess(); without it the table path is
     * bit-identical to the pre-cache simulator.  Line granularity is
     * the memory processor's L1 line (tableAccess() addresses arrive
     * at that granularity) and the drain-batch row is tp.dramRowBytes.
     */
    void configureTableCache(const TableCacheSpec &spec);

    /**
     * Drop cached table lines covering [@p addr, @p addr + @p bytes):
     * a page remap relocated those table rows, so the cache must not
     * serve the stale copies.  Dirty lines are flushed to DRAM
     * starting at @p when (fire and forget).  No-op when the cache is
     * disabled.
     */
    void tableInvalidate(sim::Cycle when, sim::Addr addr,
                         std::uint32_t bytes);

    TableCache &tableCache() { return tcache_; }
    const TableCache &tableCache() const { return tcache_; }

    /** Write a dirty line back to memory (fire and forget).
     *  @param core the evicting main processor (audit attribution) */
    void writeback(sim::Cycle when, sim::Addr line_addr,
                   unsigned core = 0);

    /**
     * Arrival cycle of an in-flight ULMT prefetch for @p line_addr
     * destined for @p core, or sim::neverCycle when none is in flight.
     * Used by the L2 to model a prefetch reply stealing the MSHR of a
     * matching demand miss.
     */
    sim::Cycle
    inflightPrefetchArrival(sim::Addr line_addr, unsigned core = 0) const
    {
        auto it = inflightPf_.find(sim::packCoreLine(core, line_addr));
        return it == inflightPf_.end() ? sim::neverCycle : it->second;
    }

    const MemorySystemStats &stats() const { return stats_; }
    const Bus &bus() const { return bus_; }
    const Dram &dram() const { return dram_; }
    const PrefetchFilter &filter() const { return filter_; }
    const TimingParams &params() const { return tp_; }

    /** Demand fetches currently in flight (queue 1). */
    std::size_t inflightDemandCount() const
    {
        return inflightDemand_.size();
    }

    /** CPU-prefetch fetches currently in flight (queue 1). */
    std::size_t inflightCpuPrefetchCount() const
    {
        return inflightCpuPf_.size();
    }

    /** ULMT prefetches currently in flight (queue 3). */
    std::size_t inflightPrefetchCount() const
    {
        return inflightPf_.size();
    }

    /**
     * Trace-event flow id of the miss currently being delivered through
     * observeMiss (0 outside that call or with tracing off).  The
     * observer reads it synchronously to link its later prefetches back
     * to the triggering miss without widening the MissObserver
     * interface.
     */
    std::uint64_t observedFlowId() const { return observedFlowId_; }

    /**
     * Core id of the miss currently being delivered through
     * observeMiss (0 outside that call).  Same synchronous side-channel
     * pattern as observedFlowId(): it lets the engine tag its queue-2
     * entries per tenant without widening the MissObserver interface.
     */
    unsigned observedCore() const { return observedCore_; }

    /** Register controller/bus/DRAM/filter stats under "memsys.*". */
    void registerStats(sim::StatRegistry &reg) const;

    /**
     * Serialize queues 1/3, the Filter, the bus and the DRAM.  Pending
     * completion events are re-registered on restore from their
     * EventKind tags via the action builders below.
     */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

    /**
     * The queue-1 demand completion closure (run and restore).  @p key
     * is the packed (core, line) map key carried in the event's arg0.
     */
    sim::EventQueue::Action demandDoneAction(sim::Addr key);

    /** The queue-1 CPU-prefetch completion closure (run and restore). */
    sim::EventQueue::Action cpuPfDoneAction(sim::Addr key);

    /** The queue-3 arrival closure (shared by run and restore). */
    sim::EventQueue::Action prefetchArrivalAction(sim::Addr key,
                                                  sim::Cycle arrival);

    /**
     * Invariants: every in-flight entry in queues 1 and 3 has exactly
     * the matching pending completion events (MemDemandDone /
     * MemCpuPfDone counts per line, one MemPfArrival per prefetched
     * line with the recorded arrival cycle), and queue 3 never exceeds
     * the configured depth.  @p pending is the event queue's saved
     * view at the same instant.
     */
    void checkInvariants(check::CheckContext &ctx,
                         const std::vector<sim::SavedEvent> &pending)
        const;

    /** Emit spans into @p t (propagates to the bus and the DRAM). */
    void
    setTrace(sim::TraceEventBuffer *t)
    {
        trace_ = t;
        bus_.setTrace(t);
        dram_.setTrace(t);
    }

    /**
     * Attach the passive lifecycle / interference auditor (nullptr --
     * the default -- disables auditing at the cost of one pointer test
     * per hook).  The auditor only reads cycles this controller
     * already computed; timing is bit-identical with it on or off.
     */
    void setAudit(PrefetchAudit *a) { audit_ = a; }

  private:
    friend struct check::CheckTestPeer;

    /** The pre-cache tableAccess() body: one DRAM table access. */
    sim::Cycle dramTableAccess(sim::Cycle ready, sim::Addr addr,
                               bool is_write);

    sim::EventQueue &eq_;
    const TimingParams &tp_;
    Bus bus_;
    Dram dram_;
    PrefetchFilter filter_;
    MissObserver *observer_ = nullptr;
    /** Per-core observers (percore mode); fall back to observer_. */
    std::vector<MissObserver *> coreObservers_;
    bool verbose_ = false;
    PushCallback push_;

    // All three in-flight maps (and the Filter) are keyed by the packed
    // (core, line) key of sim::packCoreLine so the cross-match and
    // dedup logic is naturally per tenant; core 0's key equals the raw
    // line address.  Bus and DRAM always see the raw line address.

    /** Demand fetches currently in flight (queue 1). */
    std::unordered_map<sim::Addr, std::uint32_t> inflightDemand_;
    /** CPU-prefetch fetches in flight (queue 1, tracked separately so
     *  cross-match drops are attributed per Figure 3). */
    std::unordered_map<sim::Addr, std::uint32_t> inflightCpuPf_;
    /** ULMT prefetches in flight: key -> arrival cycle (queue 3). */
    std::unordered_map<sim::Addr, sim::Cycle> inflightPf_;

    MemorySystemStats stats_;
    unsigned numCores_ = 1;
    /** Per-tenant QoS counters (sized by setNumCores). */
    std::vector<CoreQos> coreQos_;
    /** Queueing delay seen by correlation-table accesses at the DRAM. */
    sim::SampleStat tableWait_;
    sim::TraceEventBuffer *trace_ = nullptr;
    PrefetchAudit *audit_ = nullptr;
    std::uint64_t observedFlowId_ = 0;
    unsigned observedCore_ = 0;
    /** log2(page bytes) for the push page-cross drop (0 = off). */
    std::uint32_t pageShift_ = 0;
    /** SRAM cache in front of the table's DRAM traffic (MSCache). */
    TableCache tcache_;
    /** Scratch list of write-backs produced by one cache operation. */
    std::vector<sim::Addr> tcacheWbs_;

  public:
    const sim::SampleStat &tableWait() const { return tableWait_; }
};

} // namespace mem

#endif // MEM_MEMORY_SYSTEM_HH
