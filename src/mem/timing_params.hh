/**
 * @file
 * Timing and sizing parameters of the simulated machine.
 *
 * The defaults follow Table 3 of the paper exactly.  All latencies are
 * in 1.6 GHz main-processor cycles; round-trip (RT) latencies are
 * decomposed into path components so that contention can be applied at
 * the right resource (front-side bus, DRAM bank, DRAM channel).
 *
 * Decomposition of the paper's RT memory latencies (208 row hit / 243
 * row miss, contention-free, from the main processor):
 *
 *     reqPathCycles (48) + bank (32 / 67) + channel (64)
 *     + respPathCycles (64)  =  208 / 243
 *
 * The memory processor's table accesses see RT 21/56 when it sits in
 * the DRAM chip and 65/100 when it sits in the North Bridge, matching
 * Table 3 with the component values below.
 */

#ifndef MEM_TIMING_PARAMS_HH
#define MEM_TIMING_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace mem {

/** Where the memory processor that runs the ULMT is placed (Fig. 3). */
enum class MemProcPlacement : std::uint8_t {
    InDram,       //!< Integrated in the DRAM chip (Fig. 3-b).
    NorthBridge   //!< In the memory-controller chip (Fig. 3-a).
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint32_t sizeBytes;
    std::uint32_t assoc;
    std::uint32_t lineBytes;

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    std::uint32_t numSets() const { return numLines() / assoc; }
};

/** All machine parameters (Table 3 defaults). */
struct TimingParams
{
    // ------------------------------------------------------------------
    // Main processor core.
    std::uint32_t issueWidth = 6;          //!< ops issued per cycle
    std::uint32_t maxPendingLoads = 8;
    std::uint32_t maxPendingStores = 16;
    /** Reorder-buffer entries: bounds how far issue runs past the
     *  oldest incomplete load (limits streaming MLP). */
    std::uint32_t robSize = 128;

    // ------------------------------------------------------------------
    // Main processor cache hierarchy.
    CacheGeometry l1 = {16 * 1024, 2, 32};   //!< 16 KB, 2-way, 32 B
    CacheGeometry l2 = {512 * 1024, 4, 64};  //!< 512 KB, 4-way, 64 B
    /** Conven4 stream prefetcher (Table 4: NumSeq=4, NumPref=6). */
    std::uint32_t streamNumSeq = 4;
    std::uint32_t streamNumPref = 6;
    sim::Cycle l1HitRt = 3;                  //!< L1 hit round trip
    sim::Cycle l2HitRt = 19;                 //!< L2 hit round trip
    std::uint32_t l2Mshrs = 16;              //!< L2 miss-status registers

    // ------------------------------------------------------------------
    // Front-side (main memory) bus: split transaction, 8 B, 400 MHz.
    sim::Cycle busCyclesPerBeat = 4;   //!< 1.6 GHz cycles per bus cycle
    std::uint32_t busBytesPerBeat = 8;
    /** Bus occupancy of a request (address phase). */
    sim::Cycle busRequestOccupancy() const { return busCyclesPerBeat; }
    /** Bus occupancy of transferring @p bytes of data. */
    sim::Cycle
    busDataOccupancy(std::uint32_t bytes) const
    {
        std::uint32_t beats =
            (bytes + busBytesPerBeat - 1) / busBytesPerBeat;
        return beats * busCyclesPerBeat;
    }

    // ------------------------------------------------------------------
    // Memory round-trip path components (see file comment).
    sim::Cycle reqPathCycles = 48;   //!< L2 miss -> request at controller
    sim::Cycle respPathCycles = 64;  //!< controller -> L2 fill complete

    // ------------------------------------------------------------------
    // DRAM organization: dual channel, 2 B @ 800 MHz each (3.2 GB/s).
    std::uint32_t dramChannels = 2;
    std::uint32_t dramBanksPerChannel = 8;
    std::uint32_t dramRowBytes = 4096;
    sim::Cycle bankRowHitCycles = 32;    //!< full-line access, open row
    sim::Cycle bankRowMissCycles = 67;   //!< full-line access, closed row
    sim::Cycle channelXferCycles = 64;   //!< 64 B over 1.6 GB/s channel

    // Half-line (32 B) accesses issued by the memory processor for its
    // correlation table traffic.
    sim::Cycle tableBankRowHitCycles = 19;
    sim::Cycle tableBankRowMissCycles = 54;
    sim::Cycle tableChannelXferCycles = 32;  //!< 32 B over main channel

    // ------------------------------------------------------------------
    // Memory processor.
    MemProcPlacement placement = MemProcPlacement::InDram;
    std::uint32_t memProcIssueWidth = 2;     //!< 2-issue, 800 MHz
    CacheGeometry memProcL1 = {32 * 1024, 2, 32};
    sim::Cycle memProcL1HitRtMemCycles = 4;  //!< in mem-proc cycles
    /** Fixed wire/controller overhead of a table access. */
    sim::Cycle tableAccessFixedDram = 2;          //!< inside DRAM chip
    sim::Cycle tableAccessFixedNorthBridge = 14;  //!< MC <-> DRAM paths
    /** Extra delay for a prefetch request to reach DRAM from the NB. */
    sim::Cycle prefetchInjectDelay = 25;

    // ------------------------------------------------------------------
    // Queue and filter structures (Fig. 3).
    std::uint32_t queueDepth = 16;     //!< depth of queues 1 through 6
    std::uint32_t filterEntries = 32;  //!< FIFO prefetch filter

    /** Contention-free memory RT from the processor (row hit). */
    sim::Cycle
    memRowHitRt() const
    {
        return reqPathCycles + bankRowHitCycles + channelXferCycles +
               respPathCycles;
    }

    /** Contention-free memory RT from the processor (row miss). */
    sim::Cycle
    memRowMissRt() const
    {
        return reqPathCycles + bankRowMissCycles + channelXferCycles +
               respPathCycles;
    }
};

} // namespace mem

#endif // MEM_TIMING_PARAMS_HH
