/**
 * @file
 * The Filter module of Figure 3: a fixed-size FIFO of recently issued
 * prefetch addresses.
 *
 * Correlation prefetching may generate the same address several times
 * in a short window; the filter drops a request whose address is still
 * in the list, and otherwise records it at the tail (Section 3.2).
 */

#ifndef MEM_PREFETCH_FILTER_HH
#define MEM_PREFETCH_FILTER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "check/check.hh"
#include "ckpt/state.hh"
#include "sim/types.hh"

namespace mem {

/** FIFO prefetch-address filter. */
class PrefetchFilter
{
  public:
    explicit PrefetchFilter(std::uint32_t entries) : capacity_(entries) {}

    /**
     * Check an address about to be issued as a prefetch.
     *
     * @return true if the request should proceed (address recorded),
     *         false if it should be dropped (recently issued).
     */
    bool
    admit(sim::Addr line_addr)
    {
        if (capacity_ == 0) {
            // Filter disabled: every request passes, but it still
            // counts as an admit so the admit/drop gauges (and the
            // hit-rate series derived from them) never divide 0 by 0.
            ++admits_;
            return true;
        }
        auto it = present_.find(line_addr);
        if (it != present_.end() && it->second > 0) {
            ++drops_;
            return false;
        }
        fifo_.push_back(line_addr);
        ++present_[line_addr];
        if (fifo_.size() > capacity_) {
            sim::Addr old = fifo_.front();
            fifo_.pop_front();
            auto old_it = present_.find(old);
            if (--old_it->second == 0)
                present_.erase(old_it);
        }
        ++admits_;
        return true;
    }

    std::uint64_t drops() const { return drops_; }
    std::uint64_t admits() const { return admits_; }
    std::uint32_t capacity() const { return capacity_; }
    std::size_t size() const { return fifo_.size(); }

    void
    reset()
    {
        fifo_.clear();
        present_.clear();
        drops_ = 0;
        admits_ = 0;
    }

    /** Serialize the FIFO in order plus the counters. */
    void
    saveState(ckpt::StateWriter &w) const
    {
        w.u32(capacity_);
        w.u64(drops_);
        w.u64(admits_);
        w.u64(fifo_.size());
        for (sim::Addr a : fifo_)
            w.u64(a);
    }

    /** Rebuild; present_ is exactly the FIFO's multiplicity count. */
    void
    restoreState(ckpt::StateReader &r)
    {
        if (r.u32() != capacity_)
            throw ckpt::CkptError(
                "prefetch filter capacity in checkpoint does not "
                "match the configuration");
        reset();
        drops_ = r.u64();
        admits_ = r.u64();
        const std::uint64_t n = r.u64();
        if (capacity_ > 0 && n > capacity_)
            throw ckpt::CkptError(
                "prefetch filter FIFO longer than its capacity");
        for (std::uint64_t i = 0; i < n; ++i) {
            const sim::Addr a = r.u64();
            fifo_.push_back(a);
            ++present_[a];
        }
    }

    /**
     * Invariants: the FIFO never exceeds its capacity, and present_
     * is exactly the FIFO's per-address multiplicity count (no zero
     * or orphaned entries in either direction).
     */
    void
    checkInvariants(check::CheckContext &ctx) const
    {
        ctx.require(capacity_ == 0 || fifo_.size() <= capacity_,
                    "filter",
                    "FIFO holds " + std::to_string(fifo_.size()) +
                        " entries, capacity " +
                        std::to_string(capacity_));
        std::unordered_map<sim::Addr, std::uint32_t> recount;
        for (sim::Addr a : fifo_)
            ++recount[a];
        for (const auto &[addr, count] : present_) {
            ctx.require(count > 0, "filter",
                        "present_ holds a zero count for " +
                            check::hex(addr));
            auto it = recount.find(addr);
            ctx.require(it != recount.end() && it->second == count,
                        "filter",
                        "present_ count for " + check::hex(addr) +
                            " disagrees with the FIFO");
        }
        for (const auto &[addr, count] : recount) {
            (void)count;
            ctx.require(present_.count(addr) != 0, "filter",
                        "FIFO entry " + check::hex(addr) +
                            " missing from present_");
        }
    }

  private:
    friend struct check::CheckTestPeer;

    std::uint32_t capacity_;
    std::deque<sim::Addr> fifo_;
    std::unordered_map<sim::Addr, std::uint32_t> present_;
    std::uint64_t drops_ = 0;
    std::uint64_t admits_ = 0;
};

} // namespace mem

#endif // MEM_PREFETCH_FILTER_HH
