/**
 * @file
 * Prefetch lifecycle auditing and per-tenant interference attribution
 * (DESIGN.md section 12).
 *
 * Every ULMT push prefetch gets a lifecycle record from its trigger at
 * the controller (queue 3) through DRAM service and the L2 fill to a
 * terminal outcome:
 *
 *   useful_timely      demand hit on an installed pushed line
 *   useful_late        the fill arrived after the demand miss started
 *                      (a delayed hit: partial coverage)
 *   evicted_unused     the pushed line left the L2 untouched
 *   redundant          the push arrived but the L2 refused it (line
 *                      present / in the write-back queue / MSHRs full /
 *                      set transaction-pending)
 *   dropped_filter     caught by the Filter module or the in-flight
 *                      dedup before issuing
 *   dropped_queue_full queue 3 at capacity
 *   dropped_demand_match / dropped_cpu_pf_match
 *                      queue-1 cross-match (Fig. 3)
 *   dropped_page_cross the push's line and its trigger sit on
 *                      different physical pages (VM layer on only)
 *
 * Outcomes are aggregated per core and per engine; useful prefetches
 * additionally feed a lead-time (fill-to-use cycles) histogram and a
 * lateness sample.  The CPU stream prefetcher's lifecycle (issued /
 * to-memory / useful timely / useful late / replaced) is already fully
 * counted by HierarchyStats and is folded into the report by the
 * System.
 *
 * Interference attribution: every bus phase and DRAM access reports
 * its occupancy here, split demand / prefetch / other per tenant
 * (tenants are the main cores plus one pseudo-tenant for the memory
 * thread's correlation-table traffic).  When a *demand* fetch waits
 * for a resource, the wait cycles are charged to the tenant whose
 * transfer most recently occupied that resource (last-owner
 * approximation; self when no owner is recorded), producing the
 * memsys.core.<i>.blocked_by.<j> matrix.
 *
 * The audit layer is strictly passive: it only observes cycles that
 * the memory system already computed, never feeds back into timing,
 * and is excluded from config fingerprints.  Its state is not
 * checkpointed; a restored run audits only the post-restore region
 * (records installed before the snapshot fall back to core-level
 * counting without lead-time samples).
 */

#ifndef MEM_PREFETCH_AUDIT_HH
#define MEM_PREFETCH_AUDIT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/trace_event.hh"
#include "sim/types.hh"

namespace mem {

/** Terminal lifecycle outcomes of a ULMT push prefetch. */
enum class PushOutcome : std::uint8_t {
    UsefulTimely,
    UsefulLate,
    EvictedUnused,
    Redundant,
    DroppedFilter,
    DroppedQueueFull,
    DroppedDemandMatch,
    DroppedCpuPfMatch,
    DroppedPageCross,
};

/** Stable snake-case name (stats, BENCH JSON, trace instants). */
const char *pushOutcomeName(PushOutcome o);

/** Traffic split used for the per-tenant bus/DRAM occupancy. */
enum class TrafficSplit : std::uint8_t {
    Demand,    //!< demand fetch phases
    Prefetch,  //!< CPU-prefetch fetches and ULMT pushes
    Other,     //!< write-backs and correlation-table traffic
};

/** Per-core (or per-engine) push outcome counters. */
struct AuditOutcomeCounts
{
    std::uint64_t issued = 0;
    std::uint64_t usefulTimely = 0;
    std::uint64_t usefulLate = 0;
    std::uint64_t evictedUnused = 0;
    std::uint64_t redundant = 0;
    std::uint64_t droppedFilter = 0;
    std::uint64_t droppedQueueFull = 0;
    std::uint64_t droppedDemandMatch = 0;
    std::uint64_t droppedCpuPfMatch = 0;
    std::uint64_t droppedPageCross = 0;

    /** Pushes the engine handed to the controller (issued + drops). */
    std::uint64_t
    triggered() const
    {
        return issued + droppedFilter + droppedQueueFull +
               droppedDemandMatch + droppedCpuPfMatch +
               droppedPageCross;
    }

    std::uint64_t useful() const { return usefulTimely + usefulLate; }

    /** Fraction of issued pushes that were referenced. */
    double
    accuracy() const
    {
        return issued ? static_cast<double>(useful()) /
                            static_cast<double>(issued)
                      : 0.0;
    }

    /** Fraction of useful pushes that arrived before the demand. */
    double
    timeliness() const
    {
        return useful() ? static_cast<double>(usefulTimely) /
                              static_cast<double>(useful())
                        : 0.0;
    }

    /** Fraction of would-be misses covered, given the demand misses
     *  that went to memory at full latency. */
    double
    coverage(std::uint64_t non_pref_misses) const
    {
        const std::uint64_t total = useful() + non_pref_misses;
        return total ? static_cast<double>(useful()) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** One core's slice of the final audit report. */
struct AuditCoreReport
{
    AuditOutcomeCounts push;
    double coverage = 0.0;
    double accuracy = 0.0;
    double timeliness = 0.0;

    // CPU stream prefetcher lifecycle (from HierarchyStats; useful
    // late = useful - timely).
    std::uint64_t cpuPfIssued = 0;
    std::uint64_t cpuPfToMemory = 0;
    std::uint64_t cpuPfUsefulTimely = 0;
    std::uint64_t cpuPfUsefulLate = 0;
    std::uint64_t cpuPfReplaced = 0;
    std::uint64_t cpuPfDroppedPageCross = 0;

    // Lead-time (fill-to-use) histogram of useful_timely pushes.
    std::vector<double> leadEdges;
    std::vector<std::uint64_t> leadCounts;
    std::uint64_t leadBelow = 0;
    double leadP50 = 0.0;
    double leadP95 = 0.0;

    // Lateness (fill-after-demand cycles) of useful_late pushes.
    std::uint64_t lateCount = 0;
    double lateMean = 0.0;

    // Per-tenant occupancy split.
    std::uint64_t busDemandCycles = 0;
    std::uint64_t busPrefetchCycles = 0;
    std::uint64_t busOtherCycles = 0;
    std::uint64_t dramDemandCycles = 0;
    std::uint64_t dramPrefetchCycles = 0;
    std::uint64_t dramOtherCycles = 0;

    /** Demand wait cycles charged to each tenant: one entry per core
     *  plus a final entry for the memory thread's table traffic. */
    std::vector<std::uint64_t> blockedBy;
};

/** One engine's outcome counters. */
struct AuditEngineReport
{
    unsigned engine = 0;
    AuditOutcomeCounts push;
};

/** Everything the audit layer measured in one run. */
struct AuditReport
{
    bool enabled = false;
    std::vector<AuditCoreReport> cores;
    std::vector<AuditEngineReport> engines;
    /** DRAM occupancy of correlation-table accesses (the memory
     *  thread's own footprint in the banks). */
    std::uint64_t tableDramCycles = 0;
    /** Push records with no terminal outcome at end of run. */
    std::uint64_t openInflight = 0;
    std::uint64_t openInstalled = 0;
};

/** The passive lifecycle / interference auditor. */
class PrefetchAudit
{
  public:
    /**
     * @param cores    main processors sharing the memory system
     * @param engines  ULMT engines (>= 1; engine ids out of range are
     *                 counted per core only)
     * @param banks    DRAM banks (global) for ownership tracking
     * @param channels DRAM channels
     */
    PrefetchAudit(unsigned cores, unsigned engines, std::size_t banks,
                  std::size_t channels);

    unsigned numCores() const { return numCores_; }
    unsigned numEngines() const { return numEngines_; }

    /** The pseudo-tenant index of the memory thread. */
    unsigned ulmtTenant() const { return numCores_; }

    // --- Lifecycle hooks (MemorySystem) ------------------------------

    /** A push died before issuing; @p reason is one of the Dropped*
     *  outcomes. */
    void pushDropped(unsigned core, unsigned engine, PushOutcome reason,
                     std::uint64_t flow, sim::Cycle when);

    /** A push issued to DRAM; @p key is the packed (core,line) id. */
    void pushIssued(unsigned core, unsigned engine, std::uint64_t flow,
                    sim::Addr key, sim::Cycle ready, sim::Cycle arrival);

    // --- Lifecycle hooks (Hierarchy) ---------------------------------

    /** The pushed line was installed in the L2 at @p when. */
    void pushInstalled(unsigned core, sim::Addr line_addr,
                       sim::Cycle when);

    /** First demand touch of an installed pushed line. */
    void pushUsedTimely(unsigned core, sim::Addr line_addr,
                        sim::Cycle when);

    /** A demand miss claimed an in-flight push (delayed hit). */
    void pushUsedLate(unsigned core, sim::Addr line_addr,
                      sim::Cycle when, sim::Cycle arrival);

    /** The push arrived but the L2 refused it (four drop rules). */
    void pushRedundant(unsigned core, sim::Addr line_addr,
                       sim::Cycle when);

    /** An installed pushed line was evicted untouched. */
    void pushEvicted(unsigned core, sim::Addr line_addr,
                     sim::Cycle when);

    // --- Interference hooks (MemorySystem) ---------------------------

    /**
     * One bus phase by @p tenant.  @p start/@p duration are the cycles
     * the bus actually granted; for Demand traffic the wait
     * (start - ready) is charged to the bus's last recorded owner.
     */
    void busPhase(unsigned tenant, TrafficSplit cls, sim::Cycle ready,
                  sim::Cycle start, sim::Cycle duration);

    /**
     * One DRAM access by @p tenant.  @p occupancy is the intrinsic
     * bank + channel time; the difference to (done - ready) is
     * queueing, charged (Demand only) to the bank's -- else the
     * channel's -- last recorded owner.  @p channel may be SIZE_MAX
     * for bank-only accesses (in-DRAM table reads).
     */
    void dramAccess(unsigned tenant, TrafficSplit cls, std::size_t bank,
                    std::size_t channel, sim::Cycle ready,
                    sim::Cycle done, sim::Cycle occupancy);

    // --- Output ------------------------------------------------------

    /**
     * Register everything under "audit.core.<c>.*" and
     * "memsys.core.<i>.blocked_by.<j>".  @p non_pref_misses supplies
     * the per-core coverage denominator (demand misses at full
     * latency) and must stay valid for the registry's lifetime.
     */
    void registerStats(
        sim::StatRegistry &reg,
        std::function<std::uint64_t(unsigned)> non_pref_misses);

    /** Emit outcome-annotated flow ends into @p t (nullptr disables). */
    void setTrace(sim::TraceEventBuffer *t) { trace_ = t; }

    /** Machine-wide aggregates (time-series channels). */
    AuditOutcomeCounts totals() const;
    std::uint64_t blockedTotal() const { return blockedTotal_; }
    std::uint64_t tableDramCycles() const { return tableDramCycles_; }

    const AuditOutcomeCounts &coreCounts(unsigned core) const
    {
        return cores_[core].push;
    }

    const sim::BinnedHistogram &leadTime(unsigned core) const
    {
        return cores_[core].leadTime;
    }

    /** Snapshot the final report (coverage left 0; the System fills
     *  it together with the CPU-prefetch lifecycle). */
    AuditReport report() const;

  private:
    struct PushRecord
    {
        unsigned engine = 0;
        std::uint64_t flow = 0;
        sim::Cycle ready = 0;
        sim::Cycle fill = 0;  //!< valid in installed_ only
    };

    struct CoreAudit
    {
        AuditOutcomeCounts push;
        sim::BinnedHistogram leadTime;
        sim::SampleStat lateCycles;
        sim::SampleStat issueToFill;
        std::array<std::uint64_t, 3> busCycles{};
        std::array<std::uint64_t, 3> dramCycles{};
        std::vector<std::uint64_t> blockedBy;

        CoreAudit(std::vector<double> edges, std::size_t tenants)
            : leadTime(std::move(edges)), blockedBy(tenants, 0)
        {
        }
    };

    /** Last recorded occupant of one arbitrated resource. */
    struct ResOwner
    {
        unsigned tenant = 0;
        sim::Cycle end = 0;
        bool valid = false;
    };

    void terminal(unsigned core, const PushRecord *rec, PushOutcome o,
                  sim::Cycle when);
    void countOutcome(AuditOutcomeCounts &c, PushOutcome o);
    void chargeWait(unsigned victim, const ResOwner &owner,
                    sim::Cycle ready, sim::Cycle wait);
    static void updateOwner(ResOwner &owner, unsigned tenant,
                            sim::Cycle end);

    unsigned numCores_;
    unsigned numEngines_;
    std::vector<CoreAudit> cores_;
    std::vector<AuditOutcomeCounts> engines_;
    std::unordered_map<sim::Addr, PushRecord> inflight_;
    std::unordered_map<sim::Addr, PushRecord> installed_;
    ResOwner busOwner_;
    std::vector<ResOwner> bankOwner_;
    std::vector<ResOwner> chanOwner_;
    std::uint64_t blockedTotal_ = 0;
    std::uint64_t tableDramCycles_ = 0;
    sim::TraceEventBuffer *trace_ = nullptr;
};

} // namespace mem

#endif // MEM_PREFETCH_AUDIT_HH
