#include "vm/vm.hh"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <stdexcept>

#include "sim/logging.hh"

namespace vm {

namespace {

/** TLB geometry per page-size class (Virtuoso-style: the base-page
 *  array is the big one; the huge-page array is small because each
 *  entry already covers 2 MB). */
constexpr std::uint32_t tlb4kSets = 16;
constexpr std::uint32_t tlb4kWays = 4;
constexpr std::uint32_t tlb2mSets = 4;
constexpr std::uint32_t tlb2mWays = 4;

constexpr std::uint32_t shift4k = 12;
constexpr std::uint32_t shift2m = 21;

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint32_t
parsePageSize(const std::string &s)
{
    std::string t;
    t.reserve(s.size());
    for (char c : s)
        t.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(c))));
    if (t == "4k" || t == "4096")
        return 4096u;
    if (t == "2m" || t == "2097152")
        return 2u << 20;
    throw std::invalid_argument("bad page size (want 4k or 2m): " + s);
}

std::string
pageSizeName(std::uint32_t page_bytes)
{
    if (page_bytes == 4096u)
        return "4k";
    if (page_bytes == (2u << 20))
        return "2m";
    return std::to_string(page_bytes) + "b";
}

std::string
sectionSummary(const std::string &payload, unsigned cores,
               std::uint32_t page_bytes)
{
    if (cores == 0 || page_bytes == 0 ||
        (page_bytes & (page_bytes - 1)) != 0)
        throw ckpt::CkptError("vm section with a malformed header");
    std::uint32_t shift = 0;
    while ((1u << shift) != page_bytes)
        ++shift;

    ckpt::StateReader r(payload);
    const std::uint64_t next_frame = r.u64();
    r.u64();  // rng
    r.u32();  // remap cursor
    const std::uint64_t remaps = r.u64();
    r.u64();  // accesses at last remap tick
    std::vector<std::uint64_t> pages(cores);
    for (unsigned c = 0; c < cores; ++c) {
        pages[c] = r.u64();
        for (std::uint64_t i = 0; i < pages[c]; ++i) {
            r.u64();  // vpage
            r.u64();  // frame
            r.u64();  // touches
        }
    }
    const std::uint32_t tlb_entries =
        tlb4kSets * tlb4kWays + tlb2mSets * tlb2mWays;
    std::vector<std::uint64_t> tlb_valid(cores);
    for (unsigned c = 0; c < cores; ++c) {
        r.u64();  // lruTick
        for (std::uint32_t e = 0; e < tlb_entries; ++e) {
            tlb_valid[c] += r.b() ? 1 : 0;
            r.u64();  // vpage
            r.u64();  // frame
            r.u64();  // stamp
        }
    }

    const std::uint64_t base = physFrameBase >> shift;
    std::string out = pageSizeName(page_bytes) + " pages, " +
                      std::to_string(remaps) + " remaps, " +
                      std::to_string(next_frame >= base
                                         ? next_frame - base
                                         : 0) +
                      " frames";
    out += "; pages/core";
    for (std::uint64_t n : pages)
        out += " " + std::to_string(n);
    out += "; tlb valid/core";
    for (std::uint64_t n : tlb_valid)
        out += " " + std::to_string(n);
    return out;
}

std::uint32_t
VmSpec::pageShift() const
{
    SIM_ASSERT(pageBytes != 0 && (pageBytes & (pageBytes - 1)) == 0,
               "page size must be a power of two");
    std::uint32_t shift = 0;
    while ((1u << shift) != pageBytes)
        ++shift;
    return shift;
}

Vm::Vm(sim::EventQueue &eq, const VmSpec &spec, unsigned cores)
    : eq_(eq), spec_(spec), pageShift_(spec.pageShift()),
      spaces_(cores), tlbs_(cores), stats_(cores),
      nextFrame_(physFrameBase >> pageShift_), rng_(spec.seed)
{
    SIM_ASSERT(cores >= 1, "Vm needs at least one core");
    SIM_ASSERT(pageShift_ == shift4k || pageShift_ == shift2m,
               "supported page sizes are 4 KB and 2 MB");
    if (spec_.remapRate > 0.0) {
        const double period = 1e6 / spec_.remapRate;
        remapPeriod_ = std::max<sim::Cycle>(
            1, static_cast<sim::Cycle>(period + 0.5));
    }
    for (Tlb &tlb : tlbs_) {
        tlb.classes.push_back(
            {shift4k, tlb4kSets, tlb4kWays,
             std::vector<TlbEntry>(tlb4kSets * tlb4kWays)});
        tlb.classes.push_back(
            {shift2m, tlb2mSets, tlb2mWays,
             std::vector<TlbEntry>(tlb2mSets * tlb2mWays)});
    }
}

std::uint64_t
Vm::allocFrame()
{
    return nextFrame_++;
}

sim::Addr
Vm::translate(unsigned core, sim::Addr vaddr, sim::Cycle &when)
{
    SIM_ASSERT(core < spaces_.size(), "translate from unknown core");
    SIM_ASSERT(vaddr < physFrameBase,
               "virtual address collides with the physical range");
    VmCoreStats &st = stats_[core];
    ++st.accesses;

    const std::uint64_t vpage = vaddr >> pageShift_;
    const sim::Addr offset =
        vaddr & ((sim::Addr(1) << pageShift_) - 1);

    // ULB-style lookup: probe each page-size class in order.  Only the
    // class matching this machine's page size ever holds entries, but
    // the probe order is part of the modeled lookup.
    Tlb &tlb = tlbs_[core];
    for (TlbSizeClass &cls : tlb.classes) {
        if (cls.pageShift != pageShift_)
            continue;
        const std::uint32_t set =
            static_cast<std::uint32_t>(vpage) & (cls.sets - 1);
        for (std::uint32_t w = 0; w < cls.ways; ++w) {
            TlbEntry &e = cls.entries[set * cls.ways + w];
            if (e.valid && e.vpage == vpage) {
                ++st.tlbHits;
                e.stamp = ++tlb.lruTick;
                return (sim::Addr(e.frame) << pageShift_) | offset;
            }
        }
    }

    // Miss: walk the page table (allocate-on-touch) and refill.
    ++st.tlbMisses;
    st.walkCycles += pageWalkCycles;
    when += pageWalkCycles;

    auto [it, inserted] =
        spaces_[core].pages.try_emplace(vpage, PageEntry{});
    if (inserted)
        it->second.frame = allocFrame();
    ++it->second.touches;
    tlbFill(tlb, pageShift_, vpage, it->second.frame);
    return (sim::Addr(it->second.frame) << pageShift_) | offset;
}

void
Vm::tlbFill(Tlb &tlb, std::uint32_t page_shift, std::uint64_t vpage,
            std::uint64_t frame)
{
    for (TlbSizeClass &cls : tlb.classes) {
        if (cls.pageShift != page_shift)
            continue;
        const std::uint32_t set =
            static_cast<std::uint32_t>(vpage) & (cls.sets - 1);
        TlbEntry *victim = &cls.entries[set * cls.ways];
        for (std::uint32_t w = 0; w < cls.ways; ++w) {
            TlbEntry &e = cls.entries[set * cls.ways + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.stamp < victim->stamp)
                victim = &e;
        }
        victim->vpage = vpage;
        victim->frame = frame;
        victim->stamp = ++tlb.lruTick;
        victim->valid = true;
        return;
    }
    SIM_ASSERT(false, "no TLB class for this page size");
}

void
Vm::tlbInvalidate(Tlb &tlb, std::uint64_t vpage)
{
    for (TlbSizeClass &cls : tlb.classes) {
        for (TlbEntry &e : cls.entries) {
            if (e.valid && e.vpage == vpage)
                e.valid = false;
        }
    }
}

void
Vm::start()
{
    if (remapPeriod_ == 0)
        return;
    eq_.schedule(eq_.now() + remapPeriod_, sim::EventKind::VmRemap, 0,
                 0, remapAction());
}

void
Vm::doRemap()
{
    // The OS migrates pages that are being used.  A tick with no
    // translations since the previous one means the machine is idle
    // (or draining): nothing is hot, so nothing moves.  Without this
    // gate the relocation cost charged to the ULMT per migration can
    // exceed the remap period, and churn against an idle machine
    // extends the run's drain tail without bound.
    std::uint64_t total_accesses = 0;
    for (const VmCoreStats &st : stats_)
        total_accesses += st.accesses;
    const bool active = total_accesses != accessesAtLastTick_;
    accessesAtLastTick_ = total_accesses;

    // Pick the next core (round-robin) that has mapped pages at all.
    unsigned core = remapCursor_;
    bool found = false;
    for (unsigned i = 0; active && i < spaces_.size(); ++i) {
        const unsigned cand =
            (remapCursor_ + i) % static_cast<unsigned>(spaces_.size());
        if (!spaces_[cand].pages.empty()) {
            core = cand;
            found = true;
            break;
        }
    }
    if (found) {
        remapCursor_ =
            (core + 1) % static_cast<unsigned>(spaces_.size());
        AddressSpace &as = spaces_[core];

        // Victim: the hottest page since the last remap (the OS
        // migrates hot pages); lowest vpage breaks ties.  With no
        // touches recorded yet, pick pseudo-randomly so a cold space
        // still churns.
        auto victim = as.pages.begin();
        std::uint64_t best = 0;
        for (auto it = as.pages.begin(); it != as.pages.end(); ++it) {
            if (it->second.touches > best) {
                best = it->second.touches;
                victim = it;
            }
        }
        if (best == 0) {
            auto idx = splitmix64(rng_) % as.pages.size();
            victim = as.pages.begin();
            std::advance(victim, static_cast<std::ptrdiff_t>(idx));
        }

        const std::uint64_t old_frame = victim->second.frame;
        const std::uint64_t new_frame = allocFrame();
        victim->second.frame = new_frame;
        for (auto &p : as.pages)
            p.second.touches = 0;
        tlbInvalidate(tlbs_[core], victim->first);
        ++remaps_;
        ++stats_[core].remaps;
        if (remapCb_)
            remapCb_(old_frame, new_frame, spec_.pageBytes);
    }
    // The firing event was already popped, so pending() counts only
    // other work.  An empty queue means the machine has quiesced:
    // rescheduling would keep the run alive forever on remap ticks.
    if (eq_.pending() > 0)
        eq_.schedule(eq_.now() + remapPeriod_, sim::EventKind::VmRemap,
                     0, 0, remapAction());
}

void
Vm::registerStats(sim::StatRegistry &reg) const
{
    for (unsigned c = 0; c < stats_.size(); ++c) {
        const std::string p = "vm.core." + std::to_string(c) + ".";
        const VmCoreStats &st = stats_[c];
        reg.addCounter(p + "tlb.accesses", &st.accesses);
        reg.addCounter(p + "tlb.hits", &st.tlbHits);
        reg.addCounter(p + "tlb.misses", &st.tlbMisses);
        reg.addCounter(p + "walk_cycles", &st.walkCycles);
        reg.addCounter(p + "remaps", &st.remaps);
        reg.addGauge(p + "pages", [this, c] {
            return static_cast<double>(spaces_[c].pages.size());
        });
    }
    reg.addCounter("vm.remaps", &remaps_);
    reg.addGauge("vm.frames_allocated", [this] {
        return static_cast<double>(nextFrame_ -
                                   (physFrameBase >> pageShift_));
    });
}

void
Vm::saveState(ckpt::StateWriter &w) const
{
    w.u64(nextFrame_);
    w.u64(rng_);
    w.u32(remapCursor_);
    w.u64(remaps_);
    w.u64(accessesAtLastTick_);
    for (const AddressSpace &as : spaces_) {
        w.u64(as.pages.size());
        // std::map iterates key-sorted: identical state, identical
        // bytes.
        for (const auto &[vpage, e] : as.pages) {
            w.u64(vpage);
            w.u64(e.frame);
            w.u64(e.touches);
        }
    }
    for (const Tlb &tlb : tlbs_) {
        w.u64(tlb.lruTick);
        for (const TlbSizeClass &cls : tlb.classes) {
            for (const TlbEntry &e : cls.entries) {
                w.b(e.valid);
                w.u64(e.vpage);
                w.u64(e.frame);
                w.u64(e.stamp);
            }
        }
    }
    for (const VmCoreStats &st : stats_) {
        w.u64(st.accesses);
        w.u64(st.tlbHits);
        w.u64(st.tlbMisses);
        w.u64(st.walkCycles);
        w.u64(st.remaps);
    }
}

void
Vm::restoreState(ckpt::StateReader &r)
{
    nextFrame_ = r.u64();
    if (nextFrame_ < (physFrameBase >> pageShift_))
        throw ckpt::CkptError("vm frame allocator before its base");
    rng_ = r.u64();
    remapCursor_ = r.u32();
    if (remapCursor_ >= spaces_.size())
        throw ckpt::CkptError("vm remap cursor out of range");
    remaps_ = r.u64();
    accessesAtLastTick_ = r.u64();
    for (AddressSpace &as : spaces_) {
        as.pages.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t vpage = r.u64();
            PageEntry e;
            e.frame = r.u64();
            e.touches = r.u64();
            if (e.frame >= nextFrame_)
                throw ckpt::CkptError(
                    "vm page table names an unallocated frame");
            as.pages.emplace(vpage, e);
        }
    }
    for (Tlb &tlb : tlbs_) {
        tlb.lruTick = r.u64();
        for (TlbSizeClass &cls : tlb.classes) {
            for (TlbEntry &e : cls.entries) {
                e.valid = r.b();
                e.vpage = r.u64();
                e.frame = r.u64();
                e.stamp = r.u64();
            }
        }
    }
    for (VmCoreStats &st : stats_) {
        st.accesses = r.u64();
        st.tlbHits = r.u64();
        st.tlbMisses = r.u64();
        st.walkCycles = r.u64();
        st.remaps = r.u64();
    }
}

} // namespace vm
