/**
 * @file
 * Thin virtual-memory subsystem (DESIGN.md section 13).
 *
 * Workloads emit *virtual* addresses; the caches, queues 1-3 and the
 * ULMT observe *physical* ones.  The layer models just enough of an
 * OS/MMU to stress correlation survival:
 *
 *   - a per-process (= per-core) page table with allocate-on-touch
 *     mapping out of a shared, deterministic bump frame allocator;
 *   - a per-core set-associative TLB with per-page-size lookup (the
 *     Virtuoso ULB idiom: each supported page size has its own
 *     set-indexed array and lookups probe them in order), charging a
 *     fixed page-walk latency on a miss;
 *   - a seed-driven remap engine that periodically migrates the
 *     hottest page of one address space to a fresh frame and fires
 *     the existing OS-notification hook (System::pageRemap ->
 *     UlmtEngine::pageRemap -> checker resyncDeep), modelling OS page
 *     migration churn;
 *   - page-size control (4 KB or 2 MB) so huge pages can be compared
 *     against base pages.
 *
 * Remaps are copy-without-invalidate: cache lines fetched from the old
 * frame age out naturally, post-remap accesses miss and refetch from
 * the new frame, and correlation entries whose successors still name
 * the old frame prefetch dead lines -- exactly the churn the paper
 * waves away.  Everything is deterministic: frames are allocated
 * sequentially from a fixed base, the victim choice depends only on
 * touch counters (SplitMix64 from VmSpec::seed breaks cold ties), and
 * remap events are ordinary tagged events on the global queue.
 *
 * Physical frames start at 2^40, far above every workload's virtual
 * range and safely below the core-id bits of sim::packCoreLine (bit
 * 56), so virtual and physical addresses can never collide.
 */

#ifndef VM_VM_HH
#define VM_VM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ckpt/state.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace vm {

/** First physical byte handed out by the frame allocator (2^40). */
inline constexpr sim::Addr physFrameBase = 1ULL << 40;

/** Main cycles charged for a page-table walk on a TLB miss. */
inline constexpr sim::Cycle pageWalkCycles = 120;

/** Parse "4k" or "2m" (case-insensitive) into a page-byte count.
 *  @throws std::invalid_argument on anything else. */
std::uint32_t parsePageSize(const std::string &s);

/** "4k" / "2m" for the two supported sizes; "<N>b" otherwise. */
std::string pageSizeName(std::uint32_t page_bytes);

/**
 * One-line human summary of a "vm" checkpoint section: remap count,
 * frames allocated, and per-core mapped-page / valid-TLB-entry
 * counts.  @p cores and @p page_bytes come from the checkpoint
 * header (the section layout depends on both).
 * @throws ckpt::CkptError when the payload is malformed.
 */
std::string sectionSummary(const std::string &payload, unsigned cores,
                           std::uint32_t page_bytes);

/**
 * Virtual-memory configuration carried in driver::SystemConfig.
 * The defaults (off, 4 KB, no remaps) describe the pre-VM machine:
 * on() is false, no Vm instance is built, and fingerprints, BENCH
 * output and checkpoints are bit-identical to a build without the
 * subsystem.
 */
struct VmSpec
{
    /** Force translation on even with default page size and no
     *  remaps (the churn sweep's rate-0 baseline). */
    bool enabled = false;
    std::uint32_t pageBytes = 4096;  //!< 4096 or 2 MB (2097152)
    /** Page remaps per million main cycles; 0 = never. */
    double remapRate = 0.0;
    /** Seed of the remap engine's tie-break generator. */
    std::uint64_t seed = 0x756C6D74766D31ULL;  // "ulmtvm1"

    /** True when the machine should translate at all. */
    bool
    on() const
    {
        return enabled || remapRate > 0.0 || pageBytes != 4096u;
    }

    /** log2(pageBytes). */
    std::uint32_t pageShift() const;
};

/** Per-core TLB / translation statistics. */
struct VmCoreStats
{
    std::uint64_t accesses = 0;    //!< translations requested
    std::uint64_t tlbHits = 0;
    std::uint64_t tlbMisses = 0;   //!< each pays pageWalkCycles
    std::uint64_t walkCycles = 0;
    std::uint64_t remaps = 0;      //!< pages of this space migrated
};

/**
 * The virtual-memory subsystem of one simulated machine: one address
 * space and TLB per core, a shared frame allocator and the remap
 * engine.  Built by the System only when VmSpec::on().
 */
class Vm
{
  public:
    Vm(sim::EventQueue &eq, const VmSpec &spec, unsigned cores);

    /**
     * Translate @p vaddr in @p core's address space, allocating the
     * page on first touch.  A TLB miss advances @p when by
     * pageWalkCycles (the walk serializes with the L1 lookup); a hit
     * is free (performed in parallel with the L1 index).
     * @return the physical address.
     */
    sim::Addr translate(unsigned core, sim::Addr vaddr,
                        sim::Cycle &when);

    /** log2(page bytes) of this machine. */
    std::uint32_t pageShift() const { return pageShift_; }
    std::uint32_t pageBytes() const { return spec_.pageBytes; }

    /**
     * Fired on every remap with the old and new physical *page
     * numbers* and the page size -- the shape UlmtEngine::pageRemap
     * and CorrelationPrefetcher::onPageRemap expect.
     */
    void
    setRemapCallback(
        std::function<void(sim::Addr, sim::Addr, std::uint32_t)> cb)
    {
        remapCb_ = std::move(cb);
    }

    /** Schedule the first remap event (no-op when remapRate == 0). */
    void start();

    /** The remap-event closure (shared by start and restore). */
    sim::EventQueue::Action
    remapAction()
    {
        return [this] { doRemap(); };
    }

    /** Register "vm.core.<i>.*" and machine-wide "vm.*" stats. */
    void registerStats(sim::StatRegistry &reg) const;

    std::uint64_t remaps() const { return remaps_; }
    const VmCoreStats &coreStats(unsigned core) const
    {
        return stats_[core];
    }

    /** Pages currently mapped in @p core's address space. */
    std::size_t pagesMapped(unsigned core) const
    {
        return spaces_[core].pages.size();
    }

    /** Serialize page tables, TLBs, the allocator and the remap
     *  engine (the "vm" checkpoint section). */
    void saveState(ckpt::StateWriter &w) const;
    void restoreState(ckpt::StateReader &r);

  private:
    /** One mapped virtual page. */
    struct PageEntry
    {
        std::uint64_t frame = 0;    //!< physical page number
        std::uint64_t touches = 0;  //!< accesses since the last remap
    };

    /** One process's address space.  std::map keeps iteration (and
     *  therefore victim selection and checkpoint bytes) ordered by
     *  virtual page number. */
    struct AddressSpace
    {
        std::map<std::uint64_t, PageEntry> pages;
    };

    /** One TLB entry (tagged by virtual page number). */
    struct TlbEntry
    {
        std::uint64_t vpage = 0;
        std::uint64_t frame = 0;
        std::uint64_t stamp = 0;  //!< LRU clock at last use
        bool valid = false;
    };

    /** One page size's set-associative array (the ULB keeps one of
     *  these per supported size and probes them in order). */
    struct TlbSizeClass
    {
        std::uint32_t pageShift;
        std::uint32_t sets;
        std::uint32_t ways;
        std::vector<TlbEntry> entries;  //!< sets * ways, set-major
    };

    /** One core's TLB: a list of per-page-size arrays + LRU clock. */
    struct Tlb
    {
        std::vector<TlbSizeClass> classes;
        std::uint64_t lruTick = 0;
    };

    std::uint64_t allocFrame();
    void tlbFill(Tlb &tlb, std::uint32_t page_shift,
                 std::uint64_t vpage, std::uint64_t frame);
    void tlbInvalidate(Tlb &tlb, std::uint64_t vpage);
    void doRemap();

    sim::EventQueue &eq_;
    VmSpec spec_;
    std::uint32_t pageShift_;
    sim::Cycle remapPeriod_ = 0;  //!< cycles between remaps (0 = off)

    std::vector<AddressSpace> spaces_;  //!< one per core
    std::vector<Tlb> tlbs_;             //!< one per core
    std::vector<VmCoreStats> stats_;    //!< one per core

    /** Next physical page number to hand out (bump allocator). */
    std::uint64_t nextFrame_;
    /** SplitMix64 state for cold-tie victim picks. */
    std::uint64_t rng_;
    /** Round-robin core cursor of the remap engine. */
    std::uint32_t remapCursor_ = 0;
    std::uint64_t remaps_ = 0;
    std::uint64_t accessesAtLastTick_ = 0;

    std::function<void(sim::Addr, sim::Addr, std::uint32_t)> remapCb_;
};

} // namespace vm

#endif // VM_VM_HH
