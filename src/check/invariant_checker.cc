#include "check/invariant_checker.hh"

#include <string>
#include <utility>

namespace check {

InvariantChecker::InvariantChecker(const CheckOptions &opts,
                                   sim::EventQueue &eq,
                                   mem::MemorySystem &ms,
                                   cpu::Hierarchy &hier,
                                   core::UlmtEngine *engine)
    : InvariantChecker(
          opts, eq, ms, std::vector<cpu::Hierarchy *>{&hier},
          engine ? std::vector<core::UlmtEngine *>{engine}
                 : std::vector<core::UlmtEngine *>{})
{
}

InvariantChecker::InvariantChecker(
    const CheckOptions &opts, sim::EventQueue &eq,
    mem::MemorySystem &ms, std::vector<cpu::Hierarchy *> hiers,
    std::vector<core::UlmtEngine *> engines)
    : opts_(opts), eq_(eq), ms_(ms), hiers_(std::move(hiers)),
      engines_(std::move(engines))
{
}

InvariantChecker::~InvariantChecker()
{
    if (!installed_)
        return;
    eq_.clearInspector();
    for (cpu::Hierarchy *h : hiers_) {
        h->l1().setShadow(nullptr);
        h->l2().setShadow(nullptr);
    }
    for (core::UlmtEngine *e : engines_) {
        e->mpCache().setShadow(nullptr);
        e->setMissHook(nullptr);
    }
    if (tcacheRef_)
        ms_.tableCache().setShadow(nullptr);
}

void
InvariantChecker::install()
{
    eq_.setInspector(opts_.everyEvents, [this] { runChecks(); });
    installed_ = true;
    if (!opts_.deep())
        return;

    const bool multi = hiers_.size() > 1;
    for (std::size_t c = 0; c < hiers_.size(); ++c) {
        const std::string p =
            multi ? "cpu." + std::to_string(c) + "." : "";
        l1Refs_.push_back(
            std::make_unique<RefLruCache>(hiers_[c]->l1(), p + "l1"));
        l2Refs_.push_back(
            std::make_unique<RefLruCache>(hiers_[c]->l2(), p + "l2"));
        hiers_[c]->l1().setShadow(l1Refs_[c].get());
        hiers_[c]->l2().setShadow(l2Refs_[c].get());
    }
    for (core::UlmtEngine *e : engines_) {
        const std::string p =
            engines_.size() > 1
                ? "ulmt." + std::to_string(e->engineId()) + "."
                : "";
        mpRefs_.push_back(std::make_unique<RefLruCache>(
            e->mpCache(), p + "mp_cache"));
        e->mpCache().setShadow(mpRefs_.back().get());
    }
    // The pair-table oracle understands the plain Base/Chain access
    // pattern of one table fed by one observation stream; sharded or
    // per-core configurations (and wrapped algorithms: Seq*,
    // composites, Repl) keep the structural walks only.
    if (engines_.size() == 1 && engines_[0]->numShards() == 1) {
        core::UlmtEngine *e = engines_[0];
        core::CorrelationPrefetcher &algo = e->algorithm();
        if (auto *base = dynamic_cast<core::BasePrefetcher *>(&algo))
            pairRef_ = std::make_unique<RefPairTable>(base->table(), 0);
        else if (auto *chain =
                     dynamic_cast<core::ChainPrefetcher *>(&algo))
            pairRef_ = std::make_unique<RefPairTable>(chain->table(),
                                                      chain->levels());
        if (pairRef_) {
            e->setMissHook([this](sim::Addr miss_line) {
                pairRef_->observeMiss(miss_line);
            });
        }
    }
    if (ms_.tableCache().enabled()) {
        tcacheRef_ = std::make_unique<RefTableCache>(ms_.tableCache());
        ms_.tableCache().setShadow(tcacheRef_.get());
    }
    resyncDeep();
}

void
InvariantChecker::resyncDeep()
{
    for (std::size_t c = 0; c < l1Refs_.size(); ++c) {
        l1Refs_[c]->resync(hiers_[c]->l1());
        l2Refs_[c]->resync(hiers_[c]->l2());
    }
    for (std::size_t i = 0; i < mpRefs_.size(); ++i)
        mpRefs_[i]->resync(engines_[i]->mpCache());
    if (tcacheRef_)
        tcacheRef_->resync(ms_.tableCache());
    if (pairRef_) {
        core::CorrelationPrefetcher &algo = engines_[0]->algorithm();
        if (auto *base = dynamic_cast<core::BasePrefetcher *>(&algo))
            pairRef_->resync(base->table(), base->learner());
        else if (auto *chain =
                     dynamic_cast<core::ChainPrefetcher *>(&algo))
            pairRef_->resync(chain->table(), chain->learner());
    }
}

void
InvariantChecker::runChecks()
{
    CheckContext ctx;
    ms_.checkInvariants(ctx, eq_.saveEvents());
    for (cpu::Hierarchy *h : hiers_)
        h->checkInvariants(ctx);
    for (core::UlmtEngine *e : engines_)
        e->checkInvariants(ctx);

    if (opts_.deep()) {
        for (std::size_t c = 0; c < l1Refs_.size(); ++c) {
            l1Refs_[c]->diff(hiers_[c]->l1(), ctx);
            l2Refs_[c]->diff(hiers_[c]->l2(), ctx);
        }
        for (std::size_t i = 0; i < mpRefs_.size(); ++i)
            mpRefs_[i]->diff(engines_[i]->mpCache(), ctx);
        if (tcacheRef_)
            tcacheRef_->diff(ms_.tableCache(), ctx);
        if (pairRef_) {
            core::CorrelationPrefetcher &algo =
                engines_[0]->algorithm();
            if (auto *base =
                    dynamic_cast<core::BasePrefetcher *>(&algo))
                pairRef_->diff(base->table(), ctx);
            else if (auto *chain =
                         dynamic_cast<core::ChainPrefetcher *>(&algo))
                pairRef_->diff(chain->table(), ctx);
        }
    }

    ++passes_;
    ctx.throwIfFailed(
        "invariant check failed at cycle " +
        std::to_string(eq_.now()) + " after " +
        std::to_string(eq_.executed()) + " events");
}

void
InvariantChecker::registerStats(sim::StatRegistry &reg) const
{
    reg.addCounter("check.passes", &passes_);
}

} // namespace check
