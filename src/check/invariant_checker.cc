#include "check/invariant_checker.hh"

#include <string>

namespace check {

InvariantChecker::InvariantChecker(const CheckOptions &opts,
                                   sim::EventQueue &eq,
                                   mem::MemorySystem &ms,
                                   cpu::Hierarchy &hier,
                                   core::UlmtEngine *engine)
    : opts_(opts), eq_(eq), ms_(ms), hier_(hier), engine_(engine)
{
}

InvariantChecker::~InvariantChecker()
{
    if (!installed_)
        return;
    eq_.clearInspector();
    hier_.l1().setShadow(nullptr);
    hier_.l2().setShadow(nullptr);
    if (engine_) {
        engine_->mpCache().setShadow(nullptr);
        engine_->setMissHook(nullptr);
    }
}

void
InvariantChecker::install()
{
    eq_.setInspector(opts_.everyEvents, [this] { runChecks(); });
    installed_ = true;
    if (!opts_.deep())
        return;

    l1Ref_ = std::make_unique<RefLruCache>(hier_.l1(), "l1");
    l2Ref_ = std::make_unique<RefLruCache>(hier_.l2(), "l2");
    hier_.l1().setShadow(l1Ref_.get());
    hier_.l2().setShadow(l2Ref_.get());
    if (engine_) {
        mpRef_ = std::make_unique<RefLruCache>(engine_->mpCache(),
                                               "mp_cache");
        engine_->mpCache().setShadow(mpRef_.get());
        // The pair-table oracle understands the plain Base/Chain
        // access pattern; wrapped or replicated algorithms keep the
        // structural walks only.
        core::CorrelationPrefetcher &algo = engine_->algorithm();
        if (auto *base = dynamic_cast<core::BasePrefetcher *>(&algo))
            pairRef_ = std::make_unique<RefPairTable>(base->table(), 0);
        else if (auto *chain =
                     dynamic_cast<core::ChainPrefetcher *>(&algo))
            pairRef_ = std::make_unique<RefPairTable>(chain->table(),
                                                      chain->levels());
        if (pairRef_) {
            engine_->setMissHook([this](sim::Addr miss_line) {
                pairRef_->observeMiss(miss_line);
            });
        }
    }
    resyncDeep();
}

void
InvariantChecker::resyncDeep()
{
    if (l1Ref_)
        l1Ref_->resync(hier_.l1());
    if (l2Ref_)
        l2Ref_->resync(hier_.l2());
    if (mpRef_ && engine_)
        mpRef_->resync(engine_->mpCache());
    if (pairRef_ && engine_) {
        core::CorrelationPrefetcher &algo = engine_->algorithm();
        if (auto *base = dynamic_cast<core::BasePrefetcher *>(&algo))
            pairRef_->resync(base->table(), base->learner());
        else if (auto *chain =
                     dynamic_cast<core::ChainPrefetcher *>(&algo))
            pairRef_->resync(chain->table(), chain->learner());
    }
}

void
InvariantChecker::runChecks()
{
    CheckContext ctx;
    ms_.checkInvariants(ctx, eq_.saveEvents());
    hier_.checkInvariants(ctx);
    if (engine_)
        engine_->checkInvariants(ctx);

    if (opts_.deep()) {
        if (l1Ref_)
            l1Ref_->diff(hier_.l1(), ctx);
        if (l2Ref_)
            l2Ref_->diff(hier_.l2(), ctx);
        if (mpRef_ && engine_)
            mpRef_->diff(engine_->mpCache(), ctx);
        if (pairRef_ && engine_) {
            core::CorrelationPrefetcher &algo = engine_->algorithm();
            if (auto *base =
                    dynamic_cast<core::BasePrefetcher *>(&algo))
                pairRef_->diff(base->table(), ctx);
            else if (auto *chain =
                         dynamic_cast<core::ChainPrefetcher *>(&algo))
                pairRef_->diff(chain->table(), ctx);
        }
    }

    ++passes_;
    ctx.throwIfFailed(
        "invariant check failed at cycle " +
        std::to_string(eq_.now()) + " after " +
        std::to_string(eq_.executed()) + " events");
}

void
InvariantChecker::registerStats(sim::StatRegistry &reg) const
{
    reg.addCounter("check.passes", &passes_);
}

} // namespace check
