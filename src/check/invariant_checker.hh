/**
 * @file
 * The runtime invariant checker behind `--check` / `--check=deep`.
 *
 * One instance hangs off a driver::System.  install() arms the event
 * queue's passive inspector so a full invariant walk runs every
 * CheckOptions::everyEvents executed events, at a consistent instant
 * between events:
 *
 *  - queue 1/3 in-flight maps vs. the pending MemDemandDone /
 *    MemCpuPfDone / MemPfArrival events, and the queue-3 depth bound,
 *  - Filter FIFO vs. its presence multiset,
 *  - L1/L2/memory-processor tag arrays (duplicate tags, set mapping,
 *    stamp bounds; the memory-processor cache additionally pins every
 *    line's fillOrigin to the insert() default),
 *  - queue 2 depth and the algorithm's table invariants (MRU lists
 *    bounded by NumSucc, unique tags, trailing pointers in range).
 *
 * In Deep mode the checker also attaches lockstep reference models
 * (RefLruCache shadows on all three caches; a RefPairTable fed by the
 * engine's miss hook when the algorithm is plain Base or Chain) and
 * diffs them on every pass.  Wrapped algorithms (Seq*, composites,
 * Repl) keep the structural walks only.
 *
 * A failed pass throws check::CheckError listing every violation.
 * The checker never mutates simulated state, so cycle counts and
 * results are bit-identical with checking on or off.
 */

#ifndef CHECK_INVARIANT_CHECKER_HH
#define CHECK_INVARIANT_CHECKER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "check/check.hh"
#include "check/ref_models.hh"
#include "core/ulmt_engine.hh"
#include "cpu/hierarchy.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"

namespace check {

/** Walks all component invariants at a configurable event cadence. */
class InvariantChecker
{
  public:
    /** @param engine may be nullptr (no-ULMT configurations). */
    InvariantChecker(const CheckOptions &opts, sim::EventQueue &eq,
                     mem::MemorySystem &ms, cpu::Hierarchy &hier,
                     core::UlmtEngine *engine);

    /**
     * Multicore form: one hierarchy per core and any number of ULMT
     * engines (empty for no-ULMT configurations).  The deep pair-table
     * oracle attaches only in the single-engine single-shard case;
     * every other structure is shadowed and diffed per instance.
     */
    InvariantChecker(const CheckOptions &opts, sim::EventQueue &eq,
                     mem::MemorySystem &ms,
                     std::vector<cpu::Hierarchy *> hiers,
                     std::vector<core::UlmtEngine *> engines);

    /** Detaches the inspector, shadows and hooks. */
    ~InvariantChecker();

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    /** Arm the event-queue inspector (and, in Deep mode, the models). */
    void install();

    /**
     * Run one full pass now; throws CheckError on any violation.
     * Called by the inspector, after a checkpoint restore, and as the
     * final check when the queue drains.
     */
    void runChecks();

    /**
     * Rebuild the deep reference models from the real structures.
     * Required after any mutation that bypasses the notification
     * stream: checkpoint restore, page remap.
     */
    void resyncDeep();

    /** Completed checker passes (registered as "check.passes"). */
    std::uint64_t passes() const { return passes_; }

    void registerStats(sim::StatRegistry &reg) const;

  private:
    CheckOptions opts_;
    sim::EventQueue &eq_;
    mem::MemorySystem &ms_;
    std::vector<cpu::Hierarchy *> hiers_;
    std::vector<core::UlmtEngine *> engines_;

    // Deep-mode reference models (empty in Basic mode); indexed like
    // hiers_ / engines_.
    std::vector<std::unique_ptr<RefLruCache>> l1Refs_;
    std::vector<std::unique_ptr<RefLruCache>> l2Refs_;
    std::vector<std::unique_ptr<RefLruCache>> mpRefs_;
    std::unique_ptr<RefPairTable> pairRef_;
    std::unique_ptr<RefTableCache> tcacheRef_;

    std::uint64_t passes_ = 0;
    bool installed_ = false;
};

} // namespace check

#endif // CHECK_INVARIANT_CHECKER_HH
