#include "check/ref_models.hh"

#include <algorithm>

namespace check {

// ---------------------------------------------------------------- cache

RefLruCache::RefLruCache(const mem::Cache &real, std::string label)
    : label_(std::move(label)), lineBytes_(real.lineBytes()),
      numSets_(real.numSets()), assoc_(real.assoc()), sets_(numSets_)
{
}

std::uint32_t
RefLruCache::setOf(sim::Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr / lineBytes_) &
                                      (numSets_ - 1));
}

void
RefLruCache::onTouch(sim::Addr line_addr)
{
    auto &set = sets_[setOf(line_addr)];
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].tag == line_addr) {
            Entry e = set[i];
            set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
            set.push_back(e);
            return;
        }
    }
    // Unknown line: the touch inside insert() fires before onInsert
    // delivers the new line; ignore it.
}

void
RefLruCache::onInsert(sim::Addr line_addr, sim::Cycle now,
                      sim::Cycle ready_at)
{
    auto &set = sets_[setOf(line_addr)];
    if (set.size() >= assoc_) {
        // The real cache displaces the least-recently-used *settled*
        // line (fill complete), falling back to the overall LRU when
        // the whole set is still in flight.
        std::size_t victim = 0;
        bool found = false;
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].readyAt <= now) {
                victim = i;
                found = true;
                break;
            }
        }
        if (!found)
            victim = 0;
        set.erase(set.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    set.push_back(Entry{line_addr, ready_at});
}

void
RefLruCache::onInvalidate(sim::Addr line_addr)
{
    auto &set = sets_[setOf(line_addr)];
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].tag == line_addr) {
            set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

void
RefLruCache::onReset()
{
    for (auto &set : sets_)
        set.clear();
}

void
RefLruCache::resync(const mem::Cache &real)
{
    onReset();
    // Collect valid lines per set with their stamps, then order each
    // set oldest-first: that is exactly this model's recency order.
    std::vector<std::vector<std::pair<std::uint64_t, Entry>>> stamped(
        numSets_);
    real.forEachLine([&](std::uint32_t set, std::uint32_t /*way*/,
                         const mem::CacheLine &line) {
        if (line.valid)
            stamped[set].push_back(
                {line.lruStamp, Entry{line.tag, line.readyAt}});
    });
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        std::sort(stamped[set].begin(), stamped[set].end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[stamp, entry] : stamped[set]) {
            (void)stamp;
            sets_[set].push_back(entry);
        }
    }
}

void
RefLruCache::diff(const mem::Cache &real, CheckContext &ctx) const
{
    const std::string who = "deep." + label_;
    std::vector<std::vector<std::pair<std::uint64_t, Entry>>> stamped(
        numSets_);
    real.forEachLine([&](std::uint32_t set, std::uint32_t /*way*/,
                         const mem::CacheLine &line) {
        if (line.valid)
            stamped[set].push_back(
                {line.lruStamp, Entry{line.tag, line.readyAt}});
    });
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        auto &lines = stamped[set];
        std::sort(lines.begin(), lines.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        const auto &ref = sets_[set];
        if (!ctx.require(lines.size() == ref.size(), who,
                         "set " + std::to_string(set) + " holds " +
                             std::to_string(lines.size()) +
                             " lines, reference model " +
                             std::to_string(ref.size())))
            continue;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const Entry &want = ref[i];
            const Entry &have = lines[i].second;
            ctx.require(have.tag == want.tag, who,
                        "set " + std::to_string(set) +
                            " recency position " + std::to_string(i) +
                            " holds " + check::hex(have.tag) +
                            ", reference model " +
                            check::hex(want.tag));
            ctx.require(have.tag != want.tag ||
                            have.readyAt == want.readyAt,
                        who,
                        "line " + check::hex(have.tag) +
                            " readyAt " +
                            std::to_string(have.readyAt) +
                            " disagrees with the reference model's " +
                            std::to_string(want.readyAt));
        }
    }
}

// ----------------------------------------------------------- pair table

RefPairTable::RefPairTable(const core::PairTable &table,
                           std::uint32_t chain_levels)
    : numSets_(table.params().numRows / table.params().assoc),
      assoc_(table.params().assoc), numSucc_(table.params().numSucc),
      chainLevels_(chain_levels), sets_(numSets_)
{
}

std::uint32_t
RefPairTable::setOf(sim::Addr miss_line) const
{
    return static_cast<std::uint32_t>((miss_line / 64) % numSets_);
}

RefPairTable::RefRow *
RefPairTable::find(sim::Addr miss_line)
{
    auto &set = sets_[setOf(miss_line)];
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].tag == miss_line) {
            RefRow row = std::move(set[i]);
            set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
            set.push_back(std::move(row));
            return &set.back();
        }
    }
    return nullptr;
}

RefPairTable::RefRow &
RefPairTable::findOrAlloc(sim::Addr miss_line)
{
    if (RefRow *row = find(miss_line))
        return *row;
    auto &set = sets_[setOf(miss_line)];
    if (set.size() >= assoc_)
        set.erase(set.begin());  // evict the set's LRU row
    set.push_back(RefRow{miss_line, {}});
    return set.back();
}

void
RefPairTable::observeMiss(sim::Addr miss_line)
{
    // Prefetching step first (Fig. 2): its lookups promote rows.
    if (chainLevels_ == 0) {
        find(miss_line);  // Base: one lookup
    } else {
        sim::Addr cur = miss_line;
        for (std::uint32_t lvl = 0; lvl < chainLevels_; ++lvl) {
            RefRow *row = find(cur);
            if (!row || row->succ.empty())
                break;
            cur = row->succ.front();  // follow the MRU link
        }
    }

    // Learning step (PairLearner semantics).
    if (lastValid_) {
        RefRow &row = findOrAlloc(lastMiss_);
        auto it =
            std::find(row.succ.begin(), row.succ.end(), miss_line);
        if (it != row.succ.end()) {
            std::rotate(row.succ.begin(), it, it + 1);
        } else {
            row.succ.insert(row.succ.begin(), miss_line);
            if (row.succ.size() > numSucc_)
                row.succ.pop_back();
        }
    }
    findOrAlloc(miss_line);
    lastMiss_ = miss_line;
    lastValid_ = true;
}

void
RefPairTable::resync(const core::PairTable &table,
                     const core::PairLearner &learner)
{
    for (auto &set : sets_)
        set.clear();
    std::vector<std::vector<std::pair<std::uint64_t, RefRow>>> stamped(
        numSets_);
    table.forEachRow([&](const core::PairRow &row) {
        stamped[setOf(row.tag)].push_back(
            {row.lruStamp, RefRow{row.tag, row.succ}});
    });
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        std::sort(stamped[set].begin(), stamped[set].end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &[stamp, row] : stamped[set]) {
            (void)stamp;
            sets_[set].push_back(std::move(row));
        }
    }
    lastMiss_ = learner.lastMiss();
    lastValid_ = learner.lastValid();
}

void
RefPairTable::diff(const core::PairTable &table,
                   CheckContext &ctx) const
{
    const std::string who = "deep.pair_table";
    std::vector<std::vector<std::pair<std::uint64_t, RefRow>>> stamped(
        numSets_);
    table.forEachRow([&](const core::PairRow &row) {
        stamped[setOf(row.tag)].push_back(
            {row.lruStamp, RefRow{row.tag, row.succ}});
    });
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        auto &rows = stamped[set];
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        const auto &ref = sets_[set];
        if (rows.size() != ref.size()) {
            std::string detail = "set " + std::to_string(set) +
                " holds " + std::to_string(rows.size()) +
                " rows, reference model " + std::to_string(ref.size()) +
                " [real:";
            for (const auto &[st, rr] : rows)
                detail += " " + check::hex(rr.tag);
            detail += " | ref:";
            for (const RefRow &rr : ref)
                detail += " " + check::hex(rr.tag);
            detail += "]";
            ctx.require(false, who, detail);
            continue;
        }
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const RefRow &want = ref[i];
            const RefRow &have = rows[i].second;
            if (!ctx.require(have.tag == want.tag, who,
                             "set " + std::to_string(set) +
                                 " recency position " +
                                 std::to_string(i) + " holds " +
                                 check::hex(have.tag) +
                                 ", reference model " +
                                 check::hex(want.tag)))
                continue;
            ctx.require(have.succ == want.succ, who,
                        "row " + check::hex(have.tag) +
                            " successor list disagrees with the "
                            "reference model");
        }
    }
}

// ---------------------------------------------------------- table cache

RefTableCache::RefTableCache(const mem::TableCache &real)
    : lineBytes_(real.lineBytes()), rowBytes_(real.rowBytes()),
      numSets_(real.numSets()), assoc_(real.assoc()), sets_(numSets_)
{
}

std::uint32_t
RefTableCache::setOf(sim::Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr / lineBytes_) %
                                      numSets_);
}

void
RefTableCache::onAccess(sim::Addr line_addr, bool is_write)
{
    auto &set = sets_[setOf(line_addr)];
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].tag == line_addr) {
            Entry e = set[i];
            e.dirty = e.dirty || is_write;
            set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
            set.push_back(e);
            return;
        }
    }
    const auto buffered =
        std::find(dirtyBuf_.begin(), dirtyBuf_.end(), line_addr);
    if (buffered != dirtyBuf_.end()) {
        // A buffered line never reached DRAM: the access pulls it
        // back in, still dirty.
        dirtyBuf_.erase(buffered);
        install(line_addr, true);
        return;
    }
    install(line_addr, is_write);
}

void
RefTableCache::install(sim::Addr line_addr, bool dirty)
{
    auto &set = sets_[setOf(line_addr)];
    if (set.size() >= assoc_) {
        const Entry victim = set.front();
        set.erase(set.begin());
        if (victim.dirty)
            pushDirty(victim.tag);
    }
    set.push_back(Entry{line_addr, dirty});
}

void
RefTableCache::pushDirty(sim::Addr line_addr)
{
    dirtyBuf_.push_back(line_addr);
    if (dirtyBuf_.size() > mem::tableCacheDirtyBufEntries) {
        // Drain every buffered line sharing the oldest entry's DRAM
        // row, in FIFO order.
        const sim::Addr row = dirtyBuf_.front() / rowBytes_;
        dirtyBuf_.erase(
            std::remove_if(dirtyBuf_.begin(), dirtyBuf_.end(),
                           [&](sim::Addr a) {
                               return a / rowBytes_ == row;
                           }),
            dirtyBuf_.end());
    }
}

void
RefTableCache::onInvalidateRange(sim::Addr lo, sim::Addr hi)
{
    for (auto &set : sets_) {
        set.erase(std::remove_if(set.begin(), set.end(),
                                 [&](const Entry &e) {
                                     return e.tag >= lo && e.tag < hi;
                                 }),
                  set.end());
    }
    dirtyBuf_.erase(std::remove_if(dirtyBuf_.begin(), dirtyBuf_.end(),
                                   [&](sim::Addr a) {
                                       return a >= lo && a < hi;
                                   }),
                    dirtyBuf_.end());
}

void
RefTableCache::onReset()
{
    for (auto &set : sets_)
        set.clear();
    dirtyBuf_.clear();
}

void
RefTableCache::resync(const mem::TableCache &real)
{
    onReset();
    std::vector<std::vector<std::pair<std::uint64_t, Entry>>> stamped(
        numSets_);
    real.forEachLine([&](std::uint32_t set, std::uint32_t /*way*/,
                         const mem::TableCacheLine &line) {
        if (line.valid)
            stamped[set].push_back(
                {line.lruStamp, Entry{line.tag, line.dirty}});
    });
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        std::sort(stamped[set].begin(), stamped[set].end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[stamp, entry] : stamped[set]) {
            (void)stamp;
            sets_[set].push_back(entry);
        }
    }
    dirtyBuf_ = real.dirtyBuffer();
}

void
RefTableCache::diff(const mem::TableCache &real, CheckContext &ctx) const
{
    const std::string who = "deep.tcache";
    std::vector<std::vector<std::pair<std::uint64_t, Entry>>> stamped(
        numSets_);
    real.forEachLine([&](std::uint32_t set, std::uint32_t /*way*/,
                         const mem::TableCacheLine &line) {
        if (line.valid)
            stamped[set].push_back(
                {line.lruStamp, Entry{line.tag, line.dirty}});
    });
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        auto &lines = stamped[set];
        std::sort(lines.begin(), lines.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        const auto &ref = sets_[set];
        if (!ctx.require(lines.size() == ref.size(), who,
                         "set " + std::to_string(set) + " holds " +
                             std::to_string(lines.size()) +
                             " lines, reference model " +
                             std::to_string(ref.size())))
            continue;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const Entry &want = ref[i];
            const Entry &have = lines[i].second;
            if (!ctx.require(have.tag == want.tag, who,
                             "set " + std::to_string(set) +
                                 " recency position " +
                                 std::to_string(i) + " holds " +
                                 check::hex(have.tag) +
                                 ", reference model " +
                                 check::hex(want.tag)))
                continue;
            ctx.require(have.dirty == want.dirty, who,
                        "line " + check::hex(have.tag) + " is " +
                            (have.dirty ? "dirty" : "clean") +
                            ", reference model says " +
                            (want.dirty ? "dirty" : "clean"));
        }
    }
    const auto &buf = real.dirtyBuffer();
    if (ctx.require(buf.size() == dirtyBuf_.size(), who,
                    "dirty buffer holds " + std::to_string(buf.size()) +
                        " lines, reference model " +
                        std::to_string(dirtyBuf_.size()))) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
            ctx.require(buf[i] == dirtyBuf_[i], who,
                        "dirty buffer position " + std::to_string(i) +
                            " holds " + check::hex(buf[i]) +
                            ", reference model " +
                            check::hex(dirtyBuf_[i]));
        }
    }
    const mem::TableCacheStats &s = real.stats();
    ctx.require(s.dramAccesses == s.misses + s.writebacks, who,
                "write-back conservation violated: " +
                    std::to_string(s.dramAccesses) +
                    " DRAM accesses != " + std::to_string(s.misses) +
                    " misses + " + std::to_string(s.writebacks) +
                    " writebacks");
}

} // namespace check
