/**
 * @file
 * Differential reference models for `--check=deep`.
 *
 * Each model is a deliberately naive re-implementation of a
 * performance-critical structure, fed the same operation stream as
 * the real one and diffed against it at every checker pass:
 *
 *  - RefLruCache mirrors mem::Cache's true-LRU replacement (with the
 *    settled-victim preference) using plain per-set recency vectors,
 *    driven through the mem::CacheShadow notifications.
 *  - RefPairTable mirrors core::PairTable as used by the Base/Chain
 *    algorithms — find-promotion, LRU allocation, MRU successor
 *    insertion — driven by the ULMT engine's per-miss hook.
 *  - RefTableCache mirrors mem::TableCache (the MSCache in front of
 *    the correlation table's DRAM traffic): LRU sets with dirty
 *    bits, the bounded dirty buffer and its row-batched drain,
 *    driven through the mem::TableCacheShadow notifications.
 *
 * The models never share code with the real structures; agreement is
 * the evidence.  Both support resync() from the real structure so
 * deep checking survives checkpoint restores and page remaps (which
 * rebuild the real state outside the notification stream).
 */

#ifndef CHECK_REF_MODELS_HH
#define CHECK_REF_MODELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hh"
#include "core/base_chain.hh"
#include "mem/cache.hh"
#include "mem/table_cache.hh"
#include "sim/types.hh"

namespace check {

/** Map-based oracle for a mem::Cache's replacement behaviour. */
class RefLruCache : public mem::CacheShadow
{
  public:
    /** Shadow @p real (geometry is copied; attachment is explicit). */
    explicit RefLruCache(const mem::Cache &real, std::string label);

    // mem::CacheShadow
    void onTouch(sim::Addr line_addr) override;
    void onInsert(sim::Addr line_addr, sim::Cycle now,
                  sim::Cycle ready_at) override;
    void onInvalidate(sim::Addr line_addr) override;
    void onReset() override;

    /** Rebuild the model from the real cache's current contents. */
    void resync(const mem::Cache &real);

    /**
     * Diff against the real cache: per set, the resident tags in LRU
     * order (by lruStamp) and their readyAt cycles must match the
     * model exactly.
     */
    void diff(const mem::Cache &real, CheckContext &ctx) const;

  private:
    struct Entry
    {
        sim::Addr tag;
        sim::Cycle readyAt;
    };

    std::uint32_t setOf(sim::Addr line_addr) const;

    std::string label_;
    std::uint32_t lineBytes_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    /** Per set, resident lines in recency order (front = LRU). */
    std::vector<std::vector<Entry>> sets_;
};

/**
 * Oracle for the PairTable as driven by Base/Chain: replays the
 * Prefetching step's find-promotions and the Learning step's
 * pair insertion against its own per-set recency lists.
 */
class RefPairTable
{
  public:
    /**
     * @param table the real table (geometry source)
     * @param chain_levels 0 = Base (one lookup per miss); otherwise
     *        the Chain depth, whose chain-walk promotions are
     *        replayed from the model's own lists
     */
    RefPairTable(const core::PairTable &table,
                 std::uint32_t chain_levels);

    /** Replay one observed miss (prefetch step, then learning). */
    void observeMiss(sim::Addr miss_line);

    /** Rebuild from the real table and learner context. */
    void resync(const core::PairTable &table,
                const core::PairLearner &learner);

    /** Diff rows, per-set LRU order and successor lists. */
    void diff(const core::PairTable &table, CheckContext &ctx) const;

  private:
    struct RefRow
    {
        sim::Addr tag;
        std::vector<sim::Addr> succ;
    };

    std::uint32_t setOf(sim::Addr miss_line) const;
    /** find(): promote to MRU; nullptr on miss. */
    RefRow *find(sim::Addr miss_line);
    /** findOrAlloc(): promote, or evict the set's LRU and insert. */
    RefRow &findOrAlloc(sim::Addr miss_line);

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint32_t numSucc_;
    std::uint32_t chainLevels_;
    /** Per set, rows in recency order (front = LRU). */
    std::vector<std::vector<RefRow>> sets_;
    sim::Addr lastMiss_ = sim::invalidAddr;
    bool lastValid_ = false;
};

/**
 * Oracle for the memory-side table cache: replays the access stream
 * against its own recency lists, dirty bits and write-back buffer,
 * and re-derives the conservation law from the real counters.
 */
class RefTableCache : public mem::TableCacheShadow
{
  public:
    /** Shadow @p real (geometry is copied; attachment is explicit). */
    explicit RefTableCache(const mem::TableCache &real);

    // mem::TableCacheShadow
    void onAccess(sim::Addr line_addr, bool is_write) override;
    void onInvalidateRange(sim::Addr lo, sim::Addr hi) override;
    void onReset() override;

    /** Rebuild the model from the real cache's current contents. */
    void resync(const mem::TableCache &real);

    /**
     * Diff against the real cache: per set, the resident tags in LRU
     * order and their dirty bits must match, the dirty buffer must
     * match element for element, and the real counters must obey
     * dramAccesses == misses + writebacks.
     */
    void diff(const mem::TableCache &real, CheckContext &ctx) const;

  private:
    struct Entry
    {
        sim::Addr tag;
        bool dirty;
    };

    std::uint32_t setOf(sim::Addr line_addr) const;
    void install(sim::Addr line_addr, bool dirty);
    void pushDirty(sim::Addr line_addr);

    std::uint32_t lineBytes_;
    std::uint32_t rowBytes_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    /** Per set, resident lines in recency order (front = LRU). */
    std::vector<std::vector<Entry>> sets_;
    /** Evicted dirty lines awaiting write-back, oldest first. */
    std::vector<sim::Addr> dirtyBuf_;
};

} // namespace check

#endif // CHECK_REF_MODELS_HH
