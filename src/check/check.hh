/**
 * @file
 * Core types for the runtime invariant checker (PR 5).
 *
 * This header is intentionally self-contained (std-only) so that any
 * component — mem, core, cpu — can expose a
 * `checkInvariants(check::CheckContext &) const` member without
 * pulling in the checker library.  The walking/orchestration side
 * (InvariantChecker, the deep reference models) lives in
 * `ulmt_check`, which the driver links; components only ever see the
 * failure collector below.
 *
 * A check pass is a read-only walk: components append human-readable
 * violation descriptions to a CheckContext, and the orchestrator
 * throws one CheckError listing everything found at that instant.
 * Nothing here mutates simulation state, so enabling checks can never
 * change simulated timing — only abort a run that was already wrong.
 */

#ifndef CHECK_CHECK_HH
#define CHECK_CHECK_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace check {

/** How much checking a run performs. */
enum class CheckMode : std::uint8_t {
    Off = 0,    //!< no checker constructed; zero cost
    Basic = 1,  //!< structural invariant walks at the event cadence
    Deep = 2,   //!< Basic + lockstep differential reference models
};

/** Parsed from `--check[=deep]` / ULMT_CHECK; carried in SystemConfig. */
struct CheckOptions
{
    CheckMode mode = CheckMode::Off;
    /** Run an invariant walk every N executed events (Basic+). */
    std::uint64_t everyEvents = 2048;

    bool enabled() const { return mode != CheckMode::Off; }
    bool deep() const { return mode == CheckMode::Deep; }
};

/** Thrown by the checker when a walk finds one or more violations. */
class CheckError : public std::runtime_error
{
  public:
    explicit CheckError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Hex-format an address/tag for violation messages ("0x1a2b"). */
inline std::string
hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

/**
 * Failure collector passed through an invariant walk.  Components
 * report every violation they see (rather than throwing on the
 * first), so a single failed pass shows the full extent of the
 * corruption — invaluable when the fuzzer shrinks a repro.
 */
class CheckContext
{
  public:
    /** Record a violation found in @p component. */
    void
    fail(const std::string &component, const std::string &message)
    {
        failures_.emplace_back(component + ": " + message);
    }

    /** fail() unless @p condition holds; returns the condition. */
    bool
    require(bool condition, const std::string &component,
            const std::string &message)
    {
        if (!condition)
            fail(component, message);
        return condition;
    }

    bool ok() const { return failures_.empty(); }
    std::size_t failureCount() const { return failures_.size(); }
    const std::vector<std::string> &failures() const { return failures_; }

    /** One line per violation, prefixed with @p header. */
    std::string
    report(const std::string &header) const
    {
        std::ostringstream os;
        os << header << " (" << failures_.size() << " violation"
           << (failures_.size() == 1 ? "" : "s") << ")";
        for (const std::string &f : failures_)
            os << "\n  - " << f;
        return os.str();
    }

    /** Throw a CheckError describing all failures, if any. */
    void
    throwIfFailed(const std::string &header) const
    {
        if (!failures_.empty())
            throw CheckError(report(header));
    }

  private:
    std::vector<std::string> failures_;
};

/**
 * Test-only backdoor: a single struct befriended by checked
 * components so unit tests can seed corruption into otherwise
 * private structures and prove each invariant fires.  Its members
 * are defined in tests/test_check.cc; production code never
 * instantiates it.
 */
struct CheckTestPeer;

} // namespace check

#endif // CHECK_CHECK_HH
