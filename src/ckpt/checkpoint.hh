/**
 * @file
 * CheckpointImage: the component-agnostic container of a ULMTCKP1
 * checkpoint -- a validated header plus an ordered list of named,
 * checksummed sections.
 *
 * The driver assembles an image by handing each component a
 * StateWriter and adding the resulting payload as a section; restore
 * reads the file (every checksum verified before any payload is
 * served), checks the config fingerprint, and hands each section back
 * to its component as a StateReader.  The container knows nothing
 * about the simulator: it is equally the backing of tools/ulmt-ckpt.
 */

#ifndef CKPT_CHECKPOINT_HH
#define CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/format.hh"

namespace ckpt {

/** Snapshot provenance; everything needed to rebuild the workload. */
struct CkptHeader
{
    std::uint32_t version = formatVersion;
    /** FNV over the canonical config encoding; must match on restore. */
    std::uint64_t configFingerprint = 0;
    std::uint64_t seed = 0;   //!< workload construction seed
    double scale = 1.0;       //!< workload construction scale
    std::uint64_t cycle = 0;  //!< simulated time at the snapshot
    std::uint64_t misses = 0; //!< demand L2 misses at the snapshot
    std::uint32_t cores = 1;  //!< main processors in the machine
    /** ULMT serving mode as core::UlmtMode's underlying value. */
    std::uint32_t ulmtMode = 0;
    /** VM page size in bytes; 0 means the VM layer was off. */
    std::uint32_t vmPageBytes = 0;
    std::string workload;     //!< registry name (or trace:<path>)
    std::string label;        //!< configuration label
};

/** An in-memory checkpoint: header + ordered named sections. */
class CheckpointImage
{
  public:
    CkptHeader header;

    /** @throws CkptError on a duplicate section name. */
    void addSection(const std::string &name, std::string payload);

    /** The named section's payload. @throws CkptError if absent. */
    const std::string &section(const std::string &name) const;

    /** Null if the (optional) section is absent. */
    const std::string *findSection(const std::string &name) const;

    const std::vector<std::pair<std::string, std::string>> &
    sections() const
    {
        return sections_;
    }

    /** Total serialized payload bytes across all sections. */
    std::uint64_t payloadBytes() const;

    /**
     * Serialize to @p path (atomically: temp file + rename).
     * @return the number of bytes written.
     * @throws CkptError on any I/O failure.
     */
    std::uint64_t writeFile(const std::string &path) const;

    /**
     * Load and fully validate @p path: magic, version, every section
     * checksum, trailer totals and checksum chain.
     * @throws CkptError naming the file and the reason.
     */
    static CheckpointImage readFile(const std::string &path);

    /** Header only (sections skipped but checksums still verified). */
    static CkptHeader readHeader(const std::string &path);

  private:
    std::vector<std::pair<std::string, std::string>> sections_;
};

} // namespace ckpt

#endif // CKPT_CHECKPOINT_HH
