/**
 * @file
 * Serialization adapters for the sim/ layer's value types.
 *
 * The sim/ layer stays checkpoint-agnostic: its classes expose plain
 * snapshot()/restore() state structs and know nothing about the
 * on-disk encoding.  These helpers map those structs onto a
 * StateWriter/StateReader so every component (mem, cpu, core, driver)
 * encodes a SampleStat, timeline or RNG identically.
 */

#ifndef CKPT_SIM_STATE_HH
#define CKPT_SIM_STATE_HH

#include "ckpt/state.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace ckpt {

inline void
save(StateWriter &w, const sim::SampleStat &s)
{
    const sim::SampleStat::State st = s.snapshot();
    w.u64(st.count);
    w.f64(st.sum);
    w.f64(st.min);
    w.f64(st.max);
    w.f64(st.welfordMean);
    w.f64(st.m2);
}

inline void
restore(StateReader &r, sim::SampleStat &s)
{
    sim::SampleStat::State st;
    st.count = r.u64();
    st.sum = r.f64();
    st.min = r.f64();
    st.max = r.f64();
    st.welfordMean = r.f64();
    st.m2 = r.f64();
    s.restore(st);
}

inline void
save(StateWriter &w, const sim::BinnedHistogram &h)
{
    w.u64(h.numBins());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        w.u64(h.binCount(i));
    w.u64(h.total());
    w.u64(h.below());
}

inline void
restore(StateReader &r, sim::BinnedHistogram &h)
{
    const std::uint64_t bins = r.u64();
    if (bins != h.numBins())
        throw CkptError(
            "histogram bin count in checkpoint does not match the "
            "configuration");
    std::vector<std::uint64_t> counts(bins);
    for (auto &c : counts)
        c = r.u64();
    const std::uint64_t total = r.u64();
    const std::uint64_t below = r.u64();
    h.restoreCounts(counts, total, below);
}

inline void
save(StateWriter &w, const sim::ResourceTimeline &t)
{
    const sim::ResourceTimeline::State st = t.snapshot();
    w.u64(st.nextFree);
    w.u64(st.busyTotal);
}

inline void
restore(StateReader &r, sim::ResourceTimeline &t)
{
    sim::ResourceTimeline::State st;
    st.nextFree = r.u64();
    st.busyTotal = r.u64();
    t.restore(st);
}

inline void
save(StateWriter &w, const sim::PriorityTimeline &t)
{
    const sim::PriorityTimeline::State st = t.snapshot();
    w.u64(st.pruneBefore);
    w.u64(st.busyTotal);
    w.u64(st.bookings.size());
    for (const sim::PriorityTimeline::Interval &b : st.bookings) {
        w.u64(b.start);
        w.u64(b.end);
        w.b(b.high);
    }
}

inline void
restore(StateReader &r, sim::PriorityTimeline &t)
{
    sim::PriorityTimeline::State st;
    st.pruneBefore = r.u64();
    st.busyTotal = r.u64();
    const std::uint64_t n = r.u64();
    st.bookings.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        sim::PriorityTimeline::Interval iv;
        iv.start = r.u64();
        iv.end = r.u64();
        iv.high = r.b();
        st.bookings.push_back(iv);
    }
    t.restore(st);
}

inline void
save(StateWriter &w, const sim::Rng &rng)
{
    const sim::Rng::State st = rng.state();
    for (std::uint64_t word : st.s)
        w.u64(word);
}

inline void
restore(StateReader &r, sim::Rng &rng)
{
    sim::Rng::State st;
    for (auto &word : st.s)
        word = r.u64();
    rng.setState(st);
}

} // namespace ckpt

#endif // CKPT_SIM_STATE_HH
