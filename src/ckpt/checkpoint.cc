#include "ckpt/checkpoint.hh"

#include <cstdio>

namespace ckpt {

namespace {

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw CkptError("checkpoint '" + path + "': " + why);
}

void
putString(std::string &out, const std::string &s)
{
    if (s.size() > maxStringLen)
        throw CkptError("checkpoint string field too long");
    putLe<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

std::string
getString(const std::string &path, const unsigned char *data,
          std::size_t size, std::size_t &pos)
{
    const auto len = getLe<std::uint32_t>(data, size, pos);
    if (len > maxStringLen)
        fail(path, "string field longer than the format allows");
    if (size - pos < len)
        fail(path, "truncated string field");
    std::string s(reinterpret_cast<const char *>(data + pos), len);
    pos += len;
    return s;
}

} // namespace

void
CheckpointImage::addSection(const std::string &name, std::string payload)
{
    if (findSection(name))
        throw CkptError("duplicate checkpoint section '" + name + "'");
    if (name.empty() || name.size() > maxStringLen)
        throw CkptError("bad checkpoint section name");
    if (payload.size() > maxSectionPayload)
        throw CkptError("checkpoint section '" + name +
                        "' exceeds the payload limit");
    sections_.emplace_back(name, std::move(payload));
}

const std::string *
CheckpointImage::findSection(const std::string &name) const
{
    for (const auto &[n, payload] : sections_) {
        if (n == name)
            return &payload;
    }
    return nullptr;
}

const std::string &
CheckpointImage::section(const std::string &name) const
{
    if (const std::string *p = findSection(name))
        return *p;
    throw CkptError("checkpoint is missing required section '" + name +
                    "'");
}

std::uint64_t
CheckpointImage::payloadBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[name, payload] : sections_)
        total += payload.size();
    return total;
}

std::uint64_t
CheckpointImage::writeFile(const std::string &path) const
{
    std::string out;
    out.append(fileMagic, sizeof(fileMagic));
    putLe<std::uint32_t>(out, header.version);
    putLe<std::uint32_t>(out, 0); // reserved
    putLe<std::uint64_t>(out, header.configFingerprint);
    putLe<std::uint64_t>(out, header.seed);
    putLe<double>(out, header.scale);
    putLe<std::uint64_t>(out, header.cycle);
    putLe<std::uint64_t>(out, header.misses);
    putLe<std::uint32_t>(out, header.cores);
    putLe<std::uint32_t>(out, header.ulmtMode);
    putLe<std::uint32_t>(out, header.vmPageBytes);
    putString(out, header.workload);
    putString(out, header.label);

    std::uint64_t chain = fnvOffsetBasis;
    for (const auto &[name, payload] : sections_) {
        putLe<std::uint32_t>(out, sectionMagic);
        putLe<std::uint32_t>(out,
                             static_cast<std::uint32_t>(name.size()));
        out.append(name);
        putLe<std::uint32_t>(out,
                             static_cast<std::uint32_t>(payload.size()));
        putLe<std::uint32_t>(out, 0); // reserved
        const std::uint64_t sum =
            fnv1a64(payload.data(), payload.size());
        putLe<std::uint64_t>(out, sum);
        out.append(payload);
        chain = fnv1a64(&sum, sizeof(sum), chain);
    }

    putLe<std::uint32_t>(out, trailerMagic);
    putLe<std::uint32_t>(out,
                         static_cast<std::uint32_t>(sections_.size()));
    putLe<std::uint64_t>(out, payloadBytes());
    putLe<std::uint64_t>(out, chain);

    // Temp-file + rename: a crash mid-write never leaves a partial
    // file under the final name.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fail(path, "cannot open for writing");
    const bool ok =
        std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) {
        std::remove(tmp.c_str());
        fail(path, "write failed (disk full?)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fail(path, "cannot rename temp file into place");
    }
    return out.size();
}

CheckpointImage
CheckpointImage::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fail(path, "cannot open");
    std::string raw;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        raw.append(buf, n);
    const bool readErr = std::ferror(f) != 0;
    std::fclose(f);
    if (readErr)
        fail(path, "read error");

    const auto *data =
        reinterpret_cast<const unsigned char *>(raw.data());
    const std::size_t size = raw.size();
    std::size_t pos = 0;

    CheckpointImage img;
    try {
        if (size < sizeof(fileMagic) ||
            std::memcmp(raw.data(), fileMagic, sizeof(fileMagic)) != 0)
            fail(path, "not a ULMTCKP1 checkpoint (bad magic)");
        pos = sizeof(fileMagic);
        img.header.version = getLe<std::uint32_t>(data, size, pos);
        if (img.header.version < minFormatVersion ||
            img.header.version > formatVersion)
            fail(path, "unsupported format version " +
                           std::to_string(img.header.version));
        (void)getLe<std::uint32_t>(data, size, pos); // reserved
        img.header.configFingerprint =
            getLe<std::uint64_t>(data, size, pos);
        img.header.seed = getLe<std::uint64_t>(data, size, pos);
        img.header.scale = getLe<double>(data, size, pos);
        img.header.cycle = getLe<std::uint64_t>(data, size, pos);
        img.header.misses = getLe<std::uint64_t>(data, size, pos);
        img.header.cores = getLe<std::uint32_t>(data, size, pos);
        img.header.ulmtMode = getLe<std::uint32_t>(data, size, pos);
        img.header.vmPageBytes = getLe<std::uint32_t>(data, size, pos);
        img.header.workload = getString(path, data, size, pos);
        img.header.label = getString(path, data, size, pos);

        std::uint64_t chain = fnvOffsetBasis;
        for (;;) {
            const auto magic = getLe<std::uint32_t>(data, size, pos);
            if (magic == trailerMagic)
                break;
            if (magic != sectionMagic)
                fail(path, "corrupt section marker");
            std::string name = getString(path, data, size, pos);
            const auto payloadLen =
                getLe<std::uint32_t>(data, size, pos);
            if (payloadLen > maxSectionPayload)
                fail(path, "section '" + name +
                               "' exceeds the payload limit");
            (void)getLe<std::uint32_t>(data, size, pos); // reserved
            const auto stored = getLe<std::uint64_t>(data, size, pos);
            if (size - pos < payloadLen)
                fail(path, "truncated payload of section '" + name +
                               "'");
            const std::uint64_t sum = fnv1a64(data + pos, payloadLen);
            if (sum != stored)
                fail(path, "checksum mismatch in section '" + name +
                               "' (corrupt payload)");
            img.addSection(
                std::move(name),
                raw.substr(pos, payloadLen));
            pos += payloadLen;
            chain = fnv1a64(&sum, sizeof(sum), chain);
        }

        const auto count = getLe<std::uint32_t>(data, size, pos);
        const auto totalBytes = getLe<std::uint64_t>(data, size, pos);
        const auto storedChain = getLe<std::uint64_t>(data, size, pos);
        if (count != img.sections_.size())
            fail(path, "trailer section count mismatch");
        if (totalBytes != img.payloadBytes())
            fail(path, "trailer payload-byte total mismatch");
        if (storedChain != chain)
            fail(path, "trailer checksum chain mismatch");
        if (pos != size)
            fail(path, "trailing garbage after trailer");
    } catch (const CkptError &e) {
        // getLe/getString throw bare messages on overrun; re-wrap so
        // every failure names the file.
        const std::string what = e.what();
        if (what.rfind("checkpoint '", 0) == 0)
            throw;
        fail(path, what);
    }
    return img;
}

CkptHeader
CheckpointImage::readHeader(const std::string &path)
{
    return readFile(path).header;
}

} // namespace ckpt
