/**
 * @file
 * On-disk checkpoint format primitives (ULMTCKP1).
 *
 * The container mirrors the ULMTTRC1 trace-format conventions from
 * src/trace/format.hh -- little-endian fixed-width container fields,
 * LEB128 varints inside section payloads, per-section FNV-1a checksums
 * and a chain-checksummed trailer -- but is deliberately self-contained
 * so that ckpt stays a leaf module: components that implement
 * saveState()/restoreState() include this header (and state.hh) and
 * nothing else, and the sim/ layer never depends on ckpt at all.
 *
 * Layout of a checkpoint file:
 *
 *   "ULMTCKP1"                          8-byte magic
 *   u32 version | u32 reserved
 *   u64 configFingerprint               must match the restoring config
 *   u64 seed | f64bits scale            workload construction inputs
 *   u64 cycle | u64 misses              snapshot point (informational)
 *   u32 cores | u32 ulmtMode            machine shape
 *   u32 vmPageBytes                     VM page size (0 = VM layer off)
 *   u32 len + bytes                     workload registry name
 *   u32 len + bytes                     config label
 *   sections:
 *     u32 "CSEC" | u32 nameLen | name
 *     u32 payloadBytes | u32 reserved | u64 fnv1a64(payload)
 *     payload
 *   trailer:
 *     u32 "CEND" | u32 sectionCount
 *     u64 totalPayloadBytes | u64 chainChecksum
 *
 * Validation is strict and loud: every section checksum is verified on
 * load and the trailer's totals and checksum chain are re-verified, so
 * a truncated or bit-flipped checkpoint is rejected with a CkptError
 * naming the file and the reason -- never a silently wrong restore.
 */

#ifndef CKPT_FORMAT_HH
#define CKPT_FORMAT_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ckpt {

/** Any malformed, truncated, corrupt or mismatched checkpoint. */
class CkptError : public std::runtime_error
{
  public:
    explicit CkptError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** 8-byte file magic; the '1' doubles as the major version. */
inline constexpr char fileMagic[8] = {'U', 'L', 'M', 'T',
                                      'C', 'K', 'P', '1'};

/** Bumped on any incompatible layout change.  Version 2: the memory
 *  system's state gained the CPU-prefetch in-flight map and its
 *  cross-match drop counter (queue-1 attribution split).  Version 3:
 *  multicore -- the header records the core count and ULMT serving
 *  mode, component sections exist per core, the ULMT state carries
 *  per-core sub-queues, and the memory system carries per-tenant QoS
 *  counters.  Version 4: virtual memory -- the header records the VM
 *  page size (0 when the layer is off), a "vm" section holds the page
 *  tables, TLBs and remap-engine state when it is on, and the memory
 *  system and hierarchy streams gained the page-cross drop counters.
 *  Version 5: memory-side table cache -- a "tcache" section holds the
 *  MSCache tag array, dirty buffer and counters when --table-cache is
 *  on.  v4 files stay readable: a cache-off machine restores them
 *  unchanged, and a cache-on machine rejects them with a message
 *  naming the missing section. */
inline constexpr std::uint32_t formatVersion = 5;

/** Oldest container layout readFile() still accepts. */
inline constexpr std::uint32_t minFormatVersion = 4;

/** "CSEC" as a little-endian u32. */
inline constexpr std::uint32_t sectionMagic = 0x43455343u;

/** "CEND" as a little-endian u32. */
inline constexpr std::uint32_t trailerMagic = 0x444E4543u;

/** Upper bound on one section's payload (sanity check on load). */
inline constexpr std::uint32_t maxSectionPayload = 256u * 1024 * 1024;

/** Upper bound on any embedded string length (names, labels). */
inline constexpr std::uint32_t maxStringLen = 4096;

/** FNV-1a offset basis; also the seed of the trailer checksum chain. */
inline constexpr std::uint64_t fnvOffsetBasis = 1469598103934665603ULL;

/** 64-bit FNV-1a over @p len bytes, continuing from @p seed. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len,
        std::uint64_t seed = fnvOffsetBasis)
{
    constexpr std::uint64_t prime = 1099511628211ULL;
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= prime;
    }
    return h;
}

/** Map a signed delta onto an unsigned varint-friendly value. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t u)
{
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/** Append @p v to @p out as a LEB128 varint. */
inline void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/**
 * Decode a LEB128 varint from @p data at @p pos (advanced past it).
 * @throws CkptError on truncation or an overlong/overflowing encoding.
 */
inline std::uint64_t
getVarint(const unsigned char *data, std::size_t size, std::size_t &pos)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= size)
            throw CkptError("truncated varint in checkpoint payload");
        const unsigned char byte = data[pos++];
        if (shift == 63 && (byte & 0x7E))
            throw CkptError("overlong varint in checkpoint payload");
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            return v;
    }
    throw CkptError("unterminated varint in checkpoint payload");
}

/** Append @p v little-endian. */
template <typename T>
void
putLe(std::string &out, T v)
{
    static_assert(std::is_integral_v<T> || std::is_floating_point_v<T>);
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &v, sizeof(T));
    // The simulator only targets little-endian hosts (x86-64/aarch64);
    // memcpy keeps this both fast and strict-aliasing clean.
    out.append(reinterpret_cast<const char *>(bytes), sizeof(T));
}

/** Decode a little-endian T from @p data at @p pos (advanced). */
template <typename T>
T
getLe(const unsigned char *data, std::size_t size, std::size_t &pos)
{
    if (size - pos < sizeof(T) || pos > size)
        throw CkptError("truncated fixed-width field in checkpoint");
    T v;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return v;
}

} // namespace ckpt

#endif // CKPT_FORMAT_HH
