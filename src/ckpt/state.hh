/**
 * @file
 * StateWriter / StateReader: the serialization streams handed to every
 * component's saveState()/restoreState() hook.
 *
 * The contract is symmetric and positional: restoreState() must read
 * exactly the fields saveState() wrote, in the same order, and the
 * driver checks that every section is fully consumed (finish()) so a
 * save/restore mismatch fails loudly instead of shearing all later
 * fields.  Scalars are varint-encoded (state is mostly small counters
 * and sparse indices); doubles travel as exact u64 bit patterns so a
 * restored SampleStat is bit-identical, not merely close.
 *
 * Determinism requirement: saveState() must emit a byte-deterministic
 * encoding -- iterate unordered containers in sorted key order -- so
 * that the same simulator state always produces the same checkpoint
 * bytes (the committed corpus depends on this).
 */

#ifndef CKPT_STATE_HH
#define CKPT_STATE_HH

#include <cstdint>
#include <string>

#include "ckpt/format.hh"

namespace ckpt {

/** Accumulates one section's payload. */
class StateWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v) { putVarint(buf_, v); }
    void u64(std::uint64_t v) { putVarint(buf_, v); }
    void i64(std::int64_t v) { putVarint(buf_, zigzagEncode(v)); }

    /** Exact bit pattern -- restored doubles compare equal bitwise. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        putLe(buf_, bits);
    }

    void
    str(const std::string &s)
    {
        if (s.size() > maxStringLen)
            throw CkptError("string too long for checkpoint section");
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s);
    }

    const std::string &buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Decodes one section's payload; throws CkptError on any overrun. */
class StateReader
{
  public:
    StateReader(const void *data, std::size_t size)
        : data_(static_cast<const unsigned char *>(data)), size_(size)
    {
    }

    explicit StateReader(const std::string &payload)
        : StateReader(payload.data(), payload.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (pos_ >= size_)
            throw CkptError("truncated checkpoint section");
        return data_[pos_++];
    }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CkptError("corrupt bool in checkpoint section");
        return v != 0;
    }

    std::uint32_t
    u32()
    {
        const std::uint64_t v = getVarint(data_, size_, pos_);
        if (v > 0xFFFFFFFFULL)
            throw CkptError("u32 field out of range in checkpoint");
        return static_cast<std::uint32_t>(v);
    }

    std::uint64_t u64() { return getVarint(data_, size_, pos_); }

    std::int64_t
    i64()
    {
        return zigzagDecode(getVarint(data_, size_, pos_));
    }

    double
    f64()
    {
        const std::uint64_t bits =
            getLe<std::uint64_t>(data_, size_, pos_);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (len > maxStringLen || size_ - pos_ < len)
            throw CkptError("truncated string in checkpoint section");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      len);
        pos_ += len;
        return s;
    }

    std::size_t remaining() const { return size_ - pos_; }

    /** Call once all fields are read; trailing bytes mean a mismatch. */
    void
    finish() const
    {
        if (pos_ != size_)
            throw CkptError(
                "checkpoint section has trailing bytes (save/restore "
                "field mismatch)");
    }

  private:
    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace ckpt

#endif // CKPT_STATE_HH
