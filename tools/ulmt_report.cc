/**
 * @file
 * ulmt-report: render and regression-diff BENCH_*.json files.
 *
 *   ulmt-report show FILE...
 *       Text dashboard: per-run effectiveness (lifecycle outcome
 *       taxonomy, coverage/accuracy/timeliness, lead-time histogram),
 *       the per-tenant interference matrix, and the figure metrics.
 *
 *   ulmt-report diff OLD NEW [--tolerance=GLOB=FRACTION]...
 *                            [--exclude=GLOB]... [--include-volatile]
 *       Compare two BENCH files leaf by leaf.  Host-volatile fields
 *       (provenance, wall clock, events/sec, jobs, checkpoint timings)
 *       are excluded by default; everything else -- simulated cycle
 *       counts, events, lifecycle counters, figure metrics -- must
 *       match exactly unless a --tolerance glob grants that path a
 *       relative slack (e.g. --tolerance='metrics.*=0.02').  Exits 0
 *       when the files agree, 1 on any difference, 2 on usage/IO
 *       errors.  This is the CI perf-regression gate (report-gate).
 *
 * Paths are dotted, with array indices as bare numbers:
 * runs.0.effectiveness.cores.0.push.issued
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/json.hh"

namespace {

/** The same `*`/`?` glob as tools/ulmt-stats --filter. */
bool
globMatch(const char *pat, const char *s)
{
    for (; *pat; ++pat, ++s) {
        if (*pat == '*') {
            while (*pat == '*')
                ++pat;
            if (!*pat)
                return true;
            for (; *s; ++s) {
                if (globMatch(pat, s))
                    return true;
            }
            return false;
        }
        if (!*s || (*pat != '?' && *pat != *s))
            return false;
    }
    return !*s;
}

bool
globMatch(const std::string &pat, const std::string &s)
{
    return globMatch(pat.c_str(), s.c_str());
}

// --------------------------------------------------------------------
// show: the text dashboard
// --------------------------------------------------------------------

double
num(const sim::JsonValue &v, const char *key)
{
    const sim::JsonValue *f = v.find(key);
    return f ? f->asNumber() : 0.0;
}

std::string
txt(const sim::JsonValue &v, const char *key)
{
    const sim::JsonValue *f = v.find(key);
    return f ? f->asString() : std::string();
}

/** An outcome row: "  useful_timely     56580  15.0% of triggered". */
void
printOutcome(const char *name, double count, double triggered)
{
    std::printf("      %-22s %12.0f", name, count);
    if (triggered > 0)
        std::printf("  %5.1f%%", 100.0 * count / triggered);
    std::printf("\n");
}

void
showEffectiveness(const sim::JsonValue &eff)
{
    const sim::JsonValue *cores = eff.find("cores");
    if (!cores || !cores->isArray())
        return;
    for (std::size_t c = 0; c < cores->arr.size(); ++c) {
        const sim::JsonValue &cr = cores->arr[c];
        const sim::JsonValue *push = cr.find("push");
        if (!push)
            continue;
        std::printf("    core %zu  coverage %.3f  accuracy %.3f  "
                    "timeliness %.3f\n",
                    c, num(cr, "coverage"), num(cr, "accuracy"),
                    num(cr, "timeliness"));
        const double issued = num(*push, "issued");
        const double triggered =
            issued + num(*push, "dropped_filter") +
            num(*push, "dropped_queue_full") +
            num(*push, "dropped_demand_match") +
            num(*push, "dropped_cpu_pf_match");
        printOutcome("triggered", triggered, 0.0);
        for (const char *k :
             {"issued", "useful_timely", "useful_late",
              "evicted_unused", "redundant", "dropped_filter",
              "dropped_queue_full", "dropped_demand_match",
              "dropped_cpu_pf_match"})
            printOutcome(k, num(*push, k), triggered);

        if (const sim::JsonValue *lead = cr.find("lead_time")) {
            const sim::JsonValue *edges = lead->find("edges");
            const sim::JsonValue *counts = lead->find("counts");
            if (edges && counts && !counts->arr.empty()) {
                double total = 0.0;
                for (const auto &v : counts->arr)
                    total += v.asNumber();
                std::printf("      lead time (fill-to-use cycles), "
                            "p50 %.0f p95 %.0f:\n",
                            num(*lead, "p50"), num(*lead, "p95"));
                for (std::size_t i = 0; i < counts->arr.size(); ++i) {
                    const double lo = i < edges->arr.size()
                                          ? edges->arr[i].asNumber()
                                          : 0.0;
                    const double n = counts->arr[i].asNumber();
                    const int bar =
                        total > 0
                            ? static_cast<int>(40.0 * n / total + 0.5)
                            : 0;
                    std::printf("        >=%-8.0f %10.0f  %.*s\n", lo,
                                n, bar,
                                "########################################");
                }
            }
        }
        if (const sim::JsonValue *bus = cr.find("bus_cycles"))
            std::printf("      bus cycles   demand %.0f  prefetch %.0f"
                        "  other %.0f\n",
                        num(*bus, "demand"), num(*bus, "prefetch"),
                        num(*bus, "other"));
        if (const sim::JsonValue *dram = cr.find("dram_cycles"))
            std::printf("      dram cycles  demand %.0f  prefetch %.0f"
                        "  other %.0f\n",
                        num(*dram, "demand"), num(*dram, "prefetch"),
                        num(*dram, "other"));
    }

    // The interference matrix: one row per victim core, one column per
    // blamed tenant (the last column is the memory thread itself).
    bool any_blocked = false;
    for (const auto &cr : cores->arr) {
        if (const sim::JsonValue *b = cr.find("blocked_by")) {
            for (const auto &v : b->arr)
                any_blocked = any_blocked || v.asNumber() > 0;
        }
    }
    if (any_blocked) {
        std::printf("    blocked_by matrix (demand wait cycles, "
                    "victim row / occupant column; last = ulmt):\n");
        for (std::size_t c = 0; c < cores->arr.size(); ++c) {
            const sim::JsonValue *b = cores->arr[c].find("blocked_by");
            if (!b)
                continue;
            std::printf("      core %zu:", c);
            for (const auto &v : b->arr)
                std::printf(" %10.0f", v.asNumber());
            std::printf("\n");
        }
    }
    std::printf("    table dram cycles %.0f  open inflight %.0f  "
                "open installed %.0f\n",
                num(eff, "table_dram_cycles"),
                num(eff, "open_inflight"), num(eff, "open_installed"));
}

int
show(const std::vector<std::string> &files)
{
    for (const std::string &path : files) {
        sim::JsonValue doc;
        try {
            doc = sim::parseJsonFile(path);
        } catch (const sim::JsonError &e) {
            std::fprintf(stderr, "ulmt-report: %s\n", e.what());
            return 2;
        }
        std::printf("== %s (bench %s, scale %g)\n", path.c_str(),
                    txt(doc, "bench").c_str(), num(doc, "scale"));
        if (const sim::JsonValue *runs = doc.find("runs")) {
            for (const sim::JsonValue &r : runs->arr) {
                std::printf("  %s / %s: %.0f cycles, %.0f events\n",
                            txt(r, "workload").c_str(),
                            txt(r, "config").c_str(),
                            num(r, "sim_cycles"), num(r, "events"));
                if (const sim::JsonValue *eff =
                        r.find("effectiveness"))
                    showEffectiveness(*eff);
            }
        }
        if (const sim::JsonValue *metrics = doc.find("metrics")) {
            for (const auto &[k, v] : metrics->obj) {
                if (v.isNumber())
                    std::printf("  metric %-36s %.6g\n", k.c_str(),
                                v.number);
            }
        }
    }
    return 0;
}

// --------------------------------------------------------------------
// diff: the regression gate
// --------------------------------------------------------------------

struct Leaf
{
    std::string path;
    const sim::JsonValue *value;
};

void
flatten(const sim::JsonValue &v, const std::string &path,
        std::vector<Leaf> &out)
{
    switch (v.kind) {
      case sim::JsonValue::Kind::Object:
        for (const auto &[k, child] : v.obj)
            flatten(child, path.empty() ? k : path + "." + k, out);
        break;
      case sim::JsonValue::Kind::Array:
        for (std::size_t i = 0; i < v.arr.size(); ++i)
            flatten(v.arr[i], path + "." + std::to_string(i), out);
        break;
      default:
        out.push_back({path, &v});
    }
}

/** Host-volatile fields: different on every machine and invocation,
 *  never part of the determinism contract (EXPERIMENTS.md). */
const char *const volatileGlobs[] = {
    "provenance.*",
    "jobs",
    "wall_seconds_total",
    "*wall_seconds*",
    "*events_per_sec*",
    "*ckpt_save_seconds*",
    "*ckpt_restore_seconds*",
};

struct Tolerance
{
    std::string glob;
    double fraction;
};

bool
excluded(const std::string &path,
         const std::vector<std::string> &excludes, bool include_volatile)
{
    if (!include_volatile) {
        for (const char *g : volatileGlobs) {
            if (globMatch(g, path))
                return true;
        }
    }
    for (const std::string &g : excludes) {
        if (globMatch(g, path))
            return true;
    }
    return false;
}

double
toleranceFor(const std::string &path,
             const std::vector<Tolerance> &tols)
{
    double t = 0.0;
    for (const Tolerance &tol : tols) {
        if (globMatch(tol.glob, path))
            t = std::max(t, tol.fraction);
    }
    return t;
}

bool
sameScalar(const sim::JsonValue &a, const sim::JsonValue &b,
           double tol, double &rel)
{
    rel = 0.0;
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case sim::JsonValue::Kind::Null: return true;
      case sim::JsonValue::Kind::Bool: return a.boolean == b.boolean;
      case sim::JsonValue::Kind::String: return a.str == b.str;
      case sim::JsonValue::Kind::Number:
        // numberRelDiff compares both-integer leaves in exact int64
        // space: above 2^53 two distinct counters round to the same
        // double, which the old double-only path silently forgave.
        rel = sim::numberRelDiff(a, b);
        return rel <= tol;
      default: return false;  // containers never reach here
    }
}

int
diff(const std::string &old_path, const std::string &new_path,
     const std::vector<Tolerance> &tols,
     const std::vector<std::string> &excludes, bool include_volatile)
{
    sim::JsonValue a, b;
    try {
        a = sim::parseJsonFile(old_path);
        b = sim::parseJsonFile(new_path);
    } catch (const sim::JsonError &e) {
        std::fprintf(stderr, "ulmt-report: %s\n", e.what());
        return 2;
    }
    std::vector<Leaf> la, lb;
    flatten(a, "", la);
    flatten(b, "", lb);

    int mismatches = 0;
    std::size_t compared = 0;
    std::unordered_map<std::string, const sim::JsonValue *> bm;
    bm.reserve(lb.size());
    for (const Leaf &l : lb)
        bm.emplace(l.path, l.value);
    std::unordered_set<std::string> am;
    am.reserve(la.size());
    for (const Leaf &l : la)
        am.insert(l.path);

    for (const Leaf &l : la) {
        if (excluded(l.path, excludes, include_volatile))
            continue;
        const auto it = bm.find(l.path);
        const sim::JsonValue *other =
            it == bm.end() ? nullptr : it->second;
        if (!other) {
            std::printf("- only in %s: %s\n", old_path.c_str(),
                        l.path.c_str());
            ++mismatches;
            continue;
        }
        ++compared;
        const double tol = toleranceFor(l.path, tols);
        double rel = 0.0;
        if (!sameScalar(*l.value, *other, tol, rel)) {
            if (l.value->isNumber() && other->isNumber() &&
                l.value->isInteger && other->isInteger) {
                // Print counters exactly; %.17g would round both sides
                // of a >2^53 drift to the same digits.
                std::printf("! %s: %lld -> %lld (rel %.3g, tol %g)\n",
                            l.path.c_str(), l.value->integer,
                            other->integer, rel, tol);
            } else if (l.value->isNumber() && other->isNumber()) {
                std::printf("! %s: %.17g -> %.17g (rel %.3g, tol %g)\n",
                            l.path.c_str(), l.value->number,
                            other->number, rel, tol);
            } else {
                std::printf("! %s: '%s' -> '%s'\n", l.path.c_str(),
                            l.value->isString() ? l.value->str.c_str()
                                                : "<non-scalar>",
                            other->isString() ? other->str.c_str()
                                              : "<non-scalar>");
            }
            ++mismatches;
        }
    }
    for (const Leaf &l : lb) {
        if (excluded(l.path, excludes, include_volatile))
            continue;
        if (!am.count(l.path)) {
            std::printf("+ only in %s: %s\n", new_path.c_str(),
                        l.path.c_str());
            ++mismatches;
        }
    }

    std::printf("[ulmt-report] %zu leaves compared, %d difference%s\n",
                compared, mismatches, mismatches == 1 ? "" : "s");
    return mismatches ? 1 : 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ulmt-report show FILE...\n"
        "       ulmt-report diff OLD NEW [--tolerance=GLOB=FRAC]...\n"
        "                        [--exclude=GLOB]... "
        "[--include-volatile]\n"
        "  diff exits 0 when the files agree within tolerances,\n"
        "  1 on any difference, 2 on usage/IO errors.  Host-volatile\n"
        "  fields (provenance, wall clock, events/sec, jobs,\n"
        "  checkpoint timings) are excluded unless "
        "--include-volatile.\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "show") {
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i)
            files.push_back(argv[i]);
        if (files.empty())
            return usage();
        return show(files);
    }

    if (cmd == "diff") {
        std::vector<std::string> files;
        std::vector<Tolerance> tols;
        std::vector<std::string> excludes;
        bool include_volatile = false;
        for (int i = 2; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strncmp(arg, "--tolerance=", 12) == 0) {
                const char *spec = arg + 12;
                const char *eq = std::strrchr(spec, '=');
                if (!eq || eq == spec) {
                    std::fprintf(stderr,
                                 "ulmt-report: bad --tolerance '%s' "
                                 "(expected GLOB=FRACTION)\n",
                                 spec);
                    return 2;
                }
                char *end = nullptr;
                const double frac = std::strtod(eq + 1, &end);
                if (*end != '\0' || frac < 0.0) {
                    std::fprintf(stderr,
                                 "ulmt-report: bad fraction in '%s'\n",
                                 spec);
                    return 2;
                }
                tols.push_back(
                    {std::string(spec, eq - spec), frac});
            } else if (std::strncmp(arg, "--exclude=", 10) == 0) {
                excludes.push_back(arg + 10);
            } else if (std::strcmp(arg, "--include-volatile") == 0) {
                include_volatile = true;
            } else if (arg[0] == '-') {
                return usage();
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 2)
            return usage();
        return diff(files[0], files[1], tols, excludes,
                    include_volatile);
    }

    return usage();
}
