/**
 * @file
 * ulmt-ckpt: create, inspect and compare checkpoint snapshots.
 *
 *   ulmt-ckpt create <app> <out.ulmtckp> [--algo=NAME] [--at=SPEC]
 *                    [--scale=S] [--seed=N] [--conven4] [--cores=N]
 *                    [--ulmt-mode=shared|percore|sharded]
 *                    [--vm=on|off] [--page-size=4k|2m]
 *                    [--remap-rate=R]
 *       Run <app> under the named ULMT algorithm (default Repl;
 *       "None" = no ULMT), snapshotting after SPEC ("<N>" demand L2
 *       misses, default 1000, or "<N>c" at cycle N), and report the
 *       run's result fingerprint.  --cores/--ulmt-mode snapshot a
 *       multicore machine; restoring needs the same shape.
 *
 *   ulmt-ckpt info <file>
 *       Print header provenance (including the machine shape and the
 *       VM layer's page size / page-table shape) and the section
 *       table.
 *
 *   ulmt-ckpt verify <file>
 *       Fully validate the file (magic, version, every section
 *       checksum, trailer totals and checksum chain).
 *
 *   ulmt-ckpt diff <a> <b>
 *       Compare two snapshots: header fields plus per-section sizes
 *       and checksums.  Exit 0 when identical, 1 when they differ.
 *
 *   ulmt-ckpt list-workloads
 *       Print the registered workload names.
 *
 * A snapshot restores via `driver::runSampled` or the benches'
 * `--restore-from=` flag; the restored run finishes with statistics
 * bit-identical to the uninterrupted run it was taken from.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "vm/vm.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <subcommand> ...\n"
        "  create <app> <out.ulmtckp> [--algo=NAME] [--at=SPEC]\n"
        "         [--scale=S] [--seed=N] [--conven4] [--cores=N]\n"
        "         [--ulmt-mode=shared|percore|sharded]\n"
        "         [--vm=on|off] [--page-size=4k|2m] [--remap-rate=R]\n"
        "         [--table-cache=<entries>[,<assoc>]]\n"
        "  info <file>\n"
        "  verify <file>\n"
        "  diff <a> <b>\n"
        "  list-workloads\n",
        argv0);
    return 2;
}

/** --key= prefix match; returns the value part or nullptr. */
const char *
flagValue(const char *arg, const char *key)
{
    const std::size_t n = std::strlen(key);
    return std::strncmp(arg, key, n) == 0 ? arg + n : nullptr;
}

[[noreturn]] void
badFlag(const char *arg)
{
    std::fprintf(stderr, "ulmt-ckpt: unknown argument '%s'\n", arg);
    std::exit(2);
}

int
cmdCreate(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        throw ckpt::CkptError(
            "create needs <app> <out.ulmtckp> arguments");
    const std::string &app = args[0];
    const std::string &out = args[1];
    driver::ExperimentOptions opt;
    std::string algo_name = "Repl";
    std::string at = "1000";
    bool conven4 = false;
    unsigned cores = 1;
    core::UlmtMode mode = core::UlmtMode::Shared;
    vm::VmSpec vmSpec;
    mem::TableCacheSpec tcacheSpec;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (const char *v = flagValue(args[i].c_str(), "--algo="))
            algo_name = v;
        else if (const char *a = flagValue(args[i].c_str(), "--at="))
            at = a;
        else if (const char *s = flagValue(args[i].c_str(), "--scale="))
            opt.scale = std::atof(s);
        else if (const char *n = flagValue(args[i].c_str(), "--seed="))
            opt.seed = std::strtoull(n, nullptr, 0);
        else if (args[i] == "--conven4")
            conven4 = true;
        else if (const char *c = flagValue(args[i].c_str(), "--cores="))
            cores = unsigned(std::strtoul(c, nullptr, 10));
        else if (const char *m =
                     flagValue(args[i].c_str(), "--ulmt-mode="))
            mode = core::parseUlmtMode(m);
        else if (const char *vmv = flagValue(args[i].c_str(), "--vm="))
            vmSpec.enabled = std::strcmp(vmv, "on") == 0;
        else if (const char *ps =
                     flagValue(args[i].c_str(), "--page-size="))
            vmSpec.pageBytes = vm::parsePageSize(ps);
        else if (const char *rr =
                     flagValue(args[i].c_str(), "--remap-rate="))
            vmSpec.remapRate = std::atof(rr);
        else if (const char *tc =
                     flagValue(args[i].c_str(), "--table-cache=")) {
            char *end = nullptr;
            tcacheSpec.entries =
                std::uint32_t(std::strtoul(tc, &end, 10));
            if (*end == ',')
                tcacheSpec.assoc =
                    std::uint32_t(std::strtoul(end + 1, &end, 10));
            if (*end != '\0' || tcacheSpec.assoc == 0 ||
                (tcacheSpec.entries != 0 &&
                 tcacheSpec.entries % tcacheSpec.assoc != 0))
                throw ckpt::CkptError(
                    "bad --table-cache value (expected "
                    "<entries>[,<assoc>], entries divisible by "
                    "assoc, 0 disables)");
        } else
            badFlag(args[i].c_str());
    }

    const core::UlmtAlgo algo = core::parseUlmtAlgo(algo_name);
    driver::SystemConfig cfg =
        algo == core::UlmtAlgo::None
            ? driver::noPrefConfig(opt)
            : (conven4 ? driver::conven4PlusUlmtConfig(opt, algo, app)
                       : driver::ulmtConfig(opt, algo, app));
    if (algo == core::UlmtAlgo::None && conven4)
        cfg = driver::conven4Config(opt);
    cfg.cores = cores;
    cfg.ulmtMode = mode;
    cfg.vm = vmSpec;
    cfg.tableCache = tcacheSpec;

    auto ws =
        driver::makeCoreWorkloads(app, opt.seed, opt.scale, cores);
    const std::string name = ws[0]->name();
    driver::System sys(cfg, std::move(ws), name);
    sys.setCheckpointMeta(app, opt.seed, opt.scale);
    sys.setCheckpointTrigger(at, out);
    const driver::RunResult r = sys.run();
    if (r.ckptBytes == 0) {
        std::fprintf(stderr,
                     "ulmt-ckpt: the run finished before the trigger "
                     "'%s' fired; no snapshot written\n",
                     at.c_str());
        return 1;
    }
    std::printf("snapshot:     %s (%llu bytes)\n", out.c_str(),
                (unsigned long long)r.ckptBytes);
    const ckpt::CkptHeader h = ckpt::CheckpointImage::readHeader(out);
    std::printf("taken at:     cycle %llu, %llu misses\n",
                (unsigned long long)h.cycle,
                (unsigned long long)h.misses);
    std::printf("run ended:    cycle %llu\n",
                (unsigned long long)r.cycles);
    const std::string fp = driver::resultFingerprint(r);
    std::printf("fingerprint:  %016llx\n",
                (unsigned long long)ckpt::fnv1a64(fp.data(), fp.size()));
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        throw ckpt::CkptError("info needs exactly one <file>");
    const ckpt::CheckpointImage img =
        ckpt::CheckpointImage::readFile(args[0]);
    const ckpt::CkptHeader &h = img.header;
    std::printf("file:        %s\n", args[0].c_str());
    std::printf("version:     %u\n", h.version);
    std::printf("workload:    %s\n", h.workload.c_str());
    std::printf("config:      %s\n", h.label.c_str());
    std::printf("config fp:   %#llx\n",
                (unsigned long long)h.configFingerprint);
    std::printf("seed:        %#llx\n", (unsigned long long)h.seed);
    std::printf("scale:       %g\n", h.scale);
    std::printf("machine:     %u core%s, %s serving\n", h.cores,
                h.cores == 1 ? "" : "s",
                h.ulmtMode <= std::uint32_t(core::UlmtMode::Sharded)
                    ? core::to_string(core::UlmtMode(h.ulmtMode))
                          .c_str()
                    : "unknown");
    std::printf("cycle:       %llu\n", (unsigned long long)h.cycle);
    std::printf("misses:      %llu\n", (unsigned long long)h.misses);
    if (h.vmPageBytes) {
        if (const std::string *vm_sec = img.findSection("vm")) {
            std::printf("vm:          %s\n",
                        vm::sectionSummary(*vm_sec, h.cores,
                                           h.vmPageBytes)
                            .c_str());
        } else {
            std::printf("vm:          %s pages (section missing)\n",
                        vm::pageSizeName(h.vmPageBytes).c_str());
        }
    } else {
        std::printf("vm:          off\n");
    }
    std::printf("table cache: %s\n",
                img.findSection("tcache") ? "on (tcache section)"
                                          : "off");
    std::printf("sections:    %zu (%llu payload bytes)\n",
                img.sections().size(),
                (unsigned long long)img.payloadBytes());
    for (const auto &[name, payload] : img.sections()) {
        std::printf("  %-8s %10zu bytes  fnv %016llx\n", name.c_str(),
                    payload.size(),
                    (unsigned long long)ckpt::fnv1a64(payload.data(),
                                                      payload.size()));
    }
    return 0;
}

int
cmdVerify(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        throw ckpt::CkptError("verify needs exactly one <file>");
    // readFile validates magic, version, every section checksum and
    // the trailer chain; reaching here means the file is sound.
    const ckpt::CheckpointImage img =
        ckpt::CheckpointImage::readFile(args[0]);
    std::printf("%s: OK (%zu sections, %llu payload bytes, %s @ %s)\n",
                args[0].c_str(), img.sections().size(),
                (unsigned long long)img.payloadBytes(),
                img.header.workload.c_str(), img.header.label.c_str());
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        throw ckpt::CkptError("diff needs exactly <a> <b>");
    const ckpt::CheckpointImage a =
        ckpt::CheckpointImage::readFile(args[0]);
    const ckpt::CheckpointImage b =
        ckpt::CheckpointImage::readFile(args[1]);
    int differences = 0;
    auto field = [&](const char *name, const std::string &va,
                     const std::string &vb) {
        if (va != vb) {
            std::printf("header %s: %s != %s\n", name, va.c_str(),
                        vb.c_str());
            ++differences;
        }
    };
    auto num = [&](const char *name, unsigned long long va,
                   unsigned long long vb) {
        if (va != vb) {
            std::printf("header %s: %llu != %llu\n", name, va, vb);
            ++differences;
        }
    };
    field("workload", a.header.workload, b.header.workload);
    field("label", a.header.label, b.header.label);
    num("config_fingerprint", a.header.configFingerprint,
        b.header.configFingerprint);
    num("seed", a.header.seed, b.header.seed);
    num("cores", a.header.cores, b.header.cores);
    num("ulmt_mode", a.header.ulmtMode, b.header.ulmtMode);
    num("vm_page_bytes", a.header.vmPageBytes, b.header.vmPageBytes);
    num("cycle", a.header.cycle, b.header.cycle);
    num("misses", a.header.misses, b.header.misses);
    if (a.header.scale != b.header.scale) {
        std::printf("header scale: %g != %g\n", a.header.scale,
                    b.header.scale);
        ++differences;
    }

    for (const auto &[name, payload] : a.sections()) {
        const std::string *other = b.findSection(name);
        if (!other) {
            std::printf("section %s: only in %s\n", name.c_str(),
                        args[0].c_str());
            ++differences;
        } else if (payload != *other) {
            std::printf("section %s: %zu bytes (fnv %016llx) != %zu "
                        "bytes (fnv %016llx)\n",
                        name.c_str(), payload.size(),
                        (unsigned long long)ckpt::fnv1a64(
                            payload.data(), payload.size()),
                        other->size(),
                        (unsigned long long)ckpt::fnv1a64(
                            other->data(), other->size()));
            if (name == "vm" && a.header.vmPageBytes &&
                b.header.vmPageBytes) {
                std::printf("  a: %s\n  b: %s\n",
                            vm::sectionSummary(payload, a.header.cores,
                                               a.header.vmPageBytes)
                                .c_str(),
                            vm::sectionSummary(*other, b.header.cores,
                                               b.header.vmPageBytes)
                                .c_str());
            }
            ++differences;
        }
    }
    for (const auto &[name, payload] : b.sections()) {
        if (!a.findSection(name)) {
            std::printf("section %s: only in %s\n", name.c_str(),
                        args[1].c_str());
            ++differences;
        }
    }
    if (differences == 0) {
        std::printf("identical (%zu sections)\n", a.sections().size());
        return 0;
    }
    return 1;
}

int
cmdListWorkloads()
{
    for (const std::string &w : driver::listWorkloads())
        std::printf("%s\n", w.c_str());
    std::printf("trace:<path>\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string cmd = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "create")
            return cmdCreate(args);
        if (cmd == "info")
            return cmdInfo(args);
        if (cmd == "verify")
            return cmdVerify(args);
        if (cmd == "diff")
            return cmdDiff(args);
        if (cmd == "list-workloads")
            return cmdListWorkloads();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ulmt-ckpt: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "ulmt-ckpt: unknown subcommand '%s'\n",
                 cmd.c_str());
    return usage(argv[0]);
}
