/**
 * @file
 * ulmt-fuzz: seed-deterministic configuration fuzzer for the runtime
 * invariant checker (DESIGN.md section 10).
 *
 *   ulmt-fuzz [--seeds N] [--seed0 N] [--check=deep|basic]
 *             [--interval=N] [--scale=S] [-v]
 *
 * Each seed deterministically derives one machine configuration
 * (algorithm, table geometry, queue depth, filter size, placement,
 * Conven4, Verbose, core count, ULMT serving mode) and one short
 * workload, then runs it to completion
 * with the invariant checker armed -- by default in Deep mode, so the
 * lockstep reference models are diffed too.  The same seed always
 * produces the same configuration, on every host.
 *
 * On a violation the fuzzer greedily shrinks the failing
 * configuration -- resetting one dimension at a time to its simplest
 * value and keeping every reset that still fails -- then prints the
 * minimized repro and exits 1.  A clean sweep exits 0.
 *
 * Both `--seeds 50` and `--seeds=50` spellings are accepted (for all
 * value flags).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "check/check.hh"
#include "driver/experiment.hh"
#include "sim/random.hh"

namespace {

/** One fuzzed scenario: everything run() needs, all printable. */
struct Scenario
{
    std::string app = "MST";
    core::UlmtAlgo algo = core::UlmtAlgo::Base;
    std::uint32_t numRows = 4096;
    std::uint32_t numLevels = 3;
    bool verbose = false;
    bool conven4 = false;
    mem::MemProcPlacement placement = mem::MemProcPlacement::InDram;
    std::uint32_t queueDepth = 16;
    std::uint32_t filterEntries = 32;
    double scale = 0.005;
    unsigned cores = 1;
    core::UlmtMode mode = core::UlmtMode::Shared;
    std::uint32_t tcacheEntries = 0;  //!< 0 = no table cache
    std::uint32_t tcacheAssoc = 4;

    std::string
    describe() const
    {
        char buf[288];
        std::snprintf(
            buf, sizeof(buf),
            "app=%s algo=%s rows=%u levels=%u verbose=%d conven4=%d "
            "placement=%s queueDepth=%u filterEntries=%u scale=%g "
            "cores=%u mode=%s tcache=%u,%u",
            app.c_str(), core::to_string(algo).c_str(), numRows,
            numLevels, verbose, conven4,
            placement == mem::MemProcPlacement::InDram ? "InDram"
                                                       : "NorthBridge",
            queueDepth, filterEntries, scale, cores,
            core::to_string(mode).c_str(), tcacheEntries, tcacheAssoc);
        return buf;
    }
};

/** The seed -> scenario map; one Rng stream, fixed draw order. */
Scenario
deriveScenario(std::uint64_t seed, double scale)
{
    sim::Rng rng(seed);
    Scenario s;
    s.scale = scale;

    static const char *apps[] = {"MST", "Tree", "Mcf"};
    s.app = apps[rng.below(3)];

    static const core::UlmtAlgo algos[] = {
        core::UlmtAlgo::None,     core::UlmtAlgo::Base,
        core::UlmtAlgo::Chain,    core::UlmtAlgo::Repl,
        core::UlmtAlgo::Seq1,     core::UlmtAlgo::Seq4,
        core::UlmtAlgo::Seq4Base, core::UlmtAlgo::Seq4Repl,
        core::UlmtAlgo::Seq1Repl,
    };
    s.algo = algos[rng.below(sizeof(algos) / sizeof(algos[0]))];

    // Power-of-two row counts keep every algorithm's set mapping legal.
    s.numRows = 1024u << rng.below(4);        // 1K .. 8K
    s.numLevels = 2 + (std::uint32_t)rng.below(4);  // 2 .. 5
    s.verbose = rng.chance(0.25);
    s.conven4 = rng.chance(0.4);
    s.placement = rng.chance(0.5) ? mem::MemProcPlacement::InDram
                                  : mem::MemProcPlacement::NorthBridge;
    s.queueDepth = 1 + (std::uint32_t)rng.below(24);  // 1 .. 24
    static const std::uint32_t filters[] = {0, 1, 2, 8, 32};
    s.filterEntries = filters[rng.below(5)];

    // Multicore draws come last so the single-core dimensions of a
    // seed stay what they were before the machine grew cores.
    static const unsigned coreCounts[] = {1, 1, 2, 4};
    s.cores = coreCounts[rng.below(4)];
    static const core::UlmtMode serving[] = {core::UlmtMode::Shared,
                                             core::UlmtMode::PerCore,
                                             core::UlmtMode::Sharded};
    s.mode = serving[rng.below(3)];

    // Table-cache draws are newest, so they come after everything
    // else: a seed's pre-MSCache dimensions are unchanged and the
    // no-cache half of the space reproduces the old machines exactly.
    if (rng.chance(0.5)) {
        static const std::uint32_t tcEntries[] = {256, 1024, 4096};
        s.tcacheEntries = tcEntries[rng.below(3)];
        s.tcacheAssoc = rng.chance(0.5) ? 4 : 8;
    }
    // N cores replay N workload copies; divide the trace down so every
    // seed costs about the same and the sweep's wall time stays flat.
    if (s.cores > 1)
        s.scale = scale / s.cores;
    return s;
}

driver::SystemConfig
buildConfig(const Scenario &s)
{
    driver::ExperimentOptions opt;
    opt.scale = s.scale;
    opt.placement = s.placement;

    driver::SystemConfig cfg;
    if (s.algo == core::UlmtAlgo::None) {
        cfg = s.conven4 ? driver::conven4Config(opt)
                        : driver::noPrefConfig(opt);
    } else {
        cfg = s.conven4
                  ? driver::conven4PlusUlmtConfig(opt, s.algo, s.app)
                  : driver::ulmtConfig(opt, s.algo, s.app);
        cfg.ulmt.numRows = s.numRows;
        cfg.ulmt.numLevels = s.numLevels;
        cfg.ulmt.verbose = s.verbose;
    }
    cfg.timing.queueDepth = s.queueDepth;
    cfg.timing.filterEntries = s.filterEntries;
    cfg.cores = s.cores;
    cfg.ulmtMode = s.mode;
    cfg.tableCache.entries = s.tcacheEntries;
    cfg.tableCache.assoc = s.tcacheAssoc;
    cfg.metricsInterval = 0;  // fuzzing needs no time series
    return cfg;
}

/** Run one scenario; returns the failure message, empty on success. */
std::string
runScenario(const Scenario &s, const check::CheckOptions &chk)
{
    driver::ExperimentOptions opt;
    opt.scale = s.scale;
    opt.placement = s.placement;
    driver::SystemConfig cfg = buildConfig(s);
    cfg.check = chk;
    // The checker's walk visits every per-core structure, so a tick
    // costs cores x more; stretch the cadence to keep overhead flat.
    cfg.check.everyEvents = chk.everyEvents * s.cores;
    try {
        (void)driver::runOne(s.app, cfg, opt);
    } catch (const std::exception &e) {
        return e.what();
    }
    return "";
}

/**
 * Greedy shrink: walk a fixed list of single-dimension
 * simplifications; keep each one that still reproduces a failure.
 */
Scenario
shrink(Scenario s, const check::CheckOptions &chk, bool verbose_log)
{
    const Scenario defaults;
    for (int round = 0; round < 2; ++round) {
        bool changed = false;
        auto trial = [&](auto mutate, const char *what) {
            Scenario t = s;
            mutate(t);
            if (t.describe() == s.describe())
                return;
            if (!runScenario(t, chk).empty()) {
                if (verbose_log)
                    std::fprintf(stderr, "  shrink: %s still fails\n",
                                 what);
                s = t;
                changed = true;
            }
        };
        trial([&](Scenario &t) { t.tcacheEntries = 0; }, "tcache=off");
        trial([&](Scenario &t) { t.cores = 1; }, "cores=1");
        trial([&](Scenario &t) { t.mode = core::UlmtMode::Shared; },
              "mode=shared");
        trial([&](Scenario &t) {
                  t.tcacheEntries = std::min(t.tcacheEntries, 256u);
                  t.tcacheAssoc = 4;
              },
              "tcache=256,4");
        trial([&](Scenario &t) { t.conven4 = false; }, "conven4=0");
        trial([&](Scenario &t) { t.verbose = false; }, "verbose=0");
        trial([&](Scenario &t) { t.placement = defaults.placement; },
              "placement=InDram");
        trial([&](Scenario &t) { t.algo = core::UlmtAlgo::Base; },
              "algo=Base");
        trial([&](Scenario &t) { t.numLevels = defaults.numLevels; },
              "levels=3");
        trial([&](Scenario &t) { t.numRows = defaults.numRows; },
              "rows=4096");
        trial([&](Scenario &t) { t.filterEntries =
                                     defaults.filterEntries; },
              "filterEntries=32");
        trial([&](Scenario &t) { t.queueDepth = defaults.queueDepth; },
              "queueDepth=16");
        trial([&](Scenario &t) { t.app = "MST"; }, "app=MST");
        if (!changed)
            break;
    }
    return s;
}

/**
 * Value of a flag accepting both "--key=V" and "--key V": returns
 * nullptr when argv[i] is not --key, else the value (consuming
 * argv[i+1] in the two-token spelling).
 */
const char *
flagValue(int argc, char **argv, int &i, const char *key)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(argv[i], key, n) != 0)
        return nullptr;
    if (argv[i][n] == '=')
        return argv[i] + n + 1;
    if (argv[i][n] == '\0' && i + 1 < argc)
        return argv[++i];
    return nullptr;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--seed0 N] "
                 "[--check=deep|basic] [--interval N] [--scale S] "
                 "[-v]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seeds = 20;
    std::uint64_t seed0 = 1;
    double scale = 0.005;
    bool verbose_log = false;
    check::CheckOptions chk;
    chk.mode = check::CheckMode::Deep;
    chk.everyEvents = 512;  // short runs want a tight cadence

    for (int i = 1; i < argc; ++i) {
        if (const char *v = flagValue(argc, argv, i, "--seeds")) {
            seeds = std::strtoull(v, nullptr, 0);
        } else if (const char *v0 =
                       flagValue(argc, argv, i, "--seed0")) {
            seed0 = std::strtoull(v0, nullptr, 0);
        } else if (const char *c =
                       flagValue(argc, argv, i, "--check")) {
            if (std::strcmp(c, "deep") == 0)
                chk.mode = check::CheckMode::Deep;
            else if (std::strcmp(c, "basic") == 0)
                chk.mode = check::CheckMode::Basic;
            else
                return usage(argv[0]);
        } else if (const char *iv =
                       flagValue(argc, argv, i, "--interval")) {
            chk.everyEvents = std::strtoull(iv, nullptr, 0);
            if (chk.everyEvents == 0)
                return usage(argv[0]);
        } else if (const char *sc =
                       flagValue(argc, argv, i, "--scale")) {
            scale = std::atof(sc);
            if (scale <= 0.0)
                return usage(argv[0]);
        } else if (std::strcmp(argv[i], "-v") == 0) {
            verbose_log = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (seeds == 0)
        return usage(argv[0]);

    std::printf("[fuzz] %llu seeds from %llu, %s checking every %llu "
                "events, scale %g\n",
                (unsigned long long)seeds, (unsigned long long)seed0,
                chk.deep() ? "deep" : "basic",
                (unsigned long long)chk.everyEvents, scale);

    for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = seed0 + i;
        const Scenario s = deriveScenario(seed, scale);
        if (verbose_log)
            std::fprintf(stderr, "[fuzz] seed %llu: %s\n",
                         (unsigned long long)seed,
                         s.describe().c_str());
        const std::string err = runScenario(s, chk);
        if (err.empty())
            continue;

        std::fprintf(stderr,
                     "[fuzz] seed %llu FAILED:\n%s\n"
                     "[fuzz] config: %s\n[fuzz] shrinking...\n",
                     (unsigned long long)seed, err.c_str(),
                     s.describe().c_str());
        const Scenario small = shrink(s, chk, verbose_log);
        std::fprintf(
            stderr,
            "[fuzz] minimized repro (rerun with --seed0 %llu "
            "--seeds 1 --scale %g):\n[fuzz]   %s\n[fuzz]   %s\n",
            (unsigned long long)seed, scale, small.describe().c_str(),
            runScenario(small, chk).c_str());
        return 1;
    }

    std::printf("[fuzz] all %llu seeds clean\n",
                (unsigned long long)seeds);
    return 0;
}
