/**
 * @file
 * ulmt-stats: run one configuration and dump the simulator's full
 * statistic registry as JSON.
 *
 *   ulmt-stats dump <app> [--config=NAME] [--scale=S] [--seed=N]
 *                   [--placement=dram|nb] [--metrics-interval=N]
 *                   [--trace-events=PATH] [--cores=N]
 *                   [--ulmt-mode=shared|percore|sharded]
 *                   [--vm=on|off] [--page-size=4k|2m] [--remap-rate=R]
 *                   [--core=ID] [--filter=GLOB] [--json|--table]
 *       Run <app> (an application name or trace:<path>) under the
 *       named configuration and print every registered statistic --
 *       counters, gauges, samples and histograms -- as one JSON
 *       object keyed by dotted path (--json, the default) or as an
 *       aligned name/value table for eyeballing (--table).
 *
 *   --config accepts: nopref, conven4, custom, or an algorithm name
 *   (Base, Chain, Repl, Seq1, Seq4, Seq1+Repl, Seq4+Repl) optionally
 *   prefixed with "conven4+".  Default: conven4+Repl.
 *
 *   --cores/--ulmt-mode simulate a multicore machine; its per-core
 *   statistics land under "cpu.<id>.*", "ulmt.<id>.*" and
 *   "memsys.core.<id>.*"; the VM layer's (--vm and friends) under
 *   "vm.core.<id>.*" and "vm.*".  --core=ID restricts the dump to the
 *   paths with the dotted segment <id> (core ID's slice of the
 *   registry); --filter=GLOB restricts it to paths matching a *?-glob
 *   (e.g. --filter='vm.*' or --filter='cpu.3.*').  A pattern ending
 *   in '.' selects a subtree by exact-anchored prefix: 'vm.core.1.'
 *   keeps everything under vm.core.1 and nothing under its siblings
 *   (a glob-expanded 'vm.core.1*' would also sweep up vm.core.12.*).
 *   Both filters may repeat; a path is kept if any filter accepts it.
 *
 * The same registry backs the `metrics` time series in the bench
 * JSON; this tool is the quickest way to see which dotted names
 * exist.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "driver/experiment.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"
#include "workloads/workload.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s dump <app> [--config=NAME] [--scale=S] [--seed=N]\n"
        "       [--placement=dram|nb] [--metrics-interval=N]\n"
        "       [--trace-events=PATH] [--cores=N]\n"
        "       [--ulmt-mode=shared|percore|sharded]\n"
        "       [--vm=on|off] [--page-size=4k|2m] [--remap-rate=R]\n"
        "       [--core=ID] [--filter=GLOB] [--json|--table]\n"
        "  filter: *?-glob (e.g. vm.*); a trailing '.' anchors a\n"
        "  subtree prefix exactly (vm.core.1. excludes vm.core.12.*)\n"
        "  config names: nopref, conven4, custom, <algo>,\n"
        "  conven4+<algo>  (algo: Base, Chain, Repl, Seq1, Seq4,\n"
        "  Seq1+Repl, Seq4+Repl; default conven4+Repl)\n",
        argv0);
    return 2;
}

/** Classic *?-glob over a full dotted path. */
bool
globMatch(const char *pat, const char *s)
{
    if (*pat == '\0')
        return *s == '\0';
    if (*pat == '*')
        return globMatch(pat + 1, s) ||
               (*s != '\0' && globMatch(pat, s + 1));
    if (*s != '\0' && (*pat == '?' || *pat == *s))
        return globMatch(pat + 1, s + 1);
    return false;
}

/** True when any dotted segment of @p name equals @p id. */
bool
hasSegment(const std::string &name, const std::string &id)
{
    std::size_t start = 0;
    for (;;) {
        const std::size_t dot = name.find('.', start);
        const std::size_t len =
            (dot == std::string::npos ? name.size() : dot) - start;
        if (name.compare(start, len, id) == 0)
            return true;
        if (dot == std::string::npos)
            return false;
        start = dot + 1;
    }
}

/** --key= prefix match; returns the value part or nullptr. */
const char *
flagValue(const char *arg, const char *key)
{
    const std::size_t n = std::strlen(key);
    return std::strncmp(arg, key, n) == 0 ? arg + n : nullptr;
}

/** The --table renderer: one aligned "name  value" line per stat;
 *  samples and histograms fold to their summary fields. */
class TableVisitor : public sim::StatVisitor
{
  public:
    void
    counter(const std::string &name, std::uint64_t value) override
    {
        std::printf("%-56s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    }

    void
    gauge(const std::string &name, double value) override
    {
        std::printf("%-56s %20.6g\n", name.c_str(), value);
    }

    void
    sampleStat(const std::string &name,
               const sim::SampleStat &s) override
    {
        std::printf("%-56s count %llu mean %.4g min %.4g max %.4g\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.count()),
                    s.mean(), s.count() ? s.min() : 0.0,
                    s.count() ? s.max() : 0.0);
    }

    void
    histogram(const std::string &name,
              const sim::BinnedHistogram &h) override
    {
        std::printf("%-56s total %llu p50 %.4g p95 %.4g\n",
                    name.c_str(),
                    static_cast<unsigned long long>(h.total()),
                    h.percentile(0.50), h.percentile(0.95));
    }
};

driver::SystemConfig
configByName(const std::string &name, const driver::ExperimentOptions &opt,
             const std::string &app)
{
    if (name == "nopref")
        return driver::noPrefConfig(opt);
    if (name == "conven4")
        return driver::conven4Config(opt);
    if (name == "custom") {
        bool customized = false;
        return driver::customConfig(opt, app, customized);
    }
    constexpr const char *combo = "conven4+";
    if (name.rfind(combo, 0) == 0) {
        return driver::conven4PlusUlmtConfig(
            opt, core::parseUlmtAlgo(name.substr(std::strlen(combo))),
            app);
    }
    return driver::ulmtConfig(opt, core::parseUlmtAlgo(name), app);
}

int
cmdDump(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::fprintf(stderr, "ulmt-stats: dump needs an <app>\n");
        return 2;
    }
    const std::string &app = args[0];
    std::string config = "conven4+Repl";
    std::string trace_path;
    unsigned cores = 1;
    core::UlmtMode mode = core::UlmtMode::Shared;
    vm::VmSpec vmSpec;
    std::vector<std::string> core_ids;
    std::vector<std::string> globs;
    bool table = false;
    driver::ExperimentOptions opt;
    opt.scale = 0.25;

    for (std::size_t i = 1; i < args.size(); ++i) {
        const char *arg = args[i].c_str();
        if (const char *v = flagValue(arg, "--config=")) {
            config = v;
        } else if (const char *v2 = flagValue(arg, "--scale=")) {
            opt.scale = std::atof(v2);
        } else if (const char *v3 = flagValue(arg, "--seed=")) {
            opt.seed = std::strtoull(v3, nullptr, 0);
        } else if (const char *v4 = flagValue(arg, "--placement=")) {
            if (std::strcmp(v4, "dram") == 0)
                opt.placement = mem::MemProcPlacement::InDram;
            else if (std::strcmp(v4, "nb") == 0)
                opt.placement = mem::MemProcPlacement::NorthBridge;
            else
                throw std::invalid_argument(
                    "bad --placement (want dram or nb): " + args[i]);
        } else if (const char *v5 =
                       flagValue(arg, "--metrics-interval=")) {
            driver::setMetricsIntervalOverride(
                std::strtoull(v5, nullptr, 10));
        } else if (const char *v6 = flagValue(arg, "--trace-events=")) {
            trace_path = v6;
        } else if (const char *v7 = flagValue(arg, "--cores=")) {
            const unsigned long n = std::strtoul(v7, nullptr, 10);
            if (n < 1 || n > sim::maxCores)
                throw std::invalid_argument(
                    "bad --cores (want 1.." +
                    std::to_string(sim::maxCores) + "): " + args[i]);
            cores = unsigned(n);
        } else if (const char *v8 = flagValue(arg, "--ulmt-mode=")) {
            mode = core::parseUlmtMode(v8);
        } else if (const char *v9 = flagValue(arg, "--core=")) {
            core_ids.emplace_back(v9);
        } else if (const char *v10 = flagValue(arg, "--filter=")) {
            globs.emplace_back(v10);
        } else if (const char *v11 = flagValue(arg, "--vm=")) {
            if (std::strcmp(v11, "on") == 0)
                vmSpec.enabled = true;
            else if (std::strcmp(v11, "off") == 0)
                vmSpec.enabled = false;
            else
                throw std::invalid_argument(
                    "bad --vm (want on or off): " + args[i]);
        } else if (const char *v12 = flagValue(arg, "--page-size=")) {
            vmSpec.pageBytes = vm::parsePageSize(v12);
        } else if (const char *v13 = flagValue(arg, "--remap-rate=")) {
            vmSpec.remapRate = std::atof(v13);
            if (vmSpec.remapRate < 0.0)
                throw std::invalid_argument(
                    "bad --remap-rate (want >= 0): " + args[i]);
        } else if (std::strcmp(arg, "--json") == 0) {
            table = false;  // the default; accepted for symmetry
        } else if (std::strcmp(arg, "--table") == 0) {
            table = true;
        } else {
            throw std::invalid_argument("unknown argument '" +
                                        args[i] + "'");
        }
    }

    driver::SystemConfig cfg = configByName(config, opt, app);
    cfg.cores = cores;
    cfg.ulmtMode = mode;
    cfg.vm = vmSpec;
    if (!trace_path.empty())
        driver::setTraceEventsPath(trace_path);

    auto ws =
        driver::makeCoreWorkloads(app, opt.seed, opt.scale, cores);
    const std::string name = ws[0]->name();
    driver::System sys(cfg, std::move(ws), name);

    sim::TraceEventBuffer buf;
    if (driver::traceEventWriter())
        sys.setTraceEvents(&buf);
    sys.run();
    if (sim::TraceEventWriter *w = driver::traceEventWriter()) {
        w->writeProcess(app + "/" + cfg.label, buf);
        driver::finishTraceEvents();
    }

    const bool unfiltered = core_ids.empty() && globs.empty();
    const auto keep = [&](const std::string &path) {
        for (const std::string &id : core_ids)
            if (hasSegment(path, id))
                return true;
        for (const std::string &g : globs) {
            // A trailing '.' anchors the pattern as a subtree prefix,
            // so "vm.core.1." keeps vm.core.1.* without also matching
            // sibling paths like vm.core.12.tlb.hits.
            if (!g.empty() && g.back() == '.') {
                if (path.compare(0, g.size(), g) == 0)
                    return true;
                continue;
            }
            if (globMatch(g.c_str(), path.c_str()))
                return true;
        }
        return false;
    };
    if (table) {
        TableVisitor v;
        if (unfiltered)
            sys.statRegistry().visit(v);
        else
            sys.statRegistry().visit(v, keep);
        return 0;
    }
    if (unfiltered)
        std::fputs(sys.statRegistry().dumpJson().c_str(), stdout);
    else
        std::fputs(sys.statRegistry().dumpJson(keep).c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "dump")
            return cmdDump(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ulmt-stats: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
