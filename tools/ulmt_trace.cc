/**
 * @file
 * ulmt-trace: capture, inspect and import on-disk trace corpora.
 *
 *   ulmt-trace record <app> <out.trace> [--scale=S] [--seed=N]
 *       Generate <app>'s dynamic trace and capture it (via the tee
 *       source, exactly the records a simulation would consume).
 *
 *   ulmt-trace info <file>
 *       Print header provenance and trailer totals.
 *
 *   ulmt-trace dump <file> [--limit=N]
 *       Print records as text (default first 32; --limit=0 = all).
 *
 *   ulmt-trace convert <in.txt> <out.trace> [--app=NAME] [--ops=N]
 *       Import a ChampSim-style text/CSV access trace (pc, addr, r/w
 *       per line) into the native format.
 *
 * Every produced file replays as a first-class workload under the
 * `trace:<path>` scheme accepted by the benches and examples.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "trace/import.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"
#include "workloads/workload.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <subcommand> ...\n"
        "  record <app> <out.trace> [--scale=S] [--seed=N]\n"
        "  info <file>\n"
        "  dump <file> [--limit=N]\n"
        "  convert <in.txt> <out.trace> [--app=NAME] [--ops=N]\n",
        argv0);
    return 2;
}

/** --key= prefix match; returns the value part or nullptr. */
const char *
flagValue(const char *arg, const char *key)
{
    const std::size_t n = std::strlen(key);
    return std::strncmp(arg, key, n) == 0 ? arg + n : nullptr;
}

[[noreturn]] void
badFlag(const char *arg)
{
    std::fprintf(stderr, "ulmt-trace: unknown argument '%s'\n", arg);
    std::exit(2);
}

int
cmdRecord(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        throw trace::TraceError(
            "record needs <app> <out.trace> arguments");
    const std::string &app = args[0];
    const std::string &out = args[1];
    workloads::WorkloadParams wp;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (const char *v = flagValue(args[i].c_str(), "--scale="))
            wp.scale = std::atof(v);
        else if (const char *s = flagValue(args[i].c_str(), "--seed="))
            wp.seed = std::strtoull(s, nullptr, 0);
        else
            badFlag(args[i].c_str());
    }

    auto wl = workloads::makeWorkload(app, wp);
    trace::TraceWriter::Options wo;
    wo.app = wl->name();
    wo.seed = wp.seed;
    wo.scale = wp.scale;
    trace::TraceWriter writer(out, wo);
    trace::TeeTraceSource tee(*wl, writer);
    cpu::TraceRecord rec;
    while (tee.next(rec)) {
    }
    writer.finish();
    std::printf("recorded %llu records of %s (scale %g, seed %#llx) "
                "to %s\n",
                (unsigned long long)writer.recordsWritten(),
                wo.app.c_str(), wo.scale,
                (unsigned long long)wo.seed, out.c_str());
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        throw trace::TraceError("info needs exactly one <file>");
    trace::TraceReader reader(args[0]);
    const trace::TraceHeader &h = reader.header();
    const trace::TraceSummary &s = reader.summary();
    std::printf("file:       %s\n", args[0].c_str());
    std::printf("version:    %u\n", h.version);
    std::printf("app:        %s\n", h.app.c_str());
    std::printf("scale:      %g\n", h.scale);
    std::printf("seed:       %#llx\n", (unsigned long long)h.seed);
    std::printf("records:    %llu\n", (unsigned long long)s.records);
    std::printf("blocks:     %u\n", s.blocks);
    std::printf("footprint:  %llu bytes\n",
                (unsigned long long)s.footprintBytes);
    return 0;
}

int
cmdDump(const std::vector<std::string> &args)
{
    if (args.empty())
        throw trace::TraceError("dump needs a <file>");
    std::uint64_t limit = 32;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (const char *v = flagValue(args[i].c_str(), "--limit="))
            limit = std::strtoull(v, nullptr, 0);
        else
            badFlag(args[i].c_str());
    }
    trace::TraceReader reader(args[0]);
    cpu::TraceRecord rec;
    std::uint64_t i = 0;
    while (reader.next(rec)) {
        if (limit && i >= limit) {
            std::printf("... (%llu of %llu records shown)\n",
                        (unsigned long long)limit,
                        (unsigned long long)
                            reader.summary().records);
            return 0;
        }
        if (rec.hasRef()) {
            std::printf("%8llu  ops=%-6u %s 0x%llx%s\n",
                        (unsigned long long)i, rec.computeOps,
                        rec.isWrite ? "store" : "load ",
                        (unsigned long long)rec.addr,
                        rec.dependsOnPrev ? "  [dep]" : "");
        } else {
            std::printf("%8llu  ops=%-6u (compute only)\n",
                        (unsigned long long)i, rec.computeOps);
        }
        ++i;
    }
    return 0;
}

int
cmdConvert(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        throw trace::TraceError(
            "convert needs <in.txt> <out.trace> arguments");
    trace::ImportOptions io;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (const char *v = flagValue(args[i].c_str(), "--app="))
            io.app = v;
        else if (const char *o = flagValue(args[i].c_str(), "--ops="))
            io.computeOps =
                static_cast<std::uint32_t>(std::strtoul(o, nullptr, 0));
        else
            badFlag(args[i].c_str());
    }
    trace::TraceWriter::Options wo;
    wo.app = io.app;
    trace::TraceWriter writer(args[1], wo);
    const std::uint64_t n = trace::importText(args[0], writer, io);
    writer.finish();
    std::printf("converted %llu accesses from %s to %s (app '%s')\n",
                (unsigned long long)n, args[0].c_str(),
                args[1].c_str(), io.app.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string cmd = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "record")
            return cmdRecord(args);
        if (cmd == "info")
            return cmdInfo(args);
        if (cmd == "dump")
            return cmdDump(args);
        if (cmd == "convert")
            return cmdConvert(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ulmt-trace: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "ulmt-trace: unknown subcommand '%s'\n",
                 cmd.c_str());
    return usage(argv[0]);
}
