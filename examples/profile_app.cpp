/**
 * @file
 * Using the ULMT for application profiling (Section 3.3.3 / 7).
 *
 * The paper suggests the memory thread "can monitor the misses of an
 * application and infer higher-level information such as cache
 * performance, application access patterns, or page conflicts".  This
 * example attaches the observe-only profiling ULMT to an application
 * and prints what it inferred: hottest pages, hottest L2 sets
 * (conflict candidates), footprint and sequentiality -- with zero
 * cost to the main processor.
 *
 * Usage: profile_app [app] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/profiler.hh"
#include "core/ulmt_engine.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Sparse";
    driver::ExperimentOptions opt;
    opt.scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto workload = workloads::makeWorkload(app, wp);

    driver::SystemConfig cfg = driver::noPrefConfig(opt);
    cfg.label = "Profile";
    driver::System sys(cfg, *workload);

    auto profiler = std::make_unique<core::ProfilingUlmt>(
        4096, cfg.timing.l2.numSets(), cfg.timing.l2.lineBytes);
    core::ProfilingUlmt *prof = profiler.get();
    core::UlmtEngine engine(sys.eventQueue(), sys.config().timing,
                            sys.memorySystem(), std::move(profiler));
    sys.memorySystem().setObserver(&engine, /*verbose=*/false);

    const driver::RunResult r = sys.run();
    const core::MissProfile p = prof->report(8);

    std::printf("== ULMT profile of %s (scale %.2f) ==\n", app.c_str(),
                opt.scale);
    std::printf("observed misses:      %llu\n",
                static_cast<unsigned long long>(p.misses));
    std::printf("distinct miss lines:  %llu  (~%.1f KB footprint)\n",
                static_cast<unsigned long long>(p.distinctLines),
                static_cast<double>(p.distinctLines) * 64 / 1024.0);
    std::printf("sequential fraction:  %s\n",
                driver::fmtPercent(p.sequentialFraction).c_str());
    std::printf("ULMT occupancy:       %.0f cycles/miss (IPC %.2f)\n",
                engine.stats().occupancyTime.mean(),
                engine.stats().ipc());

    driver::TextTable pages({"Page", "Misses"});
    for (const auto &[page, count] : p.hottestPages) {
        pages.addRow({sim::strformat("0x%llx",
                                     (unsigned long long)(page * 4096)),
                      std::to_string(count)});
    }
    pages.print("Hottest pages");

    driver::TextTable sets({"L2 set", "Misses", "Pressure"});
    const double even =
        static_cast<double>(p.misses) / cfg.timing.l2.numSets();
    for (const auto &[set, count] : p.hottestSets) {
        sets.addRow({std::to_string(set), std::to_string(count),
                     driver::fmt(static_cast<double>(count) /
                                 (even > 0 ? even : 1.0), 1) + "x"});
    }
    sets.print("Hottest L2 sets (conflict candidates)");

    std::printf("\nRun cost to the application: none beyond NoPref "
                "(%llu cycles).\n",
                static_cast<unsigned long long>(r.cycles));
    return 0;
}
