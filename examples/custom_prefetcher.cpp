/**
 * @file
 * Writing your own ULMT algorithm.
 *
 * The paper's headline flexibility claim is that the prefetching
 * algorithm is just user software: "the prefetching algorithm executed
 * by the ULMT can be customized by the programmer on an application
 * basis" (Section 3.3.3).  This example implements a new algorithm --
 * a delta (stride-pair) predictor that correlates each miss with the
 * address deltas that followed it -- plugs it into the engine
 * unchanged, and races it against the paper's Replicated algorithm on
 * two applications.
 */

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/correlation_prefetcher.hh"
#include "core/ulmt_engine.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

/**
 * A user-written ULMT algorithm: per miss line, remember the last two
 * address deltas to the following misses and prefetch by replaying
 * them.  Deltas generalize across structures that shift in memory, at
 * the cost of confusing unrelated contexts -- a different trade-off
 * than the paper's absolute-successor tables.
 */
class DeltaPrefetcher : public core::CorrelationPrefetcher
{
  public:
    std::string name() const override { return "UserDelta"; }
    std::uint32_t levels() const override { return 2; }

    void
    prefetchStep(sim::Addr miss_line, std::vector<sim::Addr> &out,
                 core::CostTracker &cost) override
    {
        cost.instr(core::cost::hashRow);
        auto it = deltas_.find(miss_line);
        // The delta table is software state in memory, like any table.
        cost.memRead(tableBase_ + (miss_line / 64 % 65536) * 16, 16);
        if (it == deltas_.end())
            return;
        sim::Addr at = miss_line;
        for (std::int64_t d : it->second) {
            if (d == 0)
                break;
            at = static_cast<sim::Addr>(
                static_cast<std::int64_t>(at) + d);
            cost.instr(core::cost::emitPrefetch);
            out.push_back(at);
        }
    }

    void
    learnStep(sim::Addr miss_line, core::CostTracker &cost) override
    {
        cost.instr(core::cost::succInsert);
        if (haveLast_) {
            const std::int64_t d =
                static_cast<std::int64_t>(miss_line) -
                static_cast<std::int64_t>(last_);
            auto &ds = deltas_[last_];
            ds[1] = ds[0];
            ds[0] = d;
            cost.memWrite(tableBase_ + (last_ / 64 % 65536) * 16, 16);
        }
        last_ = miss_line;
        haveLast_ = true;
    }

    void
    predict(sim::Addr miss_line,
            core::LevelPredictions &out) const override
    {
        out.assign(2, {});
        auto it = deltas_.find(miss_line);
        if (it == deltas_.end())
            return;
        sim::Addr at = miss_line;
        for (std::size_t lvl = 0; lvl < 2; ++lvl) {
            if (it->second[lvl] == 0)
                break;
            at = static_cast<sim::Addr>(
                static_cast<std::int64_t>(at) + it->second[lvl]);
            out[lvl].push_back(at);
        }
    }

    std::size_t tableBytes() const override
    {
        return deltas_.size() * 16;
    }

  private:
    static constexpr sim::Addr tableBase_ = 0x50'0000'0000ULL;
    std::unordered_map<sim::Addr, std::array<std::int64_t, 2>> deltas_;
    sim::Addr last_ = 0;
    bool haveLast_ = false;
};

/** Run one app with a caller-supplied algorithm instance. */
driver::RunResult
runWithAlgorithm(const std::string &app,
                 std::unique_ptr<core::CorrelationPrefetcher> algo,
                 const driver::ExperimentOptions &opt,
                 const std::string &label)
{
    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto workload = workloads::makeWorkload(app, wp);

    driver::SystemConfig cfg = driver::noPrefConfig(opt);
    cfg.label = label;
    driver::System sys(cfg, *workload);

    // Attach the custom ULMT by hand: this is all the "OS" does.
    core::UlmtEngine engine(sys.eventQueue(), sys.config().timing,
                            sys.memorySystem(), std::move(algo));
    sys.memorySystem().setObserver(&engine, /*verbose=*/false);
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 0.25;

    driver::TextTable table({"Appl", "Algorithm", "Speedup",
                             "ULMT hits", "Delayed hits"});
    for (const char *app_name : {"Mcf", "Gap"}) {
        const std::string app(app_name);
        const driver::RunResult base =
            driver::runOne(app, driver::noPrefConfig(opt), opt);

        const driver::RunResult repl = driver::runOne(
            app, driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app),
            opt);
        table.addRow({app, "Repl (paper)",
                      driver::fmt(repl.speedup(base)),
                      std::to_string(repl.hier.ulmtHits),
                      std::to_string(repl.hier.ulmtDelayedHits)});

        const driver::RunResult mine = runWithAlgorithm(
            app, std::make_unique<DeltaPrefetcher>(), opt,
            "UserDelta");
        table.addRow({app, "UserDelta (yours)",
                      driver::fmt(mine.speedup(base)),
                      std::to_string(mine.hier.ulmtHits),
                      std::to_string(mine.hier.ulmtDelayedHits)});
    }
    table.print("Custom ULMT algorithm vs the paper's Replicated");
    std::puts("\nThe ULMT is just user software: subclass "
              "core::CorrelationPrefetcher,\nhand it to "
              "core::UlmtEngine, and the memory processor runs it.");
    return 0;
}
