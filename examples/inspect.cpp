/**
 * @file
 * Inspect: run one application under one configuration and dump every
 * statistic the simulator collects -- the fastest way to understand
 * what the ULMT is doing on a workload.
 *
 * Usage:  inspect [app] [config] [scale]
 *         inspect Mcf Conven4+Repl 0.25
 *
 * Configs: NoPref, Conven4, Base, Chain, Repl, Seq1, Seq4,
 *          Conven4+<algo>, Custom, plus "MC" suffix for the
 *          North Bridge placement (e.g. Conven4+ReplMC).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

driver::SystemConfig
parseConfig(std::string name, const std::string &app,
            driver::ExperimentOptions &opt)
{
    if (name.size() > 2 && name.substr(name.size() - 2) == "MC") {
        opt.placement = mem::MemProcPlacement::NorthBridge;
        name = name.substr(0, name.size() - 2);
    }
    if (name == "NoPref")
        return driver::noPrefConfig(opt);
    if (name == "Conven4")
        return driver::conven4Config(opt);
    if (name == "Custom") {
        bool customized = false;
        return driver::customConfig(opt, app, customized);
    }
    const std::string c4 = "Conven4+";
    if (name.rfind(c4, 0) == 0) {
        return driver::conven4PlusUlmtConfig(
            opt, core::parseUlmtAlgo(name.substr(c4.size())), app);
    }
    return driver::ulmtConfig(opt, core::parseUlmtAlgo(name), app);
}

void
line(const char *key, double value, const char *unit = "")
{
    std::printf("  %-28s %14.2f %s\n", key, value, unit);
}

void
line(const char *key, std::uint64_t value, const char *unit = "")
{
    std::printf("  %-28s %14llu %s\n", key,
                static_cast<unsigned long long>(value), unit);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Mcf";
    const std::string config = argc > 2 ? argv[2] : "Repl";
    driver::ExperimentOptions opt;
    opt.scale = argc > 3 ? std::atof(argv[3]) : 0.25;

    driver::SystemConfig cfg = parseConfig(config, app, opt);
    const driver::RunResult r = driver::runOne(app, cfg, opt);

    std::printf("== %s / %s (scale %.2f) ==\n", app.c_str(),
                r.label.c_str(), opt.scale);
    std::printf("[processor]\n");
    line("cycles", r.cycles);
    line("records", r.records);
    line("busy", r.busyCycles);
    line("stall up-to-L2", r.uptoL2Stall);
    line("stall beyond-L2", r.beyondL2Stall);
    line("busy fraction",
         100.0 * static_cast<double>(r.busyCycles) /
             static_cast<double>(r.cycles), "%");

    std::printf("[hierarchy]\n");
    line("loads", r.hier.loads);
    line("L1 misses", r.hier.l1Misses);
    line("L2 demand misses", r.hier.l2Misses);
    line("L2 MSHR merges", r.hier.l2MshrMerges);
    line("ULMT full hits", r.hier.ulmtHits);
    line("ULMT delayed hits", r.hier.ulmtDelayedHits);
    line("non-pf misses", r.hier.nonPrefMisses);
    line("pushed installed", r.hier.pushInstalled);
    line("pushed redundant", r.hier.pushRedundant());
    line("pushed replaced unused", r.hier.ulmtReplaced);
    line("cpu-pf issued", r.hier.cpuPfIssued);
    line("cpu-pf to memory", r.hier.cpuPfToMemory);
    line("cpu-pf useful", r.hier.cpuPfUseful);
    line("cpu-pf timely", r.hier.cpuPfTimely);

    std::printf("[memory system]\n");
    line("demand fetches", r.memsys.demandFetches);
    line("ulmt pf issued", r.memsys.ulmtPrefetchesIssued);
    line("ulmt pf drop filter", r.memsys.ulmtPrefetchesDroppedFilter);
    line("ulmt pf drop q3 full",
         r.memsys.ulmtPrefetchesDroppedQueueFull);
    line("ulmt pf drop demand match",
         r.memsys.ulmtPrefetchesDroppedDemandMatch);
    line("table reads (DRAM)", r.memsys.tableReads);
    line("table writes (DRAM)", r.memsys.tableWrites);
    line("DRAM row-hit rate",
         100.0 * static_cast<double>(r.dram.rowHits) /
             static_cast<double>(r.dram.accesses ? r.dram.accesses : 1),
         "%");
    line("bus utilization", 100.0 * r.busUtilization(), "%");
    line("bus util (prefetch)", 100.0 * r.busUtilizationPrefetch(),
         "%");

    std::printf("[ULMT]\n");
    line("misses observed", r.ulmt.missesObserved);
    line("misses processed", r.ulmt.missesProcessed);
    line("dropped q2 full", r.ulmt.missesDroppedQueueFull);
    line("prefetches generated", r.ulmt.prefetchesGenerated);
    line("response time (mean)", r.ulmt.responseTime.mean(), "cycles");
    line("response busy (mean)", r.ulmt.responseBusy.mean(), "cycles");
    line("response mem (mean)", r.ulmt.responseMem.mean(), "cycles");
    line("response max", r.ulmt.responseTime.max(), "cycles");
    line("occupancy time (mean)", r.ulmt.occupancyTime.mean(),
         "cycles");
    line("IPC", r.ulmt.ipc());
    if (r.ulmt.missesProcessed) {
        line("table DRAM reads/miss",
             static_cast<double>(r.memsys.tableReads) /
                 static_cast<double>(r.ulmt.missesProcessed));
        line("table DRAM writes/miss",
             static_cast<double>(r.memsys.tableWrites) /
                 static_cast<double>(r.ulmt.missesProcessed));
    }

    std::printf("[miss gaps]  [0,80) %.1f%%  [80,200) %.1f%%  "
                "[200,280) %.1f%%  [280,inf) %.1f%%\n",
                100 * r.missGapFractions[0], 100 * r.missGapFractions[1],
                100 * r.missGapFractions[2],
                100 * r.missGapFractions[3]);
    return 0;
}
