/**
 * @file
 * The operating-system page-remap interface (Section 3.4).
 *
 * ULMTs operate on physical addresses, so a page migration leaves
 * stale entries in the correlation table.  The paper offers two
 * options: do nothing and let the table re-learn, or have the OS
 * notify the ULMT, which relocates the affected rows (updating tags
 * and in-page successors).  This example measures both on a pointer
 * chaser whose hottest pages are remapped mid-run, plus the cost of
 * the relocation itself.
 *
 * Usage: page_remap [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/base_chain.hh"
#include "core/cost.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

/** Counts the work a remap costs the ULMT. */
class CountingCost : public core::CostTracker
{
  public:
    void instr(std::uint32_t n) override { instrs += n; }
    void memRead(sim::Addr, std::uint32_t) override { ++reads; }
    void memWrite(sim::Addr, std::uint32_t) override { ++writes; }
    std::uint64_t instrs = 0, reads = 0, writes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    driver::ExperimentOptions opt;
    opt.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
    constexpr std::uint32_t page = 4096;

    // Part 1: the relocation cost on a warmed table.
    core::BasePrefetcher base(core::baseDefaults(64 * 1024));
    core::NullCostTracker nc;
    std::vector<sim::Addr> discard;
    for (int rep = 0; rep < 4; ++rep) {
        for (int i = 0; i < 64; ++i) {
            const sim::Addr m = 16 * page + (i % 64) * 64;
            discard.clear();
            base.prefetchStep(m, discard, nc);
            base.learnStep(m, nc);
        }
    }
    CountingCost cost;
    base.onPageRemap(16, 99, page, cost);
    std::printf("== Relocating one page's table entries ==\n");
    std::printf("instructions: %llu, row reads: %llu, row writes: "
                "%llu\n",
                (unsigned long long)cost.instrs,
                (unsigned long long)cost.reads,
                (unsigned long long)cost.writes);
    std::printf("(the paper estimates a few microseconds per page; "
                "at 800 MHz this is ~%.1f us)\n\n",
                static_cast<double>(cost.instrs + 30 * (cost.reads +
                                                        cost.writes)) /
                    800.0);

    // Part 2: end-to-end -- remap a hot region mid-run with and
    // without notifying the ULMT.
    const driver::RunResult nopref =
        driver::runOne("Mcf", driver::noPrefConfig(opt), opt);

    auto run = [&](bool notify) {
        workloads::WorkloadParams wp;
        wp.seed = opt.seed;
        wp.scale = opt.scale;
        auto wl = workloads::makeWorkload("Mcf", wp);
        driver::SystemConfig cfg =
            driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "Mcf");
        driver::System sys(cfg, *wl);
        if (notify) {
            // The OS migrates 16 pages of the arc array and tells the
            // ULMT (before the run here; entries relocate eagerly).
            for (std::uint32_t p = 0; p < 16; ++p)
                sys.pageRemap(0x10000000 / page + p,
                              0x30000000 / page + p, page);
        }
        return sys.run();
    };

    const driver::RunResult silent = run(false);
    const driver::RunResult notified = run(true);

    driver::TextTable table({"Policy", "Cycles", "Speedup vs NoPref"});
    table.addRow({"no notification (self-heal)",
                  std::to_string(silent.cycles),
                  driver::fmt(silent.speedup(nopref))});
    table.addRow({"OS notifies ULMT",
                  std::to_string(notified.cycles),
                  driver::fmt(notified.speedup(nopref))});
    table.print("Mcf with mid-run page remapping");
    std::puts("\nBoth policies work; notification avoids the "
              "relearning transient\nat a few microseconds of ULMT "
              "time per page (Section 3.4).");
    return 0;
}
