/**
 * @file
 * Quickstart: simulate one application under four prefetching
 * configurations and report the speedups.
 *
 * Usage:  quickstart [app] [scale]
 *         quickstart Mcf 0.25
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/experiment.hh"
#include "driver/report.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Mcf";
    driver::ExperimentOptions opt;
    opt.scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    std::printf("Simulating %s (scale %.2f) ...\n", app.c_str(),
                opt.scale);

    const driver::RunResult base =
        driver::runOne(app, driver::noPrefConfig(opt), opt);

    driver::TextTable table({"Config", "Cycles", "L2 misses",
                             "Speedup"});
    table.addRow({base.label, std::to_string(base.cycles),
                  std::to_string(base.hier.l2Misses), "1.00"});

    for (const driver::SystemConfig &cfg :
         {driver::conven4Config(opt),
          driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app),
          driver::conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl,
                                        app)}) {
        const driver::RunResult r = driver::runOne(app, cfg, opt);
        table.addRow({r.label, std::to_string(r.cycles),
                      std::to_string(r.hier.l2Misses),
                      driver::fmt(r.speedup(base))});
    }
    table.print(app + " under ULMT correlation prefetching");
    return 0;
}
