file(REMOVE_RECURSE
  "CMakeFiles/micro_tables.dir/micro_tables.cc.o"
  "CMakeFiles/micro_tables.dir/micro_tables.cc.o.d"
  "micro_tables"
  "micro_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
