# Empty compiler generated dependencies file for micro_tables.
# This may be replaced when dependencies are built.
