# Empty compiler generated dependencies file for table1_characteristics.
# This may be replaced when dependencies are built.
