file(REMOVE_RECURSE
  "CMakeFiles/fig6_miss_gaps.dir/fig6_miss_gaps.cc.o"
  "CMakeFiles/fig6_miss_gaps.dir/fig6_miss_gaps.cc.o.d"
  "fig6_miss_gaps"
  "fig6_miss_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_miss_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
