# Empty compiler generated dependencies file for fig6_miss_gaps.
# This may be replaced when dependencies are built.
