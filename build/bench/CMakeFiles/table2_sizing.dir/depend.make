# Empty dependencies file for table2_sizing.
# This may be replaced when dependencies are built.
