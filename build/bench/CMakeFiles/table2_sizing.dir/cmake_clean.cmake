file(REMOVE_RECURSE
  "CMakeFiles/table2_sizing.dir/table2_sizing.cc.o"
  "CMakeFiles/table2_sizing.dir/table2_sizing.cc.o.d"
  "table2_sizing"
  "table2_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
