# Empty compiler generated dependencies file for fig11_bus_util.
# This may be replaced when dependencies are built.
