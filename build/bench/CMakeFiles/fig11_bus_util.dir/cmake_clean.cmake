file(REMOVE_RECURSE
  "CMakeFiles/fig11_bus_util.dir/fig11_bus_util.cc.o"
  "CMakeFiles/fig11_bus_util.dir/fig11_bus_util.cc.o.d"
  "fig11_bus_util"
  "fig11_bus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
