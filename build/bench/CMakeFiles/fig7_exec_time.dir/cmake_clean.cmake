file(REMOVE_RECURSE
  "CMakeFiles/fig7_exec_time.dir/fig7_exec_time.cc.o"
  "CMakeFiles/fig7_exec_time.dir/fig7_exec_time.cc.o.d"
  "fig7_exec_time"
  "fig7_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
