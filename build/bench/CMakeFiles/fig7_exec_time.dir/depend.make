# Empty dependencies file for fig7_exec_time.
# This may be replaced when dependencies are built.
