# Empty dependencies file for ablation_conflict.
# This may be replaced when dependencies are built.
