file(REMOVE_RECURSE
  "CMakeFiles/ablation_conflict.dir/ablation_conflict.cc.o"
  "CMakeFiles/ablation_conflict.dir/ablation_conflict.cc.o.d"
  "ablation_conflict"
  "ablation_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
