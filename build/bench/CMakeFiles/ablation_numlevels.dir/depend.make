# Empty dependencies file for ablation_numlevels.
# This may be replaced when dependencies are built.
