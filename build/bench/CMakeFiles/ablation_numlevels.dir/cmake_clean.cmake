file(REMOVE_RECURSE
  "CMakeFiles/ablation_numlevels.dir/ablation_numlevels.cc.o"
  "CMakeFiles/ablation_numlevels.dir/ablation_numlevels.cc.o.d"
  "ablation_numlevels"
  "ablation_numlevels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_numlevels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
