file(REMOVE_RECURSE
  "CMakeFiles/ablation_filter.dir/ablation_filter.cc.o"
  "CMakeFiles/ablation_filter.dir/ablation_filter.cc.o.d"
  "ablation_filter"
  "ablation_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
