# Empty dependencies file for ablation_filter.
# This may be replaced when dependencies are built.
