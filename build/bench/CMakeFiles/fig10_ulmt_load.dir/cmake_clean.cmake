file(REMOVE_RECURSE
  "CMakeFiles/fig10_ulmt_load.dir/fig10_ulmt_load.cc.o"
  "CMakeFiles/fig10_ulmt_load.dir/fig10_ulmt_load.cc.o.d"
  "fig10_ulmt_load"
  "fig10_ulmt_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ulmt_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
