# Empty compiler generated dependencies file for fig10_ulmt_load.
# This may be replaced when dependencies are built.
