
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_queues.cc" "bench/CMakeFiles/ablation_queues.dir/ablation_queues.cc.o" "gcc" "bench/CMakeFiles/ablation_queues.dir/ablation_queues.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ulmt_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ulmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ulmt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulmt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
