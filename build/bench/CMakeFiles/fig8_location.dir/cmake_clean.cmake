file(REMOVE_RECURSE
  "CMakeFiles/fig8_location.dir/fig8_location.cc.o"
  "CMakeFiles/fig8_location.dir/fig8_location.cc.o.d"
  "fig8_location"
  "fig8_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
