# Empty dependencies file for fig8_location.
# This may be replaced when dependencies are built.
