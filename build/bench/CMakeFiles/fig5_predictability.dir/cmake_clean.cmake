file(REMOVE_RECURSE
  "CMakeFiles/fig5_predictability.dir/fig5_predictability.cc.o"
  "CMakeFiles/fig5_predictability.dir/fig5_predictability.cc.o.d"
  "fig5_predictability"
  "fig5_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
