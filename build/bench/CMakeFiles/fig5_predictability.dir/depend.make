# Empty dependencies file for fig5_predictability.
# This may be replaced when dependencies are built.
