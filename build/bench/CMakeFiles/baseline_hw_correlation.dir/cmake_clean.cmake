file(REMOVE_RECURSE
  "CMakeFiles/baseline_hw_correlation.dir/baseline_hw_correlation.cc.o"
  "CMakeFiles/baseline_hw_correlation.dir/baseline_hw_correlation.cc.o.d"
  "baseline_hw_correlation"
  "baseline_hw_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_hw_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
