# Empty dependencies file for baseline_hw_correlation.
# This may be replaced when dependencies are built.
