file(REMOVE_RECURSE
  "CMakeFiles/fig9_effectiveness.dir/fig9_effectiveness.cc.o"
  "CMakeFiles/fig9_effectiveness.dir/fig9_effectiveness.cc.o.d"
  "fig9_effectiveness"
  "fig9_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
