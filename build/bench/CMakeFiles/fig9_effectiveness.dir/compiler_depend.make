# Empty compiler generated dependencies file for fig9_effectiveness.
# This may be replaced when dependencies are built.
