file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiprog.dir/ablation_multiprog.cc.o"
  "CMakeFiles/ablation_multiprog.dir/ablation_multiprog.cc.o.d"
  "ablation_multiprog"
  "ablation_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
