# Empty dependencies file for ablation_multiprog.
# This may be replaced when dependencies are built.
