# Empty dependencies file for profile_app.
# This may be replaced when dependencies are built.
