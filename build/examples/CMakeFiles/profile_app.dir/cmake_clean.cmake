file(REMOVE_RECURSE
  "CMakeFiles/profile_app.dir/profile_app.cpp.o"
  "CMakeFiles/profile_app.dir/profile_app.cpp.o.d"
  "profile_app"
  "profile_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
