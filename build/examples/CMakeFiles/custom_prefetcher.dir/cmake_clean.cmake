file(REMOVE_RECURSE
  "CMakeFiles/custom_prefetcher.dir/custom_prefetcher.cpp.o"
  "CMakeFiles/custom_prefetcher.dir/custom_prefetcher.cpp.o.d"
  "custom_prefetcher"
  "custom_prefetcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
