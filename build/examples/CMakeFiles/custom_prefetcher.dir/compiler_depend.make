# Empty compiler generated dependencies file for custom_prefetcher.
# This may be replaced when dependencies are built.
