# Empty compiler generated dependencies file for page_remap.
# This may be replaced when dependencies are built.
