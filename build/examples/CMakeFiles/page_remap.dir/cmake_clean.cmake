file(REMOVE_RECURSE
  "CMakeFiles/page_remap.dir/page_remap.cpp.o"
  "CMakeFiles/page_remap.dir/page_remap.cpp.o.d"
  "page_remap"
  "page_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
