# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram_bus[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_stream_prefetcher[1]_include.cmake")
include("/root/repo/build/tests/test_processor[1]_include.cmake")
include("/root/repo/build/tests/test_tables[1]_include.cmake")
include("/root/repo/build/tests/test_seq_and_composite[1]_include.cmake")
include("/root/repo/build/tests/test_ulmt_engine[1]_include.cmake")
include("/root/repo/build/tests/test_predictability[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_interleaved[1]_include.cmake")
include("/root/repo/build/tests/test_mshr_filter[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
