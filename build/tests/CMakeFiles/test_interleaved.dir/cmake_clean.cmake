file(REMOVE_RECURSE
  "CMakeFiles/test_interleaved.dir/test_interleaved.cc.o"
  "CMakeFiles/test_interleaved.dir/test_interleaved.cc.o.d"
  "test_interleaved"
  "test_interleaved.pdb"
  "test_interleaved[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interleaved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
