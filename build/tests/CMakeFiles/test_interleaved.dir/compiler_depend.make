# Empty compiler generated dependencies file for test_interleaved.
# This may be replaced when dependencies are built.
