file(REMOVE_RECURSE
  "CMakeFiles/test_ulmt_engine.dir/test_ulmt_engine.cc.o"
  "CMakeFiles/test_ulmt_engine.dir/test_ulmt_engine.cc.o.d"
  "test_ulmt_engine"
  "test_ulmt_engine.pdb"
  "test_ulmt_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ulmt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
