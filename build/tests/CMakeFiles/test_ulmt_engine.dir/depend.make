# Empty dependencies file for test_ulmt_engine.
# This may be replaced when dependencies are built.
