file(REMOVE_RECURSE
  "CMakeFiles/test_seq_and_composite.dir/test_seq_and_composite.cc.o"
  "CMakeFiles/test_seq_and_composite.dir/test_seq_and_composite.cc.o.d"
  "test_seq_and_composite"
  "test_seq_and_composite.pdb"
  "test_seq_and_composite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_and_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
