# Empty dependencies file for test_seq_and_composite.
# This may be replaced when dependencies are built.
