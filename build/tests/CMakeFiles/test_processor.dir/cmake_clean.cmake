file(REMOVE_RECURSE
  "CMakeFiles/test_processor.dir/test_processor.cc.o"
  "CMakeFiles/test_processor.dir/test_processor.cc.o.d"
  "test_processor"
  "test_processor.pdb"
  "test_processor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
