# Empty dependencies file for test_processor.
# This may be replaced when dependencies are built.
