# Empty compiler generated dependencies file for test_mshr_filter.
# This may be replaced when dependencies are built.
