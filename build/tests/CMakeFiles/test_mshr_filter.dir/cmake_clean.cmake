file(REMOVE_RECURSE
  "CMakeFiles/test_mshr_filter.dir/test_mshr_filter.cc.o"
  "CMakeFiles/test_mshr_filter.dir/test_mshr_filter.cc.o.d"
  "test_mshr_filter"
  "test_mshr_filter.pdb"
  "test_mshr_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mshr_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
