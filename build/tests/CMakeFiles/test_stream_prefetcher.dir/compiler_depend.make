# Empty compiler generated dependencies file for test_stream_prefetcher.
# This may be replaced when dependencies are built.
