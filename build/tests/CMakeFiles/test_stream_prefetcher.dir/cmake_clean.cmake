file(REMOVE_RECURSE
  "CMakeFiles/test_stream_prefetcher.dir/test_stream_prefetcher.cc.o"
  "CMakeFiles/test_stream_prefetcher.dir/test_stream_prefetcher.cc.o.d"
  "test_stream_prefetcher"
  "test_stream_prefetcher.pdb"
  "test_stream_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
