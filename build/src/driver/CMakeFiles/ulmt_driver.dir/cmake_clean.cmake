file(REMOVE_RECURSE
  "CMakeFiles/ulmt_driver.dir/experiment.cc.o"
  "CMakeFiles/ulmt_driver.dir/experiment.cc.o.d"
  "CMakeFiles/ulmt_driver.dir/report.cc.o"
  "CMakeFiles/ulmt_driver.dir/report.cc.o.d"
  "CMakeFiles/ulmt_driver.dir/system.cc.o"
  "CMakeFiles/ulmt_driver.dir/system.cc.o.d"
  "libulmt_driver.a"
  "libulmt_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulmt_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
