file(REMOVE_RECURSE
  "libulmt_driver.a"
)
