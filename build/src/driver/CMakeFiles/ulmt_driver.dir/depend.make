# Empty dependencies file for ulmt_driver.
# This may be replaced when dependencies are built.
