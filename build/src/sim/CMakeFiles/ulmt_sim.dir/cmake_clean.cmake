file(REMOVE_RECURSE
  "CMakeFiles/ulmt_sim.dir/logging.cc.o"
  "CMakeFiles/ulmt_sim.dir/logging.cc.o.d"
  "libulmt_sim.a"
  "libulmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
