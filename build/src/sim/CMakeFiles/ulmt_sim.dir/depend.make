# Empty dependencies file for ulmt_sim.
# This may be replaced when dependencies are built.
