file(REMOVE_RECURSE
  "libulmt_sim.a"
)
