file(REMOVE_RECURSE
  "CMakeFiles/ulmt_mem.dir/cache.cc.o"
  "CMakeFiles/ulmt_mem.dir/cache.cc.o.d"
  "CMakeFiles/ulmt_mem.dir/memory_system.cc.o"
  "CMakeFiles/ulmt_mem.dir/memory_system.cc.o.d"
  "libulmt_mem.a"
  "libulmt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulmt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
