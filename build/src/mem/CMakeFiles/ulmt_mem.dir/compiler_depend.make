# Empty compiler generated dependencies file for ulmt_mem.
# This may be replaced when dependencies are built.
