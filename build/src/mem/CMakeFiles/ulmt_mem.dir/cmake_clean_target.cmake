file(REMOVE_RECURSE
  "libulmt_mem.a"
)
