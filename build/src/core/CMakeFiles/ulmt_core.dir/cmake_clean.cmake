file(REMOVE_RECURSE
  "CMakeFiles/ulmt_core.dir/adaptive.cc.o"
  "CMakeFiles/ulmt_core.dir/adaptive.cc.o.d"
  "CMakeFiles/ulmt_core.dir/base_chain.cc.o"
  "CMakeFiles/ulmt_core.dir/base_chain.cc.o.d"
  "CMakeFiles/ulmt_core.dir/factory.cc.o"
  "CMakeFiles/ulmt_core.dir/factory.cc.o.d"
  "CMakeFiles/ulmt_core.dir/pair_table.cc.o"
  "CMakeFiles/ulmt_core.dir/pair_table.cc.o.d"
  "CMakeFiles/ulmt_core.dir/predictability.cc.o"
  "CMakeFiles/ulmt_core.dir/predictability.cc.o.d"
  "CMakeFiles/ulmt_core.dir/profiler.cc.o"
  "CMakeFiles/ulmt_core.dir/profiler.cc.o.d"
  "CMakeFiles/ulmt_core.dir/replicated.cc.o"
  "CMakeFiles/ulmt_core.dir/replicated.cc.o.d"
  "CMakeFiles/ulmt_core.dir/seq_prefetcher.cc.o"
  "CMakeFiles/ulmt_core.dir/seq_prefetcher.cc.o.d"
  "CMakeFiles/ulmt_core.dir/ulmt_engine.cc.o"
  "CMakeFiles/ulmt_core.dir/ulmt_engine.cc.o.d"
  "libulmt_core.a"
  "libulmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
