# Empty dependencies file for ulmt_core.
# This may be replaced when dependencies are built.
