file(REMOVE_RECURSE
  "libulmt_core.a"
)
