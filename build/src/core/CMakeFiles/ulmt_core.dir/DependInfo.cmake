
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/ulmt_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/base_chain.cc" "src/core/CMakeFiles/ulmt_core.dir/base_chain.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/base_chain.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/ulmt_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/factory.cc.o.d"
  "/root/repo/src/core/pair_table.cc" "src/core/CMakeFiles/ulmt_core.dir/pair_table.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/pair_table.cc.o.d"
  "/root/repo/src/core/predictability.cc" "src/core/CMakeFiles/ulmt_core.dir/predictability.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/predictability.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/ulmt_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/replicated.cc" "src/core/CMakeFiles/ulmt_core.dir/replicated.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/replicated.cc.o.d"
  "/root/repo/src/core/seq_prefetcher.cc" "src/core/CMakeFiles/ulmt_core.dir/seq_prefetcher.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/seq_prefetcher.cc.o.d"
  "/root/repo/src/core/ulmt_engine.cc" "src/core/CMakeFiles/ulmt_core.dir/ulmt_engine.cc.o" "gcc" "src/core/CMakeFiles/ulmt_core.dir/ulmt_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/ulmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulmt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
