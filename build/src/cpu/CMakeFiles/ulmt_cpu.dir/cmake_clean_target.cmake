file(REMOVE_RECURSE
  "libulmt_cpu.a"
)
