# Empty compiler generated dependencies file for ulmt_cpu.
# This may be replaced when dependencies are built.
