file(REMOVE_RECURSE
  "CMakeFiles/ulmt_cpu.dir/hierarchy.cc.o"
  "CMakeFiles/ulmt_cpu.dir/hierarchy.cc.o.d"
  "CMakeFiles/ulmt_cpu.dir/main_processor.cc.o"
  "CMakeFiles/ulmt_cpu.dir/main_processor.cc.o.d"
  "CMakeFiles/ulmt_cpu.dir/stream_prefetcher.cc.o"
  "CMakeFiles/ulmt_cpu.dir/stream_prefetcher.cc.o.d"
  "libulmt_cpu.a"
  "libulmt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulmt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
