
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/hierarchy.cc" "src/cpu/CMakeFiles/ulmt_cpu.dir/hierarchy.cc.o" "gcc" "src/cpu/CMakeFiles/ulmt_cpu.dir/hierarchy.cc.o.d"
  "/root/repo/src/cpu/main_processor.cc" "src/cpu/CMakeFiles/ulmt_cpu.dir/main_processor.cc.o" "gcc" "src/cpu/CMakeFiles/ulmt_cpu.dir/main_processor.cc.o.d"
  "/root/repo/src/cpu/stream_prefetcher.cc" "src/cpu/CMakeFiles/ulmt_cpu.dir/stream_prefetcher.cc.o" "gcc" "src/cpu/CMakeFiles/ulmt_cpu.dir/stream_prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/ulmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulmt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
