
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cg.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/cg.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/cg.cc.o.d"
  "/root/repo/src/workloads/equake.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/equake.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/equake.cc.o.d"
  "/root/repo/src/workloads/ft.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/ft.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/ft.cc.o.d"
  "/root/repo/src/workloads/gap.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/gap.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/gap.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/mcf.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/mcf.cc.o.d"
  "/root/repo/src/workloads/mst.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/mst.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/mst.cc.o.d"
  "/root/repo/src/workloads/parser.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/parser.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/parser.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/sparse.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/sparse.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/sparse.cc.o.d"
  "/root/repo/src/workloads/tree.cc" "src/workloads/CMakeFiles/ulmt_workloads.dir/tree.cc.o" "gcc" "src/workloads/CMakeFiles/ulmt_workloads.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/ulmt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulmt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
