# Empty dependencies file for ulmt_workloads.
# This may be replaced when dependencies are built.
