file(REMOVE_RECURSE
  "CMakeFiles/ulmt_workloads.dir/cg.cc.o"
  "CMakeFiles/ulmt_workloads.dir/cg.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/equake.cc.o"
  "CMakeFiles/ulmt_workloads.dir/equake.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/ft.cc.o"
  "CMakeFiles/ulmt_workloads.dir/ft.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/gap.cc.o"
  "CMakeFiles/ulmt_workloads.dir/gap.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/mcf.cc.o"
  "CMakeFiles/ulmt_workloads.dir/mcf.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/mst.cc.o"
  "CMakeFiles/ulmt_workloads.dir/mst.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/parser.cc.o"
  "CMakeFiles/ulmt_workloads.dir/parser.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/registry.cc.o"
  "CMakeFiles/ulmt_workloads.dir/registry.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/sparse.cc.o"
  "CMakeFiles/ulmt_workloads.dir/sparse.cc.o.d"
  "CMakeFiles/ulmt_workloads.dir/tree.cc.o"
  "CMakeFiles/ulmt_workloads.dir/tree.cc.o.d"
  "libulmt_workloads.a"
  "libulmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
