file(REMOVE_RECURSE
  "libulmt_workloads.a"
)
