/**
 * @file
 * Tests for the Conven4 processor-side stream prefetcher.
 */

#include <gtest/gtest.h>

#include "cpu/stream_prefetcher.hh"

namespace {

cpu::StreamPrefetcherParams
params(std::uint32_t seq = 4, std::uint32_t pref = 6)
{
    return cpu::StreamPrefetcherParams{seq, pref, 32, 16};
}

TEST(StreamPrefetcher, DetectsOnThirdMiss)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    pf.observeMiss(0x1000, out);
    EXPECT_TRUE(out.empty());
    pf.observeMiss(0x1020, out);
    EXPECT_TRUE(out.empty());
    pf.observeMiss(0x1040, out);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], 0x1060u);
    EXPECT_EQ(out[5], 0x1100u);
    EXPECT_EQ(pf.streamsDetected(), 1u);
}

TEST(StreamPrefetcher, DetectsDescendingStream)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    pf.observeMiss(0x2000, out);
    pf.observeMiss(0x1fe0, out);
    pf.observeMiss(0x1fc0, out);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], 0x1fa0u);
}

TEST(StreamPrefetcher, NoDetectionOnRandomMisses)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    for (sim::Addr a : {0x1000u, 0x8000u, 0x3000u, 0x9000u, 0x5000u})
        pf.observeMiss(a, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.streamsDetected(), 0u);
}

TEST(StreamPrefetcher, InterleavedStreamsBothDetected)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    for (int i = 0; i < 4; ++i) {
        pf.observeMiss(0x10000 + i * 32, out);
        pf.observeMiss(0x80000 + i * 32, out);
    }
    EXPECT_EQ(pf.streamsDetected(), 2u);
}

TEST(StreamPrefetcher, TouchTopsUpFixedLookahead)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    pf.observeMiss(0x1000, out);
    pf.observeMiss(0x1020, out);
    pf.observeMiss(0x1040, out);  // emits up to 0x1100
    out.clear();
    // Consuming the first prefetched line keeps NumPref of runway.
    pf.observePrefetchedTouch(0x1060, /*late=*/false, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1120u);
    // The lookahead is fixed: a late touch does not grow it.
    out.clear();
    pf.observePrefetchedTouch(0x1080, /*late=*/true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1140u);
}

TEST(StreamPrefetcher, RegisterMissRetriggers)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    pf.observeMiss(0x1000, out);
    pf.observeMiss(0x1020, out);
    pf.observeMiss(0x1040, out);
    out.clear();
    // A miss within the stream window: prefetch the next NumPref from
    // the miss (the paper's stream-register behaviour).
    pf.observeMiss(0x1120, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back(), 0x1120u + 6 * 32);
}

TEST(StreamPrefetcher, LruStreamReplacement)
{
    cpu::StreamPrefetcher pf(params(2, 6));  // only two registers
    std::vector<sim::Addr> out;
    auto detect = [&](sim::Addr base) {
        for (int i = 0; i < 3; ++i)
            pf.observeMiss(base + i * 32, out);
    };
    detect(0x10000);
    detect(0x80000);
    detect(0xF0000);  // evicts the 0x10000 stream
    EXPECT_EQ(pf.streamsDetected(), 3u);
    out.clear();
    // The evicted stream no longer tops up on touches.
    pf.observePrefetchedTouch(0x10000 + 3 * 32, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, ResetClearsState)
{
    cpu::StreamPrefetcher pf(params());
    std::vector<sim::Addr> out;
    pf.observeMiss(0x1000, out);
    pf.observeMiss(0x1020, out);
    pf.reset();
    pf.observeMiss(0x1040, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.streamsDetected(), 0u);
}

} // namespace
