/**
 * @file
 * Tests of the minimal JSON reader (sim/json.hh) that backs
 * tools/ulmt-report: value kinds, insertion order, exact int64
 * tracking for counter comparison, escapes, and error reporting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/json.hh"

namespace {

TEST(JsonParserTest, ScalarsAndKinds)
{
    EXPECT_TRUE(sim::parseJson("null").isNull());
    EXPECT_TRUE(sim::parseJson("true").boolean);
    EXPECT_FALSE(sim::parseJson("false").boolean);
    EXPECT_EQ(sim::parseJson("\"hi\"").str, "hi");
    EXPECT_DOUBLE_EQ(sim::parseJson("-2.5e2").number, -250.0);
    EXPECT_FALSE(sim::parseJson("-2.5e2").isInteger);
}

TEST(JsonParserTest, ExactInt64Tracking)
{
    // Counters near 2^63 survive exactly; a double round-trip would
    // lose the low bits.
    const sim::JsonValue v = sim::parseJson("9223372036854775806");
    ASSERT_TRUE(v.isInteger);
    EXPECT_EQ(v.integer, 9223372036854775806LL);
    const sim::JsonValue n = sim::parseJson("-42");
    ASSERT_TRUE(n.isInteger);
    EXPECT_EQ(n.integer, -42);
    // A fraction or exponent demotes to double-only.
    EXPECT_FALSE(sim::parseJson("42.0").isInteger);
    EXPECT_FALSE(sim::parseJson("4e2").isInteger);
}

TEST(JsonNumberRelDiffTest, IntegersAbove2to53CompareExactly)
{
    // 2^53 + 1 and 2^53 round to the same double, so a double-only
    // comparison reports them equal (rel 0) and forgives real counter
    // drift.  The regression: ulmt-report diff must flag this pair.
    const sim::JsonValue a = sim::parseJson("9007199254740993");
    const sim::JsonValue b = sim::parseJson("9007199254740992");
    ASSERT_TRUE(a.isInteger);
    ASSERT_TRUE(b.isInteger);
    ASSERT_EQ(a.number, b.number);  // the double collapse being fixed
    EXPECT_GT(sim::numberRelDiff(a, b), 0.0);

    // Larger drift near 2^63, including reversed argument order.
    const sim::JsonValue c = sim::parseJson("9223372036854775806");
    const sim::JsonValue d = sim::parseJson("9223372036854775000");
    const double rel = sim::numberRelDiff(c, d);
    EXPECT_GT(rel, 0.0);
    EXPECT_LT(rel, 1e-15);
    EXPECT_EQ(rel, sim::numberRelDiff(d, c));

    // Mixed signs: magnitude ~2^63.9 still fits the unsigned path.
    const sim::JsonValue e = sim::parseJson("9223372036854775807");
    const sim::JsonValue f = sim::parseJson("-9223372036854775807");
    EXPECT_NEAR(sim::numberRelDiff(e, f), 2.0, 1e-9);
}

TEST(JsonNumberRelDiffTest, EqualAndDoublePaths)
{
    EXPECT_EQ(sim::numberRelDiff(sim::parseJson("12345"),
                                 sim::parseJson("12345")),
              0.0);
    EXPECT_EQ(sim::numberRelDiff(sim::parseJson("0"),
                                 sim::parseJson("0")),
              0.0);
    // Double leaves keep the relative-difference semantics.
    EXPECT_NEAR(sim::numberRelDiff(sim::parseJson("1.0"),
                                   sim::parseJson("1.1")),
                0.1 / 1.1, 1e-12);
    // Mixed int/double compares through the double path.
    EXPECT_EQ(sim::numberRelDiff(sim::parseJson("2"),
                                 sim::parseJson("2.0")),
              0.0);
}

TEST(JsonParserTest, ObjectPreservesInsertionOrder)
{
    const sim::JsonValue v =
        sim::parseJson("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.obj.size(), 3u);
    EXPECT_EQ(v.obj[0].first, "z");
    EXPECT_EQ(v.obj[1].first, "a");
    EXPECT_EQ(v.obj[2].first, "m");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->integer, 2);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), sim::JsonError);
}

TEST(JsonParserTest, NestedContainers)
{
    const sim::JsonValue v = sim::parseJson(
        "{\"runs\": [{\"x\": [1, 2]}, {\"x\": []}], \"n\": null}");
    const sim::JsonValue &runs = v.at("runs");
    ASSERT_TRUE(runs.isArray());
    ASSERT_EQ(runs.arr.size(), 2u);
    EXPECT_EQ(runs.arr[0].at("x").arr.size(), 2u);
    EXPECT_TRUE(runs.arr[1].at("x").arr.empty());
    EXPECT_TRUE(v.at("n").isNull());
}

TEST(JsonParserTest, StringEscapes)
{
    EXPECT_EQ(sim::parseJson("\"a\\\"b\\\\c\\n\"").str, "a\"b\\c\n");
    EXPECT_EQ(sim::parseJson("\"\\u0041\\u00e9\"").str,
              "A\xc3\xa9");  // 'A' then e-acute in UTF-8
}

TEST(JsonParserTest, MalformedInputsThrowWithOffset)
{
    for (const char *bad :
         {"", "{", "[1, 2", "{\"a\": }", "{\"a\": 1,}", "tru",
          "\"unterminated", "1 2", "{'a': 1}", "nan"}) {
        EXPECT_THROW(sim::parseJson(bad), sim::JsonError) << bad;
    }
    try {
        sim::parseJson("[1, ]");
        FAIL() << "expected JsonError";
    } catch (const sim::JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonParserTest, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "json_test.json";
    {
        std::ofstream out(path);
        out << "{\n  \"bench\": \"x\",\n  \"runs\": [1, 2, 3]\n}\n";
    }
    const sim::JsonValue v = sim::parseJsonFile(path);
    EXPECT_EQ(v.at("bench").str, "x");
    EXPECT_EQ(v.at("runs").arr.size(), 3u);
    std::remove(path.c_str());
    EXPECT_THROW(sim::parseJsonFile(path), sim::JsonError);
}

} // namespace
