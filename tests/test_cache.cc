/**
 * @file
 * Unit and property tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "mem/cache.hh"
#include "sim/random.hh"

namespace {

mem::CacheGeometry
geom(std::uint32_t size, std::uint32_t assoc, std::uint32_t line)
{
    return mem::CacheGeometry{size, assoc, line};
}

TEST(Cache, GeometryMath)
{
    mem::Cache c("c", geom(16 * 1024, 2, 32));
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.assoc(), 2u);
    EXPECT_EQ(c.lineBytes(), 32u);
    EXPECT_EQ(c.lineAddr(0x1234), 0x1220u);

    mem::Cache l2("l2", geom(512 * 1024, 4, 64));
    EXPECT_EQ(l2.numSets(), 2048u);
}

TEST(Cache, MissThenHit)
{
    mem::Cache c("c", geom(1024, 2, 32));
    EXPECT_EQ(c.access(0x100), nullptr);
    mem::Eviction ev;
    c.insert(0x100, 0, 0, ev);
    EXPECT_FALSE(ev.valid);
    mem::CacheLine *line = c.access(0x100);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tag, 0x100u);
    // Any address within the line hits.
    EXPECT_NE(c.access(0x11f), nullptr);
    EXPECT_EQ(c.access(0x120), nullptr);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // One set: 1024 B, 2-way, 32 B lines -> 16 sets; use addresses in
    // the same set (stride = 16 * 32 = 512).
    mem::Cache c("c", geom(1024, 2, 32));
    mem::Eviction ev;
    c.insert(0x0, 0, 0, ev);
    c.insert(0x200, 0, 0, ev);
    // Touch 0x0 so 0x200 is LRU.
    ASSERT_NE(c.access(0x0), nullptr);
    c.insert(0x400, 0, 0, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x200u);
    EXPECT_NE(c.find(0x0), nullptr);
    EXPECT_EQ(c.find(0x200), nullptr);
}

TEST(Cache, DirtyEvictionReported)
{
    mem::Cache c("c", geom(64, 1, 32));  // 2 sets, direct mapped
    mem::Eviction ev;
    mem::CacheLine *line = c.insert(0x0, 0, 0, ev);
    line->dirty = true;
    c.insert(0x40, 0, 0, ev);  // same set 0
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(Cache, PrefetchFlagTravelsThroughEviction)
{
    mem::Cache c("c", geom(64, 1, 32));
    mem::Eviction ev;
    mem::CacheLine *line = c.insert(0x0, 0, 0, ev);
    line->prefetched = true;
    c.insert(0x40, 0, 0, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.prefetched);
}

TEST(Cache, PendingVictimAvoidedWhenSettledExists)
{
    mem::Cache c("c", geom(64, 2, 32));  // 1 set, 2 ways
    mem::Eviction ev;
    // Way A: pending until cycle 100.  Way B: settled.
    c.insert(0x000, /*now=*/0, /*ready_at=*/100, ev);
    c.insert(0x100, 0, 0, ev);
    // Touch the pending line so the settled one is LRU anyway...
    c.touch(c.find(0x100));
    c.touch(c.find(0x000));
    // Insert at now=10: both valid; 0x100 settled is preferred victim
    // even though 0x000 is LRU by stamp? 0x000 was touched last, so
    // 0x100 is LRU AND settled: evicted.
    c.insert(0x200, 10, 10, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x100u);
    EXPECT_NE(c.find(0x000), nullptr);  // pending line survived
}

TEST(Cache, PendingVictimUsedAsLastResort)
{
    mem::Cache c("c", geom(64, 2, 32));
    mem::Eviction ev;
    c.insert(0x000, 0, 100, ev);
    c.insert(0x100, 0, 100, ev);
    EXPECT_TRUE(c.setAllPending(0x200, 10));
    c.insert(0x200, 10, 10, ev);
    EXPECT_TRUE(ev.valid);  // had to displace a pending line
}

TEST(Cache, SetAllPending)
{
    mem::Cache c("c", geom(64, 2, 32));
    mem::Eviction ev;
    EXPECT_FALSE(c.setAllPending(0x0, 0));  // invalid lines
    c.insert(0x000, 0, 100, ev);
    EXPECT_FALSE(c.setAllPending(0x0, 0));
    c.insert(0x100, 0, 100, ev);
    EXPECT_TRUE(c.setAllPending(0x0, 50));
    EXPECT_FALSE(c.setAllPending(0x0, 100));  // fills completed
}

TEST(Cache, InvalidateAndReset)
{
    mem::Cache c("c", geom(1024, 2, 32));
    mem::Eviction ev;
    c.insert(0x100, 0, 0, ev);
    c.invalidate(0x100);
    EXPECT_EQ(c.find(0x100), nullptr);
    c.insert(0x100, 0, 0, ev);
    c.reset();
    EXPECT_EQ(c.find(0x100), nullptr);
    EXPECT_EQ(c.stats().misses, 0u);
}

/**
 * Property test: the cache agrees with a simple reference model (map
 * of set -> LRU list) under random traffic, across geometries.
 */
class CacheModelTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(CacheModelTest, MatchesReferenceModel)
{
    const auto [size, assoc, line] = GetParam();
    mem::Cache c("c", geom(size, assoc, line));
    const std::uint32_t num_sets = c.numSets();

    // Reference: per-set vector of line addresses, front = LRU.
    std::map<std::uint32_t, std::vector<sim::Addr>> model;
    sim::Rng rng(123 + size + assoc);

    for (int i = 0; i < 20000; ++i) {
        const sim::Addr addr = rng.below(1 << 20);
        const sim::Addr la = c.lineAddr(addr);
        const std::uint32_t set =
            static_cast<std::uint32_t>((la / line) % num_sets);
        auto &ways = model[set];
        const auto it = std::find(ways.begin(), ways.end(), la);
        const bool model_hit = it != ways.end();

        mem::CacheLine *got = c.access(addr);
        ASSERT_EQ(got != nullptr, model_hit)
            << "addr " << addr << " iter " << i;
        if (model_hit) {
            ways.erase(it);
            ways.push_back(la);
        } else {
            mem::Eviction ev;
            c.insert(addr, 0, 0, ev);
            if (ways.size() == assoc) {
                ASSERT_TRUE(ev.valid);
                ASSERT_EQ(ev.lineAddr, ways.front());
                ways.erase(ways.begin());
            } else {
                ASSERT_FALSE(ev.valid);
            }
            ways.push_back(la);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelTest,
    ::testing::Values(std::make_tuple(1024u, 1u, 32u),
                      std::make_tuple(1024u, 2u, 32u),
                      std::make_tuple(4096u, 4u, 64u),
                      std::make_tuple(16u * 1024u, 2u, 32u),
                      std::make_tuple(8192u, 8u, 64u)));

} // namespace
