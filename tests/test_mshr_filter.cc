/**
 * @file
 * Unit tests for the MSHR file and the prefetch Filter module.
 */

#include <gtest/gtest.h>

#include "cpu/hierarchy.hh"
#include "mem/prefetch_filter.hh"

namespace {

TEST(MshrFile, GrantsUpToCapacity)
{
    cpu::MshrFile mshrs(4);
    EXPECT_FALSE(mshrs.full());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(mshrs.acquire(10), 10u);
        mshrs.add(100 + i * 10);
    }
    EXPECT_TRUE(mshrs.full());
}

TEST(MshrFile, WaitsForEarliestWhenFull)
{
    cpu::MshrFile mshrs(2);
    mshrs.add(100);
    mshrs.add(200);
    // Full at cycle 50: the third reservation starts when the
    // earliest outstanding fill (100) completes.
    EXPECT_EQ(mshrs.acquire(50), 100u);
}

TEST(MshrFile, ExpiresCompletedEntries)
{
    cpu::MshrFile mshrs(2);
    mshrs.add(100);
    mshrs.add(200);
    mshrs.expire(150);
    EXPECT_FALSE(mshrs.full());
    EXPECT_EQ(mshrs.acquire(150), 150u);
}

TEST(MshrFile, AcquireAfterAllComplete)
{
    cpu::MshrFile mshrs(1);
    mshrs.add(100);
    EXPECT_EQ(mshrs.acquire(500), 500u);
}

TEST(PrefetchFilter, AdmitsNewDropsRecent)
{
    mem::PrefetchFilter f(4);
    EXPECT_TRUE(f.admit(0x100));
    EXPECT_FALSE(f.admit(0x100));
    EXPECT_EQ(f.drops(), 1u);
    EXPECT_EQ(f.admits(), 1u);
}

TEST(PrefetchFilter, FifoAgesEntriesOut)
{
    mem::PrefetchFilter f(4);
    EXPECT_TRUE(f.admit(0x100));
    for (sim::Addr a : {0x200, 0x300, 0x400, 0x500})
        EXPECT_TRUE(f.admit(a));
    // 0x100 was pushed out by the four newer entries.
    EXPECT_TRUE(f.admit(0x100));
    // 0x500 is still resident.
    EXPECT_FALSE(f.admit(0x500));
}

TEST(PrefetchFilter, DroppedRequestLeavesListUnmodified)
{
    mem::PrefetchFilter f(2);
    EXPECT_TRUE(f.admit(0x1));  // list: [1]
    EXPECT_TRUE(f.admit(0x2));  // list: [1, 2]
    EXPECT_FALSE(f.admit(0x1)); // drop; list unchanged
    // One more admit evicts 0x1 (the head), not 0x2.
    EXPECT_TRUE(f.admit(0x3));  // list: [2, 3]
    EXPECT_FALSE(f.admit(0x2));
    EXPECT_TRUE(f.admit(0x1));
}

TEST(PrefetchFilter, ZeroCapacityDisables)
{
    mem::PrefetchFilter f(0);
    EXPECT_TRUE(f.admit(0x100));
    EXPECT_TRUE(f.admit(0x100));
    EXPECT_EQ(f.drops(), 0u);
}

TEST(PrefetchFilter, Reset)
{
    mem::PrefetchFilter f(8);
    f.admit(0x100);
    f.reset();
    EXPECT_TRUE(f.admit(0x100));
    EXPECT_EQ(f.admits(), 1u);
}

TEST(PrefetchFilter, SizeTracksOccupancy)
{
    mem::PrefetchFilter f(3);
    EXPECT_EQ(f.size(), 0u);
    f.admit(0x1);
    f.admit(0x2);
    EXPECT_EQ(f.size(), 2u);
    f.admit(0x3);
    f.admit(0x4);
    EXPECT_EQ(f.size(), 3u);  // capped at capacity
}

} // namespace
