/**
 * @file
 * Integration tests: whole-system runs at reduced scale across every
 * application and the main prefetching configurations, checking the
 * paper's structural invariants rather than absolute numbers.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"

namespace {

driver::ExperimentOptions
opts(double scale = 0.05)
{
    driver::ExperimentOptions o;
    o.scale = scale;
    return o;
}

class EveryAppSystem : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryAppSystem, NoPrefRunCompletesAndBalances)
{
    const auto o = opts();
    const driver::RunResult r =
        driver::runOne(GetParam(), driver::noPrefConfig(o), o);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.records, 0u);
    // The time decomposition covers the whole run.
    EXPECT_EQ(r.busyCycles + r.uptoL2Stall + r.beyondL2Stall, r.cycles);
    // Without a ULMT there are no pushes or ULMT hits.
    EXPECT_EQ(r.hier.pushInstalled, 0u);
    EXPECT_EQ(r.hier.ulmtHits, 0u);
    EXPECT_EQ(r.hier.nonPrefMisses, r.hier.l2Misses);
}

TEST_P(EveryAppSystem, RunsAreDeterministic)
{
    const auto o = opts();
    const driver::SystemConfig cfg =
        driver::conven4PlusUlmtConfig(o, core::UlmtAlgo::Repl,
                                      GetParam());
    const driver::RunResult a = driver::runOne(GetParam(), cfg, o);
    const driver::RunResult b = driver::runOne(GetParam(), cfg, o);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.hier.l2Misses, b.hier.l2Misses);
    EXPECT_EQ(a.ulmt.missesProcessed, b.ulmt.missesProcessed);
    EXPECT_EQ(a.memsys.ulmtPrefetchesIssued,
              b.memsys.ulmtPrefetchesIssued);
}

TEST_P(EveryAppSystem, ReplClassificationIsConsistent)
{
    const auto o = opts();
    const driver::RunResult r = driver::runOne(
        GetParam(), driver::ulmtConfig(o, core::UlmtAlgo::Repl,
                                       GetParam()),
        o);
    // Every demand L2 miss is either a delayed hit or a full miss.
    EXPECT_EQ(r.hier.l2Misses,
              r.hier.ulmtDelayedHits + r.hier.nonPrefMisses);
    // Pushed lines are conserved: every issued prefetch either
    // installs or is dropped as redundant (delayed-hit claims consume
    // the rest; a single in-flight prefetch can serve several misses).
    EXPECT_LE(r.hier.pushInstalled + r.hier.pushRedundant(),
              r.memsys.ulmtPrefetchesIssued);
    // The ULMT observed exactly the demand fetches (non-verbose).
    EXPECT_EQ(r.ulmt.missesObserved, r.memsys.demandFetches);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, EveryAppSystem,
    ::testing::ValuesIn(workloads::applicationNames()),
    [](const auto &info) { return info.param; });

TEST(System, UlmtPrefetchingReducesFullLatencyMisses)
{
    // Mcf's dependent chain repeats: Repl must convert a substantial
    // share of full misses into hits or delayed hits.
    const auto o = opts(0.1);
    const driver::RunResult base =
        driver::runOne("Mcf", driver::noPrefConfig(o), o);
    const driver::RunResult repl = driver::runOne(
        "Mcf", driver::ulmtConfig(o, core::UlmtAlgo::Repl, "Mcf"), o);
    EXPECT_LT(repl.hier.nonPrefMisses, base.hier.l2Misses);
    EXPECT_GT(repl.hier.ulmtHits + repl.hier.ulmtDelayedHits,
              base.hier.l2Misses / 10);
    EXPECT_GT(repl.speedup(base), 1.0);
}

TEST(System, ReplBeatsBaseOnDeepChains)
{
    // Needs enough rounds for the deep-level tables to warm up.
    const auto o = opts(0.3);
    const driver::RunResult base_run = driver::runOne(
        "MST", driver::ulmtConfig(o, core::UlmtAlgo::Base, "MST"), o);
    const driver::RunResult repl_run = driver::runOne(
        "MST", driver::ulmtConfig(o, core::UlmtAlgo::Repl, "MST"), o);
    EXPECT_LT(repl_run.cycles, base_run.cycles);
}

TEST(System, NorthBridgePlacementCostsLittle)
{
    driver::ExperimentOptions o = opts(0.1);
    const driver::RunResult base =
        driver::runOne("Mcf", driver::noPrefConfig(o), o);
    const driver::RunResult in_dram = driver::runOne(
        "Mcf", driver::conven4PlusUlmtConfig(o, core::UlmtAlgo::Repl,
                                             "Mcf"),
        o);
    driver::ExperimentOptions nb = o;
    nb.placement = mem::MemProcPlacement::NorthBridge;
    const driver::RunResult in_nb = driver::runOne(
        "Mcf", driver::conven4PlusUlmtConfig(nb, core::UlmtAlgo::Repl,
                                             "Mcf"),
        nb);
    // Figure 8's shape: the North Bridge placement loses only a
    // little of the in-DRAM speedup.
    EXPECT_GT(in_nb.speedup(base), 1.0);
    EXPECT_GT(in_nb.speedup(base), 0.8 * in_dram.speedup(base));
}

TEST(System, VerboseModeObservesMore)
{
    const auto o = opts();
    driver::SystemConfig quiet =
        driver::conven4PlusUlmtConfig(o, core::UlmtAlgo::Repl, "CG");
    driver::SystemConfig verbose = quiet;
    verbose.ulmt.verbose = true;
    const driver::RunResult q = driver::runOne("CG", quiet, o);
    const driver::RunResult v = driver::runOne("CG", verbose, o);
    EXPECT_GE(v.ulmt.missesObserved, q.ulmt.missesObserved);
}

TEST(System, MissStreamCaptureMatchesMissCount)
{
    const auto o = opts();
    driver::SystemConfig cfg = driver::noPrefConfig(o);
    cfg.recordMissStream = true;
    const driver::RunResult r = driver::runOne("Gap", cfg, o);
    EXPECT_EQ(r.missStream.size(), r.hier.l2Misses);
    for (sim::Addr a : r.missStream)
        EXPECT_EQ(a % 64, 0u);  // L2-line aligned
}

TEST(System, BusUtilizationBounded)
{
    const auto o = opts();
    const driver::RunResult r = driver::runOne(
        "Equake",
        driver::conven4PlusUlmtConfig(o, core::UlmtAlgo::Repl,
                                      "Equake"),
        o);
    EXPECT_GT(r.busUtilization(), 0.0);
    EXPECT_GE(r.busUtilization(), r.busUtilizationPrefetch());
}

TEST(System, PageRemapIsSurvivable)
{
    const auto o = opts();
    workloads::WorkloadParams wp;
    wp.scale = o.scale;
    auto wl = workloads::makeWorkload("Mcf", wp);
    driver::SystemConfig cfg =
        driver::ulmtConfig(o, core::UlmtAlgo::Repl, "Mcf");
    driver::System sys(cfg, *wl);
    sys.pageRemap(0x10000 / 4096, 0x90000 / 4096, 4096);
    const driver::RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
}

} // namespace
